//! Quickstart: build a patricia-trie index, run the paper's string operators,
//! and look at the tree statistics.
//!
//! ```text
//! cargo run --example quickstart
//! ```

use spgist::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // All indexes live on a buffer pool; in-memory here, file-backed via
    // `FilePager` for durable indexes (see the persistence integration test).
    let pool = BufferPool::in_memory();
    let mut trie = TrieIndex::create(pool)?;

    // The words of the paper's Figure 2.
    let words = ["blue", "bit", "take", "top", "zero", "space", "spade", "star"];
    for (row, word) in words.iter().enumerate() {
        trie.insert(word, row as RowId)?;
    }

    // `=` equality operator.
    println!("=  'space'   -> rows {:?}", trie.equals("space")?);
    // `#=` prefix operator.
    let prefixed: Vec<String> = trie.prefix("sp")?.into_iter().map(|(w, _)| w).collect();
    println!("#= 'sp'      -> {prefixed:?}");
    // `?=` regular-expression operator (single-character wildcard).
    let matched: Vec<String> = trie.regex("t??")?.into_iter().map(|(w, _)| w).collect();
    println!("?= 't??'     -> {matched:?}");
    // `@@` nearest-neighbour operator (Hamming-style distance).
    let nearest: Vec<(String, f64)> = trie
        .nearest("spate", 3)?
        .into_iter()
        .map(|(w, _, d)| (w, d))
        .collect();
    println!("@@ 'spate'   -> {nearest:?}");

    let stats = trie.stats()?;
    println!(
        "index: {} items, {} nodes over {} pages, node height {}, page height {}",
        stats.items,
        stats.total_nodes(),
        stats.pages,
        stats.max_node_height,
        stats.max_page_height
    );
    Ok(())
}
