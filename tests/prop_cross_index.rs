//! Property-based tests: for arbitrary datasets and queries, every index
//! agrees with a straightforward in-memory model.

use proptest::collection::vec;
use proptest::prelude::*;
use spgist::prelude::*;

fn word_strategy() -> impl Strategy<Value = String> {
    // Lengths 0..=15 over a small alphabet to maximize prefix sharing and
    // duplicate keys.
    vec(prop::sample::select(vec!['a', 'b', 'c', 'd']), 0..=15)
        .prop_map(|chars| chars.into_iter().collect())
}

fn point_strategy() -> impl Strategy<Value = Point> {
    // A coarse grid produces many duplicate coordinates and exact duplicates.
    (0..50u32, 0..50u32).prop_map(|(x, y)| Point::new(f64::from(x) * 2.0, f64::from(y) * 2.0))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn trie_matches_model_for_equality_prefix_and_regex(
        word_list in vec(word_strategy(), 1..200),
        probe in word_strategy(),
    ) {
        let mut trie = TrieIndex::create(BufferPool::in_memory()).unwrap();
        for (row, w) in word_list.iter().enumerate() {
            trie.insert(w, row as RowId).unwrap();
        }

        // Equality.
        let mut got = trie.equals(&probe).unwrap();
        got.sort_unstable();
        let expected: Vec<RowId> = word_list
            .iter()
            .enumerate()
            .filter(|(_, w)| **w == probe)
            .map(|(i, _)| i as RowId)
            .collect();
        prop_assert_eq!(got, expected);

        // Prefix.
        let prefix: String = probe.chars().take(2).collect();
        let mut got: Vec<RowId> = trie.prefix(&prefix).unwrap().into_iter().map(|(_, r)| r).collect();
        got.sort_unstable();
        let expected: Vec<RowId> = word_list
            .iter()
            .enumerate()
            .filter(|(_, w)| w.starts_with(&prefix))
            .map(|(i, _)| i as RowId)
            .collect();
        prop_assert_eq!(got, expected);

        // Regular expression built from the probe with a wildcard in the middle.
        if probe.len() >= 2 {
            let mut pattern = probe.clone().into_bytes();
            pattern[probe.len() / 2] = b'?';
            let pattern = String::from_utf8(pattern).unwrap();
            let mut got: Vec<RowId> = trie.regex(&pattern).unwrap().into_iter().map(|(_, r)| r).collect();
            got.sort_unstable();
            let expected: Vec<RowId> = word_list
                .iter()
                .enumerate()
                .filter(|(_, w)| {
                    w.len() == pattern.len()
                        && pattern.bytes().zip(w.bytes()).all(|(p, c)| p == b'?' || p == c)
                })
                .map(|(i, _)| i as RowId)
                .collect();
            prop_assert_eq!(got, expected);
        }
    }

    #[test]
    fn trie_deletion_removes_exactly_the_requested_rows(
        word_list in vec(word_strategy(), 1..100),
        delete_mask in vec(any::<bool>(), 1..100),
    ) {
        let mut trie = TrieIndex::create(BufferPool::in_memory()).unwrap();
        for (row, w) in word_list.iter().enumerate() {
            trie.insert(w, row as RowId).unwrap();
        }
        let mut kept: Vec<(usize, &String)> = Vec::new();
        for (row, w) in word_list.iter().enumerate() {
            if delete_mask.get(row).copied().unwrap_or(false) {
                prop_assert!(trie.delete(w, row as RowId).unwrap());
            } else {
                kept.push((row, w));
            }
        }
        for (row, w) in kept {
            let hits = trie.equals(w).unwrap();
            prop_assert!(hits.contains(&(row as RowId)), "row {row} for {w:?} lost");
        }
    }

    #[test]
    fn kdtree_and_quadtree_match_model_for_equality_and_range(
        point_list in vec(point_strategy(), 1..200),
        win in (0..40u32, 0..40u32, 1..30u32, 1..30u32),
    ) {
        let mut kd = KdTreeIndex::create(BufferPool::in_memory()).unwrap();
        let mut quad = PointQuadtreeIndex::create(BufferPool::in_memory()).unwrap();
        for (row, p) in point_list.iter().enumerate() {
            kd.insert(*p, row as RowId).unwrap();
            quad.insert(*p, row as RowId).unwrap();
        }
        // Equality on the first point (duplicates likely on the coarse grid).
        let probe = point_list[0];
        let expected: Vec<RowId> = point_list
            .iter()
            .enumerate()
            .filter(|(_, p)| **p == probe)
            .map(|(i, _)| i as RowId)
            .collect();
        let sorted = |mut v: Vec<RowId>| { v.sort_unstable(); v };
        prop_assert_eq!(sorted(kd.equals(probe).unwrap()), expected.clone());
        prop_assert_eq!(sorted(quad.equals(probe).unwrap()), expected);

        // Range query.
        let rect = Rect::new(
            f64::from(win.0) * 2.0,
            f64::from(win.1) * 2.0,
            f64::from(win.0 + win.2) * 2.0,
            f64::from(win.1 + win.3) * 2.0,
        );
        let expected = point_list.iter().filter(|p| rect.contains_point(p)).count();
        prop_assert_eq!(kd.range(rect).unwrap().len(), expected);
        prop_assert_eq!(quad.range(rect).unwrap().len(), expected);
    }

    #[test]
    fn kdtree_nn_matches_brute_force(
        point_list in vec(point_strategy(), 1..150),
        query in point_strategy(),
        k in 1..10usize,
    ) {
        let mut kd = KdTreeIndex::create(BufferPool::in_memory()).unwrap();
        for (row, p) in point_list.iter().enumerate() {
            kd.insert(*p, row as RowId).unwrap();
        }
        let k = k.min(point_list.len());
        let nn = kd.nearest(query, k).unwrap();
        prop_assert_eq!(nn.len(), k);
        let mut brute: Vec<f64> = point_list.iter().map(|p| p.distance(&query)).collect();
        brute.sort_by(f64::total_cmp);
        for (i, (_, _, d)) in nn.iter().enumerate() {
            prop_assert!((d - brute[i]).abs() < 1e-9, "k={i}: {} vs {}", d, brute[i]);
        }
    }
}
