#!/usr/bin/env python3
"""Unit tests for compare_bench.py (stdlib unittest only).

Covers the pieces CI leans on: direction-aware regression flagging (a
drop in a higher-is-better metric and a rise in a lower-is-better metric
both fail; the opposite moves do not), missing rows and missing whole
experiments counting as regressions, threshold behavior, and the process
exit codes (0 clean, 1 regression, 2 usage error).

Run directly (`python3 scripts/test_compare_bench.py`) or through
unittest discovery (`python3 -m unittest discover scripts`).
"""

import json
import subprocess
import sys
import tempfile
import unittest
from pathlib import Path

SCRIPT = Path(__file__).resolve().parent / "compare_bench.py"

sys.path.insert(0, str(SCRIPT.parent))
import compare_bench  # noqa: E402


def write_artifact(directory: Path, experiment: str, rows: list) -> None:
    doc = {"experiment": experiment, "scale": "test", "rows": rows}
    (directory / f"BENCH_{experiment}.json").write_text(json.dumps(doc))


def run_compare(baseline: Path, current: Path, *extra: str):
    return subprocess.run(
        [sys.executable, str(SCRIPT), str(baseline), str(current), *extra],
        capture_output=True,
        text=True,
    )


class DirectionTests(unittest.TestCase):
    def test_higher_better_patterns(self):
        for name in ["hit_rate", "queries_per_sec", "speedup", "fill",
                     "commits_per_sync", "throughput"]:
            self.assertEqual(compare_bench.direction(name), 1, name)

    def test_lower_better_patterns(self):
        for name in ["elapsed_ms", "physical_reads", "evictions",
                     "cache_misses", "syncs", "tree_height"]:
            self.assertEqual(compare_bench.direction(name), -1, name)

    def test_unknown_metrics_have_no_direction(self):
        for name in ["distinct", "label", "epoch"]:
            self.assertEqual(compare_bench.direction(name), 0, name)

    def test_higher_better_wins_over_contained_lower_pattern(self):
        # "per_sync" contains "sync": the higher-is-better match must win.
        self.assertEqual(compare_bench.direction("commits_per_sync"), 1)


class FlattenAndKeyTests(unittest.TestCase):
    def test_flatten_nests_with_dots(self):
        flat = compare_bench.flatten({"a": 1, "b": {"c": 2, "d": {"e": 3}}})
        self.assertEqual(flat, {"a": 1, "b.c": 2, "b.d.e": 3})

    def test_row_key_uses_key_columns_and_strings(self):
        flat = {"policy": "lru", "elapsed_ms": 12.5, "threads": 4,
                "label": "warm"}
        key = dict(compare_bench.row_key(flat))
        self.assertIn("policy", key)
        self.assertIn("threads", key)
        self.assertIn("label", key)  # strings are identity, not metrics
        self.assertNotIn("elapsed_ms", key)


class CompareProcessTests(unittest.TestCase):
    """End-to-end runs of the script, asserting exit codes and output."""

    def setUp(self):
        self._tmp = tempfile.TemporaryDirectory()
        root = Path(self._tmp.name)
        self.baseline = root / "baseline"
        self.current = root / "current"
        self.baseline.mkdir()
        self.current.mkdir()

    def tearDown(self):
        self._tmp.cleanup()

    def test_identical_runs_pass(self):
        rows = [{"policy": "lru", "elapsed_ms": 100.0, "hit_rate": 0.9}]
        write_artifact(self.baseline, "pool", rows)
        write_artifact(self.current, "pool", rows)
        result = run_compare(self.baseline, self.current)
        self.assertEqual(result.returncode, 0, result.stdout)
        self.assertIn("no regressions", result.stdout)

    def test_lower_better_rise_fails(self):
        write_artifact(self.baseline, "pool",
                       [{"policy": "lru", "elapsed_ms": 100.0}])
        write_artifact(self.current, "pool",
                       [{"policy": "lru", "elapsed_ms": 150.0}])
        result = run_compare(self.baseline, self.current)
        self.assertEqual(result.returncode, 1, result.stdout)
        self.assertIn("REGRESSION", result.stdout)
        self.assertIn("elapsed_ms", result.stdout)

    def test_lower_better_drop_passes(self):
        write_artifact(self.baseline, "pool",
                       [{"policy": "lru", "elapsed_ms": 150.0}])
        write_artifact(self.current, "pool",
                       [{"policy": "lru", "elapsed_ms": 100.0}])
        result = run_compare(self.baseline, self.current)
        self.assertEqual(result.returncode, 0, result.stdout)

    def test_higher_better_drop_fails(self):
        write_artifact(self.baseline, "pool",
                       [{"policy": "lru", "hit_rate": 0.9}])
        write_artifact(self.current, "pool",
                       [{"policy": "lru", "hit_rate": 0.5}])
        result = run_compare(self.baseline, self.current)
        self.assertEqual(result.returncode, 1, result.stdout)
        self.assertIn("hit_rate", result.stdout)

    def test_higher_better_rise_passes(self):
        write_artifact(self.baseline, "pool",
                       [{"policy": "lru", "hit_rate": 0.5}])
        write_artifact(self.current, "pool",
                       [{"policy": "lru", "hit_rate": 0.9}])
        result = run_compare(self.baseline, self.current)
        self.assertEqual(result.returncode, 0, result.stdout)

    def test_change_within_threshold_passes(self):
        write_artifact(self.baseline, "pool",
                       [{"policy": "lru", "elapsed_ms": 100.0}])
        write_artifact(self.current, "pool",
                       [{"policy": "lru", "elapsed_ms": 105.0}])
        result = run_compare(self.baseline, self.current)
        self.assertEqual(result.returncode, 0, result.stdout)

    def test_threshold_flag_tightens(self):
        write_artifact(self.baseline, "pool",
                       [{"policy": "lru", "elapsed_ms": 100.0}])
        write_artifact(self.current, "pool",
                       [{"policy": "lru", "elapsed_ms": 105.0}])
        result = run_compare(self.baseline, self.current, "--threshold", "2")
        self.assertEqual(result.returncode, 1, result.stdout)

    def test_missing_row_is_a_regression(self):
        write_artifact(self.baseline, "pool", [
            {"policy": "lru", "elapsed_ms": 100.0},
            {"policy": "sieve", "elapsed_ms": 90.0},
        ])
        write_artifact(self.current, "pool",
                       [{"policy": "lru", "elapsed_ms": 100.0}])
        result = run_compare(self.baseline, self.current)
        self.assertEqual(result.returncode, 1, result.stdout)
        self.assertIn("missing from current run", result.stdout)
        self.assertIn("sieve", result.stdout)

    def test_missing_experiment_is_a_regression(self):
        write_artifact(self.baseline, "pool",
                       [{"policy": "lru", "elapsed_ms": 100.0}])
        write_artifact(self.baseline, "wal",
                       [{"commits": 10, "syncs": 2.0}])
        write_artifact(self.current, "pool",
                       [{"policy": "lru", "elapsed_ms": 100.0}])
        result = run_compare(self.baseline, self.current)
        self.assertEqual(result.returncode, 1, result.stdout)
        self.assertIn("wal: experiment missing", result.stdout)

    def test_new_current_experiment_is_not_required_in_baseline(self):
        write_artifact(self.baseline, "pool",
                       [{"policy": "lru", "elapsed_ms": 100.0}])
        write_artifact(self.current, "pool",
                       [{"policy": "lru", "elapsed_ms": 100.0}])
        write_artifact(self.current, "txn", [{"commits": 5, "syncs": 1.0}])
        result = run_compare(self.baseline, self.current)
        self.assertEqual(result.returncode, 0, result.stdout)

    def test_directionless_metrics_never_fail(self):
        write_artifact(self.baseline, "pool",
                       [{"policy": "lru", "distinct": 100}])
        write_artifact(self.current, "pool",
                       [{"policy": "lru", "distinct": 5}])
        result = run_compare(self.baseline, self.current)
        self.assertEqual(result.returncode, 0, result.stdout)

    def test_invalid_json_artifact_is_skipped_with_warning(self):
        write_artifact(self.baseline, "pool",
                       [{"policy": "lru", "elapsed_ms": 100.0}])
        write_artifact(self.current, "pool",
                       [{"policy": "lru", "elapsed_ms": 100.0}])
        (self.current / "BENCH_broken.json").write_text("{not json")
        result = run_compare(self.baseline, self.current)
        self.assertEqual(result.returncode, 0, result.stdout)
        self.assertIn("warning", result.stdout)

    def test_empty_directories_are_a_clean_no_op(self):
        result = run_compare(self.baseline, self.current)
        self.assertEqual(result.returncode, 0, result.stdout)
        self.assertIn("nothing to do", result.stdout)

    def test_nonexistent_directory_is_a_usage_error(self):
        result = run_compare(self.baseline / "nope", self.current)
        self.assertEqual(result.returncode, 2, result.stdout)

    def test_nested_rows_compare_by_flattened_metric(self):
        write_artifact(self.baseline, "build",
                       [{"index": "trie", "sides": {"spgist": {"elapsed_ms": 10.0}}}])
        write_artifact(self.current, "build",
                       [{"index": "trie", "sides": {"spgist": {"elapsed_ms": 20.0}}}])
        result = run_compare(self.baseline, self.current)
        self.assertEqual(result.returncode, 1, result.stdout)
        self.assertIn("sides.spgist.elapsed_ms", result.stdout)


if __name__ == "__main__":
    unittest.main()
