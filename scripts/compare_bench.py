#!/usr/bin/env python3
"""Compare two directories of BENCH_*.json experiment artifacts.

Usage:
    compare_bench.py BASELINE_DIR CURRENT_DIR [--threshold PCT]

Both directories hold the machine-readable artifacts the experiment
harness writes with --json-dir (one `BENCH_<experiment>.json` per
experiment: an object with "experiment", "scale", and "rows").  Rows are
matched across the two directories by their *key columns* — the workload
dimensions (class, policy, workload, size, threads, ...) — and every
shared numeric metric is compared:

* lower-is-better metrics (elapsed/latency ms, physical reads/writes,
  evictions, misses, syncs) regress when the current value exceeds the
  baseline by more than the threshold;
* higher-is-better metrics (hit rates, throughputs, speedups, fill)
  regress when the current value falls short by more than the threshold;
* metrics with no recognizable direction are reported but never fail.

Rows or whole experiments present in the baseline but missing from the
current run are themselves regressions — coverage must not silently
shrink when a harness change drops an artifact or a workload row.

Exits 1 if any regression beyond the threshold (default 10%) is found,
0 otherwise.  Uses only the standard library.
"""

import argparse
import json
import math
import sys
from pathlib import Path

# Columns identifying *which* measurement a row is, not how it performed.
KEY_COLUMNS = {
    "class", "mode", "policy", "workload", "index", "variant",
    "size", "rows", "k", "threads", "pool_pct", "frames", "readers",
    "writers", "queries", "fetches", "pages", "commits", "data_pages",
    "backend", "pct_mutated", "chunks_mutated",
}

# Substrings marking a metric's direction.  Checked in order: a name
# matching a higher-is-better pattern is higher-is-better even if it also
# contains a lower-is-better substring (e.g. "commits_per_sync").
HIGHER_BETTER = (
    "hit_rate", "per_sec", "per_sync", "throughput", "qps", "ips",
    "cps", "speedup", "fill", "ratio_vs_full",
)
LOWER_BETTER = (
    "ms", "reads", "writes", "evict", "miss", "sync", "physical",
    "height", "bytes", "quiesce", "stall",
)


def direction(name: str) -> int:
    """+1 higher-is-better, -1 lower-is-better, 0 unknown."""
    lowered = name.lower()
    if any(pat in lowered for pat in HIGHER_BETTER):
        return 1
    if any(pat in lowered for pat in LOWER_BETTER):
        return -1
    return 0


def flatten(row: dict, prefix: str = "") -> dict:
    """Flattens nested row objects (BENCH_build.json has per-side dicts)."""
    out = {}
    for name, value in row.items():
        full = f"{prefix}{name}"
        if isinstance(value, dict):
            out.update(flatten(value, f"{full}."))
        else:
            out[full] = value
    return out


def row_key(row: dict) -> tuple:
    """The identity of a row: every key column plus every string value."""
    parts = []
    for name, value in sorted(row.items()):
        base = name.rsplit(".", 1)[-1]
        if base in KEY_COLUMNS or isinstance(value, str):
            parts.append((name, value))
    return tuple(parts)


def load_dir(path: Path) -> dict:
    experiments = {}
    for file in sorted(path.glob("BENCH_*.json")):
        try:
            doc = json.loads(file.read_text())
        except json.JSONDecodeError as err:
            print(f"warning: {file} is not valid JSON ({err}); skipped")
            continue
        name = doc.get("experiment", file.stem.removeprefix("BENCH_"))
        rows = {}
        for row in doc.get("rows", []):
            flat = flatten(row)
            rows[row_key(flat)] = flat
        experiments[name] = rows
    return experiments


def fmt_key(key: tuple) -> str:
    return ", ".join(f"{name}={value}" for name, value in key) or "(single row)"


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("baseline", type=Path)
    parser.add_argument("current", type=Path)
    parser.add_argument(
        "--threshold", type=float, default=10.0,
        help="relative change (percent) beyond which a metric regresses",
    )
    parser.add_argument(
        "--min-abs", type=float, default=1e-6,
        help="ignore changes whose absolute difference is below this",
    )
    args = parser.parse_args()
    for path in (args.baseline, args.current):
        if not path.is_dir():
            print(f"error: {path} is not a directory")
            return 2

    base = load_dir(args.baseline)
    curr = load_dir(args.current)
    if not base or not curr:
        print("warning: no BENCH_*.json artifacts to compare; nothing to do")
        return 0

    regressions = []
    improvements = 0
    compared = 0
    for experiment in sorted(base):
        if experiment not in curr:
            # A vanished experiment is a lost measurement, not a skip: the
            # harness stopped producing an artifact the baseline had.
            regressions.append(
                f"{experiment}: experiment missing from current run"
            )
            continue
        for key, base_row in base[experiment].items():
            curr_row = curr[experiment].get(key)
            if curr_row is None:
                regressions.append(
                    f"{experiment}: row [{fmt_key(key)}] missing from current run"
                )
                continue
            for metric, base_val in base_row.items():
                if metric.rsplit(".", 1)[-1] in KEY_COLUMNS:
                    continue
                curr_val = curr_row.get(metric)
                if not isinstance(base_val, (int, float)) or isinstance(base_val, bool):
                    continue
                if not isinstance(curr_val, (int, float)) or isinstance(curr_val, bool):
                    continue
                if math.isnan(base_val) or math.isnan(curr_val):
                    continue
                sign = direction(metric)
                if sign == 0:
                    continue
                compared += 1
                if abs(curr_val - base_val) < args.min_abs or base_val == 0:
                    continue
                change_pct = (curr_val - base_val) / abs(base_val) * 100.0
                worse = change_pct * sign < 0 if sign == 1 else change_pct > 0
                beyond = abs(change_pct) > args.threshold
                if worse and beyond:
                    regressions.append(
                        f"{experiment} [{fmt_key(key)}] {metric}: "
                        f"{base_val:g} -> {curr_val:g} ({change_pct:+.1f}%)"
                    )
                elif beyond:
                    improvements += 1

    print(f"compared {compared} metrics across {len(base)} experiments")
    print(f"{improvements} metrics improved by more than {args.threshold:g}%")
    if regressions:
        print(f"\n{len(regressions)} regressions beyond {args.threshold:g}%:")
        for line in regressions:
            print(f"  REGRESSION: {line}")
        return 1
    print("no regressions beyond the threshold")
    return 0


if __name__ == "__main__":
    sys.exit(main())
