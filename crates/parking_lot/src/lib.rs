//! Offline shim over [`std::sync`] locks with the `parking_lot` API shape.
//!
//! The build environment has no network access, so the real
//! [parking_lot](https://crates.io/crates/parking_lot) crate cannot be
//! fetched.  Only the surface the workspace uses is provided: a [`Mutex`]
//! whose `lock()` returns the guard directly (no poison `Result`) and a
//! [`RwLock`] with the matching `read()` / `write()` shape — the
//! reader-writer latch that `spgist-indexes` wraps every tree in for
//! shared-access queries.  Poisoning is deliberately ignored, matching
//! `parking_lot` semantics: a panic while holding a lock does not make the
//! data permanently inaccessible.  Swapping back to the real crate is a
//! one-line change in `Cargo.toml`.

use std::sync::PoisonError;

/// Re-export of the guard type returned by [`Mutex::lock`].
pub type MutexGuard<'a, T> = std::sync::MutexGuard<'a, T>;

/// Re-export of the guard type returned by [`RwLock::read`].
pub type RwLockReadGuard<'a, T> = std::sync::RwLockReadGuard<'a, T>;

/// Re-export of the guard type returned by [`RwLock::write`].
pub type RwLockWriteGuard<'a, T> = std::sync::RwLockWriteGuard<'a, T>;

/// A mutual-exclusion lock with `parking_lot`-style non-poisoning `lock()`.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized> {
    inner: std::sync::Mutex<T>,
}

impl<T> Mutex<T> {
    /// Creates a new mutex protecting `value`.
    pub fn new(value: T) -> Self {
        Mutex {
            inner: std::sync::Mutex::new(value),
        }
    }

    /// Consumes the mutex, returning the protected value.
    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until it is available.  Unlike
    /// `std::sync::Mutex::lock` this never fails: a poisoned lock is
    /// recovered transparently.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.inner.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Attempts to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(guard) => Some(guard),
            Err(std::sync::TryLockError::Poisoned(p)) => Some(p.into_inner()),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Returns a mutable reference to the protected value (no locking
    /// needed: the receiver is exclusive).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

/// A reader-writer lock with `parking_lot`-style non-poisoning guards.
///
/// Many readers may hold the lock at once; a writer is exclusive.  This is
/// the latch the index layer wraps each [`spgist_core`]-tree in: queries
/// take `read()` for their cursor's lifetime, updates take `write()` for
/// the duration of one structure modification.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized> {
    inner: std::sync::RwLock<T>,
}

impl<T> RwLock<T> {
    /// Creates a new reader-writer lock protecting `value`.
    pub fn new(value: T) -> Self {
        RwLock {
            inner: std::sync::RwLock::new(value),
        }
    }

    /// Consumes the lock, returning the protected value.
    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires a shared read latch, blocking while a writer holds the lock.
    /// Never fails: a poisoned lock is recovered transparently.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.inner.read().unwrap_or_else(PoisonError::into_inner)
    }

    /// Acquires the exclusive write latch, blocking until all readers and
    /// writers release theirs.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.inner.write().unwrap_or_else(PoisonError::into_inner)
    }

    /// Attempts to acquire a read latch without blocking.
    pub fn try_read(&self) -> Option<RwLockReadGuard<'_, T>> {
        match self.inner.try_read() {
            Ok(guard) => Some(guard),
            Err(std::sync::TryLockError::Poisoned(p)) => Some(p.into_inner()),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Attempts to acquire the write latch without blocking.
    pub fn try_write(&self) -> Option<RwLockWriteGuard<'_, T>> {
        match self.inner.try_write() {
            Ok(guard) => Some(guard),
            Err(std::sync::TryLockError::Poisoned(p)) => Some(p.into_inner()),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Returns a mutable reference to the protected value (no locking
    /// needed: the receiver is exclusive).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn lock_roundtrip() {
        let m = Mutex::new(1);
        *m.lock() += 41;
        assert_eq!(*m.lock(), 42);
        assert_eq!(m.into_inner(), 42);
    }

    #[test]
    fn contended_lock_is_exclusive() {
        let m = Arc::new(Mutex::new(0u64));
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let m = Arc::clone(&m);
                std::thread::spawn(move || {
                    for _ in 0..1000 {
                        *m.lock() += 1;
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(*m.lock(), 4000);
    }

    #[test]
    fn rwlock_roundtrip_and_try_locks() {
        let mut l = RwLock::new(1);
        *l.write() += 41;
        assert_eq!(*l.read(), 42);
        *l.get_mut() += 1;
        {
            let r1 = l.read();
            let r2 = l.read();
            assert_eq!((*r1, *r2), (43, 43), "readers share the latch");
            assert!(l.try_write().is_none(), "readers block the write latch");
        }
        {
            let _w = l.write();
            assert!(l.try_read().is_none(), "a writer blocks read latches");
        }
        assert_eq!(l.into_inner(), 43);
    }

    #[test]
    fn rwlock_readers_run_concurrently_with_serialized_writers() {
        let l = Arc::new(RwLock::new(0u64));
        let handles: Vec<_> = (0..4)
            .map(|i| {
                let l = Arc::clone(&l);
                std::thread::spawn(move || {
                    for _ in 0..500 {
                        if i % 2 == 0 {
                            *l.write() += 1;
                        } else {
                            let _ = *l.read();
                        }
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(*l.read(), 1000);
    }

    #[test]
    fn poisoned_rwlock_recovers() {
        let l = Arc::new(RwLock::new(7));
        let l2 = Arc::clone(&l);
        let _ = std::thread::spawn(move || {
            let _guard = l2.write();
            panic!("poison the std rwlock underneath");
        })
        .join();
        assert_eq!(*l.read(), 7, "parking_lot semantics: no permanent poison");
        assert_eq!(*l.write(), 7);
    }

    #[test]
    fn poisoned_lock_recovers() {
        let m = Arc::new(Mutex::new(7));
        let m2 = Arc::clone(&m);
        let _ = std::thread::spawn(move || {
            let _guard = m2.lock();
            panic!("poison the std mutex underneath");
        })
        .join();
        assert_eq!(*m.lock(), 7, "parking_lot semantics: no permanent poison");
    }
}
