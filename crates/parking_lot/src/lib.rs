//! Offline shim over [`std::sync::Mutex`] with the `parking_lot` API shape.
//!
//! The build environment has no network access, so the real
//! [parking_lot](https://crates.io/crates/parking_lot) crate cannot be
//! fetched.  Only the surface `spgist-storage` uses is provided: a
//! [`Mutex`] whose `lock()` returns the guard directly (no poison
//! `Result`).  Poisoning is deliberately ignored, matching `parking_lot`
//! semantics: a panic while holding the lock does not make the data
//! permanently inaccessible.  Swapping back to the real crate is a
//! one-line change in `Cargo.toml`.

use std::sync::PoisonError;

/// Re-export of the guard type returned by [`Mutex::lock`].
pub type MutexGuard<'a, T> = std::sync::MutexGuard<'a, T>;

/// A mutual-exclusion lock with `parking_lot`-style non-poisoning `lock()`.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized> {
    inner: std::sync::Mutex<T>,
}

impl<T> Mutex<T> {
    /// Creates a new mutex protecting `value`.
    pub fn new(value: T) -> Self {
        Mutex {
            inner: std::sync::Mutex::new(value),
        }
    }

    /// Consumes the mutex, returning the protected value.
    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until it is available.  Unlike
    /// `std::sync::Mutex::lock` this never fails: a poisoned lock is
    /// recovered transparently.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.inner.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Attempts to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(guard) => Some(guard),
            Err(std::sync::TryLockError::Poisoned(p)) => Some(p.into_inner()),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Returns a mutable reference to the protected value (no locking
    /// needed: the receiver is exclusive).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn lock_roundtrip() {
        let m = Mutex::new(1);
        *m.lock() += 41;
        assert_eq!(*m.lock(), 42);
        assert_eq!(m.into_inner(), 42);
    }

    #[test]
    fn contended_lock_is_exclusive() {
        let m = Arc::new(Mutex::new(0u64));
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let m = Arc::clone(&m);
                std::thread::spawn(move || {
                    for _ in 0..1000 {
                        *m.lock() += 1;
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(*m.lock(), 4000);
    }

    #[test]
    fn poisoned_lock_recovers() {
        let m = Arc::new(Mutex::new(7));
        let m2 = Arc::clone(&m);
        let _ = std::thread::spawn(move || {
            let _guard = m2.lock();
            panic!("poison the std mutex underneath");
        })
        .join();
        assert_eq!(*m.lock(), 7, "parking_lot semantics: no permanent poison");
    }
}
