//! Baseline access methods the paper compares SP-GiST indexes against.
//!
//! * [`btree::BPlusTree`] — a disk-based B⁺-tree over byte-string keys, the
//!   comparator for the trie experiments (paper Figures 6–12).
//! * [`rtree::RTree`] — a disk-based R-tree (Guttman, quadratic split), the
//!   comparator for the kd-tree and PMR-quadtree experiments
//!   (Figures 13–15).
//! * [`seqscan::SeqScanTable`] — a heap file scanned sequentially, the only
//!   other access path able to answer substring queries (Figure 16).
//!
//! All three run on the same page/buffer substrate as the SP-GiST indexes so
//! that page-I/O comparisons are apples-to-apples.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod btree;
pub mod rtree;
pub mod seqscan;

pub use btree::BPlusTree;
pub use rtree::RTree;
pub use seqscan::SeqScanTable;
