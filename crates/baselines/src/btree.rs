//! A disk-based B⁺-tree over byte-string keys.
//!
//! This is the baseline PostgreSQL index of the paper's string experiments.
//! Every tree node occupies one 8 KiB page (so tree height in nodes and in
//! pages coincide — the property Figures 11 and 12 contrast with the trie).
//! Leaves are chained left-to-right for range scans, which is how the B⁺-tree
//! answers prefix queries efficiently and regular-expression queries by
//! scanning the range of the pattern's literal prefix (the behaviour the
//! paper describes in Section 6).

use std::sync::Arc;

use spgist_core::RowId;
use spgist_storage::{BufferPool, Codec, PageId, StorageError, StorageResult};

use spgist_indexes::query::regex_matches;

/// Serialized size above which a node is split.  Leaves some slack below the
/// 8 KiB page so the updated node always fits back into its page.
const NODE_CAPACITY: usize = 7_600;

/// A key stored in the tree: an arbitrary byte string (strings are indexed by
/// their UTF-8 bytes, which preserves lexicographic order for ASCII data).
pub type Key = Vec<u8>;

#[derive(Debug, Clone)]
enum BNode {
    Internal {
        /// `keys[i]` separates `children[i]` (keys < `keys[i]`) from
        /// `children[i + 1]` (keys ≥ `keys[i]`).
        keys: Vec<Key>,
        children: Vec<PageId>,
    },
    Leaf {
        items: Vec<(Key, RowId)>,
        next: Option<PageId>,
    },
}

const TAG_INTERNAL: u8 = 0;
const TAG_LEAF: u8 = 1;

impl BNode {
    fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(256);
        match self {
            BNode::Internal { keys, children } => {
                out.push(TAG_INTERNAL);
                (keys.len() as u32).encode(&mut out);
                for key in keys {
                    (key.len() as u32).encode(&mut out);
                    out.extend_from_slice(key);
                }
                (children.len() as u32).encode(&mut out);
                for child in children {
                    child.encode(&mut out);
                }
            }
            BNode::Leaf { items, next } => {
                out.push(TAG_LEAF);
                (items.len() as u32).encode(&mut out);
                for (key, row) in items {
                    (key.len() as u32).encode(&mut out);
                    out.extend_from_slice(key);
                    row.encode(&mut out);
                }
                next.encode(&mut out);
            }
        }
        out
    }

    fn decode(bytes: &[u8]) -> StorageResult<Self> {
        let mut buf = bytes;
        let tag = u8::decode(&mut buf)?;
        match tag {
            TAG_INTERNAL => {
                let n = u32::decode(&mut buf)? as usize;
                let mut keys = Vec::with_capacity(n);
                for _ in 0..n {
                    let len = u32::decode(&mut buf)? as usize;
                    if buf.len() < len {
                        return Err(StorageError::Decode("truncated b-tree key".into()));
                    }
                    keys.push(buf[..len].to_vec());
                    buf = &buf[len..];
                }
                let c = u32::decode(&mut buf)? as usize;
                let mut children = Vec::with_capacity(c);
                for _ in 0..c {
                    children.push(PageId::decode(&mut buf)?);
                }
                Ok(BNode::Internal { keys, children })
            }
            TAG_LEAF => {
                let n = u32::decode(&mut buf)? as usize;
                let mut items = Vec::with_capacity(n);
                for _ in 0..n {
                    let len = u32::decode(&mut buf)? as usize;
                    if buf.len() < len {
                        return Err(StorageError::Decode("truncated b-tree item".into()));
                    }
                    let key = buf[..len].to_vec();
                    buf = &buf[len..];
                    let row = RowId::decode(&mut buf)?;
                    items.push((key, row));
                }
                let next = Option::<PageId>::decode(&mut buf)?;
                Ok(BNode::Leaf { items, next })
            }
            other => Err(StorageError::Decode(format!(
                "unknown b-tree node tag {other}"
            ))),
        }
    }

    fn byte_size(&self) -> usize {
        self.encode().len()
    }
}

/// Statistics of a B⁺-tree (for the size and height figures).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct BTreeStats {
    /// Tree height in nodes; equals the height in pages because every node
    /// occupies one page.
    pub height: u32,
    /// Number of pages (nodes).
    pub pages: u64,
    /// Total size in bytes.
    pub size_bytes: u64,
    /// Number of stored items.
    pub items: u64,
}

/// A disk-based B⁺-tree mapping byte-string keys to row ids.
pub struct BPlusTree {
    pool: Arc<BufferPool>,
    root: PageId,
    pages: u64,
    items: u64,
}

impl BPlusTree {
    /// Creates an empty tree on `pool`.
    pub fn create(pool: Arc<BufferPool>) -> StorageResult<Self> {
        let root = pool.allocate_page()?;
        let node = BNode::Leaf {
            items: Vec::new(),
            next: None,
        };
        pool.with_page_mut(root, |p| p.insert(&node.encode()))??;
        Ok(BPlusTree {
            pool,
            root,
            pages: 1,
            items: 0,
        })
    }

    fn read(&self, page: PageId) -> StorageResult<BNode> {
        self.pool
            .with_page(page, |p| p.get(0).map(BNode::decode))??
    }

    fn write(&self, page: PageId, node: &BNode) -> StorageResult<()> {
        let bytes = node.encode();
        let ok = self.pool.with_page_mut(page, |p| p.update(0, &bytes))??;
        if !ok {
            return Err(StorageError::Corrupt(
                "b-tree node exceeded its page; capacity check missed a split".into(),
            ));
        }
        Ok(())
    }

    fn alloc(&mut self, node: &BNode) -> StorageResult<PageId> {
        let page = self.pool.allocate_page()?;
        self.pool
            .with_page_mut(page, |p| p.insert(&node.encode()))??;
        self.pages += 1;
        Ok(page)
    }

    /// Inserts `(key, row)`.
    pub fn insert(&mut self, key: &[u8], row: RowId) -> StorageResult<()> {
        if let Some((sep, right)) = self.insert_rec(self.root, key, row)? {
            // Grow the tree: new root above the old one.
            let old_root = self.root;
            let new_root = self.alloc(&BNode::Internal {
                keys: vec![sep],
                children: vec![old_root, right],
            })?;
            self.root = new_root;
        }
        self.items += 1;
        Ok(())
    }

    /// Inserts a UTF-8 string key.
    pub fn insert_str(&mut self, key: &str, row: RowId) -> StorageResult<()> {
        self.insert(key.as_bytes(), row)
    }

    fn insert_rec(
        &mut self,
        page: PageId,
        key: &[u8],
        row: RowId,
    ) -> StorageResult<Option<(Key, PageId)>> {
        let node = self.read(page)?;
        match node {
            BNode::Leaf { mut items, next } => {
                let pos = items.partition_point(|(k, _)| k.as_slice() <= key);
                items.insert(pos, (key.to_vec(), row));
                let node = BNode::Leaf { items, next };
                if node.byte_size() <= NODE_CAPACITY {
                    self.write(page, &node)?;
                    return Ok(None);
                }
                // Split the leaf in half; the right half moves to a new page.
                let BNode::Leaf { mut items, next } = node else {
                    unreachable!()
                };
                let mid = items.len() / 2;
                let right_items = items.split_off(mid);
                let sep = right_items[0].0.clone();
                let right_page = self.alloc(&BNode::Leaf {
                    items: right_items,
                    next,
                })?;
                self.write(
                    page,
                    &BNode::Leaf {
                        items,
                        next: Some(right_page),
                    },
                )?;
                Ok(Some((sep, right_page)))
            }
            BNode::Internal {
                mut keys,
                mut children,
            } => {
                let child_idx = keys.partition_point(|k| k.as_slice() <= key);
                let child = children[child_idx];
                let Some((sep, right)) = self.insert_rec(child, key, row)? else {
                    return Ok(None);
                };
                keys.insert(child_idx, sep);
                children.insert(child_idx + 1, right);
                let node = BNode::Internal { keys, children };
                if node.byte_size() <= NODE_CAPACITY {
                    self.write(page, &node)?;
                    return Ok(None);
                }
                let BNode::Internal {
                    mut keys,
                    mut children,
                } = node
                else {
                    unreachable!()
                };
                let mid = keys.len() / 2;
                let sep_up = keys[mid].clone();
                let right_keys = keys.split_off(mid + 1);
                keys.pop(); // `sep_up` moves up, not into either half.
                let right_children = children.split_off(mid + 1);
                let right_page = self.alloc(&BNode::Internal {
                    keys: right_keys,
                    children: right_children,
                })?;
                self.write(page, &BNode::Internal { keys, children })?;
                Ok(Some((sep_up, right_page)))
            }
        }
    }

    fn leaf_for(&self, key: &[u8]) -> StorageResult<PageId> {
        let mut page = self.root;
        loop {
            match self.read(page)? {
                BNode::Leaf { .. } => return Ok(page),
                BNode::Internal { keys, children } => {
                    // Strict comparison: when the search key equals a
                    // separator, duplicates may straddle the boundary, so
                    // start from the left-most candidate leaf and let the
                    // range scan walk right over the leaf chain.
                    let idx = keys.partition_point(|k| k.as_slice() < key);
                    page = children[idx];
                }
            }
        }
    }

    /// Exact-match search: all rows stored under `key`.
    pub fn search(&self, key: &[u8]) -> StorageResult<Vec<RowId>> {
        let mut rows = Vec::new();
        self.scan_range(
            key,
            |k| k == key,
            |k| k > key,
            |k, row| {
                if k == key {
                    rows.push(row);
                }
            },
        )?;
        Ok(rows)
    }

    /// Exact-match search for a string key.
    pub fn search_str(&self, key: &str) -> StorageResult<Vec<RowId>> {
        self.search(key.as_bytes())
    }

    /// Prefix search: `(key, row)` pairs whose key starts with `prefix`,
    /// answered by a range scan over the chained leaves.
    pub fn prefix_search(&self, prefix: &[u8]) -> StorageResult<Vec<(Key, RowId)>> {
        let mut out = Vec::new();
        self.scan_range(
            prefix,
            |k| k.starts_with(prefix),
            |k| !k.starts_with(prefix) && k > prefix,
            |k, row| {
                if k.starts_with(prefix) {
                    out.push((k.to_vec(), row));
                }
            },
        )?;
        Ok(out)
    }

    /// Regular-expression search with the `?` wildcard.  As in the paper, the
    /// B⁺-tree can only use the literal prefix preceding the first wildcard:
    /// it range-scans that prefix and re-checks the full pattern; a leading
    /// wildcard degenerates to a full leaf scan.
    pub fn regex_search(&self, pattern: &str) -> StorageResult<Vec<(String, RowId)>> {
        let literal_len = pattern
            .bytes()
            .position(|b| b == b'?')
            .unwrap_or(pattern.len());
        let literal = &pattern.as_bytes()[..literal_len];
        let mut out = Vec::new();
        self.scan_range(
            literal,
            |k| k.starts_with(literal),
            |k| !k.starts_with(literal) && k > literal,
            |k, row| {
                let key = String::from_utf8_lossy(k);
                if regex_matches(pattern, &key) {
                    out.push((key.into_owned(), row));
                }
            },
        )?;
        Ok(out)
    }

    /// Scans leaves starting at the one containing `start`, invoking `visit`
    /// for every item until `stop` returns true for an item's key.
    fn scan_range(
        &self,
        start: &[u8],
        _include: impl Fn(&[u8]) -> bool,
        stop: impl Fn(&[u8]) -> bool,
        mut visit: impl FnMut(&[u8], RowId),
    ) -> StorageResult<()> {
        let mut page = self.leaf_for(start)?;
        loop {
            let BNode::Leaf { items, next } = self.read(page)? else {
                return Err(StorageError::Corrupt(
                    "leaf_for returned an internal node".into(),
                ));
            };
            for (k, row) in &items {
                if stop(k.as_slice()) {
                    return Ok(());
                }
                if k.as_slice() >= start {
                    visit(k, *row);
                }
            }
            match next {
                Some(n) => page = n,
                None => return Ok(()),
            }
        }
    }

    /// Scans every leaf item in key order (used by full-scan fallbacks and
    /// tests).
    pub fn scan_all(&self, mut visit: impl FnMut(&[u8], RowId)) -> StorageResult<()> {
        // Find the leftmost leaf.
        let mut page = self.root;
        while let BNode::Internal { children, .. } = self.read(page)? {
            page = children[0];
        }
        loop {
            let BNode::Leaf { items, next } = self.read(page)? else {
                unreachable!("loop above stopped at a leaf");
            };
            for (k, row) in &items {
                visit(k, *row);
            }
            match next {
                Some(n) => page = n,
                None => return Ok(()),
            }
        }
    }

    /// Number of stored items.
    pub fn len(&self) -> u64 {
        self.items
    }

    /// True if the tree holds no items.
    pub fn is_empty(&self) -> bool {
        self.items == 0
    }

    /// Size and height statistics.
    pub fn stats(&self) -> StorageResult<BTreeStats> {
        let mut height = 1;
        let mut page = self.root;
        while let BNode::Internal { children, .. } = self.read(page)? {
            height += 1;
            page = children[0];
        }
        Ok(BTreeStats {
            height,
            pages: self.pages,
            size_bytes: self.pages * spgist_storage::PAGE_SIZE as u64,
            items: self.items,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tree_with(words: &[&str]) -> BPlusTree {
        let mut tree = BPlusTree::create(BufferPool::in_memory()).unwrap();
        for (i, w) in words.iter().enumerate() {
            tree.insert_str(w, i as RowId).unwrap();
        }
        tree
    }

    #[test]
    fn exact_match_on_small_tree() {
        let tree = tree_with(&["star", "space", "spade", "blue", "bit"]);
        assert_eq!(tree.search_str("space").unwrap(), vec![1]);
        assert_eq!(tree.search_str("bit").unwrap(), vec![4]);
        assert!(tree.search_str("spaces").unwrap().is_empty());
    }

    #[test]
    fn duplicate_keys_are_all_found() {
        let mut tree = BPlusTree::create(BufferPool::in_memory()).unwrap();
        for row in 0..10 {
            tree.insert_str("dup", row).unwrap();
        }
        assert_eq!(tree.search_str("dup").unwrap().len(), 10);
    }

    #[test]
    fn prefix_search_matches_scan() {
        let words = ["space", "spade", "span", "star", "take", "spa"];
        let tree = tree_with(&words);
        let hits = tree.prefix_search(b"spa").unwrap();
        let mut keys: Vec<String> = hits
            .iter()
            .map(|(k, _)| String::from_utf8(k.clone()).unwrap())
            .collect();
        keys.sort();
        assert_eq!(keys, vec!["spa", "space", "spade", "span"]);
    }

    #[test]
    fn regex_search_uses_literal_prefix_and_filters() {
        let words = ["water", "wader", "waters", "winter", "matter"];
        let tree = tree_with(&words);
        let hits: Vec<String> = tree
            .regex_search("?at?r")
            .unwrap()
            .into_iter()
            .map(|(k, _)| k)
            .collect();
        // Leading wildcard: full scan, exact-length wildcard match
        // ("matter" has six characters, so only "water" matches).
        let mut hits = hits;
        hits.sort();
        assert_eq!(hits, vec!["water"]);
        let hits: Vec<String> = tree
            .regex_search("wa?er")
            .unwrap()
            .into_iter()
            .map(|(k, _)| k)
            .collect();
        let mut hits = hits;
        hits.sort();
        assert_eq!(hits, vec!["wader", "water"]);
    }

    #[test]
    fn many_keys_split_into_multiple_levels() {
        let mut tree = BPlusTree::create(BufferPool::in_memory()).unwrap();
        let keys: Vec<String> = (0..20_000u32).map(|i| format!("key{i:06}")).collect();
        for (i, k) in keys.iter().enumerate() {
            tree.insert_str(k, i as RowId).unwrap();
        }
        let stats = tree.stats().unwrap();
        assert!(stats.height >= 2, "20k keys cannot fit in one page");
        assert!(stats.pages > 10);
        assert_eq!(stats.items, 20_000);
        // Spot-check exact matches.
        for i in (0..20_000usize).step_by(1777) {
            assert_eq!(tree.search_str(&keys[i]).unwrap(), vec![i as RowId]);
        }
        // Keys come back in sorted order from a full scan.
        let mut scanned = Vec::new();
        tree.scan_all(|k, _| scanned.push(k.to_vec())).unwrap();
        assert_eq!(scanned.len(), 20_000);
        assert!(scanned.windows(2).all(|w| w[0] <= w[1]));
        // Prefix search agrees with a filter.
        let expected = keys.iter().filter(|k| k.starts_with("key0012")).count();
        assert_eq!(tree.prefix_search(b"key0012").unwrap().len(), expected);
    }

    #[test]
    fn unsorted_inserts_still_produce_sorted_leaves() {
        let mut tree = BPlusTree::create(BufferPool::in_memory()).unwrap();
        let mut state = 1u64;
        for i in 0..5000u64 {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            let key = format!("{:016x}", state);
            tree.insert_str(&key, i).unwrap();
        }
        let mut scanned = Vec::new();
        tree.scan_all(|k, _| scanned.push(k.to_vec())).unwrap();
        assert_eq!(scanned.len(), 5000);
        assert!(scanned.windows(2).all(|w| w[0] <= w[1]));
    }

    #[test]
    fn empty_tree_queries() {
        let tree = BPlusTree::create(BufferPool::in_memory()).unwrap();
        assert!(tree.is_empty());
        assert!(tree.search_str("anything").unwrap().is_empty());
        assert!(tree.prefix_search(b"p").unwrap().is_empty());
        assert_eq!(tree.stats().unwrap().height, 1);
    }
}
