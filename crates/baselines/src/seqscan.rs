//! Sequential scan over a heap file.
//!
//! The paper compares the suffix tree's substring search against sequential
//! scanning "because the other access methods do not support the substring
//! match operations" (Section 6, Figure 16).  [`SeqScanTable`] stores strings
//! in a heap file and answers any [`StringQuery`] by scanning every tuple.

use std::sync::Arc;

use spgist_core::RowId;
use spgist_indexes::query::StringQuery;
use spgist_storage::{BufferPool, Codec, HeapFile, StorageResult};

/// A heap-file table of `(string, row id)` tuples queried by full scans.
pub struct SeqScanTable {
    heap: HeapFile,
}

impl SeqScanTable {
    /// Creates an empty table on `pool`.
    pub fn create(pool: Arc<BufferPool>) -> StorageResult<Self> {
        Ok(SeqScanTable {
            heap: HeapFile::create(pool)?,
        })
    }

    /// Appends a tuple.
    pub fn insert(&mut self, value: &str, row: RowId) -> StorageResult<()> {
        let tuple = (value.to_string(), row);
        self.heap.insert(&tuple.to_bytes())?;
        Ok(())
    }

    /// Scans the whole table, returning the row ids whose value satisfies
    /// `query`.
    pub fn scan(&self, query: &StringQuery) -> StorageResult<Vec<RowId>> {
        let mut rows = Vec::new();
        self.heap.scan(|_, bytes| {
            if let Ok((value, row)) = <(String, RowId)>::from_bytes(bytes) {
                if query.matches(&value) {
                    rows.push(row);
                }
            }
        })?;
        Ok(rows)
    }

    /// Substring search by full scan (the Figure 16 baseline).
    pub fn substring(&self, needle: &str) -> StorageResult<Vec<RowId>> {
        self.scan(&StringQuery::Substring(needle.to_string()))
    }

    /// Number of tuples in the table.
    pub fn len(&self) -> u64 {
        self.heap.record_count()
    }

    /// True if the table is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Number of heap pages.
    pub fn page_count(&self) -> usize {
        self.heap.page_count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn table_with(words: &[&str]) -> SeqScanTable {
        let mut table = SeqScanTable::create(BufferPool::in_memory()).unwrap();
        for (i, w) in words.iter().enumerate() {
            table.insert(w, i as RowId).unwrap();
        }
        table
    }

    #[test]
    fn substring_scan_matches_contains() {
        let words = ["database", "partition", "tree", "substring"];
        let table = table_with(&words);
        assert_eq!(table.substring("t").unwrap(), vec![0, 1, 2, 3]);
        assert_eq!(table.substring("base").unwrap(), vec![0]);
        assert!(table.substring("zzz").unwrap().is_empty());
    }

    #[test]
    fn other_queries_work_by_scan_too() {
        let table = table_with(&["star", "space", "spade"]);
        assert_eq!(
            table.scan(&StringQuery::Equals("space".into())).unwrap(),
            vec![1]
        );
        assert_eq!(
            table.scan(&StringQuery::Prefix("sp".into())).unwrap(),
            vec![1, 2]
        );
        assert_eq!(
            table.scan(&StringQuery::Regex("spa?e".into())).unwrap(),
            vec![1, 2]
        );
    }

    #[test]
    fn large_table_spans_pages() {
        let mut table = SeqScanTable::create(BufferPool::in_memory()).unwrap();
        for i in 0..5000u64 {
            table.insert(&format!("value-{i:05}"), i).unwrap();
        }
        assert_eq!(table.len(), 5000);
        assert!(table.page_count() > 1);
        assert_eq!(table.substring("value-01234").unwrap(), vec![1234]);
        assert_eq!(table.substring("-0123").unwrap().len(), 10);
    }
}
