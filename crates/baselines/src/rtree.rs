//! A disk-based R-tree (Guttman, quadratic split).
//!
//! This is the baseline spatial index of the paper's point and line-segment
//! experiments (Figures 13–15).  Every node occupies one 8 KiB page; leaf
//! entries store the indexed object's minimum bounding rectangle (a
//! degenerate rectangle for points) and its row id.

use std::sync::Arc;

use spgist_core::RowId;
use spgist_indexes::geom::{Point, Rect, Segment};
use spgist_storage::{BufferPool, Codec, PageId, StorageError, StorageResult};

/// Maximum number of entries per node (fits comfortably in one page:
/// 32 bytes of rectangle + 8 bytes of pointer per entry).
pub const MAX_ENTRIES: usize = 100;
/// Minimum number of entries per node after a split (Guttman recommends
/// 30–50 % of the maximum).
pub const MIN_ENTRIES: usize = 40;

#[derive(Debug, Clone)]
enum RNode {
    Internal { entries: Vec<(Rect, PageId)> },
    Leaf { entries: Vec<(Rect, RowId)> },
}

const TAG_INTERNAL: u8 = 0;
const TAG_LEAF: u8 = 1;

impl RNode {
    fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(64);
        match self {
            RNode::Internal { entries } => {
                out.push(TAG_INTERNAL);
                (entries.len() as u32).encode(&mut out);
                for (rect, child) in entries {
                    rect.encode(&mut out);
                    child.encode(&mut out);
                }
            }
            RNode::Leaf { entries } => {
                out.push(TAG_LEAF);
                (entries.len() as u32).encode(&mut out);
                for (rect, row) in entries {
                    rect.encode(&mut out);
                    row.encode(&mut out);
                }
            }
        }
        out
    }

    fn decode(bytes: &[u8]) -> StorageResult<Self> {
        let mut buf = bytes;
        let tag = u8::decode(&mut buf)?;
        let n = u32::decode(&mut buf)? as usize;
        match tag {
            TAG_INTERNAL => {
                let mut entries = Vec::with_capacity(n);
                for _ in 0..n {
                    entries.push((Rect::decode(&mut buf)?, PageId::decode(&mut buf)?));
                }
                Ok(RNode::Internal { entries })
            }
            TAG_LEAF => {
                let mut entries = Vec::with_capacity(n);
                for _ in 0..n {
                    entries.push((Rect::decode(&mut buf)?, RowId::decode(&mut buf)?));
                }
                Ok(RNode::Leaf { entries })
            }
            other => Err(StorageError::Decode(format!(
                "unknown r-tree node tag {other}"
            ))),
        }
    }
}

/// Statistics of an R-tree.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RTreeStats {
    /// Tree height in nodes (equals height in pages).
    pub height: u32,
    /// Number of pages (nodes).
    pub pages: u64,
    /// Total size in bytes.
    pub size_bytes: u64,
    /// Number of stored entries.
    pub items: u64,
}

/// A disk-based R-tree over rectangles (points and segments are indexed by
/// their MBRs).
pub struct RTree {
    pool: Arc<BufferPool>,
    root: PageId,
    height: u32,
    pages: u64,
    items: u64,
}

impl RTree {
    /// Creates an empty R-tree on `pool`.
    pub fn create(pool: Arc<BufferPool>) -> StorageResult<Self> {
        let root = pool.allocate_page()?;
        let node = RNode::Leaf {
            entries: Vec::new(),
        };
        pool.with_page_mut(root, |p| p.insert(&node.encode()))??;
        Ok(RTree {
            pool,
            root,
            height: 1,
            pages: 1,
            items: 0,
        })
    }

    fn read(&self, page: PageId) -> StorageResult<RNode> {
        self.pool
            .with_page(page, |p| p.get(0).map(RNode::decode))??
    }

    fn write(&self, page: PageId, node: &RNode) -> StorageResult<()> {
        let bytes = node.encode();
        let ok = self.pool.with_page_mut(page, |p| p.update(0, &bytes))??;
        if !ok {
            return Err(StorageError::Corrupt(
                "r-tree node exceeded its page; MAX_ENTRIES is too large".into(),
            ));
        }
        Ok(())
    }

    fn alloc(&mut self, node: &RNode) -> StorageResult<PageId> {
        let page = self.pool.allocate_page()?;
        self.pool
            .with_page_mut(page, |p| p.insert(&node.encode()))??;
        self.pages += 1;
        Ok(page)
    }

    /// Inserts a rectangle pointing at heap row `row`.
    pub fn insert(&mut self, rect: Rect, row: RowId) -> StorageResult<()> {
        if let Some((left_mbr, right_mbr, right_page)) = self.insert_rec(self.root, rect, row)? {
            let old_root = self.root;
            let new_root = self.alloc(&RNode::Internal {
                entries: vec![(left_mbr, old_root), (right_mbr, right_page)],
            })?;
            self.root = new_root;
            self.height += 1;
        }
        self.items += 1;
        Ok(())
    }

    /// Inserts a point (as a degenerate rectangle).
    pub fn insert_point(&mut self, point: Point, row: RowId) -> StorageResult<()> {
        self.insert(Rect::from_points(point, point), row)
    }

    /// Inserts a line segment by its MBR.
    pub fn insert_segment(&mut self, segment: Segment, row: RowId) -> StorageResult<()> {
        self.insert(segment.mbr(), row)
    }

    /// Recursive insert.  Returns `(left MBR, right MBR, right page)` when the
    /// child split and the parent must add an entry.
    fn insert_rec(
        &mut self,
        page: PageId,
        rect: Rect,
        row: RowId,
    ) -> StorageResult<Option<(Rect, Rect, PageId)>> {
        match self.read(page)? {
            RNode::Leaf { mut entries } => {
                entries.push((rect, row));
                if entries.len() <= MAX_ENTRIES {
                    self.write(page, &RNode::Leaf { entries })?;
                    return Ok(None);
                }
                let (left, right) = quadratic_split(entries);
                let left_mbr = mbr_of(&left);
                let right_mbr = mbr_of(&right);
                let right_page = self.alloc(&RNode::Leaf { entries: right })?;
                self.write(page, &RNode::Leaf { entries: left })?;
                Ok(Some((left_mbr, right_mbr, right_page)))
            }
            RNode::Internal { mut entries } => {
                // Guttman ChooseSubtree: least enlargement, ties by area.
                let chosen = entries
                    .iter()
                    .enumerate()
                    .min_by(|(_, (a, _)), (_, (b, _))| {
                        let ea = a.enlargement(&rect);
                        let eb = b.enlargement(&rect);
                        ea.partial_cmp(&eb)
                            .unwrap_or(std::cmp::Ordering::Equal)
                            .then(
                                a.area()
                                    .partial_cmp(&b.area())
                                    .unwrap_or(std::cmp::Ordering::Equal),
                            )
                    })
                    .map(|(i, _)| i)
                    .ok_or_else(|| StorageError::Corrupt("empty internal r-tree node".into()))?;
                let child_page = entries[chosen].1;
                let split = self.insert_rec(child_page, rect, row)?;
                match split {
                    None => {
                        entries[chosen].0 = entries[chosen].0.union(&rect);
                        self.write(page, &RNode::Internal { entries })?;
                        Ok(None)
                    }
                    Some((left_mbr, right_mbr, right_page)) => {
                        entries[chosen] = (left_mbr, child_page);
                        entries.push((right_mbr, right_page));
                        if entries.len() <= MAX_ENTRIES {
                            self.write(page, &RNode::Internal { entries })?;
                            return Ok(None);
                        }
                        let (left, right) = quadratic_split(entries);
                        let left_mbr = mbr_of(&left);
                        let right_mbr = mbr_of(&right);
                        let new_right = self.alloc(&RNode::Internal { entries: right })?;
                        self.write(page, &RNode::Internal { entries: left })?;
                        Ok(Some((left_mbr, right_mbr, new_right)))
                    }
                }
            }
        }
    }

    /// Window query: row ids of entries whose MBR intersects `window`.
    pub fn window(&self, window: Rect) -> StorageResult<Vec<(Rect, RowId)>> {
        let mut out = Vec::new();
        let mut stack = vec![self.root];
        while let Some(page) = stack.pop() {
            match self.read(page)? {
                RNode::Internal { entries } => {
                    for (rect, child) in entries {
                        if rect.intersects(&window) {
                            stack.push(child);
                        }
                    }
                }
                RNode::Leaf { entries } => {
                    for (rect, row) in entries {
                        if rect.intersects(&window) {
                            out.push((rect, row));
                        }
                    }
                }
            }
        }
        Ok(out)
    }

    /// Point-match query: row ids of entries whose MBR equals the degenerate
    /// rectangle of `point` (exact point match for point data).
    pub fn point_match(&self, point: Point) -> StorageResult<Vec<RowId>> {
        let target = Rect::from_points(point, point);
        let mut rows = Vec::new();
        let mut stack = vec![self.root];
        while let Some(page) = stack.pop() {
            match self.read(page)? {
                RNode::Internal { entries } => {
                    for (rect, child) in entries {
                        if rect.contains_point(&point) {
                            stack.push(child);
                        }
                    }
                }
                RNode::Leaf { entries } => {
                    for (rect, row) in entries {
                        if rect == target {
                            rows.push(row);
                        }
                    }
                }
            }
        }
        Ok(rows)
    }

    /// Exact segment match by MBR equality (the stored geometry is the MBR, so
    /// callers holding the original segments re-check if needed).
    pub fn segment_match(&self, segment: Segment) -> StorageResult<Vec<RowId>> {
        let target = segment.mbr();
        let mut rows = Vec::new();
        let mut stack = vec![self.root];
        while let Some(page) = stack.pop() {
            match self.read(page)? {
                RNode::Internal { entries } => {
                    for (rect, child) in entries {
                        if rect.contains_rect(&target) {
                            stack.push(child);
                        }
                    }
                }
                RNode::Leaf { entries } => {
                    for (rect, row) in entries {
                        if rect == target {
                            rows.push(row);
                        }
                    }
                }
            }
        }
        Ok(rows)
    }

    /// Number of stored entries.
    pub fn len(&self) -> u64 {
        self.items
    }

    /// True if the tree holds no entries.
    pub fn is_empty(&self) -> bool {
        self.items == 0
    }

    /// Size and height statistics.
    pub fn stats(&self) -> RTreeStats {
        RTreeStats {
            height: self.height,
            pages: self.pages,
            size_bytes: self.pages * spgist_storage::PAGE_SIZE as u64,
            items: self.items,
        }
    }
}

fn mbr_of<T>(entries: &[(Rect, T)]) -> Rect {
    entries
        .iter()
        .map(|(r, _)| *r)
        .reduce(|a, b| a.union(&b))
        .unwrap_or_default()
}

/// Guttman's quadratic split: pick the pair of entries that would waste the
/// most area together as seeds, then assign the rest by least enlargement,
/// respecting the minimum fill factor.
#[allow(clippy::type_complexity)]
fn quadratic_split<T: Copy>(entries: Vec<(Rect, T)>) -> (Vec<(Rect, T)>, Vec<(Rect, T)>) {
    debug_assert!(entries.len() > 2);
    // PickSeeds.
    let (mut seed_a, mut seed_b, mut worst) = (0, 1, f64::NEG_INFINITY);
    for i in 0..entries.len() {
        for j in (i + 1)..entries.len() {
            let waste = entries[i].0.union(&entries[j].0).area()
                - entries[i].0.area()
                - entries[j].0.area();
            if waste > worst {
                worst = waste;
                seed_a = i;
                seed_b = j;
            }
        }
    }
    let mut left = vec![entries[seed_a]];
    let mut right = vec![entries[seed_b]];
    let mut left_mbr = entries[seed_a].0;
    let mut right_mbr = entries[seed_b].0;
    let remaining: Vec<(Rect, T)> = entries
        .into_iter()
        .enumerate()
        .filter(|(i, _)| *i != seed_a && *i != seed_b)
        .map(|(_, e)| e)
        .collect();
    let total = remaining.len() + 2;
    for (idx, entry) in remaining.iter().enumerate() {
        let left_needs = MIN_ENTRIES.saturating_sub(left.len());
        let right_needs = MIN_ENTRIES.saturating_sub(right.len());
        let left_over = remaining.len() - idx;
        // Force assignment if one side must take all remaining entries to
        // reach the minimum fill.
        if left_needs >= left_over {
            left.push(*entry);
            left_mbr = left_mbr.union(&entry.0);
            continue;
        }
        if right_needs >= left_over {
            right.push(*entry);
            right_mbr = right_mbr.union(&entry.0);
            continue;
        }
        let grow_left = left_mbr.enlargement(&entry.0);
        let grow_right = right_mbr.enlargement(&entry.0);
        if grow_left < grow_right || (grow_left == grow_right && left.len() <= right.len()) {
            left.push(*entry);
            left_mbr = left_mbr.union(&entry.0);
        } else {
            right.push(*entry);
            right_mbr = right_mbr.union(&entry.0);
        }
    }
    debug_assert_eq!(left.len() + right.len(), total);
    (left, right)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lcg(seed: u64) -> impl FnMut() -> f64 {
        let mut state = seed;
        move || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ((state >> 33) as f64 / u32::MAX as f64) * 100.0
        }
    }

    #[test]
    fn point_match_and_window_on_small_tree() {
        let mut tree = RTree::create(BufferPool::in_memory()).unwrap();
        let points = [
            Point::new(10.0, 10.0),
            Point::new(20.0, 80.0),
            Point::new(55.0, 55.0),
            Point::new(90.0, 5.0),
        ];
        for (i, p) in points.iter().enumerate() {
            tree.insert_point(*p, i as RowId).unwrap();
        }
        assert_eq!(tree.point_match(points[2]).unwrap(), vec![2]);
        assert!(tree.point_match(Point::new(1.0, 1.0)).unwrap().is_empty());
        let window = Rect::new(0.0, 0.0, 30.0, 100.0);
        let mut rows: Vec<RowId> = tree
            .window(window)
            .unwrap()
            .into_iter()
            .map(|(_, r)| r)
            .collect();
        rows.sort_unstable();
        assert_eq!(rows, vec![0, 1]);
    }

    #[test]
    fn large_point_set_queries_match_scan() {
        let mut next = lcg(42);
        let points: Vec<Point> = (0..5000).map(|_| Point::new(next(), next())).collect();
        let mut tree = RTree::create(BufferPool::in_memory()).unwrap();
        for (i, p) in points.iter().enumerate() {
            tree.insert_point(*p, i as RowId).unwrap();
        }
        let stats = tree.stats();
        assert!(stats.height >= 2);
        assert_eq!(stats.items, 5000);

        for (i, p) in points.iter().enumerate().step_by(733) {
            assert!(tree.point_match(*p).unwrap().contains(&(i as RowId)));
        }
        let window = Rect::new(20.0, 30.0, 45.0, 70.0);
        let expected = points.iter().filter(|p| window.contains_point(p)).count();
        assert_eq!(tree.window(window).unwrap().len(), expected);
    }

    #[test]
    fn segments_window_query_uses_mbrs() {
        let mut next = lcg(7);
        let mut tree = RTree::create(BufferPool::in_memory()).unwrap();
        let mut segments = Vec::new();
        for i in 0..2000u64 {
            let a = Point::new(next(), next());
            let b = Point::new(
                (a.x + next() / 20.0).min(100.0),
                (a.y + next() / 20.0).min(100.0),
            );
            let s = Segment::new(a, b);
            segments.push(s);
            tree.insert_segment(s, i).unwrap();
        }
        let window = Rect::new(40.0, 40.0, 60.0, 60.0);
        let got = tree.window(window).unwrap().len();
        let expected_mbr = segments
            .iter()
            .filter(|s| s.mbr().intersects(&window))
            .count();
        assert_eq!(got, expected_mbr, "R-tree reports MBR intersections");
        // Exact segment match.
        assert_eq!(tree.segment_match(segments[100]).unwrap(), vec![100]);
    }

    #[test]
    fn quadratic_split_respects_minimum_fill() {
        let mut next = lcg(3);
        let entries: Vec<(Rect, u64)> = (0..(MAX_ENTRIES as u64 + 1))
            .map(|i| {
                let p = Point::new(next(), next());
                (Rect::from_points(p, p), i)
            })
            .collect();
        let (left, right) = quadratic_split(entries);
        assert!(left.len() >= MIN_ENTRIES);
        assert!(right.len() >= MIN_ENTRIES);
        assert_eq!(left.len() + right.len(), MAX_ENTRIES + 1);
    }

    #[test]
    fn duplicate_points_all_reported() {
        let mut tree = RTree::create(BufferPool::in_memory()).unwrap();
        let p = Point::new(42.0, 24.0);
        for row in 0..7 {
            tree.insert_point(p, row).unwrap();
        }
        assert_eq!(tree.point_match(p).unwrap().len(), 7);
    }

    #[test]
    fn empty_tree_queries() {
        let tree = RTree::create(BufferPool::in_memory()).unwrap();
        assert!(tree.is_empty());
        assert!(tree
            .window(Rect::new(0.0, 0.0, 100.0, 100.0))
            .unwrap()
            .is_empty());
        assert_eq!(tree.stats().height, 1);
    }
}
