//! Query predicates of the operators the paper registers for its indexes
//! (Tables 3 and 4).

use crate::geom::{Point, Rect, Segment};

/// Query predicates over string keys (trie and suffix-tree operator classes).
#[derive(Debug, Clone, PartialEq)]
pub enum StringQuery {
    /// `=` — exact match.
    Equals(String),
    /// `#=` — the key starts with the given prefix.
    Prefix(String),
    /// `?=` — regular-expression match with the single-character wildcard
    /// `?` (the only wildcard the paper supports).
    Regex(String),
    /// `@=` — the key contains the given substring (suffix-tree operator).
    Substring(String),
    /// `@@` — nearest-neighbour anchor; used only to order results by the
    /// Hamming-style distance to this string.
    Nearest(String),
}

impl StringQuery {
    /// Does `key` satisfy this predicate?  This is the straight-line
    /// re-check used on leaf items and by the sequential-scan baseline.
    pub fn matches(&self, key: &str) -> bool {
        match self {
            StringQuery::Equals(s) => key == s,
            StringQuery::Prefix(p) => key.starts_with(p.as_str()),
            StringQuery::Regex(pattern) => regex_matches(pattern, key),
            StringQuery::Substring(s) => key.contains(s.as_str()),
            StringQuery::Nearest(_) => true,
        }
    }
}

/// Matches `key` against a pattern whose only metacharacter is `?`
/// (exactly one arbitrary character), as in the paper's Section 4.2.
pub fn regex_matches(pattern: &str, key: &str) -> bool {
    let p = pattern.as_bytes();
    let k = key.as_bytes();
    p.len() == k.len() && p.iter().zip(k).all(|(pc, kc)| *pc == b'?' || pc == kc)
}

/// Hamming-style edit distance used by the trie's NN operator: positionwise
/// mismatches plus the length difference.
pub fn hamming_distance(a: &str, b: &str) -> f64 {
    let ab = a.as_bytes();
    let bb = b.as_bytes();
    let common = ab.len().min(bb.len());
    let mismatches = ab[..common]
        .iter()
        .zip(&bb[..common])
        .filter(|(x, y)| x != y)
        .count();
    (mismatches + (ab.len().max(bb.len()) - common)) as f64
}

/// Query predicates over point keys (kd-tree and point-quadtree operator
/// classes).
#[derive(Debug, Clone, PartialEq)]
pub enum PointQuery {
    /// `@` — exact point match.
    Equals(Point),
    /// `^` — the point lies inside the given box (range query).
    InRect(Rect),
    /// `@@` — nearest-neighbour anchor (Euclidean distance).
    Nearest(Point),
}

impl PointQuery {
    /// Does `point` satisfy this predicate?
    pub fn matches(&self, point: &Point) -> bool {
        match self {
            PointQuery::Equals(p) => point == p,
            PointQuery::InRect(r) => r.contains_point(point),
            PointQuery::Nearest(_) => true,
        }
    }
}

/// Query predicates over line-segment keys (PMR-quadtree operator class).
#[derive(Debug, Clone, PartialEq)]
pub enum SegmentQuery {
    /// Exact segment match.
    Equals(Segment),
    /// Window query: the segment intersects the given rectangle.
    InRect(Rect),
    /// `@@` — nearest-neighbour anchor: order segments by their minimum
    /// Euclidean distance to this point.
    Nearest(Point),
}

impl SegmentQuery {
    /// Does `segment` satisfy this predicate?
    pub fn matches(&self, segment: &Segment) -> bool {
        match self {
            SegmentQuery::Equals(s) => segment == s,
            SegmentQuery::InRect(r) => segment.intersects_rect(r),
            SegmentQuery::Nearest(_) => true,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn string_query_matches() {
        assert!(StringQuery::Equals("spade".into()).matches("spade"));
        assert!(!StringQuery::Equals("spade".into()).matches("spades"));
        assert!(StringQuery::Prefix("spa".into()).matches("spade"));
        assert!(!StringQuery::Prefix("spz".into()).matches("spade"));
        assert!(StringQuery::Substring("pad".into()).matches("spade"));
        assert!(!StringQuery::Substring("dap".into()).matches("spade"));
        assert!(StringQuery::Nearest("x".into()).matches("anything"));
    }

    #[test]
    fn regex_wildcard_semantics() {
        assert!(regex_matches("?at?r", "water"));
        assert!(regex_matches("?????", "water"));
        assert!(!regex_matches("?at?r", "wader"));
        assert!(
            !regex_matches("?at?r", "waters"),
            "length must match exactly"
        );
        assert!(regex_matches("", ""));
        assert!(!regex_matches("?", ""));
    }

    #[test]
    fn hamming_distance_counts_mismatches_and_length() {
        assert_eq!(hamming_distance("abc", "abc"), 0.0);
        assert_eq!(hamming_distance("abc", "abd"), 1.0);
        assert_eq!(hamming_distance("abc", "abcd"), 1.0);
        assert_eq!(hamming_distance("", "xyz"), 3.0);
        assert_eq!(hamming_distance("kitten", "sitten"), 1.0);
    }

    #[test]
    fn point_query_matches() {
        let p = Point::new(1.0, 2.0);
        assert!(PointQuery::Equals(p).matches(&p));
        assert!(!PointQuery::Equals(p).matches(&Point::new(1.0, 2.1)));
        assert!(PointQuery::InRect(Rect::new(0.0, 0.0, 5.0, 5.0)).matches(&p));
        assert!(!PointQuery::InRect(Rect::new(2.0, 2.0, 5.0, 5.0)).matches(&p));
    }

    #[test]
    fn segment_query_matches() {
        let s = Segment::new(Point::new(0.0, 0.0), Point::new(2.0, 2.0));
        assert!(SegmentQuery::Equals(s).matches(&s));
        assert!(SegmentQuery::InRect(Rect::new(1.0, 1.0, 3.0, 3.0)).matches(&s));
        assert!(!SegmentQuery::InRect(Rect::new(5.0, 5.0, 6.0, 6.0)).matches(&s));
        assert!(SegmentQuery::Nearest(Point::new(9.0, 9.0)).matches(&s));
    }
}
