//! SP-GiST index instantiations.
//!
//! The paper realizes five disk-based space-partitioning indexes through the
//! SP-GiST framework; this crate contains their external methods
//! (`consistent`, `picksplit`, `choose`, NN distance functions) and a
//! high-level wrapper per index exposing the operators registered for it in
//! PostgreSQL (paper Tables 4–6):
//!
//! | Index | Wrapper | Operators |
//! |---|---|---|
//! | patricia trie | [`trie::TrieIndex`] | `=` equality, `#=` prefix, `?=` regular expression, `@@` NN (Hamming) |
//! | suffix tree | [`suffix::SuffixTreeIndex`] | `@=` substring match |
//! | kd-tree | [`kdtree::KdTreeIndex`] | `@` point equality, `^` range (box), `@@` NN (Euclidean) |
//! | point quadtree | [`quadtree::PointQuadtreeIndex`] | `@`, `^`, `@@` |
//! | PMR quadtree | [`pmr::PmrQuadtreeIndex`] | segment equality, window (range) query |
//!
//! Everything is generic over the storage substrate: pass any
//! [`spgist_storage::BufferPool`] (in-memory or file-backed).
//!
//! All five wrappers implement the unified [`spindex::SpIndex`] trait
//! (`open` / `insert` / `delete` / `execute` / `cursor` / `len` / `stats` /
//! `repack`), so generic code — the `spgist-catalog` executor, benchmarks,
//! tests — is written once against the trait; the per-index inherent
//! methods are thin operator sugar over it.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod geom;
pub mod kdtree;
pub mod pmr;
pub mod quadtree;
pub mod query;
pub mod spindex;
pub mod suffix;
pub mod trie;

pub use geom::{Point, Rect, Segment};
pub use kdtree::{KdTreeIndex, KdTreeOps};
pub use pmr::{PmrQuadtreeIndex, PmrQuadtreeOps};
pub use quadtree::{PointQuadtreeIndex, PointQuadtreeOps};
pub use query::{PointQuery, SegmentQuery, StringQuery};
pub use spindex::{Cursor, SpGistBacked, SpIndex};
pub use suffix::SuffixTreeIndex;
pub use trie::{TrieIndex, TrieOps};
