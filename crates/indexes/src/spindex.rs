//! The unified index interface: one typed trait served by all five
//! space-partitioning indexes.
//!
//! The paper's thesis is that one extensible framework can serve many
//! space-partitioning indexes; [`SpIndex`] is that idea carried up to the
//! wrapper layer.  Every instantiation — patricia trie, suffix tree,
//! kd-tree, point quadtree, PMR quadtree — exposes the same typed surface
//! (`open` / `insert` / `delete` / `execute` / `cursor` / `len` / `stats` /
//! `repack`), so generic code (the `spgist-catalog` executor, benchmarks,
//! tests) is written once against the trait instead of five times against
//! divergent wrappers.
//!
//! The implementation collapses the former per-wrapper boilerplate into a
//! single blanket impl over [`SpGistBacked`]: a wrapper only states how to
//! reach its [`SpGistTree`] and overrides the few hooks where its semantics
//! differ (the suffix tree expands words into suffixes; replicating indexes
//! deduplicate result rows).
//!
//! **Shared access.** Every index is usable from many threads through a
//! plain `&self`: the backing [`SpGistTree`] is itself concurrent — writers
//! crab per-page latches down the tree and run in parallel on disjoint
//! subtrees, while queries take *no* latch at all.  A returned [`Cursor`]
//! pins a reclamation epoch for its lifetime: every record it can reach
//! stays readable while concurrent writers proceed, and writers never wait
//! for cursors.  Reads are snapshot-ish, not serializable — a long scan
//! always sees a valid tree but may observe some effects of writes that
//! committed after it started; a cursor opened after a write sees it.
//! Statement-level atomicity across several indexes of one table is the
//! catalog layer's job, not the wrapper's.
//!
//! Query results stream through a [`Cursor`] — an iterator over
//! `StorageResult<(key, row)>` — rather than a materialized `Vec`, so an
//! executor can stop pulling early.

use std::collections::HashSet;
use std::sync::Arc;

use spgist_core::{NnIter, RowId, SearchCursor, SpGistConfig, SpGistOps, SpGistTree, TreeStats};
use spgist_storage::{BufferPool, PageId, StorageResult};

/// A streaming query result: an iterator of `(key, row)` items.
///
/// Page reads can fail mid-scan, so every item is a [`StorageResult`].
/// Cursors over replicating indexes (PMR quadtree, suffix tree) deduplicate
/// by row id while streaming.
pub struct Cursor<'c, K> {
    inner: Box<dyn Iterator<Item = StorageResult<(K, RowId)>> + 'c>,
    seen: Option<HashSet<RowId>>,
}

impl<'c, K> Cursor<'c, K> {
    /// Wraps a raw item iterator.
    pub fn new(inner: impl Iterator<Item = StorageResult<(K, RowId)>> + 'c) -> Self {
        Cursor {
            inner: Box::new(inner),
            seen: None,
        }
    }

    /// Wraps a raw item iterator, reporting each row id at most once (for
    /// indexes that replicate one logical item across partitions).
    pub fn deduplicated(inner: impl Iterator<Item = StorageResult<(K, RowId)>> + 'c) -> Self {
        Cursor {
            inner: Box::new(inner),
            seen: Some(HashSet::new()),
        }
    }

    /// Drains the cursor into the row ids of every match.
    pub fn rows(self) -> StorageResult<Vec<RowId>> {
        self.map(|item| item.map(|(_, row)| row)).collect()
    }
}

impl<K> Iterator for Cursor<'_, K> {
    type Item = StorageResult<(K, RowId)>;

    fn next(&mut self) -> Option<Self::Item> {
        loop {
            let item = self.inner.next()?;
            if let (Ok((_, row)), Some(seen)) = (&item, &mut self.seen) {
                if !seen.insert(*row) {
                    continue;
                }
            }
            return Some(item);
        }
    }
}

impl<K> std::fmt::Debug for Cursor<'_, K> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Cursor")
            .field("deduplicating", &self.seen.is_some())
            .finish()
    }
}

/// The unified interface of every space-partitioning index.
///
/// All five wrappers implement this trait (through the [`SpGistBacked`]
/// blanket impl), so one generic function can build, maintain and query any
/// of them.  Every method takes `&self`: the backing tree crabs page
/// latches for updates and serves queries latch-free under epoch
/// protection, so an index shared behind an `Arc` serves concurrent
/// readers and writers without blocking reads.
///
/// ```
/// use spgist_indexes::{SpIndex, TrieIndex, StringQuery};
/// use spgist_storage::BufferPool;
///
/// fn count_matches<I: SpIndex>(index: &I, query: &I::Query) -> u64 {
///     index.cursor(query).unwrap().count() as u64
/// }
///
/// let trie = TrieIndex::open(BufferPool::in_memory()).unwrap();
/// trie.insert("space", 1).unwrap();
/// trie.insert("spade", 2).unwrap();
/// assert_eq!(count_matches(&trie, &StringQuery::Prefix("sp".into())), 2);
/// ```
pub trait SpIndex {
    /// Key type stored by the index (the paper's *KeyType*).
    type Key: Clone;
    /// Query predicate type of the operators registered for the index.
    type Query: Clone;

    /// Opens a fresh index with default parameters on `pool`.
    fn open(pool: Arc<BufferPool>) -> StorageResult<Self>
    where
        Self: Sized;

    /// Inserts one `(key, row)` item (page latches crabbed internally).
    fn insert(&self, key: Self::Key, row: RowId) -> StorageResult<()>;

    /// Inserts a batch of `(key, row)` items — the DML-statement form of
    /// [`SpIndex::insert`].  The batch is *not* atomic with respect to
    /// concurrent cursors (readers are never blocked); callers needing
    /// statement atomicity serialize at a higher layer, as the catalog's
    /// per-table DML lock does.
    fn insert_batch(&self, items: Vec<(Self::Key, RowId)>) -> StorageResult<()>;

    /// Builds the index from the full `(key, row)` set in one pass — the
    /// paper's `spgistbuild` (Section 4) carried to the wrapper layer.
    ///
    /// The backing tree's [`spgist_core::BulkBuilder`] partitions the whole
    /// set top-down with `picksplit` and writes each node exactly once;
    /// wrappers with expanded representations translate first (the suffix
    /// tree turns words into suffixes).  Requires an **empty** index and
    /// excludes other writers for the whole build.  Returns the
    /// [`TreeStats`] accumulated during the build.
    ///
    /// Query results are identical to loading the same items through
    /// [`SpIndex::insert`]; the tree shape is usually better (median splits
    /// for data-driven classes, full decomposition for split-once classes).
    fn bulk_build(&self, items: Vec<(Self::Key, RowId)>) -> StorageResult<TreeStats>;

    /// Deletes one `(key, row)` item; returns whether something was removed
    /// (other writers are excluded internally; readers proceed).
    fn delete(&self, key: &Self::Key, row: RowId) -> StorageResult<bool>;

    /// Runs `query`, returning a streaming [`Cursor`] over the matches.
    ///
    /// The cursor takes no latch: it pins a reclamation epoch on the
    /// backing tree for its lifetime, so concurrent cursors and writers all
    /// proceed.  A live cursor only delays *physical reclamation* of
    /// records retired after it opened, so drop (or fully drain) cursors
    /// reasonably promptly to bound that backlog.
    fn cursor(&self, query: &Self::Query) -> StorageResult<Cursor<'_, Self::Key>>;

    /// Runs `query` as an *ordered* scan: a streaming [`Cursor`] that yields
    /// items in non-decreasing distance from the query's anchor, driven by
    /// the incremental NN search ([`spgist_core::NnIter`]).  Each pull does
    /// just enough work to report the next-closest item, so `LIMIT k` stops
    /// after `k` heap probes.  Returns `None` for indexes that register no
    /// distance functions (their operator classes have no `@@` operator).
    fn ordered_cursor(&self, query: &Self::Query) -> StorageResult<Option<Cursor<'_, Self::Key>>>;

    /// Runs `query`, materializing every match (the eager counterpart of
    /// [`SpIndex::cursor`]).
    fn execute(&self, query: &Self::Query) -> StorageResult<Vec<(Self::Key, RowId)>> {
        self.cursor(query)?.collect()
    }

    /// Number of logical items in the index.
    fn len(&self) -> u64;

    /// True if the index holds no items.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Structural statistics (heights, pages, size) gathered from the
    /// backing tree.
    fn stats(&self) -> StorageResult<TreeStats>;

    /// The meta page identifying the backing tree on its pager — one half of
    /// the index's durable identity (persist it, plus
    /// [`SpIndex::owned_pages`], and the index reopens from disk).
    fn meta_page(&self) -> PageId;

    /// The pages the backing tree owns, in allocation order.  The durable
    /// catalog persists this list so a reopened index keeps full statistics
    /// and can free its pages on `DROP INDEX`.
    fn owned_pages(&self) -> Vec<PageId>;

    /// The interface parameters the backing tree runs with (persisted by the
    /// durable catalog so reopening round-trips the configuration).
    fn config(&self) -> SpGistConfig;

    /// Re-clusters the backing tree into fresh pages to minimize page
    /// height (see [`SpGistTree::repack`]); other writers are excluded for
    /// the whole rewrite, while readers keep traversing the old layout
    /// until the root flips.
    fn repack(&self) -> StorageResult<()>;

    /// Consumes the index and releases every page it owns back to the
    /// pager's free list (`DROP INDEX`).
    fn destroy(self) -> StorageResult<()>
    where
        Self: Sized;
}

/// Glue between a concrete wrapper and the [`SpIndex`] blanket impl.
///
/// A wrapper states how to reach its backing [`SpGistTree`] (held in an
/// `Arc`, since cursors keep their own handle) and overrides only the hooks
/// where its semantics differ from plain tree delegation.  Everything else
/// — cursor construction, statistics, repacking — is written once in the
/// blanket impl.
pub trait SpGistBacked {
    /// External methods of the backing tree.
    type Ops: SpGistOps;

    /// Whether one logical item may surface several times in a raw tree
    /// search (replicating indexes); cursors then deduplicate by row id.
    const DEDUPE_ROWS: bool = false;

    /// Whether the instantiation registers NN distance functions
    /// (`inner_distance` / `leaf_distance`), making ordered scans through
    /// [`SpIndex::ordered_cursor`] available (the `@@` operator).
    const ORDERED_SCANS: bool = false;

    /// The backing generalized tree.  The tree is internally concurrent
    /// (crabbing writers, epoch-protected readers), so no external latch
    /// wraps it.
    fn backing(&self) -> &Arc<SpGistTree<Self::Ops>>;

    /// Consumes the wrapper, returning the backing tree handle (for
    /// [`SpIndex::destroy`]).
    fn into_backing_tree(self) -> Arc<SpGistTree<Self::Ops>>
    where
        Self: Sized;

    /// Opens a fresh index with this wrapper's default parameters.
    fn open_default(pool: Arc<BufferPool>) -> StorageResult<Self>
    where
        Self: Sized;

    /// Inserts one logical item.  The default inserts the key as-is; the
    /// suffix tree overrides it to insert every suffix of the word.
    fn insert_key(&self, key: <Self::Ops as SpGistOps>::Key, row: RowId) -> StorageResult<()> {
        self.backing().insert(key, row)
    }

    /// Deletes one logical item.  The default removes a single physical
    /// occurrence; replicating or expanding indexes override it.
    fn delete_key(&self, key: &<Self::Ops as SpGistOps>::Key, row: RowId) -> StorageResult<bool> {
        self.backing().delete(key, row)
    }

    /// Inserts a batch of logical items.  The default loops
    /// [`SpGistTree::insert`]; expanding indexes override it (the suffix
    /// tree inserts every suffix of every word).
    fn insert_batch_keys(
        &self,
        items: Vec<(<Self::Ops as SpGistOps>::Key, RowId)>,
    ) -> StorageResult<()> {
        let tree = self.backing();
        for (key, row) in items {
            tree.insert(key, row)?;
        }
        Ok(())
    }

    /// Bulk-builds the backing tree from the full logical item set.  The
    /// default hands the items to [`SpGistTree::bulk_build`] unchanged;
    /// expanding indexes override it to translate the representation first.
    fn bulk_build_keys(
        &self,
        items: Vec<(<Self::Ops as SpGistOps>::Key, RowId)>,
    ) -> StorageResult<TreeStats> {
        self.backing().bulk_build(items)
    }

    /// Rewrites a query into the form the backing tree executes (the suffix
    /// tree answers substring queries as prefix queries over suffixes).
    fn translate_query(
        &self,
        query: &<Self::Ops as SpGistOps>::Query,
    ) -> <Self::Ops as SpGistOps>::Query {
        query.clone()
    }

    /// Number of logical items (the suffix tree counts indexed words, not
    /// stored suffixes).
    fn item_count(&self) -> u64 {
        self.backing().len()
    }
}

impl<T: SpGistBacked> SpIndex for T {
    type Key = <T::Ops as SpGistOps>::Key;
    type Query = <T::Ops as SpGistOps>::Query;

    fn open(pool: Arc<BufferPool>) -> StorageResult<Self> {
        T::open_default(pool)
    }

    fn insert(&self, key: Self::Key, row: RowId) -> StorageResult<()> {
        self.insert_key(key, row)
    }

    fn insert_batch(&self, items: Vec<(Self::Key, RowId)>) -> StorageResult<()> {
        self.insert_batch_keys(items)
    }

    fn bulk_build(&self, items: Vec<(Self::Key, RowId)>) -> StorageResult<TreeStats> {
        self.bulk_build_keys(items)
    }

    fn delete(&self, key: &Self::Key, row: RowId) -> StorageResult<bool> {
        self.delete_key(key, row)
    }

    fn cursor(&self, query: &Self::Query) -> StorageResult<Cursor<'_, Self::Key>> {
        let translated = self.translate_query(query);
        // The cursor carries its own Arc on the tree plus an epoch pin; it
        // holds no latch, so writers proceed while it is open.
        let inner = SearchCursor::over(Arc::clone(self.backing()), translated);
        Ok(if T::DEDUPE_ROWS {
            Cursor::deduplicated(inner)
        } else {
            Cursor::new(inner)
        })
    }

    fn ordered_cursor(&self, query: &Self::Query) -> StorageResult<Option<Cursor<'_, Self::Key>>> {
        if !T::ORDERED_SCANS {
            return Ok(None);
        }
        let translated = self.translate_query(query);
        let inner = NnIter::over(Arc::clone(self.backing()), translated)
            .map(|item| item.map(|(key, row, _)| (key, row)));
        Ok(Some(if T::DEDUPE_ROWS {
            Cursor::deduplicated(inner)
        } else {
            Cursor::new(inner)
        }))
    }

    fn len(&self) -> u64 {
        self.item_count()
    }

    fn stats(&self) -> StorageResult<TreeStats> {
        self.backing().stats()
    }

    fn meta_page(&self) -> PageId {
        self.backing().meta_page()
    }

    fn owned_pages(&self) -> Vec<PageId> {
        self.backing().owned_pages()
    }

    fn config(&self) -> SpGistConfig {
        self.backing().ops().config()
    }

    fn repack(&self) -> StorageResult<()> {
        self.backing().repack()
    }

    fn destroy(self) -> StorageResult<()> {
        // Destruction frees the index's pages, so it must be the sole owner:
        // wait out any cursor still holding a clone of the handle.
        let mut arc = self.into_backing_tree();
        loop {
            match Arc::try_unwrap(arc) {
                Ok(tree) => return tree.destroy(),
                Err(shared) => {
                    arc = shared;
                    std::thread::yield_now();
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::geom::{Point, Rect, Segment};
    use crate::query::{PointQuery, SegmentQuery, StringQuery};
    use crate::{KdTreeIndex, PmrQuadtreeIndex, PointQuadtreeIndex, SuffixTreeIndex, TrieIndex};
    use spgist_storage::BufferPool;

    /// Exercises the whole trait surface through a generic function — the
    /// point of the redesign is that this compiles once for all five
    /// indexes.
    fn exercise<I: SpIndex>(
        index: I,
        items: Vec<(I::Key, RowId)>,
        query: I::Query,
        expected_rows: &[RowId],
    ) {
        assert!(index.is_empty());
        let total = items.len() as u64;
        for (key, row) in &items {
            index.insert(key.clone(), *row).unwrap();
        }
        assert_eq!(index.len(), total);

        // Streaming and eager execution agree.
        let eager = index.execute(&query).unwrap();
        let streamed: Vec<_> = index
            .cursor(&query)
            .unwrap()
            .collect::<StorageResult<_>>()
            .unwrap();
        assert_eq!(eager.len(), streamed.len());
        let mut rows: Vec<RowId> = eager.iter().map(|(_, r)| *r).collect();
        rows.sort_unstable();
        assert_eq!(rows, expected_rows);

        // Stats and repack work uniformly.
        let stats = index.stats().unwrap();
        assert!(stats.items > 0);
        index.repack().unwrap();
        assert_eq!(
            index.cursor(&query).unwrap().rows().unwrap().len(),
            expected_rows.len()
        );

        // Uniform delete: removing the first item makes it unfindable.
        let (key, row) = &items[0];
        assert!(index.delete(key, *row).unwrap());
        assert!(!index.delete(key, *row).unwrap());
        assert_eq!(index.len(), total - 1);
    }

    #[test]
    fn trie_implements_spindex() {
        let index = TrieIndex::open(BufferPool::in_memory()).unwrap();
        exercise(
            index,
            vec![
                ("star".to_string(), 0),
                ("space".to_string(), 1),
                ("spade".to_string(), 2),
            ],
            StringQuery::Prefix("sp".into()),
            &[1, 2],
        );
    }

    #[test]
    fn suffix_tree_implements_spindex() {
        let index = SuffixTreeIndex::open(BufferPool::in_memory()).unwrap();
        exercise(
            index,
            vec![
                ("database".to_string(), 0),
                ("base".to_string(), 1),
                ("tree".to_string(), 2),
            ],
            StringQuery::Substring("base".into()),
            &[0, 1],
        );
    }

    #[test]
    fn kdtree_implements_spindex() {
        let index = KdTreeIndex::open(BufferPool::in_memory()).unwrap();
        exercise(
            index,
            vec![
                (Point::new(1.0, 1.0), 0),
                (Point::new(5.0, 5.0), 1),
                (Point::new(9.0, 9.0), 2),
            ],
            PointQuery::InRect(Rect::new(0.0, 0.0, 6.0, 6.0)),
            &[0, 1],
        );
    }

    #[test]
    fn quadtree_implements_spindex() {
        let index = PointQuadtreeIndex::open(BufferPool::in_memory()).unwrap();
        exercise(
            index,
            vec![
                (Point::new(1.0, 1.0), 0),
                (Point::new(5.0, 5.0), 1),
                (Point::new(9.0, 9.0), 2),
            ],
            PointQuery::InRect(Rect::new(4.0, 4.0, 10.0, 10.0)),
            &[1, 2],
        );
    }

    #[test]
    fn pmr_quadtree_implements_spindex() {
        let index = PmrQuadtreeIndex::open(BufferPool::in_memory()).unwrap();
        exercise(
            index,
            vec![
                (
                    Segment::new(Point::new(5.0, 5.0), Point::new(20.0, 15.0)),
                    0,
                ),
                (
                    Segment::new(Point::new(40.0, 40.0), Point::new(90.0, 90.0)),
                    1,
                ),
                (
                    Segment::new(Point::new(10.0, 80.0), Point::new(30.0, 60.0)),
                    2,
                ),
            ],
            SegmentQuery::InRect(Rect::new(0.0, 0.0, 30.0, 30.0)),
            &[0],
        );
    }

    /// Bulk build vs. insert loop vs. one-latch batch: identical answers,
    /// identical logical counts, and a second bulk load is refused —
    /// compiled once, exercised for all five indexes.
    fn exercise_bulk<I: SpIndex>(
        make: impl Fn() -> I,
        items: Vec<(I::Key, RowId)>,
        query: I::Query,
    ) {
        let bulk = make();
        let stats = bulk.bulk_build(items.clone()).unwrap();
        assert!(stats.items >= 1);
        let looped = make();
        for (key, row) in items.clone() {
            looped.insert(key, row).unwrap();
        }
        let batched = make();
        batched.insert_batch(items.clone()).unwrap();

        let rows = |ix: &I| {
            let mut rows = ix.cursor(&query).unwrap().rows().unwrap();
            rows.sort_unstable();
            rows
        };
        let expected = rows(&looped);
        assert_eq!(rows(&bulk), expected, "bulk build answers like the loop");
        assert_eq!(
            rows(&batched),
            expected,
            "batch insert answers like the loop"
        );
        assert_eq!(bulk.len(), looped.len());
        assert_eq!(batched.len(), looped.len());
        assert!(
            bulk.bulk_build(items).is_err(),
            "bulk build refuses a populated index"
        );
    }

    #[test]
    fn bulk_build_matches_insert_loop_on_all_five_indexes() {
        let words = || {
            [
                "star", "space", "spade", "blue", "bit", "take", "top", "zero",
            ]
            .iter()
            .enumerate()
            .map(|(row, w)| (w.to_string(), row as RowId))
            .collect::<Vec<_>>()
        };
        exercise_bulk(
            || TrieIndex::open(BufferPool::in_memory()).unwrap(),
            words(),
            StringQuery::Prefix("sp".into()),
        );
        exercise_bulk(
            || SuffixTreeIndex::open(BufferPool::in_memory()).unwrap(),
            words(),
            StringQuery::Substring("a".into()),
        );
        let points = || {
            (0..40)
                .map(|i| {
                    let t = f64::from(i);
                    (
                        Point::new((t * 13.7) % 100.0, (t * 31.1) % 100.0),
                        i as RowId,
                    )
                })
                .collect::<Vec<_>>()
        };
        exercise_bulk(
            || KdTreeIndex::open(BufferPool::in_memory()).unwrap(),
            points(),
            PointQuery::InRect(Rect::new(10.0, 10.0, 70.0, 70.0)),
        );
        exercise_bulk(
            || PointQuadtreeIndex::open(BufferPool::in_memory()).unwrap(),
            points(),
            PointQuery::InRect(Rect::new(10.0, 10.0, 70.0, 70.0)),
        );
        let segments = || {
            (0..30)
                .map(|i| {
                    let t = f64::from(i);
                    let a = Point::new((t * 11.3) % 100.0, (t * 23.9) % 100.0);
                    let b = Point::new((a.x + 9.0).min(100.0), (a.y + 5.0).min(100.0));
                    (Segment::new(a, b), i as RowId)
                })
                .collect::<Vec<_>>()
        };
        exercise_bulk(
            || PmrQuadtreeIndex::open(BufferPool::in_memory()).unwrap(),
            segments(),
            SegmentQuery::InRect(Rect::new(0.0, 0.0, 60.0, 60.0)),
        );
    }

    #[test]
    fn ordered_cursor_streams_in_distance_order() {
        let kd = KdTreeIndex::open(BufferPool::in_memory()).unwrap();
        let pts = [
            Point::new(10.0, 10.0),
            Point::new(50.0, 50.0),
            Point::new(51.0, 49.0),
            Point::new(90.0, 90.0),
        ];
        for (row, p) in pts.iter().enumerate() {
            kd.insert(*p, row as RowId).unwrap();
        }
        let anchor = PointQuery::Nearest(Point::new(45.0, 45.0));
        let ordered: Vec<(Point, RowId)> = kd
            .ordered_cursor(&anchor)
            .unwrap()
            .expect("kd-tree registers distance functions")
            .collect::<StorageResult<_>>()
            .unwrap();
        assert_eq!(ordered.len(), pts.len());
        assert_eq!(ordered[0].1, 1);
        assert_eq!(ordered[1].1, 2);
        assert_eq!(ordered[3].1, 3);

        // The suffix tree registers no distance functions: no ordered scan.
        let suffix = SuffixTreeIndex::open(BufferPool::in_memory()).unwrap();
        assert!(suffix
            .ordered_cursor(&StringQuery::Nearest("abc".into()))
            .unwrap()
            .is_none());
    }

    #[test]
    fn cursor_deduplicates_rows_while_streaming() {
        let items = || {
            vec![
                ("a".to_string(), 1),
                ("b".to_string(), 1),
                ("c".to_string(), 2),
            ]
            .into_iter()
            .map(StorageResult::Ok)
        };
        let plain: Vec<_> = Cursor::new(items()).collect::<StorageResult<_>>().unwrap();
        assert_eq!(plain.len(), 3);
        let deduped: Vec<_> = Cursor::deduplicated(items())
            .collect::<StorageResult<_>>()
            .unwrap();
        assert_eq!(deduped.len(), 2);
        assert_eq!(deduped[0].1, 1);
        assert_eq!(deduped[1].1, 2);
    }
}
