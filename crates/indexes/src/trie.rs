//! The disk-based patricia trie (paper Table 1, Section 6).
//!
//! Strings are decomposed character by character; with
//! `PathShrink = TreeShrink` an inner node additionally carries the common
//! prefix of all keys below it (the patricia optimization of Figure 1(c)),
//! and with `NodeShrink = OmitEmpty` empty partitions are not materialized
//! (the forest-trie optimization of Figure 2(b)).
//!
//! The registered operators follow the paper's Table 4: `=` (equality),
//! `#=` (prefix match), `?=` (regular-expression match with the
//! single-character wildcard `?`), and `@@` (incremental nearest neighbour
//! under the Hamming-style distance).

use std::sync::Arc;

use spgist_core::{
    Choose, NodeShrink, PathShrink, PickSplit, RowId, SpGistConfig, SpGistOps, SpGistTree,
};
use spgist_storage::{BufferPool, PageId, StorageResult};

use crate::query::{hamming_distance, StringQuery};
use crate::spindex::{SpGistBacked, SpIndex};

/// Entry predicate marking "the key ends at this position" (the paper's
/// *blank* predicate).  Zero never collides with real characters.
pub const BLANK: u8 = 0;

/// External methods of the SP-GiST trie.
#[derive(Debug, Clone)]
pub struct TrieOps {
    config: SpGistConfig,
}

impl Default for TrieOps {
    fn default() -> Self {
        Self::patricia()
    }
}

impl TrieOps {
    /// The patricia trie used throughout the paper's evaluation:
    /// `PathShrink = TreeShrink`, `NodeShrink = OmitEmpty`.
    pub fn patricia() -> Self {
        TrieOps {
            config: SpGistConfig {
                partitions: 27,
                bucket_size: 16,
                resolution: 128,
                path_shrink: PathShrink::TreeShrink,
                node_shrink: NodeShrink::OmitEmpty,
                split_once: false,
                ..SpGistConfig::default()
            },
        }
    }

    /// A plain dictionary trie without path shrinking (Figure 1(a)); used by
    /// the trie-variant ablation benchmark.
    pub fn never_shrink() -> Self {
        let mut ops = Self::patricia();
        ops.config.path_shrink = PathShrink::NeverShrink;
        ops
    }

    /// Builds the ops from an explicit configuration.
    pub fn with_config(config: SpGistConfig) -> Self {
        TrieOps { config }
    }

    fn tree_shrink(&self) -> bool {
        self.config.path_shrink == PathShrink::TreeShrink
    }

    fn pred_at(key: &str, pos: usize) -> u8 {
        key.as_bytes().get(pos).copied().unwrap_or(BLANK)
    }

    /// The string the query navigates or ranks by.
    fn target(query: &StringQuery) -> &str {
        match query {
            StringQuery::Equals(s)
            | StringQuery::Prefix(s)
            | StringQuery::Regex(s)
            | StringQuery::Substring(s)
            | StringQuery::Nearest(s) => s,
        }
    }
}

impl SpGistOps for TrieOps {
    type Key = String;
    type Prefix = String;
    type Pred = u8;
    type Query = StringQuery;
    type Context = ();

    fn config(&self) -> SpGistConfig {
        self.config
    }

    fn key_query(&self, key: &String) -> StringQuery {
        StringQuery::Equals(key.clone())
    }

    fn consistent(
        &self,
        prefix: Option<&String>,
        pred: &u8,
        query: &StringQuery,
        level: u32,
    ) -> bool {
        let pos = level as usize + prefix.map_or(0, String::len);
        match query {
            StringQuery::Equals(s) => {
                if *pred == BLANK {
                    s.len() == pos
                } else {
                    s.as_bytes().get(pos) == Some(pred)
                }
            }
            StringQuery::Prefix(p) => {
                if pos >= p.len() {
                    // The whole query prefix is already matched; every
                    // partition below may contain matching keys.
                    true
                } else if *pred == BLANK {
                    false
                } else {
                    p.as_bytes()[pos] == *pred
                }
            }
            StringQuery::Regex(r) => {
                if *pred == BLANK {
                    r.len() == pos
                } else {
                    pos < r.len() && (r.as_bytes()[pos] == b'?' || r.as_bytes()[pos] == *pred)
                }
            }
            // The plain trie cannot prune substring queries; the suffix tree
            // handles them (paper Table 3).
            StringQuery::Substring(_) | StringQuery::Nearest(_) => true,
        }
    }

    fn prefix_consistent(&self, prefix: &String, query: &StringQuery, level: u32) -> bool {
        let start = level as usize;
        let pb = prefix.as_bytes();
        match query {
            StringQuery::Equals(s) => {
                let sb = s.as_bytes();
                sb.len() >= start + pb.len() && &sb[start..start + pb.len()] == pb
            }
            StringQuery::Prefix(p) => {
                let qb = p.as_bytes();
                pb.iter().enumerate().all(|(i, c)| {
                    let pos = start + i;
                    pos >= qb.len() || qb[pos] == *c
                })
            }
            StringQuery::Regex(r) => {
                let rb = r.as_bytes();
                pb.iter().enumerate().all(|(i, c)| {
                    let pos = start + i;
                    pos < rb.len() && (rb[pos] == b'?' || rb[pos] == *c)
                })
            }
            StringQuery::Substring(_) | StringQuery::Nearest(_) => true,
        }
    }

    fn leaf_consistent(&self, key: &String, query: &StringQuery, _level: u32) -> bool {
        query.matches(key)
    }

    fn descend_levels(&self, prefix: Option<&String>) -> u32 {
        1 + prefix.map_or(0, |p| p.len() as u32)
    }

    fn choose(
        &self,
        prefix: Option<&String>,
        preds: &[u8],
        key: &String,
        level: u32,
    ) -> Choose<u8, String> {
        let mut pos = level as usize;
        if let Some(pfx) = prefix {
            let pb = pfx.as_bytes();
            let kb = key.as_bytes();
            let rest = &kb[pos.min(kb.len())..];
            let common = pb.iter().zip(rest).take_while(|(a, b)| a == b).count();
            if common < pb.len() {
                // The new key disagrees with the stored prefix: split it.
                return Choose::SplitPrefix {
                    upper_prefix: (common > 0).then(|| pfx[..common].to_string()),
                    lower_pred: pb[common],
                    lower_prefix: (common + 1 < pb.len()).then(|| pfx[common + 1..].to_string()),
                };
            }
            pos += pb.len();
        }
        let c = Self::pred_at(key, pos);
        match preds.iter().position(|p| *p == c) {
            Some(idx) => Choose::Descend(vec![idx]),
            None => Choose::AddEntry(c),
        }
    }

    fn picksplit(&self, items: &[String], level: u32, _ctx: &()) -> PickSplit<String, u8> {
        let start = level as usize;
        // TreeShrink: extract the longest prefix common to all keys past
        // `start` (paper Table 1: "Find a common prefix among words in P").
        let common = if self.tree_shrink() {
            let mut common: Option<&[u8]> = None;
            for item in items {
                let kb = item.as_bytes();
                let rest = &kb[start.min(kb.len())..];
                common = Some(match common {
                    None => rest,
                    Some(current) => {
                        let len = current.iter().zip(rest).take_while(|(a, b)| a == b).count();
                        &current[..len]
                    }
                });
            }
            common.unwrap_or_default()
        } else {
            &[]
        };
        let pos = start + common.len();
        let mut partitions: Vec<(u8, Vec<usize>)> = Vec::new();
        for (idx, item) in items.iter().enumerate() {
            let pred = Self::pred_at(item, pos);
            match partitions.iter_mut().find(|(p, _)| *p == pred) {
                Some((_, list)) => list.push(idx),
                None => partitions.push((pred, vec![idx])),
            }
        }
        PickSplit {
            prefix: (!common.is_empty()).then(|| String::from_utf8_lossy(common).into_owned()),
            partitions,
        }
    }

    fn bulk_prepare(&self, items: &mut [(String, RowId)], level: u32, _ctx: &()) {
        // Sort-based build: ordering the key set once at the root keeps
        // sibling runs contiguous for the whole build — a partition of a
        // sorted set is itself sorted, because `picksplit` groups by the
        // character at a single position and preserves relative order.
        if level == 0 {
            items.sort_unstable_by(|a, b| a.0.cmp(&b.0));
        }
    }

    fn inner_distance(
        &self,
        prefix: Option<&String>,
        pred: &u8,
        query: &StringQuery,
        parent_dist: f64,
        level: u32,
    ) -> f64 {
        let target = Self::target(query).as_bytes();
        let mut pos = level as usize;
        let mut dist = parent_dist;
        if let Some(pfx) = prefix {
            for c in pfx.as_bytes() {
                if target.get(pos) != Some(c) {
                    dist += 1.0;
                }
                pos += 1;
            }
        }
        if *pred == BLANK {
            // Keys below this entry end here; the remaining target characters
            // each contribute one mismatch.
            dist += target.len().saturating_sub(pos) as f64;
        } else if target.get(pos) != Some(pred) {
            dist += 1.0;
        }
        dist
    }

    fn leaf_distance(&self, key: &String, query: &StringQuery) -> f64 {
        hamming_distance(key, Self::target(query))
    }
}

/// A disk-based patricia-trie index over strings.
///
/// This is the user-facing wrapper combining [`TrieOps`] with the generalized
/// [`SpGistTree`]; it exposes the operators of the paper's `SP_GiST_trie`
/// operator class.  The uniform surface — `open` / `insert` / `delete` /
/// `execute` / `cursor` / `len` / `stats` / `repack` — comes from the
/// [`SpIndex`] trait; the inherent methods below are thin operator sugar
/// (`=`, `#=`, `?=`, `@@`) plus `&str`-taking shims kept for source
/// compatibility with the pre-`SpIndex` API.
pub struct TrieIndex {
    tree: Arc<SpGistTree<TrieOps>>,
}

impl SpGistBacked for TrieIndex {
    type Ops = TrieOps;

    const ORDERED_SCANS: bool = true;

    fn backing(&self) -> &Arc<SpGistTree<TrieOps>> {
        &self.tree
    }

    fn into_backing_tree(self) -> Arc<SpGistTree<TrieOps>> {
        self.tree
    }

    fn open_default(pool: Arc<BufferPool>) -> StorageResult<Self> {
        Self::create(pool)
    }
}

impl TrieIndex {
    /// Creates a patricia trie on `pool`.
    pub fn create(pool: Arc<BufferPool>) -> StorageResult<Self> {
        Self::with_ops(pool, TrieOps::patricia())
    }

    /// Creates a trie with explicit external-method parameters (used by the
    /// trie-variant and clustering ablations).
    pub fn with_ops(pool: Arc<BufferPool>, ops: TrieOps) -> StorageResult<Self> {
        Ok(TrieIndex {
            tree: Arc::new(SpGistTree::create(pool, ops)?),
        })
    }

    /// Re-opens a trie previously created on the file behind `pool` from its
    /// persisted identity: the tree's meta page, its owned-page list, and
    /// the external-method parameters it was created with (the durable
    /// catalog round-trips all three).
    pub fn open_with_ops(
        pool: Arc<BufferPool>,
        ops: TrieOps,
        meta_page: PageId,
        pages: Vec<PageId>,
    ) -> StorageResult<Self> {
        Ok(TrieIndex {
            tree: Arc::new(SpGistTree::open_with_pages(pool, ops, meta_page, pages)?),
        })
    }

    /// Inserts a word pointing at heap row `row` (borrowed-`str` shim over
    /// [`SpIndex::insert`]).
    pub fn insert(&self, word: &str, row: RowId) -> StorageResult<()> {
        SpIndex::insert(self, word.to_string(), row)
    }

    /// Deletes one `(word, row)` entry; returns whether something was
    /// removed (borrowed-`str` shim over [`SpIndex::delete`]).
    pub fn delete(&self, word: &str, row: RowId) -> StorageResult<bool> {
        SpIndex::delete(self, &word.to_string(), row)
    }

    /// `=` operator: rows whose key equals `word`.
    pub fn equals(&self, word: &str) -> StorageResult<Vec<RowId>> {
        self.cursor(&StringQuery::Equals(word.to_string()))?.rows()
    }

    /// `#=` operator: `(key, row)` pairs whose key starts with `prefix`.
    pub fn prefix(&self, prefix: &str) -> StorageResult<Vec<(String, RowId)>> {
        self.execute(&StringQuery::Prefix(prefix.to_string()))
    }

    /// `?=` operator: `(key, row)` pairs matching a `?`-wildcard pattern.
    pub fn regex(&self, pattern: &str) -> StorageResult<Vec<(String, RowId)>> {
        self.execute(&StringQuery::Regex(pattern.to_string()))
    }

    /// `@@` operator: the `k` nearest keys to `word` under the Hamming-style
    /// distance, nearest first.
    pub fn nearest(&self, word: &str, k: usize) -> StorageResult<Vec<(String, RowId, f64)>> {
        self.tree
            .nn_search(StringQuery::Nearest(word.to_string()), k)
    }

    /// Runs an arbitrary [`StringQuery`] against the index (shim kept for
    /// the pre-`SpIndex` API; prefer [`SpIndex::execute`]).
    pub fn search(&self, query: &StringQuery) -> StorageResult<Vec<(String, RowId)>> {
        self.execute(query)
    }

    /// The underlying generalized tree (internally concurrent; share the
    /// `Arc` to read or write from any thread).
    pub fn tree(&self) -> &Arc<SpGistTree<TrieOps>> {
        &self.tree
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn index_with(words: &[&str]) -> TrieIndex {
        let index = TrieIndex::create(BufferPool::in_memory()).unwrap();
        for (i, w) in words.iter().enumerate() {
            index.insert(w, i as RowId).unwrap();
        }
        index
    }

    const PAPER_WORDS: &[&str] = &[
        "star", "space", "spade", "blue", "bit", "take", "top", "zero",
    ];

    #[test]
    fn equality_matches_exactly_one_word() {
        let index = index_with(PAPER_WORDS);
        assert_eq!(index.equals("space").unwrap(), vec![1]);
        assert_eq!(index.equals("star").unwrap(), vec![0]);
        assert!(index.equals("spac").unwrap().is_empty());
        assert!(index.equals("spaces").unwrap().is_empty());
        assert!(index.equals("").unwrap().is_empty());
    }

    #[test]
    fn prefix_search_returns_all_words_with_prefix() {
        let index = index_with(PAPER_WORDS);
        let mut hits: Vec<String> = index
            .prefix("sp")
            .unwrap()
            .into_iter()
            .map(|(w, _)| w)
            .collect();
        hits.sort();
        assert_eq!(hits, vec!["space", "spade"]);
        assert_eq!(index.prefix("star").unwrap().len(), 1);
        assert_eq!(index.prefix("").unwrap().len(), PAPER_WORDS.len());
        assert!(index.prefix("q").unwrap().is_empty());
    }

    #[test]
    fn regex_search_uses_wildcards() {
        let index = index_with(PAPER_WORDS);
        let hits: Vec<String> = index
            .regex("spa?e")
            .unwrap()
            .into_iter()
            .map(|(w, _)| w)
            .collect();
        let mut hits = hits;
        hits.sort();
        assert_eq!(hits, vec!["space", "spade"]);
        // Leading wildcard still narrows on later characters.
        let hits: Vec<String> = index
            .regex("?it")
            .unwrap()
            .into_iter()
            .map(|(w, _)| w)
            .collect();
        assert_eq!(hits, vec!["bit"]);
        assert!(index.regex("??").unwrap().is_empty());
    }

    #[test]
    fn nearest_neighbours_are_ordered_by_hamming_distance() {
        let index = index_with(PAPER_WORDS);
        let nn = index.nearest("spate", 3).unwrap();
        // "spade" and "space" are both at Hamming distance 1 of "spate".
        assert_eq!(nn[0].2, 1.0);
        assert_eq!(nn[1].2, 1.0);
        let two_closest: Vec<&str> = nn[..2].iter().map(|(w, _, _)| w.as_str()).collect();
        assert!(two_closest.contains(&"spade"));
        assert!(two_closest.contains(&"space"));
        assert!(nn.windows(2).all(|w| w[0].2 <= w[1].2));
    }

    #[test]
    fn duplicates_and_deletes() {
        let index = index_with(&[]);
        index.insert("echo", 1).unwrap();
        index.insert("echo", 2).unwrap();
        let mut rows = index.equals("echo").unwrap();
        rows.sort_unstable();
        assert_eq!(rows, vec![1, 2]);
        assert!(index.delete("echo", 1).unwrap());
        assert_eq!(index.equals("echo").unwrap(), vec![2]);
        assert!(!index.delete("echo", 1).unwrap());
        assert_eq!(index.len(), 1);
    }

    #[test]
    fn large_vocabulary_exact_and_prefix() {
        // Enough synthetic words to force many splits and prefix splits.
        let words: Vec<String> = (0..3000u32)
            .map(|i| {
                let mut w = String::new();
                let mut n = i;
                for _ in 0..5 {
                    w.push(char::from(b'a' + (n % 26) as u8));
                    n /= 26;
                }
                w
            })
            .collect();
        let index = TrieIndex::create(BufferPool::in_memory()).unwrap();
        for (i, w) in words.iter().enumerate() {
            index.insert(w, i as RowId).unwrap();
        }
        // Every word can be found again (words repeat, so count >= 1).
        for (i, w) in words.iter().enumerate().step_by(197) {
            let rows = index.equals(w).unwrap();
            assert!(rows.contains(&(i as RowId)), "word {w} row {i} missing");
        }
        // Prefix count agrees with a linear scan.
        let expected = words.iter().filter(|w| w.starts_with("ba")).count();
        assert_eq!(index.prefix("ba").unwrap().len(), expected);
        let stats = index.stats().unwrap();
        assert_eq!(stats.items, 3000);
        assert!(stats.max_page_height <= stats.max_node_height);
    }

    #[test]
    fn patricia_prefix_split_preserves_existing_keys() {
        // "romane", "romanus", "romulus" share prefixes and then diverge —
        // the classic patricia example that exercises SplitPrefix.
        let index = index_with(&["romane", "romanus", "romulus"]);
        index.insert("rubens", 10).unwrap();
        index.insert("ruber", 11).unwrap();
        index.insert("r", 12).unwrap();
        for (word, row) in [
            ("romane", 0),
            ("romanus", 1),
            ("romulus", 2),
            ("rubens", 10),
            ("ruber", 11),
            ("r", 12),
        ] {
            assert_eq!(index.equals(word).unwrap(), vec![row], "lookup of {word}");
        }
        assert_eq!(index.prefix("rom").unwrap().len(), 3);
        assert_eq!(index.prefix("r").unwrap().len(), 6);
    }

    #[test]
    fn never_shrink_variant_answers_the_same_queries() {
        let pool_a = BufferPool::in_memory();
        let pool_b = BufferPool::in_memory();
        let patricia = TrieIndex::with_ops(pool_a, TrieOps::patricia()).unwrap();
        let plain = TrieIndex::with_ops(pool_b, TrieOps::never_shrink()).unwrap();
        for (i, w) in PAPER_WORDS.iter().enumerate() {
            patricia.insert(w, i as RowId).unwrap();
            plain.insert(w, i as RowId).unwrap();
        }
        for q in ["spade", "take", "zzz"] {
            assert_eq!(patricia.equals(q).unwrap(), plain.equals(q).unwrap());
        }
        let mut a = patricia.prefix("t").unwrap();
        let mut b = plain.prefix("t").unwrap();
        a.sort();
        b.sort();
        assert_eq!(a, b);
        // The patricia variant needs no more nodes than the plain trie.
        let pa = patricia.stats().unwrap();
        let pl = plain.stats().unwrap();
        assert!(pa.total_nodes() <= pl.total_nodes());
    }

    #[test]
    fn empty_string_keys_are_supported() {
        let index = index_with(&["", "a", "ab"]);
        assert_eq!(index.equals("").unwrap(), vec![0]);
        assert_eq!(index.prefix("").unwrap().len(), 3);
        assert!(index.delete("", 0).unwrap());
        assert!(index.equals("").unwrap().is_empty());
    }
}
