//! The disk-based PMR quadtree over line segments (paper Section 6,
//! Figure 15).
//!
//! The PMR quadtree is *space-driven*: the world rectangle is recursively
//! quartered regardless of the data distribution, a segment is stored in
//! every leaf quadrant it intersects, and a leaf is split **once** when an
//! insertion pushes it past the splitting threshold (children may remain
//! temporarily over the threshold — the PMR splitting rule, expressed here
//! through `SpGistConfig::split_once`).
//!
//! The node's region is not stored in the tree; it is reconstructed during
//! descent through the [`SpGistOps::Context`] traversal value, exactly like
//! PostgreSQL SP-GiST reconstructs quadrant boxes.

use std::sync::Arc;

use spgist_core::{
    Choose, NodeShrink, PathShrink, PickSplit, RowId, SpGistConfig, SpGistOps, SpGistTree,
};
use spgist_storage::{BufferPool, PageId, StorageResult};

use crate::geom::{Point, Rect, Segment};
use crate::query::SegmentQuery;
use crate::spindex::{SpGistBacked, SpIndex};

/// Default PMR splitting threshold (maximum segments per leaf quadrant
/// before a split is triggered).
pub const DEFAULT_SPLITTING_THRESHOLD: usize = 8;

/// World rectangle used by [`SpIndex::open`]: the `[0, 100]²` space of the
/// paper's spatial experiments.  Indexes over a different region should be
/// built with [`PmrQuadtreeIndex::create`] instead.
pub const DEFAULT_WORLD: Rect = Rect {
    min_x: 0.0,
    min_y: 0.0,
    max_x: 100.0,
    max_y: 100.0,
};

/// External methods of the SP-GiST PMR quadtree.
#[derive(Debug, Clone)]
pub struct PmrQuadtreeOps {
    config: SpGistConfig,
    world: Rect,
}

impl PmrQuadtreeOps {
    /// Creates the ops for segments inside `world` with the default
    /// splitting threshold.
    pub fn new(world: Rect) -> Self {
        Self::with_threshold(world, DEFAULT_SPLITTING_THRESHOLD)
    }

    /// Creates the ops with an explicit splitting threshold.
    pub fn with_threshold(world: Rect, threshold: usize) -> Self {
        PmrQuadtreeOps {
            config: SpGistConfig {
                partitions: 4,
                bucket_size: threshold.max(1),
                resolution: 16,
                path_shrink: PathShrink::NeverShrink,
                node_shrink: NodeShrink::KeepEmpty,
                split_once: true,
                ..SpGistConfig::default()
            },
            world,
        }
    }

    /// The world rectangle this index decomposes.
    pub fn world(&self) -> Rect {
        self.world
    }

    /// Rebuilds the ops from a persisted `(world, config)` pair — the
    /// durable catalog's config round-trip (the splitting threshold lives in
    /// `config.bucket_size`).
    pub fn with_config(world: Rect, config: SpGistConfig) -> Self {
        PmrQuadtreeOps { config, world }
    }
}

impl SpGistOps for PmrQuadtreeOps {
    type Key = Segment;
    type Prefix = Rect;
    type Pred = Rect;
    type Query = SegmentQuery;
    type Context = Rect;

    fn config(&self) -> SpGistConfig {
        self.config
    }

    fn root_context(&self) -> Rect {
        self.world
    }

    fn child_context(&self, _ctx: &Rect, _prefix: Option<&Rect>, pred: &Rect, _level: u32) -> Rect {
        // The entry predicate *is* the child quadrant.
        *pred
    }

    fn key_query(&self, key: &Segment) -> SegmentQuery {
        SegmentQuery::Equals(*key)
    }

    fn consistent(
        &self,
        _prefix: Option<&Rect>,
        pred: &Rect,
        query: &SegmentQuery,
        _level: u32,
    ) -> bool {
        // A query argument reaching beyond the world rectangle cannot
        // prune: segments beyond the world are *parked* under the first
        // quadrant (see [`PmrQuadtreeOps::choose`]) rather than placed
        // geometrically, so quadrant tests say nothing about where their
        // matches live — and any query poking past the world boundary (even
        // one that also overlaps it) may match such a parked segment.
        // Descending everywhere keeps them reachable; the leaf re-check
        // still applies the exact predicate.  Queries whose argument lies
        // entirely inside the world prune normally: a parked segment
        // intersects no part of the world, so it cannot match them.
        match query {
            SegmentQuery::Equals(s) => {
                s.intersects_rect(pred) || !self.world.contains_rect(&s.mbr())
            }
            SegmentQuery::InRect(r) => r.intersects(pred) || !self.world.contains_rect(r),
            SegmentQuery::Nearest(_) => true,
        }
    }

    fn leaf_consistent(&self, key: &Segment, query: &SegmentQuery, _level: u32) -> bool {
        query.matches(key)
    }

    fn choose(
        &self,
        _prefix: Option<&Rect>,
        preds: &[Rect],
        key: &Segment,
        _level: u32,
    ) -> Choose<Rect, Rect> {
        // A segment descends into every quadrant it intersects.
        let indices: Vec<usize> = preds
            .iter()
            .enumerate()
            .filter(|(_, quadrant)| key.intersects_rect(quadrant))
            .map(|(idx, _)| idx)
            .collect();
        if indices.is_empty() {
            // The segment lies outside the world bounds; keep it reachable by
            // storing it under the first quadrant (its leaf re-check still
            // applies the exact predicate).
            Choose::Descend(vec![0])
        } else {
            Choose::Descend(indices)
        }
    }

    fn picksplit(&self, items: &[Segment], _level: u32, ctx: &Rect) -> PickSplit<Rect, Rect> {
        let quadrants = ctx.quadrants();
        let partitions = quadrants
            .iter()
            .map(|quadrant| {
                let members: Vec<usize> = items
                    .iter()
                    .enumerate()
                    .filter(|(_, s)| s.intersects_rect(quadrant))
                    .map(|(idx, _)| idx)
                    .collect();
                (*quadrant, members)
            })
            .collect();
        PickSplit {
            prefix: None,
            partitions,
        }
    }

    fn inner_distance(
        &self,
        _prefix: Option<&Rect>,
        pred: &Rect,
        query: &SegmentQuery,
        parent_dist: f64,
        _level: u32,
    ) -> f64 {
        let SegmentQuery::Nearest(q) = query else {
            return parent_dist;
        };
        // The entry predicate is the child quadrant: no segment stored
        // inside it can be closer to the anchor than the quadrant itself.
        // Segments lying entirely outside the world rectangle are parked
        // under the first quadrant, where this bound is not admissible —
        // their NN order is only exact for in-world data (see
        // [`PmrQuadtreeIndex::nearest`]).
        parent_dist.max(pred.min_distance(q))
    }

    fn leaf_distance(&self, key: &Segment, query: &SegmentQuery) -> f64 {
        match query {
            SegmentQuery::Nearest(q) => key.distance_to_point(q),
            SegmentQuery::Equals(_) | SegmentQuery::InRect(_) => 0.0,
        }
    }
}

/// A disk-based PMR quadtree index over line segments.
///
/// Because a segment is replicated in every quadrant it crosses, the
/// [`SpIndex`] cursor deduplicates results by row id, and the uniform
/// [`SpIndex::delete`] removes every replica of the `(segment, row)` item
/// (via [`SpGistTree::delete_replicated`]) while counting one logical
/// removal.
///
/// [`SpIndex::bulk_build`] replicates every segment into the world
/// partitions as it recursively quarters the space (the space-oriented
/// packing of the space-driven quadtree: partition membership is decided by
/// geometry, so no [`SpGistOps::bulk_prepare`] hint is needed), decomposing
/// quadrants past the splitting threshold all the way down instead of
/// once-per-insert — segments entirely outside the world rectangle are
/// parked in the first quadrant exactly as the insert path parks them.
pub struct PmrQuadtreeIndex {
    tree: Arc<SpGistTree<PmrQuadtreeOps>>,
}

impl SpGistBacked for PmrQuadtreeIndex {
    type Ops = PmrQuadtreeOps;

    const DEDUPE_ROWS: bool = true;
    const ORDERED_SCANS: bool = true;

    fn backing(&self) -> &Arc<SpGistTree<PmrQuadtreeOps>> {
        &self.tree
    }

    fn into_backing_tree(self) -> Arc<SpGistTree<PmrQuadtreeOps>> {
        self.tree
    }

    fn open_default(pool: Arc<BufferPool>) -> StorageResult<Self> {
        Self::create(pool, DEFAULT_WORLD)
    }

    fn delete_key(&self, segment: &Segment, row: RowId) -> StorageResult<bool> {
        self.tree.delete_replicated(segment, row)
    }
}

impl PmrQuadtreeIndex {
    /// Creates a PMR quadtree decomposing `world` with the default splitting
    /// threshold.
    pub fn create(pool: Arc<BufferPool>, world: Rect) -> StorageResult<Self> {
        Self::with_ops(pool, PmrQuadtreeOps::new(world))
    }

    /// Creates a PMR quadtree with explicit parameters.
    pub fn with_ops(pool: Arc<BufferPool>, ops: PmrQuadtreeOps) -> StorageResult<Self> {
        Ok(PmrQuadtreeIndex {
            tree: Arc::new(SpGistTree::create(pool, ops)?),
        })
    }

    /// Re-opens a PMR quadtree previously created on the file behind `pool`
    /// from its persisted identity (meta page, owned-page list, world
    /// rectangle + configuration via [`PmrQuadtreeOps::with_config`]).
    pub fn open_with_ops(
        pool: Arc<BufferPool>,
        ops: PmrQuadtreeOps,
        meta_page: PageId,
        pages: Vec<PageId>,
    ) -> StorageResult<Self> {
        Ok(PmrQuadtreeIndex {
            tree: Arc::new(SpGistTree::open_with_pages(pool, ops, meta_page, pages)?),
        })
    }

    /// The world rectangle this index decomposes (persisted by the durable
    /// catalog).
    pub fn world(&self) -> Rect {
        self.tree.ops().world()
    }

    /// Exact-match query: rows whose segment equals `segment`.
    pub fn equals(&self, segment: Segment) -> StorageResult<Vec<RowId>> {
        let mut rows = self.cursor(&SegmentQuery::Equals(segment))?.rows()?;
        rows.sort_unstable();
        Ok(rows)
    }

    /// Window (range) query: `(segment, row)` pairs intersecting `rect`,
    /// deduplicated by row id.
    pub fn window(&self, rect: Rect) -> StorageResult<Vec<(Segment, RowId)>> {
        self.execute(&SegmentQuery::InRect(rect))
    }

    /// `@@` operator: the `k` segments nearest to `query` (minimum Euclidean
    /// distance from the anchor point to the segment), nearest first and
    /// deduplicated by row id.
    ///
    /// Exact for segments inside the index's world rectangle; segments
    /// stored entirely outside it carry no usable quadrant bound and may
    /// surface out of order.
    pub fn nearest(&self, query: Point, k: usize) -> StorageResult<Vec<(Segment, RowId, f64)>> {
        let mut seen = std::collections::HashSet::new();
        self.tree
            .nn_iter(SegmentQuery::Nearest(query))
            .filter(|item| match item {
                Ok((_, row, _)) => seen.insert(*row),
                Err(_) => true,
            })
            .take(k)
            .collect()
    }

    /// The underlying generalized tree (internally concurrent; share the
    /// `Arc` to read or write from any thread).
    pub fn tree(&self) -> &Arc<SpGistTree<PmrQuadtreeOps>> {
        &self.tree
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::geom::Point;

    const WORLD: Rect = Rect {
        min_x: 0.0,
        min_y: 0.0,
        max_x: 100.0,
        max_y: 100.0,
    };

    fn segments() -> Vec<Segment> {
        vec![
            Segment::new(Point::new(5.0, 5.0), Point::new(20.0, 15.0)),
            Segment::new(Point::new(50.0, 50.0), Point::new(90.0, 90.0)),
            Segment::new(Point::new(10.0, 80.0), Point::new(30.0, 60.0)),
            Segment::new(Point::new(0.0, 50.0), Point::new(100.0, 50.0)), // spans the world
            Segment::new(Point::new(75.0, 10.0), Point::new(75.0, 40.0)),
        ]
    }

    fn index() -> PmrQuadtreeIndex {
        let index = PmrQuadtreeIndex::create(BufferPool::in_memory(), WORLD).unwrap();
        for (i, s) in segments().iter().enumerate() {
            index.insert(*s, i as RowId).unwrap();
        }
        index
    }

    #[test]
    fn exact_match_finds_each_segment_once() {
        let index = index();
        for (i, s) in segments().iter().enumerate() {
            assert_eq!(index.equals(*s).unwrap(), vec![i as RowId]);
        }
        let missing = Segment::new(Point::new(1.0, 1.0), Point::new(2.0, 1.0));
        assert!(index.equals(missing).unwrap().is_empty());
    }

    #[test]
    fn window_query_matches_scan_and_deduplicates() {
        let index = index();
        let window = Rect::new(40.0, 40.0, 80.0, 80.0);
        let mut hits: Vec<RowId> = index
            .window(window)
            .unwrap()
            .into_iter()
            .map(|(_, r)| r)
            .collect();
        hits.sort_unstable();
        let expected: Vec<RowId> = segments()
            .iter()
            .enumerate()
            .filter(|(_, s)| s.intersects_rect(&window))
            .map(|(i, _)| i as RowId)
            .collect();
        assert_eq!(hits, expected);
    }

    #[test]
    fn many_segments_force_quadrant_splits() {
        let mut state = 7u64;
        let mut next = || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ((state >> 33) as f64 / u32::MAX as f64) * 100.0
        };
        let mut segs = Vec::new();
        for _ in 0..800 {
            let a = Point::new(next(), next());
            let b = Point::new(
                (a.x + next() / 10.0).min(100.0),
                (a.y + next() / 10.0).min(100.0),
            );
            segs.push(Segment::new(a, b));
        }
        let index = PmrQuadtreeIndex::create(BufferPool::in_memory(), WORLD).unwrap();
        for (i, s) in segs.iter().enumerate() {
            index.insert(*s, i as RowId).unwrap();
        }
        let stats = index.stats().unwrap();
        assert!(
            stats.inner_nodes > 0,
            "splitting threshold must trigger splits"
        );
        assert_eq!(index.len(), 800);

        // Window query agrees with a scan.
        let window = Rect::new(25.0, 25.0, 45.0, 55.0);
        let expected = segs.iter().filter(|s| s.intersects_rect(&window)).count();
        assert_eq!(index.window(window).unwrap().len(), expected);

        // Exact match for a sample of segments.
        for (i, s) in segs.iter().enumerate().step_by(97) {
            assert_eq!(index.equals(*s).unwrap(), vec![i as RowId]);
        }
    }

    #[test]
    fn segment_outside_world_is_still_searchable() {
        let index = index();
        let outside = Segment::new(Point::new(150.0, 150.0), Point::new(160.0, 160.0));
        index.insert(outside, 99).unwrap();
        assert_eq!(index.equals(outside).unwrap(), vec![99]);
    }

    #[test]
    fn segment_outside_world_stays_reachable_after_splits() {
        // Regression: once the root has decomposed, quadrant pruning used to
        // hide parked out-of-world segments from every search — `consistent`
        // must stop pruning for query arguments beyond the world.
        let index = PmrQuadtreeIndex::create(BufferPool::in_memory(), WORLD).unwrap();
        let outside = Segment::new(Point::new(150.0, 150.0), Point::new(160.0, 160.0));
        index.insert(outside, 999).unwrap();
        for (i, s) in segments().iter().cycle().take(60).enumerate() {
            index.insert(*s, i as RowId).unwrap();
        }
        let stats = index.stats().unwrap();
        assert!(stats.inner_nodes > 0, "the tree must actually have split");
        assert_eq!(index.equals(outside).unwrap(), vec![999]);
        let window = Rect::new(140.0, 140.0, 170.0, 170.0);
        assert_eq!(
            index
                .window(window)
                .unwrap()
                .into_iter()
                .map(|(_, r)| r)
                .collect::<Vec<_>>(),
            vec![999],
            "an out-of-world window finds the parked segment"
        );
        // A window *straddling* the world boundary may match parked
        // segments too; pruning by quadrants would hide them (this window
        // overlaps the world but avoids the NW quadrant where strays park).
        let straddling = Rect::new(60.0, 0.0, 170.0, 170.0);
        let rows: Vec<RowId> = index
            .window(straddling)
            .unwrap()
            .into_iter()
            .map(|(_, r)| r)
            .collect();
        assert!(
            rows.contains(&999),
            "a boundary-straddling window finds the parked segment (got {rows:?})"
        );
        assert!(index.delete(&outside, 999).unwrap());
        assert!(index.equals(outside).unwrap().is_empty());
    }

    #[test]
    fn delete_removes_every_replica_of_a_segment() {
        let index = PmrQuadtreeIndex::create(BufferPool::in_memory(), WORLD).unwrap();
        // Enough segments to force quadrant splits, so the world-spanning
        // segment is replicated across several leaves.
        let mut segs = segments();
        for i in 0..40 {
            let t = f64::from(i);
            segs.push(Segment::new(
                Point::new(t * 2.0, 5.0),
                Point::new(t * 2.0 + 5.0, 95.0),
            ));
        }
        for (i, s) in segs.iter().enumerate() {
            index.insert(*s, i as RowId).unwrap();
        }
        let spanning = segs[3]; // (0,50)-(100,50): crosses every column
        assert_eq!(index.equals(spanning).unwrap(), vec![3]);
        assert!(index.delete(&spanning, 3).unwrap());
        assert!(index.equals(spanning).unwrap().is_empty());
        assert_eq!(index.len(), segs.len() as u64 - 1);
        // A window query over the whole world no longer reports row 3.
        let rows: Vec<RowId> = index
            .window(WORLD)
            .unwrap()
            .into_iter()
            .map(|(_, r)| r)
            .collect();
        assert!(!rows.contains(&3));
        // Second delete finds nothing and the count is untouched.
        assert!(!index.delete(&spanning, 3).unwrap());
        assert_eq!(index.len(), segs.len() as u64 - 1);
    }

    #[test]
    fn nearest_segments_match_brute_force() {
        let index = index();
        let anchor = Point::new(60.0, 55.0);
        let nn = index.nearest(anchor, 3).unwrap();
        assert_eq!(nn.len(), 3);
        assert!(nn.windows(2).all(|w| w[0].2 <= w[1].2));
        let mut brute: Vec<f64> = segments()
            .iter()
            .map(|s| s.distance_to_point(&anchor))
            .collect();
        brute.sort_by(f64::total_cmp);
        for (i, (_, _, d)) in nn.iter().enumerate() {
            assert!((d - brute[i]).abs() < 1e-9, "k={i} distance mismatch");
        }
        // A replicated segment (the world spanner) is reported once.
        let all = index.nearest(anchor, 100).unwrap();
        assert_eq!(all.len(), segments().len());
        let mut rows: Vec<RowId> = all.iter().map(|(_, r, _)| *r).collect();
        rows.sort_unstable();
        assert_eq!(rows, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn duplicate_segments_report_each_row() {
        let index = PmrQuadtreeIndex::create(BufferPool::in_memory(), WORLD).unwrap();
        let s = Segment::new(Point::new(10.0, 10.0), Point::new(60.0, 60.0));
        for row in 0..4 {
            index.insert(s, row).unwrap();
        }
        assert_eq!(index.equals(s).unwrap(), vec![0, 1, 2, 3]);
        let window_hits = index.window(Rect::new(0.0, 0.0, 100.0, 100.0)).unwrap();
        assert_eq!(window_hits.len(), 4);
    }
}
