//! Planar geometry used by the spatial instantiations: points, axis-aligned
//! rectangles, and line segments.

use spgist_storage::{Codec, StorageResult};

/// A point in the plane.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Point {
    /// X coordinate.
    pub x: f64,
    /// Y coordinate.
    pub y: f64,
}

impl Point {
    /// Creates a point.
    pub fn new(x: f64, y: f64) -> Self {
        Point { x, y }
    }

    /// Coordinate along dimension `dim` (0 = x, 1 = y).
    pub fn coord(&self, dim: u32) -> f64 {
        if dim.is_multiple_of(2) {
            self.x
        } else {
            self.y
        }
    }

    /// Euclidean distance to `other`.
    pub fn distance(&self, other: &Point) -> f64 {
        let dx = self.x - other.x;
        let dy = self.y - other.y;
        (dx * dx + dy * dy).sqrt()
    }
}

impl Codec for Point {
    fn encode(&self, out: &mut Vec<u8>) {
        self.x.encode(out);
        self.y.encode(out);
    }
    fn decode(buf: &mut &[u8]) -> StorageResult<Self> {
        Ok(Point {
            x: f64::decode(buf)?,
            y: f64::decode(buf)?,
        })
    }
}

/// An axis-aligned rectangle, closed on all sides.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Rect {
    /// Smallest x coordinate.
    pub min_x: f64,
    /// Smallest y coordinate.
    pub min_y: f64,
    /// Largest x coordinate.
    pub max_x: f64,
    /// Largest y coordinate.
    pub max_y: f64,
}

impl Rect {
    /// Creates a rectangle from its corner coordinates (normalizing order).
    pub fn new(min_x: f64, min_y: f64, max_x: f64, max_y: f64) -> Self {
        Rect {
            min_x: min_x.min(max_x),
            min_y: min_y.min(max_y),
            max_x: min_x.max(max_x),
            max_y: min_y.max(max_y),
        }
    }

    /// The rectangle covering both corner points.
    pub fn from_points(a: Point, b: Point) -> Self {
        Rect::new(a.x, a.y, b.x, b.y)
    }

    /// Width along x.
    pub fn width(&self) -> f64 {
        self.max_x - self.min_x
    }

    /// Height along y.
    pub fn height(&self) -> f64 {
        self.max_y - self.min_y
    }

    /// Area of the rectangle.
    pub fn area(&self) -> f64 {
        self.width() * self.height()
    }

    /// Geometric center.
    pub fn center(&self) -> Point {
        Point::new(
            (self.min_x + self.max_x) / 2.0,
            (self.min_y + self.max_y) / 2.0,
        )
    }

    /// True if `p` lies inside or on the boundary.
    pub fn contains_point(&self, p: &Point) -> bool {
        p.x >= self.min_x && p.x <= self.max_x && p.y >= self.min_y && p.y <= self.max_y
    }

    /// True if `other` lies entirely inside this rectangle.
    pub fn contains_rect(&self, other: &Rect) -> bool {
        other.min_x >= self.min_x
            && other.max_x <= self.max_x
            && other.min_y >= self.min_y
            && other.max_y <= self.max_y
    }

    /// True if the two rectangles share any point.
    pub fn intersects(&self, other: &Rect) -> bool {
        self.min_x <= other.max_x
            && other.min_x <= self.max_x
            && self.min_y <= other.max_y
            && other.min_y <= self.max_y
    }

    /// Smallest rectangle covering both inputs.
    pub fn union(&self, other: &Rect) -> Rect {
        Rect {
            min_x: self.min_x.min(other.min_x),
            min_y: self.min_y.min(other.min_y),
            max_x: self.max_x.max(other.max_x),
            max_y: self.max_y.max(other.max_y),
        }
    }

    /// Area increase needed to also cover `other`.
    pub fn enlargement(&self, other: &Rect) -> f64 {
        self.union(other).area() - self.area()
    }

    /// Minimum Euclidean distance from `p` to this rectangle (0 inside).
    pub fn min_distance(&self, p: &Point) -> f64 {
        let dx = (self.min_x - p.x).max(0.0).max(p.x - self.max_x);
        let dy = (self.min_y - p.y).max(0.0).max(p.y - self.max_y);
        (dx * dx + dy * dy).sqrt()
    }

    /// The four quadrants of this rectangle: NW, NE, SW, SE.
    pub fn quadrants(&self) -> [Rect; 4] {
        let c = self.center();
        [
            Rect::new(self.min_x, c.y, c.x, self.max_y), // NW
            Rect::new(c.x, c.y, self.max_x, self.max_y), // NE
            Rect::new(self.min_x, self.min_y, c.x, c.y), // SW
            Rect::new(c.x, self.min_y, self.max_x, c.y), // SE
        ]
    }
}

impl Codec for Rect {
    fn encode(&self, out: &mut Vec<u8>) {
        self.min_x.encode(out);
        self.min_y.encode(out);
        self.max_x.encode(out);
        self.max_y.encode(out);
    }
    fn decode(buf: &mut &[u8]) -> StorageResult<Self> {
        Ok(Rect {
            min_x: f64::decode(buf)?,
            min_y: f64::decode(buf)?,
            max_x: f64::decode(buf)?,
            max_y: f64::decode(buf)?,
        })
    }
}

/// A line segment between two end points.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Segment {
    /// First end point.
    pub a: Point,
    /// Second end point.
    pub b: Point,
}

impl Segment {
    /// Creates a segment.
    pub fn new(a: Point, b: Point) -> Self {
        Segment { a, b }
    }

    /// Minimum bounding rectangle of the segment.
    pub fn mbr(&self) -> Rect {
        Rect::from_points(self.a, self.b)
    }

    /// Length of the segment.
    pub fn length(&self) -> f64 {
        self.a.distance(&self.b)
    }

    /// Minimum Euclidean distance from `p` to any point of the segment
    /// (0 when `p` lies on it).
    pub fn distance_to_point(&self, p: &Point) -> f64 {
        let dx = self.b.x - self.a.x;
        let dy = self.b.y - self.a.y;
        let len_sq = dx * dx + dy * dy;
        let t = if len_sq == 0.0 {
            0.0
        } else {
            (((p.x - self.a.x) * dx + (p.y - self.a.y) * dy) / len_sq).clamp(0.0, 1.0)
        };
        p.distance(&Point::new(self.a.x + t * dx, self.a.y + t * dy))
    }

    /// True if the segment shares any point with `rect`
    /// (Liang–Barsky clipping test).
    pub fn intersects_rect(&self, rect: &Rect) -> bool {
        let (x0, y0) = (self.a.x, self.a.y);
        let dx = self.b.x - x0;
        let dy = self.b.y - y0;
        let mut t0 = 0.0f64;
        let mut t1 = 1.0f64;
        let checks = [
            (-dx, x0 - rect.min_x),
            (dx, rect.max_x - x0),
            (-dy, y0 - rect.min_y),
            (dy, rect.max_y - y0),
        ];
        for (p, q) in checks {
            if p == 0.0 {
                if q < 0.0 {
                    return false;
                }
            } else {
                let r = q / p;
                if p < 0.0 {
                    if r > t1 {
                        return false;
                    }
                    if r > t0 {
                        t0 = r;
                    }
                } else {
                    if r < t0 {
                        return false;
                    }
                    if r < t1 {
                        t1 = r;
                    }
                }
            }
        }
        t0 <= t1
    }
}

impl Codec for Segment {
    fn encode(&self, out: &mut Vec<u8>) {
        self.a.encode(out);
        self.b.encode(out);
    }
    fn decode(buf: &mut &[u8]) -> StorageResult<Self> {
        Ok(Segment {
            a: Point::decode(buf)?,
            b: Point::decode(buf)?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn codec_roundtrips() {
        let p = Point::new(1.5, -2.25);
        assert_eq!(Point::from_bytes(&p.to_bytes()).unwrap(), p);
        let r = Rect::new(0.0, 1.0, 4.0, 9.0);
        assert_eq!(Rect::from_bytes(&r.to_bytes()).unwrap(), r);
        let s = Segment::new(p, Point::new(3.0, 3.0));
        assert_eq!(Segment::from_bytes(&s.to_bytes()).unwrap(), s);
    }

    #[test]
    fn point_distance_and_coord() {
        let a = Point::new(0.0, 0.0);
        let b = Point::new(3.0, 4.0);
        assert!((a.distance(&b) - 5.0).abs() < 1e-12);
        assert_eq!(b.coord(0), 3.0);
        assert_eq!(b.coord(1), 4.0);
        assert_eq!(b.coord(2), 3.0, "dimension wraps modulo 2");
    }

    #[test]
    fn rect_normalizes_and_measures() {
        let r = Rect::new(5.0, 7.0, 1.0, 2.0);
        assert_eq!(r.min_x, 1.0);
        assert_eq!(r.max_y, 7.0);
        assert_eq!(r.width(), 4.0);
        assert_eq!(r.height(), 5.0);
        assert_eq!(r.area(), 20.0);
        assert_eq!(r.center(), Point::new(3.0, 4.5));
    }

    #[test]
    fn rect_containment_and_intersection() {
        let big = Rect::new(0.0, 0.0, 10.0, 10.0);
        let small = Rect::new(2.0, 2.0, 4.0, 4.0);
        let outside = Rect::new(11.0, 11.0, 12.0, 12.0);
        let touching = Rect::new(10.0, 0.0, 12.0, 5.0);
        assert!(big.contains_rect(&small));
        assert!(!small.contains_rect(&big));
        assert!(big.intersects(&small));
        assert!(!big.intersects(&outside));
        assert!(
            big.intersects(&touching),
            "shared edge counts as intersecting"
        );
        assert!(big.contains_point(&Point::new(10.0, 10.0)));
        assert!(!big.contains_point(&Point::new(10.1, 10.0)));
    }

    #[test]
    fn rect_union_and_enlargement() {
        let a = Rect::new(0.0, 0.0, 2.0, 2.0);
        let b = Rect::new(3.0, 3.0, 4.0, 4.0);
        let u = a.union(&b);
        assert_eq!(u, Rect::new(0.0, 0.0, 4.0, 4.0));
        assert!((a.enlargement(&b) - (16.0 - 4.0)).abs() < 1e-12);
        assert_eq!(a.enlargement(&a), 0.0);
    }

    #[test]
    fn rect_min_distance() {
        let r = Rect::new(0.0, 0.0, 2.0, 2.0);
        assert_eq!(r.min_distance(&Point::new(1.0, 1.0)), 0.0);
        assert_eq!(r.min_distance(&Point::new(5.0, 1.0)), 3.0);
        assert!((r.min_distance(&Point::new(5.0, 6.0)) - 5.0).abs() < 1e-12);
    }

    #[test]
    fn quadrants_tile_the_rect() {
        let r = Rect::new(0.0, 0.0, 10.0, 10.0);
        let quads = r.quadrants();
        let total_area: f64 = quads.iter().map(Rect::area).sum();
        assert!((total_area - r.area()).abs() < 1e-9);
        for q in &quads {
            assert!(r.contains_rect(q));
        }
        // Quadrants only overlap along their shared edges.
        assert!(quads[0].intersects(&quads[1]));
        assert!((quads[0].center().x - 2.5).abs() < 1e-12);
    }

    #[test]
    fn segment_rect_intersection() {
        let rect = Rect::new(0.0, 0.0, 10.0, 10.0);
        // Fully inside.
        assert!(Segment::new(Point::new(1.0, 1.0), Point::new(2.0, 2.0)).intersects_rect(&rect));
        // Crossing through.
        assert!(Segment::new(Point::new(-5.0, 5.0), Point::new(15.0, 5.0)).intersects_rect(&rect));
        // Completely outside.
        assert!(
            !Segment::new(Point::new(11.0, 11.0), Point::new(20.0, 20.0)).intersects_rect(&rect)
        );
        // Diagonal that misses the corner.
        assert!(!Segment::new(Point::new(11.0, 0.0), Point::new(20.0, 5.0)).intersects_rect(&rect));
        // Touching an edge.
        assert!(Segment::new(Point::new(10.0, 5.0), Point::new(20.0, 5.0)).intersects_rect(&rect));
        // Degenerate (point) segment inside and outside.
        assert!(Segment::new(Point::new(5.0, 5.0), Point::new(5.0, 5.0)).intersects_rect(&rect));
        assert!(!Segment::new(Point::new(50.0, 5.0), Point::new(50.0, 5.0)).intersects_rect(&rect));
    }

    #[test]
    fn segment_point_distance() {
        let s = Segment::new(Point::new(0.0, 0.0), Point::new(10.0, 0.0));
        assert_eq!(s.distance_to_point(&Point::new(5.0, 0.0)), 0.0);
        assert_eq!(s.distance_to_point(&Point::new(5.0, 3.0)), 3.0);
        // Beyond an endpoint: distance to the endpoint itself.
        assert!((s.distance_to_point(&Point::new(13.0, 4.0)) - 5.0).abs() < 1e-12);
        // Degenerate segment.
        let d = Segment::new(Point::new(1.0, 1.0), Point::new(1.0, 1.0));
        assert!((d.distance_to_point(&Point::new(4.0, 5.0)) - 5.0).abs() < 1e-12);
    }

    #[test]
    fn segment_mbr_and_length() {
        let s = Segment::new(Point::new(4.0, 1.0), Point::new(0.0, 4.0));
        assert_eq!(s.mbr(), Rect::new(0.0, 1.0, 4.0, 4.0));
        assert!((s.length() - 5.0).abs() < 1e-12);
    }
}
