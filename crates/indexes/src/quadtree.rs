//! The disk-based point quadtree (paper Figure 3(a)).
//!
//! Each inner node stores one data point that splits the plane into four
//! quadrants (`NoOfSpacePartitions = 4`); the point itself lives under the
//! *here* (blank) predicate.  This is the data-driven quadtree of the paper,
//! as opposed to the space-driven PMR quadtree in [`crate::pmr`].

use std::sync::Arc;

use spgist_core::{
    Choose, NodeShrink, PathShrink, PickSplit, RowId, SpGistConfig, SpGistOps, SpGistTree,
};
use spgist_storage::{BufferPool, Codec, PageId, StorageError, StorageResult};

use crate::geom::{Point, Rect};
use crate::query::PointQuery;
use crate::spindex::{SpGistBacked, SpIndex};

/// Partition predicate of the point quadtree.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Quadrant {
    /// x < split.x, y ≥ split.y
    NorthWest,
    /// x ≥ split.x, y ≥ split.y
    NorthEast,
    /// x < split.x, y < split.y
    SouthWest,
    /// x ≥ split.x, y < split.y
    SouthEast,
    /// The split point itself (the *blank* child).
    Here,
}

impl Codec for Quadrant {
    fn encode(&self, out: &mut Vec<u8>) {
        let tag: u8 = match self {
            Quadrant::NorthWest => 0,
            Quadrant::NorthEast => 1,
            Quadrant::SouthWest => 2,
            Quadrant::SouthEast => 3,
            Quadrant::Here => 4,
        };
        tag.encode(out);
    }
    fn decode(buf: &mut &[u8]) -> StorageResult<Self> {
        match u8::decode(buf)? {
            0 => Ok(Quadrant::NorthWest),
            1 => Ok(Quadrant::NorthEast),
            2 => Ok(Quadrant::SouthWest),
            3 => Ok(Quadrant::SouthEast),
            4 => Ok(Quadrant::Here),
            other => Err(StorageError::Decode(format!(
                "invalid Quadrant tag {other}"
            ))),
        }
    }
}

impl Quadrant {
    /// Quadrant of `p` relative to `split` (never `Here`).
    fn of(split: &Point, p: &Point) -> Quadrant {
        match (p.x < split.x, p.y < split.y) {
            (true, false) => Quadrant::NorthWest,
            (false, false) => Quadrant::NorthEast,
            (true, true) => Quadrant::SouthWest,
            (false, true) => Quadrant::SouthEast,
        }
    }
}

/// External methods of the SP-GiST point quadtree.
#[derive(Debug, Clone)]
pub struct PointQuadtreeOps {
    config: SpGistConfig,
}

impl Default for PointQuadtreeOps {
    fn default() -> Self {
        PointQuadtreeOps {
            config: SpGistConfig {
                partitions: 4,
                bucket_size: 1,
                resolution: 64,
                path_shrink: PathShrink::NeverShrink,
                node_shrink: NodeShrink::KeepEmpty,
                split_once: false,
                ..SpGistConfig::default()
            },
        }
    }
}

impl PointQuadtreeOps {
    /// Builds the ops from an explicit configuration.
    pub fn with_config(config: SpGistConfig) -> Self {
        PointQuadtreeOps { config }
    }
}

impl SpGistOps for PointQuadtreeOps {
    type Key = Point;
    type Prefix = Point;
    type Pred = Quadrant;
    type Query = PointQuery;
    type Context = ();

    fn config(&self) -> SpGistConfig {
        self.config
    }

    fn key_query(&self, key: &Point) -> PointQuery {
        PointQuery::Equals(*key)
    }

    fn consistent(
        &self,
        prefix: Option<&Point>,
        pred: &Quadrant,
        query: &PointQuery,
        _level: u32,
    ) -> bool {
        let Some(split) = prefix else {
            return true;
        };
        match query {
            PointQuery::Equals(p) => match pred {
                Quadrant::Here => p == split,
                // Duplicates of the split point are routed to the north-east
                // child, so the quadrant test alone (without excluding the
                // split point) keeps them reachable.
                q => Quadrant::of(split, p) == *q,
            },
            PointQuery::InRect(r) => match pred {
                Quadrant::Here => r.contains_point(split),
                Quadrant::NorthWest => r.min_x < split.x && r.max_y >= split.y,
                Quadrant::NorthEast => r.max_x >= split.x && r.max_y >= split.y,
                Quadrant::SouthWest => r.min_x < split.x && r.min_y < split.y,
                Quadrant::SouthEast => r.max_x >= split.x && r.min_y < split.y,
            },
            PointQuery::Nearest(_) => true,
        }
    }

    fn leaf_consistent(&self, key: &Point, query: &PointQuery, _level: u32) -> bool {
        query.matches(key)
    }

    fn choose(
        &self,
        prefix: Option<&Point>,
        preds: &[Quadrant],
        key: &Point,
        _level: u32,
    ) -> Choose<Quadrant, Point> {
        let quadrant = match prefix {
            Some(split) => Quadrant::of(split, key),
            None => Quadrant::NorthEast,
        };
        match preds.iter().position(|p| *p == quadrant) {
            Some(idx) => Choose::Descend(vec![idx]),
            None => Choose::AddEntry(quadrant),
        }
    }

    fn picksplit(&self, items: &[Point], _level: u32, _ctx: &()) -> PickSplit<Point, Quadrant> {
        let split = items[0];
        let mut partitions = vec![
            (Quadrant::NorthWest, Vec::new()),
            (Quadrant::NorthEast, Vec::new()),
            (Quadrant::SouthWest, Vec::new()),
            (Quadrant::SouthEast, Vec::new()),
            (Quadrant::Here, vec![0]),
        ];
        for (idx, p) in items.iter().enumerate().skip(1) {
            let slot = match Quadrant::of(&split, p) {
                Quadrant::NorthWest => 0,
                Quadrant::NorthEast => 1,
                Quadrant::SouthWest => 2,
                Quadrant::SouthEast => 3,
                Quadrant::Here => 1,
            };
            partitions[slot].1.push(idx);
        }
        PickSplit {
            prefix: Some(split),
            partitions,
        }
    }

    fn bulk_prepare(&self, items: &mut [(Point, RowId)], _level: u32, _ctx: &()) {
        // Tile-median split: `picksplit` quarters the plane at the first
        // item, so moving the point nearest the (median x, median y) center
        // to the front spreads the partition across all four quadrants
        // instead of replaying insertion order.
        if items.len() < 2 {
            return;
        }
        let mid = items.len() / 2;
        let mut xs: Vec<f64> = items.iter().map(|(p, _)| p.x).collect();
        let mut ys: Vec<f64> = items.iter().map(|(p, _)| p.y).collect();
        xs.select_nth_unstable_by(mid, f64::total_cmp);
        ys.select_nth_unstable_by(mid, f64::total_cmp);
        let (cx, cy) = (xs[mid], ys[mid]);
        let nearest_center = items
            .iter()
            .enumerate()
            .min_by(|(_, (a, _)), (_, (b, _))| {
                let da = (a.x - cx).powi(2) + (a.y - cy).powi(2);
                let db = (b.x - cx).powi(2) + (b.y - cy).powi(2);
                da.total_cmp(&db)
            })
            .map(|(idx, _)| idx)
            .unwrap_or(0);
        items.swap(0, nearest_center);
    }

    fn inner_distance(
        &self,
        prefix: Option<&Point>,
        pred: &Quadrant,
        query: &PointQuery,
        parent_dist: f64,
        _level: u32,
    ) -> f64 {
        let (PointQuery::Nearest(q) | PointQuery::Equals(q)) = query else {
            return parent_dist;
        };
        let Some(split) = prefix else {
            return parent_dist;
        };
        let dist = match pred {
            Quadrant::Here => split.distance(q),
            quadrant => {
                let (west, south) = match quadrant {
                    Quadrant::NorthWest => (true, false),
                    Quadrant::NorthEast => (false, false),
                    Quadrant::SouthWest => (true, true),
                    Quadrant::SouthEast => (false, true),
                    Quadrant::Here => unreachable!("handled above"),
                };
                let dx = if west {
                    (q.x - split.x).max(0.0)
                } else {
                    (split.x - q.x).max(0.0)
                };
                let dy = if south {
                    (q.y - split.y).max(0.0)
                } else {
                    (split.y - q.y).max(0.0)
                };
                (dx * dx + dy * dy).sqrt()
            }
        };
        parent_dist.max(dist)
    }

    fn leaf_distance(&self, key: &Point, query: &PointQuery) -> f64 {
        match query {
            PointQuery::Nearest(q) | PointQuery::Equals(q) => key.distance(q),
            PointQuery::InRect(r) => r.min_distance(key),
        }
    }
}

/// A disk-based point-quadtree index over 2-D points.
///
/// The uniform surface (`insert`, `delete`, `execute`, `cursor`, `len`,
/// `stats`, `repack`) comes from the [`SpIndex`] trait; the inherent
/// methods below are thin operator sugar (`@`, `^`, `@@`).
pub struct PointQuadtreeIndex {
    tree: Arc<SpGistTree<PointQuadtreeOps>>,
}

impl SpGistBacked for PointQuadtreeIndex {
    type Ops = PointQuadtreeOps;

    const ORDERED_SCANS: bool = true;

    fn backing(&self) -> &Arc<SpGistTree<PointQuadtreeOps>> {
        &self.tree
    }

    fn into_backing_tree(self) -> Arc<SpGistTree<PointQuadtreeOps>> {
        self.tree
    }

    fn open_default(pool: Arc<BufferPool>) -> StorageResult<Self> {
        Self::create(pool)
    }
}

impl PointQuadtreeIndex {
    /// Creates a point quadtree on `pool`.
    pub fn create(pool: Arc<BufferPool>) -> StorageResult<Self> {
        Self::with_ops(pool, PointQuadtreeOps::default())
    }

    /// Creates a point quadtree with explicit parameters.
    pub fn with_ops(pool: Arc<BufferPool>, ops: PointQuadtreeOps) -> StorageResult<Self> {
        Ok(PointQuadtreeIndex {
            tree: Arc::new(SpGistTree::create(pool, ops)?),
        })
    }

    /// Re-opens a point quadtree previously created on the file behind
    /// `pool` from its persisted identity (meta page, owned-page list,
    /// configuration).
    pub fn open_with_ops(
        pool: Arc<BufferPool>,
        ops: PointQuadtreeOps,
        meta_page: PageId,
        pages: Vec<PageId>,
    ) -> StorageResult<Self> {
        Ok(PointQuadtreeIndex {
            tree: Arc::new(SpGistTree::open_with_pages(pool, ops, meta_page, pages)?),
        })
    }

    /// `@` operator: rows whose point equals `point`.
    pub fn equals(&self, point: Point) -> StorageResult<Vec<RowId>> {
        self.cursor(&PointQuery::Equals(point))?.rows()
    }

    /// `^` operator: `(point, row)` pairs inside the box.
    pub fn range(&self, rect: Rect) -> StorageResult<Vec<(Point, RowId)>> {
        self.execute(&PointQuery::InRect(rect))
    }

    /// `@@` operator: the `k` nearest points to `query`, nearest first.
    pub fn nearest(&self, query: Point, k: usize) -> StorageResult<Vec<(Point, RowId, f64)>> {
        self.tree.nn_search(PointQuery::Nearest(query), k)
    }

    /// The underlying generalized tree (internally concurrent; share the
    /// `Arc` to read or write from any thread).
    pub fn tree(&self) -> &Arc<SpGistTree<PointQuadtreeOps>> {
        &self.tree
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn points() -> Vec<Point> {
        vec![
            Point::new(35.0, 42.0),
            Point::new(52.0, 10.0),
            Point::new(62.0, 77.0),
            Point::new(82.0, 65.0),
            Point::new(5.0, 45.0),
            Point::new(27.0, 35.0),
            Point::new(85.0, 15.0),
        ]
    }

    fn index() -> PointQuadtreeIndex {
        let index = PointQuadtreeIndex::create(BufferPool::in_memory()).unwrap();
        for (i, p) in points().iter().enumerate() {
            index.insert(*p, i as RowId).unwrap();
        }
        index
    }

    #[test]
    fn exact_match_finds_each_point() {
        let index = index();
        for (i, p) in points().iter().enumerate() {
            assert_eq!(index.equals(*p).unwrap(), vec![i as RowId]);
        }
        assert!(index.equals(Point::new(0.0, 0.0)).unwrap().is_empty());
    }

    #[test]
    fn range_query_matches_scan() {
        let index = index();
        let rect = Rect::new(20.0, 20.0, 70.0, 80.0);
        let mut hits: Vec<RowId> = index
            .range(rect)
            .unwrap()
            .into_iter()
            .map(|(_, r)| r)
            .collect();
        hits.sort_unstable();
        let expected: Vec<RowId> = points()
            .iter()
            .enumerate()
            .filter(|(_, p)| rect.contains_point(p))
            .map(|(i, _)| i as RowId)
            .collect();
        assert_eq!(hits, expected);
    }

    #[test]
    fn nearest_neighbour_matches_brute_force() {
        let index = index();
        let q = Point::new(60.0, 60.0);
        let nn = index.nearest(q, 3).unwrap();
        assert!(nn.windows(2).all(|w| w[0].2 <= w[1].2));
        let mut brute: Vec<f64> = points().iter().map(|p| p.distance(&q)).collect();
        brute.sort_by(f64::total_cmp);
        for (i, (_, _, d)) in nn.iter().enumerate() {
            assert!((d - brute[i]).abs() < 1e-9, "k={i} distance mismatch");
        }
    }

    #[test]
    fn larger_dataset_consistency_with_kdtree_semantics() {
        let mut state = 99u64;
        let mut next = || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ((state >> 33) as f64 / u32::MAX as f64) * 100.0
        };
        let pts: Vec<Point> = (0..2500).map(|_| Point::new(next(), next())).collect();
        let quad = PointQuadtreeIndex::create(BufferPool::in_memory()).unwrap();
        for (i, p) in pts.iter().enumerate() {
            quad.insert(*p, i as RowId).unwrap();
        }
        let rect = Rect::new(10.0, 40.0, 35.0, 90.0);
        let expected = pts.iter().filter(|p| rect.contains_point(p)).count();
        assert_eq!(quad.range(rect).unwrap().len(), expected);
        for (i, p) in pts.iter().enumerate().step_by(407) {
            assert!(quad.equals(*p).unwrap().contains(&(i as RowId)));
        }
        let stats = quad.stats().unwrap();
        assert_eq!(stats.items, 2500);
        assert!(stats.max_page_height < stats.max_node_height);
    }
}
