//! The disk-based suffix tree for substring matching (paper Section 6,
//! Figure 16).
//!
//! Substring search on a trie becomes prefix search over *suffixes*: for
//! every indexed string, all of its suffixes are inserted into a patricia
//! trie, each pointing back at the original row.  A substring query `@=` is
//! answered as a prefix query over the suffix trie, deduplicated by row id —
//! which is why the paper can compare the suffix tree only against sequential
//! scanning: none of the other access methods supports substring match.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use spgist_core::{RowId, SpGistTree, TreeStats};
use spgist_storage::{BufferPool, PageId, StorageResult};

use crate::query::StringQuery;
use crate::spindex::{SpGistBacked, SpIndex};
use crate::trie::{TrieIndex, TrieOps};

/// Every stored suffix of `word` — the empty word has one suffix, itself.
/// Suffixes are byte-indexed (the paper's word datasets are ASCII); the one
/// place to change when adding non-ASCII support.
fn suffixes(word: &str) -> Vec<&str> {
    if word.is_empty() {
        vec![""]
    } else {
        (0..word.len()).map(|start| &word[start..]).collect()
    }
}

/// A disk-based suffix-tree index over strings (the paper's
/// `SP_GiST_suffix` operator class with its `@=` substring operator).
///
/// One logical item (a word) is stored as all of its suffixes, so the
/// [`SpIndex`] hooks expand inserts and deletes accordingly, report the
/// word count (not the suffix count) from [`SpIndex::len`], and
/// deduplicate query results by row id.  [`StringQuery::Substring`]
/// queries are rewritten into prefix queries over the stored suffixes —
/// the trick that lets the paper answer `@=` with trie navigation.
///
/// The backing trie is internally concurrent: the suffixes of one word are
/// inserted one after another, so a cursor opened mid-insert may observe a
/// word through only some of its suffixes.  Substring queries deduplicate
/// by row id, so the row surfaces at most once either way; statement-level
/// atomicity is the catalog executor's job (its per-table DML lock).
pub struct SuffixTreeIndex {
    trie: TrieIndex,
    /// Number of original strings indexed (not suffixes); atomic so `len()`
    /// is a plain load.
    strings: AtomicU64,
}

impl SpGistBacked for SuffixTreeIndex {
    type Ops = TrieOps;

    const DEDUPE_ROWS: bool = true;

    fn backing(&self) -> &Arc<SpGistTree<TrieOps>> {
        self.trie.backing()
    }

    fn into_backing_tree(self) -> Arc<SpGistTree<TrieOps>> {
        self.trie.into_backing_tree()
    }

    fn open_default(pool: Arc<BufferPool>) -> StorageResult<Self> {
        Self::create(pool)
    }

    fn insert_key(&self, word: String, row: RowId) -> StorageResult<()> {
        let tree = self.backing();
        for suffix in suffixes(&word) {
            tree.insert(suffix.to_string(), row)?;
        }
        self.strings.fetch_add(1, Ordering::Relaxed);
        Ok(())
    }

    /// Removes every suffix entry of `word` for `row`.
    ///
    /// The caller must pass the word originally indexed for that row (the
    /// `spgist-catalog` executor reads it back from the heap).  Passing a
    /// *different* word cannot be detected in general — a stored suffix of
    /// the indexed word is indistinguishable from a suffix of the requested
    /// one — but the common misuses are contained: every suffix is verified
    /// present *before* anything is removed (so a word that was never
    /// indexed deletes nothing and returns `false`), and the word counter
    /// never underflows.  Concurrent writers to the *same* `(word, row)` are
    /// the catalog executor's job (its per-table DML lock); writers to other
    /// keys proceed in parallel and cannot disturb the verification.
    fn delete_key(&self, word: &String, row: RowId) -> StorageResult<bool> {
        let suffixes = suffixes(word);
        let tree = self.backing();
        for suffix in &suffixes {
            // Streaming presence probe: stop at the first hit instead of
            // materializing every row sharing this (possibly very common)
            // suffix.
            let query = StringQuery::Equals((*suffix).to_string());
            let present = tree
                .search_cursor(query)
                .any(|item| matches!(item, Ok((_, r)) if r == row));
            if !present {
                return Ok(false);
            }
        }
        for suffix in suffixes {
            tree.delete(&suffix.to_string(), row)?;
        }
        let _ = self
            .strings
            .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |n| {
                Some(n.saturating_sub(1))
            });
        Ok(true)
    }

    /// Inserts a batch of words — all suffixes of all words.  Suffixes land
    /// one by one; cursor-level atomicity of the batch is the catalog
    /// executor's job.
    fn insert_batch_keys(&self, items: Vec<(String, RowId)>) -> StorageResult<()> {
        let words = items.len() as u64;
        let tree = self.backing();
        for (word, row) in &items {
            for suffix in suffixes(word) {
                tree.insert(suffix.to_string(), *row)?;
            }
        }
        self.strings.fetch_add(words, Ordering::Relaxed);
        Ok(())
    }

    /// Bulk build: the words are expanded into the full suffix set *before*
    /// the backing trie is built, so the sort-based trie build sees every
    /// suffix at once and sibling runs of shared suffixes are contiguous.
    fn bulk_build_keys(&self, items: Vec<(String, RowId)>) -> StorageResult<TreeStats> {
        let words = items.len() as u64;
        let total: usize = items.iter().map(|(w, _)| w.len().max(1)).sum();
        let mut expanded: Vec<(String, RowId)> = Vec::with_capacity(total);
        for (word, row) in &items {
            for suffix in suffixes(word) {
                expanded.push((suffix.to_string(), *row));
            }
        }
        let stats = self.backing().bulk_build(expanded)?;
        self.strings.fetch_add(words, Ordering::Relaxed);
        Ok(stats)
    }

    fn translate_query(&self, query: &StringQuery) -> StringQuery {
        match query {
            // Substring match over words = prefix match over suffixes.
            StringQuery::Substring(needle) => StringQuery::Prefix(needle.clone()),
            other => other.clone(),
        }
    }

    fn item_count(&self) -> u64 {
        self.strings.load(Ordering::Relaxed)
    }
}

impl SuffixTreeIndex {
    /// Creates a suffix-tree index on `pool`.
    pub fn create(pool: Arc<BufferPool>) -> StorageResult<Self> {
        Ok(SuffixTreeIndex {
            trie: TrieIndex::with_ops(pool, TrieOps::patricia())?,
            strings: AtomicU64::new(0),
        })
    }

    /// Re-opens a suffix tree previously created on the file behind `pool`
    /// from its persisted identity.  On top of the backing trie's meta page,
    /// owned-page list and configuration, the suffix tree persists its
    /// logical word count (`strings`) — the trie's own item count is the
    /// *suffix* count.
    pub fn open_with_ops(
        pool: Arc<BufferPool>,
        ops: TrieOps,
        meta_page: PageId,
        pages: Vec<PageId>,
        strings: u64,
    ) -> StorageResult<Self> {
        Ok(SuffixTreeIndex {
            trie: TrieIndex::open_with_ops(pool, ops, meta_page, pages)?,
            strings: AtomicU64::new(strings),
        })
    }

    /// Indexes `word`: every suffix of the word is inserted, pointing at
    /// heap row `row` (borrowed-`str` shim over [`SpIndex::insert`]).
    pub fn insert(&self, word: &str, row: RowId) -> StorageResult<()> {
        SpIndex::insert(self, word.to_string(), row)
    }

    /// Removes the word previously indexed for `row`; returns whether
    /// anything was removed (borrowed-`str` shim over [`SpIndex::delete`]).
    pub fn delete(&self, word: &str, row: RowId) -> StorageResult<bool> {
        SpIndex::delete(self, &word.to_string(), row)
    }

    /// `@=` operator: rows whose key contains `needle` as a substring.
    pub fn substring(&self, needle: &str) -> StorageResult<Vec<RowId>> {
        let mut rows = self
            .cursor(&StringQuery::Substring(needle.to_string()))?
            .rows()?;
        rows.sort_unstable();
        Ok(rows)
    }

    /// Number of suffix entries stored in the underlying trie.
    pub fn suffix_count(&self) -> u64 {
        self.backing().len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn index_with(words: &[&str]) -> SuffixTreeIndex {
        let index = SuffixTreeIndex::create(BufferPool::in_memory()).unwrap();
        for (i, w) in words.iter().enumerate() {
            index.insert(w, i as RowId).unwrap();
        }
        index
    }

    #[test]
    fn substring_finds_matches_anywhere_in_the_word() {
        let index = index_with(&["database", "partition", "tree", "substring"]);
        assert_eq!(index.substring("base").unwrap(), vec![0]);
        assert_eq!(index.substring("art").unwrap(), vec![1]);
        assert_eq!(index.substring("tri").unwrap(), vec![3]);
        assert_eq!(index.substring("t").unwrap(), vec![0, 1, 2, 3]);
        assert!(index.substring("zzz").unwrap().is_empty());
    }

    #[test]
    fn each_row_reported_once_despite_repeated_substrings() {
        let index = index_with(&["banana"]);
        // "an" occurs twice in "banana" but the row must be reported once.
        assert_eq!(index.substring("an").unwrap(), vec![0]);
        assert_eq!(index.substring("a").unwrap(), vec![0]);
    }

    #[test]
    fn suffix_count_is_sum_of_lengths() {
        let index = index_with(&["abc", "de"]);
        assert_eq!(index.suffix_count(), 5);
        assert_eq!(index.len(), 2);
    }

    #[test]
    fn agreement_with_sequential_contains_scan() {
        let words = [
            "space",
            "partitioning",
            "trees",
            "postgresql",
            "realization",
            "performance",
            "quadtree",
            "kdtree",
            "suffix",
            "patricia",
        ];
        let index = index_with(&words);
        for needle in ["a", "tr", "ti", "on", "qu", "zz", "post"] {
            let expected: Vec<RowId> = words
                .iter()
                .enumerate()
                .filter(|(_, w)| w.contains(needle))
                .map(|(i, _)| i as RowId)
                .collect();
            assert_eq!(
                index.substring(needle).unwrap(),
                expected,
                "needle {needle}"
            );
        }
    }

    #[test]
    fn whole_word_is_a_substring_of_itself() {
        let index = index_with(&["hello"]);
        assert_eq!(index.substring("hello").unwrap(), vec![0]);
        assert!(index.substring("helloo").unwrap().is_empty());
    }

    #[test]
    fn delete_removes_every_suffix_of_the_word() {
        let index = index_with(&["database", "base"]);
        assert_eq!(index.substring("base").unwrap(), vec![0, 1]);
        assert!(index.delete("database", 0).unwrap());
        assert_eq!(index.substring("base").unwrap(), vec![1]);
        assert!(index.substring("data").unwrap().is_empty());
        assert_eq!(index.len(), 1);
        // Suffixes of the surviving word are untouched.
        assert_eq!(index.suffix_count(), 4);
        // Deleting again (or a word never indexed) removes nothing.
        assert!(!index.delete("database", 0).unwrap());
        assert!(!index.delete("tree", 7).unwrap());
        assert_eq!(index.len(), 1);
    }

    #[test]
    fn deleting_an_unindexed_word_leaves_overlapping_suffixes_intact() {
        let index = index_with(&["database"]);
        // "xbase" was never indexed; its tail suffixes collide with stored
        // suffixes of "database", but every suffix is verified present
        // before anything is removed, so nothing is deleted.
        assert!(!index.delete("xbase", 0).unwrap());
        assert_eq!(index.substring("base").unwrap(), vec![0]);
        assert_eq!(index.len(), 1);
    }

    #[test]
    fn empty_word_roundtrip() {
        let index = index_with(&[]);
        index.insert("", 3).unwrap();
        assert_eq!(index.len(), 1);
        assert_eq!(index.substring("").unwrap(), vec![3]);
        assert!(index.delete("", 3).unwrap());
        assert!(index.is_empty());
    }
}
