//! The disk-based suffix tree for substring matching (paper Section 6,
//! Figure 16).
//!
//! Substring search on a trie becomes prefix search over *suffixes*: for
//! every indexed string, all of its suffixes are inserted into a patricia
//! trie, each pointing back at the original row.  A substring query `@=` is
//! answered as a prefix query over the suffix trie, deduplicated by row id —
//! which is why the paper can compare the suffix tree only against sequential
//! scanning: none of the other access methods supports substring match.

use std::collections::HashSet;
use std::sync::Arc;

use spgist_core::{RowId, TreeStats};
use spgist_storage::{BufferPool, StorageResult};

use crate::query::StringQuery;
use crate::trie::{TrieIndex, TrieOps};

/// A disk-based suffix-tree index over strings (the paper's
/// `SP_GiST_suffix` operator class with its `@=` substring operator).
pub struct SuffixTreeIndex {
    trie: TrieIndex,
    /// Number of original strings indexed (not suffixes).
    strings: u64,
}

impl SuffixTreeIndex {
    /// Creates a suffix-tree index on `pool`.
    pub fn create(pool: Arc<BufferPool>) -> StorageResult<Self> {
        Ok(SuffixTreeIndex {
            trie: TrieIndex::with_ops(pool, TrieOps::patricia())?,
            strings: 0,
        })
    }

    /// Indexes `word`: every suffix of the word is inserted, pointing at
    /// heap row `row`.
    pub fn insert(&mut self, word: &str, row: RowId) -> StorageResult<()> {
        for start in 0..word.len() {
            self.trie.insert(&word[start..], row)?;
        }
        // The empty string has one suffix: itself.
        if word.is_empty() {
            self.trie.insert("", row)?;
        }
        self.strings += 1;
        Ok(())
    }

    /// `@=` operator: rows whose key contains `needle` as a substring.
    pub fn substring(&self, needle: &str) -> StorageResult<Vec<RowId>> {
        let hits = self.trie.search(&StringQuery::Prefix(needle.to_string()))?;
        let mut seen = HashSet::new();
        let mut rows: Vec<RowId> = hits
            .into_iter()
            .map(|(_, row)| row)
            .filter(|row| seen.insert(*row))
            .collect();
        rows.sort_unstable();
        Ok(rows)
    }

    /// Number of indexed strings.
    pub fn len(&self) -> u64 {
        self.strings
    }

    /// True if nothing has been indexed.
    pub fn is_empty(&self) -> bool {
        self.strings == 0
    }

    /// Number of suffix entries stored in the underlying trie.
    pub fn suffix_count(&self) -> u64 {
        self.trie.len()
    }

    /// Structural statistics of the underlying trie.
    pub fn stats(&self) -> StorageResult<TreeStats> {
        self.trie.stats()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn index_with(words: &[&str]) -> SuffixTreeIndex {
        let mut index = SuffixTreeIndex::create(BufferPool::in_memory()).unwrap();
        for (i, w) in words.iter().enumerate() {
            index.insert(w, i as RowId).unwrap();
        }
        index
    }

    #[test]
    fn substring_finds_matches_anywhere_in_the_word() {
        let index = index_with(&["database", "partition", "tree", "substring"]);
        assert_eq!(index.substring("base").unwrap(), vec![0]);
        assert_eq!(index.substring("art").unwrap(), vec![1]);
        assert_eq!(index.substring("tri").unwrap(), vec![3]);
        assert_eq!(index.substring("t").unwrap(), vec![0, 1, 2, 3]);
        assert!(index.substring("zzz").unwrap().is_empty());
    }

    #[test]
    fn each_row_reported_once_despite_repeated_substrings() {
        let index = index_with(&["banana"]);
        // "an" occurs twice in "banana" but the row must be reported once.
        assert_eq!(index.substring("an").unwrap(), vec![0]);
        assert_eq!(index.substring("a").unwrap(), vec![0]);
    }

    #[test]
    fn suffix_count_is_sum_of_lengths() {
        let index = index_with(&["abc", "de"]);
        assert_eq!(index.suffix_count(), 5);
        assert_eq!(index.len(), 2);
    }

    #[test]
    fn agreement_with_sequential_contains_scan() {
        let words = [
            "space", "partitioning", "trees", "postgresql", "realization", "performance",
            "quadtree", "kdtree", "suffix", "patricia",
        ];
        let index = index_with(&words);
        for needle in ["a", "tr", "ti", "on", "qu", "zz", "post"] {
            let expected: Vec<RowId> = words
                .iter()
                .enumerate()
                .filter(|(_, w)| w.contains(needle))
                .map(|(i, _)| i as RowId)
                .collect();
            assert_eq!(index.substring(needle).unwrap(), expected, "needle {needle}");
        }
    }

    #[test]
    fn whole_word_is_a_substring_of_itself() {
        let index = index_with(&["hello"]);
        assert_eq!(index.substring("hello").unwrap(), vec![0]);
        assert!(index.substring("helloo").unwrap().is_empty());
    }
}
