//! The disk-based kd-tree (paper Table 1, Figure 3(b)).
//!
//! Every inner node stores one data point (the *old point* of the paper's
//! PickSplit description) as its prefix; entries discriminate on the x
//! coordinate at even levels and on the y coordinate at odd levels:
//! `Left` (strictly smaller), `Right` (greater or equal), and `Here` (the
//! split point itself — the paper's *blank* predicate).  `BucketSize = 1` and
//! `NoOfSpacePartitions = 2`, as in Table 1.
//!
//! Registered operators (paper Table 4): `@` point equality, `^` range
//! (inside a box), and `@@` incremental NN under the Euclidean distance.

use std::sync::Arc;

use spgist_core::{
    Choose, NodeShrink, PathShrink, PickSplit, RowId, SpGistConfig, SpGistOps, SpGistTree,
};
use spgist_storage::{BufferPool, Codec, PageId, StorageError, StorageResult};

use crate::geom::{Point, Rect};
use crate::query::PointQuery;
use crate::spindex::{SpGistBacked, SpIndex};

/// Partition predicate of the kd-tree.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum KdSide {
    /// Coordinate strictly smaller than the split point's.
    Left,
    /// Coordinate greater than or equal to the split point's.
    Right,
    /// The split point itself (the paper's *blank* child).
    Here,
}

impl Codec for KdSide {
    fn encode(&self, out: &mut Vec<u8>) {
        let tag: u8 = match self {
            KdSide::Left => 0,
            KdSide::Right => 1,
            KdSide::Here => 2,
        };
        tag.encode(out);
    }
    fn decode(buf: &mut &[u8]) -> StorageResult<Self> {
        match u8::decode(buf)? {
            0 => Ok(KdSide::Left),
            1 => Ok(KdSide::Right),
            2 => Ok(KdSide::Here),
            other => Err(StorageError::Decode(format!("invalid KdSide tag {other}"))),
        }
    }
}

/// External methods of the SP-GiST kd-tree.
#[derive(Debug, Clone)]
pub struct KdTreeOps {
    config: SpGistConfig,
}

impl Default for KdTreeOps {
    fn default() -> Self {
        KdTreeOps {
            config: SpGistConfig {
                partitions: 2,
                bucket_size: 1,
                resolution: 64,
                path_shrink: PathShrink::NeverShrink,
                node_shrink: NodeShrink::KeepEmpty,
                split_once: false,
                ..SpGistConfig::default()
            },
        }
    }
}

impl KdTreeOps {
    /// Builds the ops from an explicit configuration (larger bucket sizes
    /// make a bucketed kd-tree; the paper's configuration uses 1).
    pub fn with_config(config: SpGistConfig) -> Self {
        KdTreeOps { config }
    }

    fn side_of(split: &Point, p: &Point, level: u32) -> KdSide {
        if p == split {
            KdSide::Here
        } else if p.coord(level) < split.coord(level) {
            KdSide::Left
        } else {
            KdSide::Right
        }
    }
}

impl SpGistOps for KdTreeOps {
    type Key = Point;
    type Prefix = Point;
    type Pred = KdSide;
    type Query = PointQuery;
    type Context = ();

    fn config(&self) -> SpGistConfig {
        self.config
    }

    fn key_query(&self, key: &Point) -> PointQuery {
        PointQuery::Equals(*key)
    }

    fn consistent(
        &self,
        prefix: Option<&Point>,
        pred: &KdSide,
        query: &PointQuery,
        level: u32,
    ) -> bool {
        let Some(split) = prefix else {
            // An inner kd-tree node always carries its split point; be
            // conservative if it is missing.
            return true;
        };
        let c = split.coord(level);
        match query {
            PointQuery::Equals(p) => match pred {
                KdSide::Left => p.coord(level) < c,
                KdSide::Right => p.coord(level) >= c,
                KdSide::Here => p == split,
            },
            PointQuery::InRect(r) => {
                let (lo, hi) = if level.is_multiple_of(2) {
                    (r.min_x, r.max_x)
                } else {
                    (r.min_y, r.max_y)
                };
                match pred {
                    KdSide::Left => lo < c,
                    KdSide::Right => hi >= c,
                    KdSide::Here => r.contains_point(split),
                }
            }
            PointQuery::Nearest(_) => true,
        }
    }

    fn leaf_consistent(&self, key: &Point, query: &PointQuery, _level: u32) -> bool {
        query.matches(key)
    }

    fn choose(
        &self,
        prefix: Option<&Point>,
        preds: &[KdSide],
        key: &Point,
        level: u32,
    ) -> Choose<KdSide, Point> {
        let side = match prefix {
            // The paper routes new points left or right only; `Here` is
            // reserved for the split point stored at PickSplit time, and
            // exact duplicates of it go right.
            Some(split) => {
                if key.coord(level) < split.coord(level) {
                    KdSide::Left
                } else {
                    KdSide::Right
                }
            }
            None => KdSide::Right,
        };
        match preds.iter().position(|p| *p == side) {
            Some(idx) => Choose::Descend(vec![idx]),
            None => Choose::AddEntry(side),
        }
    }

    fn picksplit(&self, items: &[Point], level: u32, _ctx: &()) -> PickSplit<Point, KdSide> {
        // "Put the old point in a child node with predicate blank" — the
        // first item of the overfull node plays the role of the old point.
        let split = items[0];
        let mut partitions = vec![
            (KdSide::Left, Vec::new()),
            (KdSide::Right, Vec::new()),
            (KdSide::Here, vec![0]),
        ];
        for (idx, p) in items.iter().enumerate().skip(1) {
            match Self::side_of(&split, p, level) {
                KdSide::Left => partitions[0].1.push(idx),
                KdSide::Right | KdSide::Here => partitions[1].1.push(idx),
            }
        }
        PickSplit {
            prefix: Some(split),
            partitions,
        }
    }

    fn bulk_prepare(&self, items: &mut [(Point, RowId)], level: u32, _ctx: &()) {
        // STR-flavored median split: `picksplit` discriminates on the first
        // item (the paper's "old point"), so moving the median in this
        // level's coordinate to the front makes every bulk-build split cut
        // the partition in half — a balanced kd-tree instead of whatever
        // insertion order would have produced.
        if items.len() < 2 {
            return;
        }
        let mid = items.len() / 2;
        items.select_nth_unstable_by(mid, |a, b| a.0.coord(level).total_cmp(&b.0.coord(level)));
        items.swap(0, mid);
    }

    fn inner_distance(
        &self,
        prefix: Option<&Point>,
        pred: &KdSide,
        query: &PointQuery,
        parent_dist: f64,
        level: u32,
    ) -> f64 {
        let (PointQuery::Nearest(q) | PointQuery::Equals(q)) = query else {
            return parent_dist;
        };
        let Some(split) = prefix else {
            return parent_dist;
        };
        let c = split.coord(level);
        let qc = q.coord(level);
        let plane_dist = match pred {
            KdSide::Left => {
                if qc < c {
                    0.0
                } else {
                    qc - c
                }
            }
            KdSide::Right => {
                if qc >= c {
                    0.0
                } else {
                    c - qc
                }
            }
            KdSide::Here => split.distance(q),
        };
        parent_dist.max(plane_dist)
    }

    fn leaf_distance(&self, key: &Point, query: &PointQuery) -> f64 {
        match query {
            PointQuery::Nearest(q) | PointQuery::Equals(q) => key.distance(q),
            PointQuery::InRect(r) => r.min_distance(key),
        }
    }
}

/// A disk-based kd-tree index over 2-D points (the paper's `SP_GiST_kdtree`
/// operator class).
///
/// The uniform surface (`insert`, `delete`, `execute`, `cursor`, `len`,
/// `stats`, `repack`) comes from the [`SpIndex`] trait; the inherent
/// methods below are thin operator sugar (`@`, `^`, `@@`).
pub struct KdTreeIndex {
    tree: Arc<SpGistTree<KdTreeOps>>,
}

impl SpGistBacked for KdTreeIndex {
    type Ops = KdTreeOps;

    const ORDERED_SCANS: bool = true;

    fn backing(&self) -> &Arc<SpGistTree<KdTreeOps>> {
        &self.tree
    }

    fn into_backing_tree(self) -> Arc<SpGistTree<KdTreeOps>> {
        self.tree
    }

    fn open_default(pool: Arc<BufferPool>) -> StorageResult<Self> {
        Self::create(pool)
    }
}

impl KdTreeIndex {
    /// Creates a kd-tree on `pool` with the paper's parameters
    /// (`BucketSize = 1`).
    pub fn create(pool: Arc<BufferPool>) -> StorageResult<Self> {
        Self::with_ops(pool, KdTreeOps::default())
    }

    /// Creates a kd-tree with explicit parameters.
    pub fn with_ops(pool: Arc<BufferPool>, ops: KdTreeOps) -> StorageResult<Self> {
        Ok(KdTreeIndex {
            tree: Arc::new(SpGistTree::create(pool, ops)?),
        })
    }

    /// Re-opens a kd-tree previously created on the file behind `pool` from
    /// its persisted identity (meta page, owned-page list, configuration).
    pub fn open_with_ops(
        pool: Arc<BufferPool>,
        ops: KdTreeOps,
        meta_page: PageId,
        pages: Vec<PageId>,
    ) -> StorageResult<Self> {
        Ok(KdTreeIndex {
            tree: Arc::new(SpGistTree::open_with_pages(pool, ops, meta_page, pages)?),
        })
    }

    /// `@` operator: rows whose point equals `point`.
    pub fn equals(&self, point: Point) -> StorageResult<Vec<RowId>> {
        self.cursor(&PointQuery::Equals(point))?.rows()
    }

    /// `^` operator: `(point, row)` pairs inside the box.
    pub fn range(&self, rect: Rect) -> StorageResult<Vec<(Point, RowId)>> {
        self.execute(&PointQuery::InRect(rect))
    }

    /// `@@` operator: the `k` nearest points to `query`, nearest first.
    pub fn nearest(&self, query: Point, k: usize) -> StorageResult<Vec<(Point, RowId, f64)>> {
        self.tree.nn_search(PointQuery::Nearest(query), k)
    }

    /// The underlying generalized tree (internally concurrent; share the
    /// `Arc` to read or write from any thread).
    pub fn tree(&self) -> &Arc<SpGistTree<KdTreeOps>> {
        &self.tree
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The city points of the paper's Figure 3.
    fn cities() -> Vec<(&'static str, Point)> {
        vec![
            ("Chicago", Point::new(35.0, 42.0)),
            ("Mobile", Point::new(52.0, 10.0)),
            ("Toronto", Point::new(62.0, 77.0)),
            ("Buffalo", Point::new(82.0, 65.0)),
            ("Denver", Point::new(5.0, 45.0)),
            ("Omaha", Point::new(27.0, 35.0)),
            ("Atlanta", Point::new(85.0, 15.0)),
        ]
    }

    fn city_index() -> KdTreeIndex {
        let index = KdTreeIndex::create(BufferPool::in_memory()).unwrap();
        for (i, (_, p)) in cities().iter().enumerate() {
            index.insert(*p, i as RowId).unwrap();
        }
        index
    }

    #[test]
    fn point_match_finds_each_city() {
        let index = city_index();
        for (i, (_, p)) in cities().iter().enumerate() {
            assert_eq!(index.equals(*p).unwrap(), vec![i as RowId]);
        }
        assert!(index.equals(Point::new(1.0, 1.0)).unwrap().is_empty());
    }

    #[test]
    fn range_query_matches_linear_scan() {
        let index = city_index();
        let rect = Rect::new(20.0, 20.0, 70.0, 80.0);
        let mut hits: Vec<RowId> = index
            .range(rect)
            .unwrap()
            .into_iter()
            .map(|(_, r)| r)
            .collect();
        hits.sort_unstable();
        let expected: Vec<RowId> = cities()
            .iter()
            .enumerate()
            .filter(|(_, (_, p))| rect.contains_point(p))
            .map(|(i, _)| i as RowId)
            .collect();
        assert_eq!(hits, expected);
        assert!(!hits.is_empty());
    }

    #[test]
    fn nearest_neighbours_in_euclidean_order() {
        let index = city_index();
        let query = Point::new(30.0, 40.0);
        let nn = index.nearest(query, cities().len()).unwrap();
        assert_eq!(nn.len(), cities().len());
        assert!(nn.windows(2).all(|w| w[0].2 <= w[1].2));
        // Brute-force closest.
        let brute = cities()
            .iter()
            .map(|(_, p)| p.distance(&query))
            .fold(f64::INFINITY, f64::min);
        assert!((nn[0].2 - brute).abs() < 1e-9);
    }

    #[test]
    fn large_uniform_dataset_queries_match_scan() {
        // Deterministic pseudo-random points via a small LCG.
        let mut state = 12345u64;
        let mut next = || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ((state >> 33) as f64 / u32::MAX as f64) * 100.0
        };
        let points: Vec<Point> = (0..4000).map(|_| Point::new(next(), next())).collect();
        let index = KdTreeIndex::create(BufferPool::in_memory()).unwrap();
        for (i, p) in points.iter().enumerate() {
            index.insert(*p, i as RowId).unwrap();
        }
        // Exact match.
        for (i, p) in points.iter().enumerate().step_by(331) {
            assert!(index.equals(*p).unwrap().contains(&(i as RowId)));
        }
        // Range query vs. scan.
        let rect = Rect::new(25.0, 25.0, 40.0, 60.0);
        let expected = points.iter().filter(|p| rect.contains_point(p)).count();
        assert_eq!(index.range(rect).unwrap().len(), expected);
        // Stats: bucket size 1 means at least as many leaves as points.
        let stats = index.stats().unwrap();
        assert_eq!(stats.items, 4000);
        assert!(stats.max_node_height > 10, "kd-tree is a deep binary tree");
        assert!(
            stats.max_page_height < stats.max_node_height,
            "online clustering must keep page height below node height"
        );
    }

    #[test]
    fn duplicate_points_are_retrievable_and_deletable() {
        let index = KdTreeIndex::create(BufferPool::in_memory()).unwrap();
        let p = Point::new(10.0, 20.0);
        for row in 0..5 {
            index.insert(p, row).unwrap();
        }
        assert_eq!(index.equals(p).unwrap().len(), 5);
        assert!(index.delete(&p, 3).unwrap());
        let rows = index.equals(p).unwrap();
        assert_eq!(rows.len(), 4);
        assert!(!rows.contains(&3));
    }

    #[test]
    fn nn_on_empty_index_is_empty() {
        let index = KdTreeIndex::create(BufferPool::in_memory()).unwrap();
        assert!(index.nearest(Point::new(0.0, 0.0), 5).unwrap().is_empty());
        assert!(index.is_empty());
    }
}
