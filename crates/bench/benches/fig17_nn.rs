//! Figure 17: incremental NN search over the kd-tree, point quadtree and
//! trie, varying the number of requested neighbours.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use spgist_bench::{build_kdtree, build_pquadtree, build_trie};
use spgist_datagen::{points, words, QueryWorkload};

fn bench(c: &mut Criterion) {
    let point_data = points(20_000, 42);
    let word_data = words(20_000, 43);
    let (kd, _) = build_kdtree(&point_data);
    let (quad, _) = build_pquadtree(&point_data);
    let (trie, _) = build_trie(&word_data);
    let nn_points = QueryWorkload::nn_points(16, 1);
    let nn_words = QueryWorkload::existing(&word_data, 16, 2);

    let mut group = c.benchmark_group("fig17_nn");
    group.sample_size(10);
    for k in [8usize, 64, 512] {
        group.bench_function(BenchmarkId::new("kdtree", k), |b| {
            let mut i = 0;
            b.iter(|| {
                i = (i + 1) % nn_points.len();
                kd.nearest(nn_points[i], k).unwrap()
            })
        });
        group.bench_function(BenchmarkId::new("pquadtree", k), |b| {
            let mut i = 0;
            b.iter(|| {
                i = (i + 1) % nn_points.len();
                quad.nearest(nn_points[i], k).unwrap()
            })
        });
        group.bench_function(BenchmarkId::new("trie", k), |b| {
            let mut i = 0;
            b.iter(|| {
                i = (i + 1) % nn_words.len();
                trie.nearest(&nn_words[i], k).unwrap()
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
