//! Figure 7: regular-expression (`?`-wildcard) search, trie vs. B⁺-tree.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use spgist_bench::{build_btree, build_trie};
use spgist_datagen::{words, QueryWorkload};

fn bench(c: &mut Criterion) {
    let data = words(20_000, 42);
    let (trie, _) = build_trie(&data);
    let (btree, _) = build_btree(&data);
    let patterns = QueryWorkload::regexes(&data, 64, 2, 3);

    let mut group = c.benchmark_group("fig07_regex_match");
    group.sample_size(20);
    group.bench_function(BenchmarkId::new("trie", data.len()), |b| {
        let mut i = 0;
        b.iter(|| {
            i = (i + 1) % patterns.len();
            trie.regex(&patterns[i]).unwrap()
        })
    });
    group.bench_function(BenchmarkId::new("btree", data.len()), |b| {
        let mut i = 0;
        b.iter(|| {
            i = (i + 1) % patterns.len();
            btree.regex_search(&patterns[i]).unwrap()
        })
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
