//! Ablation: effect of the node→page clustering policy on exact-match search
//! over the patricia trie (DESIGN.md design decision 1).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use spgist_bench::experiment_pool;
use spgist_core::{ClusteringPolicy, RowId, SpGistOps};
use spgist_datagen::{words, QueryWorkload};
use spgist_indexes::SpIndex;
use spgist_indexes::{TrieIndex, TrieOps};

fn build(policy: ClusteringPolicy, data: &[String]) -> TrieIndex {
    let config = TrieOps::patricia().config().with_clustering(policy);
    let index = TrieIndex::with_ops(experiment_pool(), TrieOps::with_config(config)).unwrap();
    for (i, w) in data.iter().enumerate() {
        index.insert(w, i as RowId).unwrap();
    }
    index
}

fn bench(c: &mut Criterion) {
    let data = words(15_000, 42);
    let queries = QueryWorkload::existing(&data, 64, 1);
    let mut group = c.benchmark_group("ablation_clustering_exact_match");
    group.sample_size(20);
    for policy in [
        ClusteringPolicy::ParentFirst,
        ClusteringPolicy::FirstFit,
        ClusteringPolicy::NewPagePerNode,
    ] {
        let index = build(policy, &data);
        group.bench_function(BenchmarkId::new("policy", format!("{policy:?}")), |b| {
            let mut i = 0;
            b.iter(|| {
                i = (i + 1) % queries.len();
                index.equals(&queries[i]).unwrap()
            })
        });
    }
    // Offline repack on top of the default policy.
    let repacked = build(ClusteringPolicy::ParentFirst, &data);
    repacked.repack().unwrap();
    group.bench_function(BenchmarkId::new("policy", "ParentFirst+repack"), |b| {
        let mut i = 0;
        b.iter(|| {
            i = (i + 1) % queries.len();
            repacked.equals(&queries[i]).unwrap()
        })
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
