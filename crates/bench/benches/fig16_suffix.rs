//! Figure 16: substring match, suffix tree vs. sequential scan.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use spgist_bench::{build_seqscan, build_suffix};
use spgist_datagen::{words, QueryWorkload};

fn bench(c: &mut Criterion) {
    let data = words(10_000, 42);
    let (suffix, _) = build_suffix(&data);
    let (table, _) = build_seqscan(&data);
    let needles = QueryWorkload::substrings(&data, 64, 4, 1);

    let mut group = c.benchmark_group("fig16_substring_match");
    group.sample_size(20);
    group.bench_function(BenchmarkId::new("suffix_tree", data.len()), |b| {
        let mut i = 0;
        b.iter(|| {
            i = (i + 1) % needles.len();
            suffix.substring(&needles[i]).unwrap()
        })
    });
    group.bench_function(BenchmarkId::new("seq_scan", data.len()), |b| {
        let mut i = 0;
        b.iter(|| {
            i = (i + 1) % needles.len();
            table.substring(&needles[i]).unwrap()
        })
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
