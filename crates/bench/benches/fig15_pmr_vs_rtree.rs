//! Figure 15: insert, exact-match and window search over line segments,
//! PMR quadtree vs. R-tree.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use spgist_bench::{build_pmr, build_rtree_segments};
use spgist_datagen::{segments, QueryWorkload};
use spgist_indexes::SpIndex;

fn bench(c: &mut Criterion) {
    let data = segments(10_000, 10.0, 42);
    let (pmr, _) = build_pmr(&data);
    let (rt, _) = build_rtree_segments(&data);
    let exact = QueryWorkload::existing(&data, 64, 1);
    let windows = QueryWorkload::windows(64, 5.0, 2);

    let mut group = c.benchmark_group("fig15_exact_match");
    group.sample_size(20);
    group.bench_function(BenchmarkId::new("pmr", data.len()), |b| {
        let mut i = 0;
        b.iter(|| {
            i = (i + 1) % exact.len();
            pmr.equals(exact[i]).unwrap()
        })
    });
    group.bench_function(BenchmarkId::new("rtree", data.len()), |b| {
        let mut i = 0;
        b.iter(|| {
            i = (i + 1) % exact.len();
            rt.segment_match(exact[i]).unwrap()
        })
    });
    group.finish();

    let mut group = c.benchmark_group("fig15_window_search");
    group.sample_size(20);
    group.bench_function(BenchmarkId::new("pmr", data.len()), |b| {
        let mut i = 0;
        b.iter(|| {
            i = (i + 1) % windows.len();
            pmr.window(windows[i]).unwrap()
        })
    });
    group.bench_function(BenchmarkId::new("rtree", data.len()), |b| {
        let mut i = 0;
        b.iter(|| {
            i = (i + 1) % windows.len();
            rt.window(windows[i]).unwrap()
        })
    });
    group.finish();

    let small = segments(3_000, 10.0, 7);
    let mut group = c.benchmark_group("fig15_insert");
    group.sample_size(10);
    group.bench_function(BenchmarkId::new("pmr", small.len()), |b| {
        b.iter(|| build_pmr(&small).0.len())
    });
    group.bench_function(BenchmarkId::new("rtree", small.len()), |b| {
        b.iter(|| build_rtree_segments(&small).0.len())
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
