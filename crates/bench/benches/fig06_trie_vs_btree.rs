//! Figure 6: exact-match and prefix-match search, patricia trie vs. B⁺-tree.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use spgist_bench::{build_btree, build_trie};
use spgist_datagen::{words, QueryWorkload};

fn bench(c: &mut Criterion) {
    let data = words(20_000, 42);
    let (trie, _) = build_trie(&data);
    let (btree, _) = build_btree(&data);
    let exact = QueryWorkload::existing(&data, 64, 1);
    let prefixes = QueryWorkload::prefixes(&data, 64, 2, 2);

    let mut group = c.benchmark_group("fig06_exact_match");
    group.sample_size(20);
    group.bench_function(BenchmarkId::new("trie", data.len()), |b| {
        let mut i = 0;
        b.iter(|| {
            i = (i + 1) % exact.len();
            trie.equals(&exact[i]).unwrap()
        })
    });
    group.bench_function(BenchmarkId::new("btree", data.len()), |b| {
        let mut i = 0;
        b.iter(|| {
            i = (i + 1) % exact.len();
            btree.search_str(&exact[i]).unwrap()
        })
    });
    group.finish();

    let mut group = c.benchmark_group("fig06_prefix_match");
    group.sample_size(20);
    group.bench_function(BenchmarkId::new("trie", data.len()), |b| {
        let mut i = 0;
        b.iter(|| {
            i = (i + 1) % prefixes.len();
            trie.prefix(&prefixes[i]).unwrap()
        })
    });
    group.bench_function(BenchmarkId::new("btree", data.len()), |b| {
        let mut i = 0;
        b.iter(|| {
            i = (i + 1) % prefixes.len();
            btree.prefix_search(prefixes[i].as_bytes()).unwrap()
        })
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
