//! Figures 9–10: insertion time and index size, trie vs. B⁺-tree.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use spgist_bench::{build_btree, build_trie};
use spgist_datagen::words;
use spgist_indexes::SpIndex;

fn bench(c: &mut Criterion) {
    let data = words(5_000, 42);

    let mut group = c.benchmark_group("fig09_bulk_insert");
    group.sample_size(10);
    group.bench_function(BenchmarkId::new("trie", data.len()), |b| {
        b.iter(|| build_trie(&data).0.len())
    });
    group.bench_function(BenchmarkId::new("btree", data.len()), |b| {
        b.iter(|| build_btree(&data).0.len())
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
