//! Ablation: trie interface parameters (PathShrink and BucketSize, paper
//! Figures 1–2 / Table 1).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use spgist_bench::experiment_pool;
use spgist_core::{RowId, SpGistOps};
use spgist_datagen::{words, QueryWorkload};
use spgist_indexes::{TrieIndex, TrieOps};

fn build(ops: TrieOps, data: &[String]) -> TrieIndex {
    let index = TrieIndex::with_ops(experiment_pool(), ops).unwrap();
    for (i, w) in data.iter().enumerate() {
        index.insert(w, i as RowId).unwrap();
    }
    index
}

fn bench(c: &mut Criterion) {
    let data = words(15_000, 42);
    let queries = QueryWorkload::existing(&data, 64, 1);
    let variants = [
        ("patricia_bucket16", TrieOps::patricia()),
        ("never_shrink_bucket16", TrieOps::never_shrink()),
        (
            "patricia_bucket1",
            TrieOps::with_config(TrieOps::patricia().config().with_bucket_size(1)),
        ),
    ];
    let mut group = c.benchmark_group("ablation_trie_variants_exact_match");
    group.sample_size(20);
    for (name, ops) in variants {
        let index = build(ops, &data);
        group.bench_function(BenchmarkId::new("variant", name), |b| {
            let mut i = 0;
            b.iter(|| {
                i = (i + 1) % queries.len();
                index.equals(&queries[i]).unwrap()
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
