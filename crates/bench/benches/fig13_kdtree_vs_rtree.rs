//! Figures 13–14: point-match, range search and insert, kd-tree vs. R-tree.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use spgist_bench::{build_kdtree, build_rtree_points};
use spgist_datagen::{points, QueryWorkload};
use spgist_indexes::SpIndex;

fn bench(c: &mut Criterion) {
    let data = points(20_000, 42);
    let (kd, _) = build_kdtree(&data);
    let (rt, _) = build_rtree_points(&data);
    let point_queries = QueryWorkload::existing(&data, 64, 1);
    let windows = QueryWorkload::windows(64, 5.0, 2);

    let mut group = c.benchmark_group("fig13_point_match");
    group.sample_size(20);
    group.bench_function(BenchmarkId::new("kdtree", data.len()), |b| {
        let mut i = 0;
        b.iter(|| {
            i = (i + 1) % point_queries.len();
            kd.equals(point_queries[i]).unwrap()
        })
    });
    group.bench_function(BenchmarkId::new("rtree", data.len()), |b| {
        let mut i = 0;
        b.iter(|| {
            i = (i + 1) % point_queries.len();
            rt.point_match(point_queries[i]).unwrap()
        })
    });
    group.finish();

    let mut group = c.benchmark_group("fig13_range_search");
    group.sample_size(20);
    group.bench_function(BenchmarkId::new("kdtree", data.len()), |b| {
        let mut i = 0;
        b.iter(|| {
            i = (i + 1) % windows.len();
            kd.range(windows[i]).unwrap()
        })
    });
    group.bench_function(BenchmarkId::new("rtree", data.len()), |b| {
        let mut i = 0;
        b.iter(|| {
            i = (i + 1) % windows.len();
            rt.window(windows[i]).unwrap()
        })
    });
    group.finish();

    let small = points(4_000, 7);
    let mut group = c.benchmark_group("fig13_insert");
    group.sample_size(10);
    group.bench_function(BenchmarkId::new("kdtree", small.len()), |b| {
        b.iter(|| build_kdtree(&small).0.len())
    });
    group.bench_function(BenchmarkId::new("rtree", small.len()), |b| {
        b.iter(|| build_rtree_points(&small).0.len())
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
