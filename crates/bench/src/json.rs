//! Machine-readable experiment artifacts (`BENCH_<experiment>.json`).
//!
//! Every experiment the harness prints can also be archived as a small
//! JSON file for cross-night trend tracking: one object with the
//! experiment name, the scale it ran at, the column names, and one row
//! object per printed table row.  The format is deliberately tiny and
//! hand-rolled (the workspace has no serde dependency); the invariant the
//! tests pin down is that braces balance and every row carries every
//! column.

use std::fmt::Write as _;
use std::path::{Path, PathBuf};

/// One JSON cell value.
#[derive(Debug, Clone)]
pub enum JsonVal {
    /// An unsigned integer.
    U(u64),
    /// A float, serialized with enough precision for trend lines.
    F(f64),
    /// A string.
    S(String),
}

impl From<u64> for JsonVal {
    fn from(v: u64) -> Self {
        JsonVal::U(v)
    }
}
impl From<usize> for JsonVal {
    fn from(v: usize) -> Self {
        JsonVal::U(v as u64)
    }
}
impl From<u32> for JsonVal {
    fn from(v: u32) -> Self {
        JsonVal::U(u64::from(v))
    }
}
impl From<f64> for JsonVal {
    fn from(v: f64) -> Self {
        JsonVal::F(v)
    }
}
impl From<&str> for JsonVal {
    fn from(v: &str) -> Self {
        JsonVal::S(v.to_string())
    }
}
impl From<String> for JsonVal {
    fn from(v: String) -> Self {
        JsonVal::S(v)
    }
}

fn push_val(out: &mut String, val: &JsonVal) {
    match val {
        JsonVal::U(v) => {
            let _ = write!(out, "{v}");
        }
        JsonVal::F(v) => {
            if v.is_finite() {
                let _ = write!(out, "{v:.6}");
            } else {
                out.push_str("null");
            }
        }
        JsonVal::S(v) => {
            let _ = write!(out, "{:?}", v); // Debug escaping ≈ JSON for ASCII
        }
    }
}

/// Serializes an experiment's rows: `columns[i]` names `rows[_][i]`.
///
/// # Panics
///
/// Panics if any row's length differs from `columns` — a mismatched
/// artifact is a bug at the call site, not something to archive.
pub fn rows_json(
    experiment: &str,
    scale: usize,
    columns: &[&str],
    rows: &[Vec<JsonVal>],
) -> String {
    let mut out = String::from("{\n");
    let _ = writeln!(out, "  \"experiment\": {experiment:?},");
    let _ = writeln!(out, "  \"scale\": {scale},");
    out.push_str("  \"rows\": [\n");
    for (i, row) in rows.iter().enumerate() {
        assert_eq!(
            row.len(),
            columns.len(),
            "experiment {experiment}: row {i} has {} cells for {} columns",
            row.len(),
            columns.len()
        );
        out.push_str("    {");
        for (j, (name, val)) in columns.iter().zip(row).enumerate() {
            if j > 0 {
                out.push_str(", ");
            }
            let _ = write!(out, "{name:?}: ");
            push_val(&mut out, val);
        }
        out.push('}');
        out.push_str(if i + 1 < rows.len() { ",\n" } else { "\n" });
    }
    out.push_str("  ]\n}\n");
    out
}

/// Writes [`rows_json`] to `dir/BENCH_<experiment>.json`, creating `dir`
/// if needed, and returns the path written.
pub fn write_rows_json(
    dir: &Path,
    experiment: &str,
    scale: usize,
    columns: &[&str],
    rows: &[Vec<JsonVal>],
) -> std::io::Result<PathBuf> {
    std::fs::create_dir_all(dir)?;
    let path = dir.join(format!("BENCH_{experiment}.json"));
    std::fs::write(&path, rows_json(experiment, scale, columns, rows))?;
    Ok(path)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rows_json_is_balanced_and_complete() {
        let rows = vec![
            vec![
                JsonVal::from("trie"),
                JsonVal::from(10u64),
                JsonVal::from(1.5),
            ],
            vec![
                JsonVal::from("kdtree"),
                JsonVal::from(20u64),
                JsonVal::from(f64::NAN),
            ],
        ];
        let json = rows_json("smoke", 2, &["class", "n", "ms"], &rows);
        assert!(json.contains("\"experiment\": \"smoke\""));
        assert!(json.contains("\"scale\": 2"));
        assert!(json.contains("\"class\": \"trie\""));
        assert!(json.contains("\"ms\": null"), "NaN must serialize as null");
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        assert_eq!(json.matches('[').count(), json.matches(']').count());
    }

    #[test]
    #[should_panic(expected = "row 0 has")]
    fn mismatched_row_width_panics() {
        rows_json("bad", 1, &["a", "b"], &[vec![JsonVal::from(1u64)]]);
    }
}
