//! Reopen experiment: cold-open latency vs. rebuild-from-scratch.
//!
//! The paper's setting presumes a persistent DBMS: an SP-GiST index
//! survives restarts like any PostgreSQL relation, and nobody re-inserts
//! 32 M keys after every backend restart.  With the durable catalog
//! (`Database::create` / `close` / `open`) that tradeoff is finally
//! measurable here: this experiment builds a word table with a trie index,
//! closes it, and compares
//!
//! * **reopen** — `Database::open` on the closed file (catalog chain + tree
//!   meta pages; zero rebuild scans), and
//! * **rebuild** — recreating the table and index from raw data by
//!   re-inserting every row,
//!
//! reporting wall-clock time, the physical page reads each path performs,
//! and the first-query latency after each (the reopen path pays its data
//! page faults lazily, on first touch — the honest cost of a cold cache).

use std::path::PathBuf;
use std::time::Instant;

use spgist_catalog::exec::{Database, IndexSpec, KeyType, Predicate};
use spgist_core::RowId;
use spgist_datagen::words;

/// One row of the reopen experiment.
#[derive(Debug, Clone)]
pub struct ReopenRow {
    /// Number of rows in the table.
    pub rows: usize,
    /// Pages in the database file after the clean close.
    pub file_pages: u32,
    /// Wall-clock milliseconds to build the table + index from scratch.
    pub rebuild_ms: f64,
    /// Wall-clock milliseconds for `Database::open` on the closed file.
    pub open_ms: f64,
    /// Physical page reads performed by the open (catalog + meta only).
    pub open_reads: u64,
    /// Replacement policy of the reopened pool.
    pub policy: &'static str,
    /// Pool hit rate over the open plus the cold first query, in `[0, 1]`.
    pub cold_hit_rate: f64,
    /// First-query latency after the cold open, milliseconds.
    pub first_query_ms: f64,
    /// First-query latency on the freshly rebuilt (warm) database,
    /// milliseconds.
    pub warm_query_ms: f64,
    /// Rows the probe query returned (work checksum; identical on both
    /// paths).
    pub query_rows: usize,
}

fn scratch_path(rows: usize) -> PathBuf {
    let dir =
        std::env::temp_dir().join(format!("spgist-bench-reopen-{}-{rows}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("create scratch dir");
    dir.join("db.pages")
}

fn build(path: &PathBuf, data: &[String]) -> Database {
    let mut db = Database::create(path).expect("create database");
    db.create_table("words", KeyType::Varchar)
        .expect("create table");
    let table = db.table_handle("words").expect("table handle");
    for (row, w) in data.iter().enumerate() {
        let got = table.insert(w.as_str()).expect("insert");
        assert_eq!(got, row as RowId);
    }
    drop(table);
    db.create_index("words", "words_trie", IndexSpec::Trie)
        .expect("create index");
    db
}

/// Runs one close/reopen cycle per size in `sizes` and reports the
/// reopen-vs-rebuild comparison.
pub fn run_reopen_experiment(sizes: &[usize], seed: u64) -> Vec<ReopenRow> {
    sizes
        .iter()
        .map(|&rows| {
            let data = words(rows, seed);
            let path = scratch_path(rows);
            let probe = Predicate::str_prefix(&data[rows / 2][..2.min(data[rows / 2].len())]);

            // Build from scratch (this *is* the rebuild measurement) and
            // measure a warm first query before closing.
            let rebuild_started = Instant::now();
            let db = build(&path, &data);
            let rebuild_ms = rebuild_started.elapsed().as_secs_f64() * 1e3;
            let warm_started = Instant::now();
            let query_rows = db
                .query("words", &probe)
                .expect("warm query")
                .rows()
                .expect("warm rows")
                .len();
            let warm_query_ms = warm_started.elapsed().as_secs_f64() * 1e3;
            db.close().expect("clean close");

            // Cold open.
            let open_started = Instant::now();
            let db = Database::open(&path).expect("reopen");
            let open_ms = open_started.elapsed().as_secs_f64() * 1e3;
            let open_reads = db.pool().stats().physical_reads;
            let file_pages = db.pool().page_count();

            // First query on the cold cache: pays the lazy page faults.
            let first_started = Instant::now();
            let cold_rows = db
                .query("words", &probe)
                .expect("cold query")
                .rows()
                .expect("cold rows")
                .len();
            let first_query_ms = first_started.elapsed().as_secs_f64() * 1e3;
            assert_eq!(cold_rows, query_rows, "reopen must not change answers");
            let policy = db.pool().policy_name();
            let cold_hit_rate = db.pool().hit_rate();

            drop(db);
            let _ = std::fs::remove_dir_all(path.parent().expect("scratch dir"));
            ReopenRow {
                rows,
                file_pages,
                rebuild_ms,
                open_ms,
                open_reads,
                policy,
                cold_hit_rate,
                first_query_ms,
                warm_query_ms,
                query_rows,
            }
        })
        .collect()
}
