//! Regenerates every table and figure of the paper's evaluation.
//!
//! ```text
//! cargo run -p spgist-bench --release --bin experiments -- all
//! cargo run -p spgist-bench --release --bin experiments -- fig6 --scale 2
//! ```
//!
//! Subcommands: `table7`, `fig6`..`fig17` (Figures 6–12 share one string run,
//! 13–14 one point run), `ablation-clustering`, `ablation-trie`, `all`.
//! `--scale N` multiplies the dataset sizes (default 1); `--queries N` sets
//! the number of queries per measurement (default 100).

use spgist_bench::loc::table7;
use spgist_bench::stats::{log10_ratio, ratio_pct};
use spgist_bench::{
    point_sizes, run_build_experiment, run_clustering_ablation, run_mixed_workload,
    run_nn_experiments, run_point_experiments, run_read_scaling, run_reopen_experiment,
    run_segment_experiments, run_string_experiments, run_substring_experiments,
    run_trie_variant_ablation, word_sizes, write_build_json, NN_KS,
};

struct Options {
    command: String,
    scale: usize,
    queries: usize,
    /// Directory machine-readable artifacts (`BENCH_build.json`) are written
    /// into; `None` prints tables only.
    json_dir: Option<std::path::PathBuf>,
}

fn parse_args() -> Options {
    let mut args = std::env::args().skip(1);
    let mut command = String::from("all");
    let mut scale = 1usize;
    let mut queries = 100usize;
    let mut json_dir = None;
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--scale" => {
                scale = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage("--scale needs a positive integer"));
            }
            "--queries" => {
                queries = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage("--queries needs a positive integer"));
            }
            "--json-dir" => {
                json_dir =
                    Some(std::path::PathBuf::from(args.next().unwrap_or_else(|| {
                        usage("--json-dir needs a directory path")
                    })));
            }
            "--help" | "-h" => usage(""),
            other if !other.starts_with('-') => command = other.to_string(),
            other => usage(&format!("unknown flag {other}")),
        }
    }
    Options {
        command,
        scale,
        queries,
        json_dir,
    }
}

fn usage(message: &str) -> ! {
    if !message.is_empty() {
        eprintln!("error: {message}");
    }
    eprintln!(
        "usage: experiments [table7|fig6|fig7|fig8|fig9|fig10|fig11|fig12|fig13|fig14|fig15|fig16|fig17|ablation-clustering|ablation-trie|concurrency|reopen|build|all] [--scale N] [--queries N] [--json-dir DIR]"
    );
    std::process::exit(if message.is_empty() { 0 } else { 2 });
}

const SEED: u64 = 20060403;

fn main() {
    let opts = parse_args();
    let run_all = opts.command == "all";
    let wants = |name: &str| run_all || opts.command == name;

    if wants("table7") {
        print_table7();
    }
    let string_figs = ["fig6", "fig7", "fig8", "fig9", "fig10", "fig11", "fig12"];
    if run_all || string_figs.contains(&opts.command.as_str()) {
        print_string_figures(&opts, run_all);
    }
    if wants("fig13") || wants("fig14") {
        print_point_figures(&opts, run_all);
    }
    if wants("fig15") {
        print_segment_figure(&opts);
    }
    if wants("fig16") {
        print_substring_figure(&opts);
    }
    if wants("fig17") {
        print_nn_figure(&opts);
    }
    if wants("ablation-clustering") {
        print_clustering_ablation(&opts);
    }
    if wants("ablation-trie") {
        print_trie_ablation(&opts);
    }
    if wants("concurrency") {
        print_concurrency(&opts);
    }
    if wants("reopen") {
        print_reopen(&opts);
    }
    if wants("build") {
        print_build(&opts);
    }
}

fn print_build(opts: &Options) {
    let rows = run_build_experiment(opts.scale, SEED);
    println!("== Build: insert-loop vs spgistbuild bulk build (eviction-bounded pool) ==");
    println!(
        "{:>10} {:>8} {:>11} {:>9} {:>9} {:>9} {:>9} {:>9} {:>7} {:>7} {:>6} {:>6} {:>8}",
        "class",
        "rows",
        "insert ms",
        "bulk ms",
        "ins wr",
        "bulk wr",
        "ins pg",
        "bulk pg",
        "ins h",
        "bulk h",
        "ins f",
        "bulk f",
        "speedup"
    );
    for r in &rows {
        println!(
            "{:>10} {:>8} {:>11.1} {:>9.1} {:>9} {:>9} {:>9} {:>9} {:>7} {:>7} {:>6.2} {:>6.2} {:>7.1}x",
            r.class,
            r.rows,
            r.insert.ms,
            r.bulk.ms,
            r.insert.writes,
            r.bulk.writes,
            r.insert.pages,
            r.bulk.pages,
            r.insert.page_height,
            r.bulk.page_height,
            r.insert.fill,
            r.bulk.fill,
            r.speedup()
        );
    }
    println!(
        "(wr = physical page writes incl. final flush; h = tree height in pages; f = page fill)"
    );
    println!();
    if let Some(dir) = &opts.json_dir {
        write_build_json(&rows, opts.scale, dir).expect("write BENCH_build.json");
        println!("wrote {}", dir.join("BENCH_build.json").display());
        println!();
    }
}

fn print_reopen(opts: &Options) {
    // Durable-catalog experiment: build → close → cold open vs. rebuilding
    // from raw data, on a file-backed database.
    let sizes: Vec<usize> = [10_000usize, 40_000]
        .iter()
        .map(|n| n * opts.scale.max(1))
        .collect();
    let rows = run_reopen_experiment(&sizes, SEED);
    println!("== Reopen: durable-catalog cold open vs. rebuild from scratch ==");
    println!(
        "{:>10} {:>10} {:>13} {:>10} {:>11} {:>14} {:>13} {:>9}",
        "rows",
        "pages",
        "rebuild ms",
        "open ms",
        "open reads",
        "1st query ms",
        "warm query ms",
        "speedup"
    );
    for r in &rows {
        println!(
            "{:>10} {:>10} {:>13.1} {:>10.2} {:>11} {:>14.3} {:>13.3} {:>8.0}x",
            r.rows,
            r.file_pages,
            r.rebuild_ms,
            r.open_ms,
            r.open_reads,
            r.first_query_ms,
            r.warm_query_ms,
            r.rebuild_ms / r.open_ms.max(1e-9)
        );
    }
    println!("(open reads = physical page reads at open: catalog chain + tree meta pages only)");
    println!();
}

fn print_table7() {
    println!("== Table 7: external-method code size per index ==");
    println!(
        "{:<16} {:>16} {:>18}",
        "index", "external lines", "% of total code"
    );
    for row in table7() {
        println!(
            "{:<16} {:>16} {:>17.1}%",
            row.index, row.external_lines, row.percent_of_total
        );
    }
    println!();
}

fn print_string_figures(opts: &Options, run_all: bool) {
    let sizes = word_sizes(opts.scale);
    let rows = run_string_experiments(&sizes, opts.queries, SEED);
    let show = |fig: &str| run_all || opts.command == fig;

    if show("fig6") {
        println!("== Figure 6: search time relative performance, (B+-tree / trie) x 100 ==");
        println!(
            "{:>10} {:>22} {:>22}",
            "keys", "exact match (ratio %)", "prefix match (ratio %)"
        );
        for r in &rows {
            println!(
                "{:>10} {:>22.1} {:>22.1}",
                r.size,
                ratio_pct(r.btree_exact_ms, r.trie_exact_ms),
                ratio_pct(r.btree_prefix_ms, r.trie_prefix_ms)
            );
        }
        println!();
    }
    if show("fig7") {
        println!("== Figure 7: regular-expression search, log10(B+-tree / trie) ==");
        println!(
            "{:>10} {:>14} {:>14} {:>12}",
            "keys", "trie (ms)", "btree (ms)", "log10 ratio"
        );
        for r in &rows {
            println!(
                "{:>10} {:>14.4} {:>14.4} {:>12.2}",
                r.size,
                r.trie_regex_ms,
                r.btree_regex_ms,
                log10_ratio(r.btree_regex_ms, r.trie_regex_ms)
            );
        }
        println!();
    }
    if show("fig8") {
        println!("== Figure 8: trie exact-match search time standard deviation ==");
        println!("{:>10} {:>14} {:>14}", "keys", "mean (ms)", "stddev (ms)");
        for r in &rows {
            println!(
                "{:>10} {:>14.4} {:>14.4}",
                r.size, r.trie_exact_ms, r.trie_exact_stddev_ms
            );
        }
        println!();
    }
    if show("fig9") {
        println!("== Figure 9: insert time relative performance, (B+-tree / trie) x 100 ==");
        println!(
            "{:>10} {:>14} {:>14} {:>12}",
            "keys", "trie (ms)", "btree (ms)", "ratio %"
        );
        for r in &rows {
            println!(
                "{:>10} {:>14.1} {:>14.1} {:>12.1}",
                r.size,
                r.trie_insert_ms,
                r.btree_insert_ms,
                ratio_pct(r.btree_insert_ms, r.trie_insert_ms)
            );
        }
        println!();
    }
    if show("fig10") {
        println!("== Figure 10: relative index size, (B+-tree / trie) x 100 ==");
        println!(
            "{:>10} {:>14} {:>14} {:>12}",
            "keys", "trie pages", "btree pages", "ratio %"
        );
        for r in &rows {
            println!(
                "{:>10} {:>14} {:>14} {:>12.1}",
                r.size,
                r.trie_pages,
                r.btree_pages,
                ratio_pct(r.btree_pages as f64, r.trie_pages as f64)
            );
        }
        println!();
    }
    if show("fig11") {
        println!("== Figure 11: maximum tree height in nodes ==");
        println!("{:>10} {:>12} {:>12}", "keys", "B-tree", "SP-GiST trie");
        for r in &rows {
            println!(
                "{:>10} {:>12} {:>12}",
                r.size, r.btree_height, r.trie_node_height
            );
        }
        println!();
    }
    if show("fig12") {
        println!("== Figure 12: maximum tree height in pages ==");
        println!("{:>10} {:>12} {:>12}", "keys", "B-tree", "SP-GiST trie");
        for r in &rows {
            println!(
                "{:>10} {:>12} {:>12}",
                r.size, r.btree_height, r.trie_page_height
            );
        }
        println!();
    }
}

fn print_point_figures(opts: &Options, run_all: bool) {
    let sizes = point_sizes(opts.scale);
    let rows = run_point_experiments(&sizes, opts.queries, SEED);
    let show = |fig: &str| run_all || opts.command == fig;

    if show("fig13") {
        println!("== Figure 13: kd-tree vs R-tree, (R-tree / kd-tree) x 100 ==");
        println!(
            "{:>10} {:>16} {:>16} {:>12}",
            "points", "point search %", "range search %", "insert %"
        );
        for r in &rows {
            println!(
                "{:>10} {:>16.1} {:>16.1} {:>12.1}",
                r.size,
                ratio_pct(r.rtree_point_ms, r.kd_point_ms),
                ratio_pct(r.rtree_range_ms, r.kd_range_ms),
                ratio_pct(r.rtree_insert_ms, r.kd_insert_ms)
            );
        }
        println!();
    }
    if show("fig14") {
        println!("== Figure 14: relative index size, (R-tree / kd-tree) x 100 ==");
        println!(
            "{:>10} {:>14} {:>14} {:>12}",
            "points", "kd pages", "rtree pages", "ratio %"
        );
        for r in &rows {
            println!(
                "{:>10} {:>14} {:>14} {:>12.1}",
                r.size,
                r.kd_pages,
                r.rtree_pages,
                ratio_pct(r.rtree_pages as f64, r.kd_pages as f64)
            );
        }
        println!();
    }
}

fn print_segment_figure(opts: &Options) {
    let sizes = point_sizes(opts.scale);
    let rows = run_segment_experiments(&sizes, opts.queries, SEED);
    println!("== Figure 15: PMR quadtree vs R-tree, (R-tree / PMR quadtree) x 100 ==");
    println!(
        "{:>10} {:>12} {:>18} {:>16} {:>12} {:>12}",
        "segments", "insert %", "exact match %", "range search %", "pmr pages", "rtree pages"
    );
    for r in &rows {
        println!(
            "{:>10} {:>12.1} {:>18.1} {:>16.1} {:>12} {:>12}",
            r.size,
            ratio_pct(r.rtree_insert_ms, r.pmr_insert_ms),
            ratio_pct(r.rtree_exact_ms, r.pmr_exact_ms),
            ratio_pct(r.rtree_window_ms, r.pmr_window_ms),
            r.pmr_pages,
            r.rtree_pages
        );
    }
    println!();
}

fn print_substring_figure(opts: &Options) {
    let sizes = spgist_bench::substring_sizes(opts.scale);
    let rows = run_substring_experiments(&sizes, opts.queries, SEED);
    println!("== Figure 16: substring match, log10(sequential / suffix tree) ==");
    println!(
        "{:>10} {:>16} {:>16} {:>12}",
        "strings", "suffix (ms)", "seq scan (ms)", "log10 ratio"
    );
    for r in &rows {
        println!(
            "{:>10} {:>16.4} {:>16.4} {:>12.2}",
            r.size,
            r.suffix_ms,
            r.seqscan_ms,
            log10_ratio(r.seqscan_ms, r.suffix_ms)
        );
    }
    println!();
}

fn print_nn_figure(opts: &Options) {
    let n = 20_000 * opts.scale.max(1);
    let rows = run_nn_experiments(n, &NN_KS, opts.queries.min(20), SEED);
    println!("== Figure 17: NN search performance ({n} tuples per relation) ==");
    println!(
        "{:>8} {:>14} {:>14} {:>14}",
        "k", "kd-tree (ms)", "pquadtree (ms)", "trie (ms)"
    );
    for r in &rows {
        println!(
            "{:>8} {:>14.3} {:>14.3} {:>14.3}",
            r.k, r.kd_ms, r.quad_ms, r.trie_ms
        );
    }
    println!();
}

fn print_clustering_ablation(opts: &Options) {
    let rows = run_clustering_ablation(20_000 * opts.scale.max(1), opts.queries, SEED);
    println!("== Ablation: node-to-page clustering policy (patricia trie) ==");
    println!(
        "{:>18} {:>12} {:>10} {:>14}",
        "policy", "page height", "pages", "exact (ms)"
    );
    for r in &rows {
        println!(
            "{:>18} {:>12} {:>10} {:>14.4}",
            format!("{:?}", r.policy),
            r.page_height,
            r.pages,
            r.exact_ms
        );
    }
    println!();
}

fn print_concurrency(opts: &Options) {
    let n = 20_000 * opts.scale.max(1);
    let queries = opts.queries.max(20);
    let thread_counts = [1usize, 2, 4, 8];
    let rows = run_read_scaling(n, &thread_counts, queries, SEED);
    println!("== Concurrency: read-scaling on a shared kd-tree ({n} points) ==");
    println!(
        "(host reports {} cores; read latches scale with real cores)",
        std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get)
    );
    println!(
        "{:>8} {:>10} {:>12} {:>14} {:>12} {:>10}",
        "threads", "queries", "elapsed ms", "queries/s", "mean ms", "p99 ms"
    );
    for r in &rows {
        println!(
            "{:>8} {:>10} {:>12.1} {:>14.0} {:>12.4} {:>10.4}",
            r.threads, r.total_queries, r.elapsed_ms, r.throughput_qps, r.mean_ms, r.p99_ms
        );
    }
    let base = rows.iter().find(|r| r.threads == 1);
    let four = rows.iter().find(|r| r.threads == 4);
    if let (Some(base), Some(four)) = (base, four) {
        println!(
            "read throughput speedup at 4 threads vs 1: {:.2}x",
            four.throughput_qps / base.throughput_qps.max(1e-9)
        );
    }
    println!();

    let mixed = run_mixed_workload(n, 4, 2, queries, queries * 5, SEED);
    println!("== Concurrency: mixed readers + writer bursts ==");
    println!(
        "{:>8} {:>8} {:>8} {:>8} {:>12} {:>10} {:>10} {:>12} {:>13}",
        "readers",
        "writers",
        "reads",
        "writes",
        "elapsed ms",
        "read q/s",
        "ins/s",
        "read p99 ms",
        "write p99 ms"
    );
    println!(
        "{:>8} {:>8} {:>8} {:>8} {:>12.1} {:>10.0} {:>10.0} {:>12.4} {:>13.4}",
        mixed.readers,
        mixed.writers,
        mixed.reads,
        mixed.writes,
        mixed.elapsed_ms,
        mixed.read_qps,
        mixed.write_ips,
        mixed.read_p99_ms,
        mixed.write_p99_ms
    );
    println!();
}

fn print_trie_ablation(opts: &Options) {
    let rows = run_trie_variant_ablation(20_000 * opts.scale.max(1), opts.queries, SEED);
    println!("== Ablation: trie interface parameters (PathShrink / BucketSize) ==");
    println!(
        "{:>34} {:>10} {:>12} {:>8} {:>12}",
        "variant", "nodes", "node height", "pages", "exact (ms)"
    );
    for r in &rows {
        println!(
            "{:>34} {:>10} {:>12} {:>8} {:>12.4}",
            r.variant, r.nodes, r.node_height, r.pages, r.exact_ms
        );
    }
    println!();
}
