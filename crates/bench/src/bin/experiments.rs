//! Regenerates every table and figure of the paper's evaluation.
//!
//! ```text
//! cargo run -p spgist-bench --release --bin experiments -- all
//! cargo run -p spgist-bench --release --bin experiments -- fig6 --scale 2
//! ```
//!
//! Subcommands: `table7`, `fig6`..`fig17` (Figures 6–12 share one string run,
//! 13–14 one point run), `ablation-clustering`, `ablation-trie`, `wal`,
//! `all`.  `--scale N` multiplies the dataset sizes (default 1);
//! `--queries N` sets the number of queries per measurement (default 100).
//! With `--json-dir DIR`, every experiment also writes a machine-readable
//! `BENCH_<experiment>.json` artifact into DIR.
//!
//! Two extra commands drive the CI crash-recovery smoke test and take
//! `--db PATH`: `crash-writer` runs an endless acknowledged-write workload
//! mixing auto-commit inserts with multi-statement transactions — committed
//! ones are acknowledged after `commit()` returns, aborted ones leave
//! absence promises — and is meant to be SIGKILLed mid-run (sometimes with
//! a transaction open); `crash-verify` reopens the database and checks
//! every acknowledged commit survived and no aborted value resurfaced.

use spgist_bench::loc::table7;
use spgist_bench::stats::{log10_ratio, ratio_pct};
use spgist_bench::{
    point_sizes, run_build_experiment, run_checkpoint_experiment, run_clustering_ablation,
    run_hot_writer_scaling, run_io_patterns_on, run_mixed_workload, run_nn_experiments,
    run_point_experiments, run_pool_overhead, run_read_scaling, run_reopen_experiment,
    run_segment_experiments, run_string_experiments, run_substring_experiments,
    run_trie_variant_ablation, run_wal_experiment, word_sizes, write_build_json, write_rows_json,
    IoBackend, JsonVal, NN_KS,
};

struct Options {
    command: String,
    scale: usize,
    queries: usize,
    /// Directory machine-readable artifacts (`BENCH_<experiment>.json`) are
    /// written into; `None` prints tables only.
    json_dir: Option<std::path::PathBuf>,
    /// Database file for `crash-writer` / `crash-verify`.
    db: Option<std::path::PathBuf>,
    /// Pager backend for `io-patterns`: in-memory (default) or a real file
    /// under the OS temp directory.
    backend: IoBackend,
}

fn parse_args() -> Options {
    let mut args = std::env::args().skip(1);
    let mut command = String::from("all");
    let mut scale = 1usize;
    let mut queries = 100usize;
    let mut json_dir = None;
    let mut db = None;
    let mut backend = IoBackend::Mem;
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--scale" => {
                scale = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage("--scale needs a positive integer"));
            }
            "--queries" => {
                queries = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage("--queries needs a positive integer"));
            }
            "--json-dir" => {
                json_dir =
                    Some(std::path::PathBuf::from(args.next().unwrap_or_else(|| {
                        usage("--json-dir needs a directory path")
                    })));
            }
            "--db" => {
                db = Some(std::path::PathBuf::from(
                    args.next()
                        .unwrap_or_else(|| usage("--db needs a file path")),
                ));
            }
            "--backend" => {
                backend = args
                    .next()
                    .as_deref()
                    .and_then(IoBackend::parse)
                    .unwrap_or_else(|| usage("--backend needs `mem` or `file`"));
            }
            "--help" | "-h" => usage(""),
            other if !other.starts_with('-') => command = other.to_string(),
            other => usage(&format!("unknown flag {other}")),
        }
    }
    Options {
        command,
        scale,
        queries,
        json_dir,
        db,
        backend,
    }
}

fn usage(message: &str) -> ! {
    if !message.is_empty() {
        eprintln!("error: {message}");
    }
    eprintln!(
        "usage: experiments [table7|fig6|fig7|fig8|fig9|fig10|fig11|fig12|fig13|fig14|fig15|fig16|fig17|ablation-clustering|ablation-trie|concurrency|reopen|build|wal|io-patterns|checkpoint|all] [--scale N] [--queries N] [--json-dir DIR] [--backend mem|file]\n       experiments crash-writer --db PATH\n       experiments crash-verify --db PATH"
    );
    std::process::exit(if message.is_empty() { 0 } else { 2 });
}

/// Writes `BENCH_<experiment>.json` into `--json-dir` when set.
fn emit_json(opts: &Options, experiment: &str, columns: &[&str], rows: &[Vec<JsonVal>]) {
    if let Some(dir) = &opts.json_dir {
        let path = write_rows_json(dir, experiment, opts.scale, columns, rows)
            .unwrap_or_else(|e| panic!("write BENCH_{experiment}.json: {e}"));
        println!("wrote {}", path.display());
        println!();
    }
}

const SEED: u64 = 20060403;

fn main() {
    let opts = parse_args();
    match opts.command.as_str() {
        "crash-writer" => run_crash_writer(&opts),
        "crash-verify" => run_crash_verify(&opts),
        _ => {}
    }
    let run_all = opts.command == "all";
    let wants = |name: &str| run_all || opts.command == name;

    if wants("table7") {
        print_table7(&opts);
    }
    let string_figs = ["fig6", "fig7", "fig8", "fig9", "fig10", "fig11", "fig12"];
    if run_all || string_figs.contains(&opts.command.as_str()) {
        print_string_figures(&opts, run_all);
    }
    if wants("fig13") || wants("fig14") {
        print_point_figures(&opts, run_all);
    }
    if wants("fig15") {
        print_segment_figure(&opts);
    }
    if wants("fig16") {
        print_substring_figure(&opts);
    }
    if wants("fig17") {
        print_nn_figure(&opts);
    }
    if wants("ablation-clustering") {
        print_clustering_ablation(&opts);
    }
    if wants("ablation-trie") {
        print_trie_ablation(&opts);
    }
    if wants("concurrency") {
        print_concurrency(&opts);
    }
    if wants("reopen") {
        print_reopen(&opts);
    }
    if wants("build") {
        print_build(&opts);
    }
    if wants("wal") {
        print_wal(&opts);
    }
    if wants("io-patterns") {
        print_io_patterns(&opts);
    }
    if wants("checkpoint") {
        print_checkpoint(&opts);
    }
}

fn print_io_patterns(opts: &Options) {
    let n = 20_000 * opts.scale.max(1);
    let queries = opts.queries.max(16);
    let rows = run_io_patterns_on(n, queries, SEED, opts.backend);
    println!(
        "== I/O patterns: replacement policy x pool size x workload ({n} points, {} backend) ==",
        opts.backend.name()
    );
    println!(
        "{:>10} {:>6} {:>7} {:>11} {:>8} {:>9} {:>9} {:>7} {:>9} {:>11} {:>9}",
        "workload",
        "pool%",
        "frames",
        "policy",
        "queries",
        "logical",
        "physical",
        "evict",
        "hit rate",
        "elapsed ms",
        "p99 ms"
    );
    for r in &rows {
        println!(
            "{:>10} {:>6} {:>7} {:>11} {:>8} {:>9} {:>9} {:>7} {:>9.4} {:>11.2} {:>9.4}",
            r.workload,
            r.pool_pct,
            r.frames,
            r.policy,
            r.queries,
            r.logical_reads,
            r.physical_reads,
            r.evictions,
            r.hit_rate,
            r.elapsed_ms,
            r.p99_ms
        );
    }
    // The acceptance summary: at a pool 10% of the data, do the
    // scan-resistant policies hold more of the hot set than plain LRU?
    let hit = |policy: &str| {
        rows.iter()
            .find(|r| r.policy == policy && r.pool_pct == 10 && r.workload == "scan+point")
            .map_or(f64::NAN, |r| r.hit_rate)
    };
    println!(
        "scan+point @ 10% pool hit rates: sieve {:.4}, clock {:.4}, lru {:.4}, lru-scan {:.4}",
        hit("sieve"),
        hit("clock"),
        hit("lru"),
        hit("lru-scan")
    );
    println!();
    emit_json(
        opts,
        "io_patterns",
        &[
            "backend",
            "workload",
            "pool_pct",
            "frames",
            "data_pages",
            "policy",
            "queries",
            "logical_reads",
            "physical_reads",
            "evictions",
            "hit_rate",
            "elapsed_ms",
            "p99_ms",
            "result_rows",
        ],
        &rows
            .iter()
            .map(|r| {
                vec![
                    r.backend.into(),
                    r.workload.into(),
                    r.pool_pct.into(),
                    r.frames.into(),
                    r.data_pages.into(),
                    r.policy.into(),
                    r.queries.into(),
                    r.logical_reads.into(),
                    r.physical_reads.into(),
                    r.evictions.into(),
                    r.hit_rate.into(),
                    r.elapsed_ms.into(),
                    r.p99_ms.into(),
                    r.result_rows.into(),
                ]
            })
            .collect::<Vec<_>>(),
    );

    let overhead = run_pool_overhead(4_096, 200_000, SEED ^ 0xf0);
    println!("== I/O patterns: replacement bookkeeping, 4096-frame pool, ~50% miss rate ==");
    println!(
        "{:>11} {:>8} {:>8} {:>9} {:>11} {:>13} {:>10}",
        "policy", "frames", "pages", "fetches", "elapsed ms", "fetches/s", "misses"
    );
    for r in &overhead {
        println!(
            "{:>11} {:>8} {:>8} {:>9} {:>11.1} {:>13.0} {:>10}",
            r.policy,
            r.frames,
            r.pages,
            r.fetches,
            r.elapsed_ms,
            r.fetches_per_sec,
            r.physical_reads
        );
    }
    let scan = overhead.iter().find(|r| r.policy == "lru-scan");
    let sieve = overhead.iter().find(|r| r.policy == "sieve");
    if let (Some(scan), Some(sieve)) = (scan, sieve) {
        println!(
            "O(1) eviction speedup vs linear victim scan: {:.1}x ({:.0} vs {:.0} fetches/s)",
            sieve.fetches_per_sec / scan.fetches_per_sec.max(1e-9),
            sieve.fetches_per_sec,
            scan.fetches_per_sec
        );
    }
    println!();
    emit_json(
        opts,
        "pool_overhead",
        &[
            "policy",
            "frames",
            "pages",
            "fetches",
            "elapsed_ms",
            "fetches_per_sec",
            "physical_reads",
        ],
        &overhead
            .iter()
            .map(|r| {
                vec![
                    r.policy.into(),
                    r.frames.into(),
                    r.pages.into(),
                    r.fetches.into(),
                    r.elapsed_ms.into(),
                    r.fetches_per_sec.into(),
                    r.physical_reads.into(),
                ]
            })
            .collect::<Vec<_>>(),
    );
}

fn print_checkpoint(opts: &Options) {
    // Sizes grow with --scale: the acceptance sweep (1 M rows) needs
    // --scale 4 or more; the per-PR smoke stays CI-friendly.
    let mut sizes = vec![10_000usize, 50_000];
    if opts.scale >= 2 {
        sizes.push(100_000);
    }
    if opts.scale >= 4 {
        sizes.push(1_000_000);
    }
    let rows = run_checkpoint_experiment(&sizes, SEED);
    println!("== Checkpoint: incremental vs full rewrite, size x fraction mutated ==");
    println!(
        "{:>9} {:>6} {:>7} {:>12} {:>9} {:>7} {:>7} {:>10} {:>10} {:>7} {:>10} {:>10} {:>10} {:>9}",
        "rows",
        "pct",
        "chunks",
        "mode",
        "wall ms",
        "wrote",
        "skip",
        "cat B",
        "jrnl B",
        "pages",
        "quiesce us",
        "stall p99",
        "io bytes",
        "vs full"
    );
    for r in &rows {
        println!(
            "{:>9} {:>6} {:>7} {:>12} {:>9.2} {:>7} {:>7} {:>10} {:>10} {:>7} {:>10.1} {:>10.1} {:>10} {:>9.1}",
            r.rows,
            r.pct_mutated,
            r.chunks_mutated,
            r.mode,
            r.wall_ms,
            r.chunks_written,
            r.chunks_skipped,
            r.catalog_bytes,
            r.journal_bytes,
            r.data_pages_flushed,
            r.quiesce_us,
            r.stall_p99_us,
            r.io_bytes,
            r.io_ratio_vs_full
        );
    }
    // The acceptance summary: how much less I/O does the incremental path
    // do at <=1% mutated?  The bar is >=10x at 1 M rows.
    for r in rows
        .iter()
        .filter(|r| r.mode == "incremental" && r.pct_mutated <= 1.0)
    {
        println!(
            "{} rows @ {}% mutated: incremental does {:.1}x less checkpoint I/O than full rewrite",
            r.rows, r.pct_mutated, r.io_ratio_vs_full
        );
    }
    println!();
    emit_json(
        opts,
        "checkpoint",
        &[
            "rows",
            "pct_mutated",
            "chunks_mutated",
            "mode",
            "wall_ms",
            "chunks_written",
            "chunks_skipped",
            "catalog_bytes",
            "journal_bytes",
            "data_pages_flushed",
            "quiesce_us",
            "stall_p99_us",
            "io_bytes",
            "io_ratio_vs_full",
        ],
        &rows
            .iter()
            .map(|r| {
                vec![
                    r.rows.into(),
                    r.pct_mutated.into(),
                    r.chunks_mutated.into(),
                    r.mode.into(),
                    r.wall_ms.into(),
                    r.chunks_written.into(),
                    r.chunks_skipped.into(),
                    r.catalog_bytes.into(),
                    r.journal_bytes.into(),
                    r.data_pages_flushed.into(),
                    r.quiesce_us.into(),
                    r.stall_p99_us.into(),
                    r.io_bytes.into(),
                    r.io_ratio_vs_full.into(),
                ]
            })
            .collect::<Vec<_>>(),
    );
}

fn print_wal(opts: &Options) {
    let thread_counts = [1usize, 2, 4, 8];
    let commits_per_thread = (opts.queries * 2).clamp(50, 2_000);
    let rows = run_wal_experiment(&thread_counts, commits_per_thread);
    println!("== WAL: commit throughput, per-commit fsync vs group commit ==");
    println!(
        "{:>12} {:>8} {:>8} {:>11} {:>11} {:>9} {:>9} {:>7} {:>11}",
        "mode",
        "threads",
        "commits",
        "elapsed ms",
        "commits/s",
        "mean ms",
        "p99 ms",
        "syncs",
        "commit/sync"
    );
    for r in &rows {
        println!(
            "{:>12} {:>8} {:>8} {:>11.1} {:>11.0} {:>9.4} {:>9.4} {:>7} {:>11.1}",
            r.mode,
            r.threads,
            r.commits,
            r.elapsed_ms,
            r.throughput_cps,
            r.mean_ms,
            r.p99_ms,
            r.syncs,
            r.commits_per_sync
        );
    }
    for &threads in &thread_counts[1..] {
        let per = rows
            .iter()
            .find(|r| r.threads == threads && r.mode == "per-commit");
        let group = rows
            .iter()
            .find(|r| r.threads == threads && r.mode == "group");
        if let (Some(per), Some(group)) = (per, group) {
            println!(
                "group-commit speedup at {threads} writers: {:.2}x ({:.0} vs {:.0} commits/s)",
                group.throughput_cps / per.throughput_cps.max(1e-9),
                group.throughput_cps,
                per.throughput_cps
            );
        }
    }
    println!();
    emit_json(
        opts,
        "wal",
        &[
            "mode",
            "threads",
            "commits",
            "elapsed_ms",
            "throughput_cps",
            "mean_ms",
            "p99_ms",
            "syncs",
            "commits_per_sync",
        ],
        &rows
            .iter()
            .map(|r| {
                vec![
                    r.mode.into(),
                    r.threads.into(),
                    r.commits.into(),
                    r.elapsed_ms.into(),
                    r.throughput_cps.into(),
                    r.mean_ms.into(),
                    r.p99_ms.into(),
                    r.syncs.into(),
                    r.commits_per_sync.into(),
                ]
            })
            .collect::<Vec<_>>(),
    );
}

/// `crash-writer --db PATH`: an endless acknowledged-write workload for
/// the CI crash-recovery smoke test.  Each round mixes three shapes:
///
/// * **auto-commit inserts** — after every insert the database
///   acknowledges, the `(row, value)` pair is appended to `PATH.ack`;
/// * **a committed multi-statement transaction** — its `(row, value)`
///   pairs are appended only after `commit()` returns, i.e. after the
///   `CommitTxn` record is sealed and fsynced, so every complete positive
///   ack line is a durability promise;
/// * **an aborted multi-statement transaction** — its rows are appended
///   as `! row value` *absence* promises: no recovered row may ever hold
///   an aborted value.  (The line carries the value rather than just the
///   row id because a row id burned only by never-durable loser records
///   may legitimately be re-issued to a later committed insert.)
///
/// The harness SIGKILLs this process mid-run — sometimes mid-statement
/// inside an open transaction, which must then recover as a loser — and
/// `crash-verify` checks both promise kinds against the reopened
/// database.  Checkpoints run every round so the kill also lands
/// mid-checkpoint some of the time.
fn run_crash_writer(opts: &Options) -> ! {
    let db_path = opts
        .db
        .clone()
        .unwrap_or_else(|| usage("crash-writer needs --db PATH"));
    if let Some(parent) = db_path.parent() {
        std::fs::create_dir_all(parent).expect("create --db parent directory");
    }
    let mut db = if db_path.exists() {
        spgist_catalog::Database::open(&db_path).expect("reopen database")
    } else {
        spgist_catalog::Database::create(&db_path).expect("create database")
    };
    if db.table("log").is_none() {
        db.create_table("log", spgist_catalog::KeyType::Varchar)
            .expect("create log table");
    }
    let mut ack = std::fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(ack_path(&db_path))
        .expect("open ack file");

    let mut committed = 0u64;
    let mut txn_serial = 0u64;
    loop {
        use std::io::Write as _;
        let table = db.table_handle("log").expect("log table");
        for _ in 0..256 {
            let value = format!("v{:08}", table.len());
            let row = table.insert(value.clone()).expect("acknowledged insert");
            // The database acknowledged the commit; only now does the ack
            // file learn about it, so every complete ack line is a promise
            // the reopened database must honor.
            writeln!(ack, "{row} {value}").expect("append ack line");
            committed += 1;
        }
        drop(table);

        // A committed multi-statement transaction.  The kill window covers
        // the whole episode: if SIGKILL lands before commit() returns, no
        // ack line was written and recovery may legitimately drop the txn;
        // once commit() returns the CommitTxn record is durable and every
        // statement below is promised.
        let mut txn = db.begin().expect("begin committed txn");
        let mut staged = Vec::new();
        for stmt in 0..8 {
            let value = format!("t{txn_serial:06}.{stmt}");
            let row = txn.insert("log", value.clone()).expect("txn insert");
            staged.push((row, value));
        }
        txn.commit().expect("commit txn");
        for (row, value) in staged {
            writeln!(ack, "{row} {value}").expect("append ack line");
            committed += 1;
        }

        // An aborted multi-statement transaction: its values must never be
        // visible again, in this process or after any crash.
        let mut txn = db.begin().expect("begin aborted txn");
        let mut doomed = Vec::new();
        for stmt in 0..4 {
            let value = format!("x{txn_serial:06}.{stmt}");
            let row = txn.insert("log", value.clone()).expect("txn insert");
            doomed.push((row, value));
        }
        txn.abort().expect("abort txn");
        for (row, value) in doomed {
            writeln!(ack, "! {row} {value}").expect("append absence line");
        }
        txn_serial += 1;

        // Periodic checkpoints put data pages + catalog writes in the kill
        // window too, not just log appends.  (All transactions above are
        // closed — the no-steal pool refuses to checkpoint otherwise.)
        db.checkpoint().expect("checkpoint");
        println!("committed {committed}");
    }
}

/// `crash-verify --db PATH`: reopens a (possibly SIGKILLed) database and
/// asserts every acknowledged commit recorded in `PATH.ack` survived, and
/// that no `! row value` absence promise (an aborted transaction's
/// statement) resurfaced as a live row holding that value.
fn run_crash_verify(opts: &Options) -> ! {
    let db_path = opts
        .db
        .clone()
        .unwrap_or_else(|| usage("crash-verify needs --db PATH"));
    let db = spgist_catalog::Database::open(&db_path).expect("reopen after crash");
    let table = db.table("log").expect("log table survived");
    let ack = std::fs::read_to_string(ack_path(&db_path)).expect("read ack file");

    let lines: Vec<&str> = ack.lines().collect();
    let complete = if ack.ends_with('\n') {
        lines.len()
    } else {
        // The writer was killed mid-append; the torn final line was never
        // a completed acknowledgment handoff, so it is not checked.
        lines.len().saturating_sub(1)
    };
    let mut verified = 0u64;
    let mut absent = 0u64;
    for line in &lines[..complete] {
        if let Some(rest) = line.strip_prefix("! ") {
            // Absence promise: an aborted transaction's statement.  The row
            // id may have been re-issued to a later committed insert (the
            // burn is only durable if the loser's records reached disk), so
            // the invariant is value-keyed: this row must not hold the
            // aborted value.
            let (row, value) = rest
                .split_once(' ')
                .unwrap_or_else(|| panic!("malformed absence line {line:?}"));
            let row: u64 = row.parse().expect("absence row id");
            if let Some(datum) = table.try_datum(row).expect("read row") {
                assert_ne!(
                    datum,
                    spgist_catalog::Datum::Text(value.to_string()),
                    "aborted row {row} resurfaced after crash"
                );
            }
            absent += 1;
            continue;
        }
        let (row, value) = line
            .split_once(' ')
            .unwrap_or_else(|| panic!("malformed ack line {line:?}"));
        let row: u64 = row.parse().expect("ack row id");
        let datum = table
            .try_datum(row)
            .expect("read recovered row")
            .unwrap_or_else(|| panic!("acknowledged row {row} lost after crash"));
        assert_eq!(
            datum,
            spgist_catalog::Datum::Text(value.to_string()),
            "acknowledged row {row} recovered with the wrong value"
        );
        verified += 1;
    }
    assert!(
        table.len() >= verified,
        "table holds {} rows but {verified} commits were acknowledged",
        table.len()
    );
    println!(
        "crash-verify: {verified} acknowledged commits all recovered, \
         {absent} aborted statements stayed invisible ({} rows in table)",
        table.len()
    );
    std::process::exit(0);
}

/// The acknowledgment journal the crash smoke test keeps next to the
/// database file.
fn ack_path(db_path: &std::path::Path) -> std::path::PathBuf {
    let mut s = db_path.as_os_str().to_os_string();
    s.push(".ack");
    std::path::PathBuf::from(s)
}

fn print_build(opts: &Options) {
    let rows = run_build_experiment(opts.scale, SEED);
    println!("== Build: insert-loop vs spgistbuild bulk build (eviction-bounded pool) ==");
    println!(
        "{:>10} {:>8} {:>11} {:>9} {:>9} {:>9} {:>7} {:>7} {:>9} {:>9} {:>7} {:>7} {:>6} {:>6} {:>8}",
        "class",
        "rows",
        "insert ms",
        "bulk ms",
        "ins wr",
        "bulk wr",
        "ins hr",
        "bulk hr",
        "ins pg",
        "bulk pg",
        "ins h",
        "bulk h",
        "ins f",
        "bulk f",
        "speedup"
    );
    for r in &rows {
        println!(
            "{:>10} {:>8} {:>11.1} {:>9.1} {:>9} {:>9} {:>7.3} {:>7.3} {:>9} {:>9} {:>7} {:>7} {:>6.2} {:>6.2} {:>7.1}x",
            r.class,
            r.rows,
            r.insert.ms,
            r.bulk.ms,
            r.insert.writes,
            r.bulk.writes,
            r.insert.hit_rate,
            r.bulk.hit_rate,
            r.insert.pages,
            r.bulk.pages,
            r.insert.page_height,
            r.bulk.page_height,
            r.insert.fill,
            r.bulk.fill,
            r.speedup()
        );
    }
    println!(
        "(wr = physical page writes incl. final flush; hr = pool hit rate; h = tree height in pages; f = page fill; pool policy: {})",
        spgist_storage::BufferPoolConfig::default().policy.name()
    );
    println!();
    if let Some(dir) = &opts.json_dir {
        write_build_json(&rows, opts.scale, dir).expect("write BENCH_build.json");
        println!("wrote {}", dir.join("BENCH_build.json").display());
        println!();
    }
}

fn print_reopen(opts: &Options) {
    // Durable-catalog experiment: build → close → cold open vs. rebuilding
    // from raw data, on a file-backed database.
    let sizes: Vec<usize> = [10_000usize, 40_000]
        .iter()
        .map(|n| n * opts.scale.max(1))
        .collect();
    let rows = run_reopen_experiment(&sizes, SEED);
    println!("== Reopen: durable-catalog cold open vs. rebuild from scratch ==");
    println!(
        "{:>10} {:>10} {:>13} {:>10} {:>11} {:>9} {:>8} {:>14} {:>13} {:>9}",
        "rows",
        "pages",
        "rebuild ms",
        "open ms",
        "open reads",
        "policy",
        "cold hr",
        "1st query ms",
        "warm query ms",
        "speedup"
    );
    for r in &rows {
        println!(
            "{:>10} {:>10} {:>13.1} {:>10.2} {:>11} {:>9} {:>8.3} {:>14.3} {:>13.3} {:>8.0}x",
            r.rows,
            r.file_pages,
            r.rebuild_ms,
            r.open_ms,
            r.open_reads,
            r.policy,
            r.cold_hit_rate,
            r.first_query_ms,
            r.warm_query_ms,
            r.rebuild_ms / r.open_ms.max(1e-9)
        );
    }
    println!("(open reads = physical page reads at open: catalog chain + tree meta pages only; cold hr = pool hit rate through the first query)");
    println!();
    emit_json(
        opts,
        "reopen",
        &[
            "rows",
            "file_pages",
            "rebuild_ms",
            "open_ms",
            "open_reads",
            "policy",
            "cold_hit_rate",
            "first_query_ms",
            "warm_query_ms",
        ],
        &rows
            .iter()
            .map(|r| {
                vec![
                    r.rows.into(),
                    r.file_pages.into(),
                    r.rebuild_ms.into(),
                    r.open_ms.into(),
                    r.open_reads.into(),
                    r.policy.into(),
                    r.cold_hit_rate.into(),
                    r.first_query_ms.into(),
                    r.warm_query_ms.into(),
                ]
            })
            .collect::<Vec<_>>(),
    );
}

fn print_table7(opts: &Options) {
    let rows = table7();
    println!("== Table 7: external-method code size per index ==");
    println!(
        "{:<16} {:>16} {:>18}",
        "index", "external lines", "% of total code"
    );
    for row in &rows {
        println!(
            "{:<16} {:>16} {:>17.1}%",
            row.index, row.external_lines, row.percent_of_total
        );
    }
    println!();
    emit_json(
        opts,
        "table7",
        &["index", "external_lines", "percent_of_total"],
        &rows
            .iter()
            .map(|r| {
                vec![
                    r.index.clone().into(),
                    r.external_lines.into(),
                    r.percent_of_total.into(),
                ]
            })
            .collect::<Vec<_>>(),
    );
}

fn print_string_figures(opts: &Options, run_all: bool) {
    let sizes = word_sizes(opts.scale);
    let rows = run_string_experiments(&sizes, opts.queries, SEED);
    let show = |fig: &str| run_all || opts.command == fig;

    if show("fig6") {
        println!("== Figure 6: search time relative performance, (B+-tree / trie) x 100 ==");
        println!(
            "{:>10} {:>22} {:>22}",
            "keys", "exact match (ratio %)", "prefix match (ratio %)"
        );
        for r in &rows {
            println!(
                "{:>10} {:>22.1} {:>22.1}",
                r.size,
                ratio_pct(r.btree_exact_ms, r.trie_exact_ms),
                ratio_pct(r.btree_prefix_ms, r.trie_prefix_ms)
            );
        }
        println!();
    }
    if show("fig7") {
        println!("== Figure 7: regular-expression search, log10(B+-tree / trie) ==");
        println!(
            "{:>10} {:>14} {:>14} {:>12}",
            "keys", "trie (ms)", "btree (ms)", "log10 ratio"
        );
        for r in &rows {
            println!(
                "{:>10} {:>14.4} {:>14.4} {:>12.2}",
                r.size,
                r.trie_regex_ms,
                r.btree_regex_ms,
                log10_ratio(r.btree_regex_ms, r.trie_regex_ms)
            );
        }
        println!();
    }
    if show("fig8") {
        println!("== Figure 8: trie exact-match search time standard deviation ==");
        println!("{:>10} {:>14} {:>14}", "keys", "mean (ms)", "stddev (ms)");
        for r in &rows {
            println!(
                "{:>10} {:>14.4} {:>14.4}",
                r.size, r.trie_exact_ms, r.trie_exact_stddev_ms
            );
        }
        println!();
    }
    if show("fig9") {
        println!("== Figure 9: insert time relative performance, (B+-tree / trie) x 100 ==");
        println!(
            "{:>10} {:>14} {:>14} {:>12}",
            "keys", "trie (ms)", "btree (ms)", "ratio %"
        );
        for r in &rows {
            println!(
                "{:>10} {:>14.1} {:>14.1} {:>12.1}",
                r.size,
                r.trie_insert_ms,
                r.btree_insert_ms,
                ratio_pct(r.btree_insert_ms, r.trie_insert_ms)
            );
        }
        println!();
    }
    if show("fig10") {
        println!("== Figure 10: relative index size, (B+-tree / trie) x 100 ==");
        println!(
            "{:>10} {:>14} {:>14} {:>12}",
            "keys", "trie pages", "btree pages", "ratio %"
        );
        for r in &rows {
            println!(
                "{:>10} {:>14} {:>14} {:>12.1}",
                r.size,
                r.trie_pages,
                r.btree_pages,
                ratio_pct(r.btree_pages as f64, r.trie_pages as f64)
            );
        }
        println!();
    }
    if show("fig11") {
        println!("== Figure 11: maximum tree height in nodes ==");
        println!("{:>10} {:>12} {:>12}", "keys", "B-tree", "SP-GiST trie");
        for r in &rows {
            println!(
                "{:>10} {:>12} {:>12}",
                r.size, r.btree_height, r.trie_node_height
            );
        }
        println!();
    }
    if show("fig12") {
        println!("== Figure 12: maximum tree height in pages ==");
        println!("{:>10} {:>12} {:>12}", "keys", "B-tree", "SP-GiST trie");
        for r in &rows {
            println!(
                "{:>10} {:>12} {:>12}",
                r.size, r.btree_height, r.trie_page_height
            );
        }
        println!();
    }
    emit_json(
        opts,
        "strings",
        &[
            "size",
            "trie_exact_ms",
            "btree_exact_ms",
            "trie_exact_stddev_ms",
            "trie_prefix_ms",
            "btree_prefix_ms",
            "trie_regex_ms",
            "btree_regex_ms",
            "trie_insert_ms",
            "btree_insert_ms",
            "trie_pages",
            "btree_pages",
            "trie_node_height",
            "trie_page_height",
            "btree_height",
        ],
        &rows
            .iter()
            .map(|r| {
                vec![
                    r.size.into(),
                    r.trie_exact_ms.into(),
                    r.btree_exact_ms.into(),
                    r.trie_exact_stddev_ms.into(),
                    r.trie_prefix_ms.into(),
                    r.btree_prefix_ms.into(),
                    r.trie_regex_ms.into(),
                    r.btree_regex_ms.into(),
                    r.trie_insert_ms.into(),
                    r.btree_insert_ms.into(),
                    r.trie_pages.into(),
                    r.btree_pages.into(),
                    r.trie_node_height.into(),
                    r.trie_page_height.into(),
                    r.btree_height.into(),
                ]
            })
            .collect::<Vec<_>>(),
    );
}

fn print_point_figures(opts: &Options, run_all: bool) {
    let sizes = point_sizes(opts.scale);
    let rows = run_point_experiments(&sizes, opts.queries, SEED);
    let show = |fig: &str| run_all || opts.command == fig;

    if show("fig13") {
        println!("== Figure 13: kd-tree vs R-tree, (R-tree / kd-tree) x 100 ==");
        println!(
            "{:>10} {:>16} {:>16} {:>12}",
            "points", "point search %", "range search %", "insert %"
        );
        for r in &rows {
            println!(
                "{:>10} {:>16.1} {:>16.1} {:>12.1}",
                r.size,
                ratio_pct(r.rtree_point_ms, r.kd_point_ms),
                ratio_pct(r.rtree_range_ms, r.kd_range_ms),
                ratio_pct(r.rtree_insert_ms, r.kd_insert_ms)
            );
        }
        println!();
    }
    if show("fig14") {
        println!("== Figure 14: relative index size, (R-tree / kd-tree) x 100 ==");
        println!(
            "{:>10} {:>14} {:>14} {:>12}",
            "points", "kd pages", "rtree pages", "ratio %"
        );
        for r in &rows {
            println!(
                "{:>10} {:>14} {:>14} {:>12.1}",
                r.size,
                r.kd_pages,
                r.rtree_pages,
                ratio_pct(r.rtree_pages as f64, r.kd_pages as f64)
            );
        }
        println!();
    }
    emit_json(
        opts,
        "points",
        &[
            "size",
            "kd_insert_ms",
            "rtree_insert_ms",
            "kd_point_ms",
            "rtree_point_ms",
            "kd_range_ms",
            "rtree_range_ms",
            "kd_pages",
            "rtree_pages",
        ],
        &rows
            .iter()
            .map(|r| {
                vec![
                    r.size.into(),
                    r.kd_insert_ms.into(),
                    r.rtree_insert_ms.into(),
                    r.kd_point_ms.into(),
                    r.rtree_point_ms.into(),
                    r.kd_range_ms.into(),
                    r.rtree_range_ms.into(),
                    r.kd_pages.into(),
                    r.rtree_pages.into(),
                ]
            })
            .collect::<Vec<_>>(),
    );
}

fn print_segment_figure(opts: &Options) {
    let sizes = point_sizes(opts.scale);
    let rows = run_segment_experiments(&sizes, opts.queries, SEED);
    println!("== Figure 15: PMR quadtree vs R-tree, (R-tree / PMR quadtree) x 100 ==");
    println!(
        "{:>10} {:>12} {:>18} {:>16} {:>12} {:>12}",
        "segments", "insert %", "exact match %", "range search %", "pmr pages", "rtree pages"
    );
    for r in &rows {
        println!(
            "{:>10} {:>12.1} {:>18.1} {:>16.1} {:>12} {:>12}",
            r.size,
            ratio_pct(r.rtree_insert_ms, r.pmr_insert_ms),
            ratio_pct(r.rtree_exact_ms, r.pmr_exact_ms),
            ratio_pct(r.rtree_window_ms, r.pmr_window_ms),
            r.pmr_pages,
            r.rtree_pages
        );
    }
    println!();
    emit_json(
        opts,
        "segments",
        &[
            "size",
            "pmr_insert_ms",
            "rtree_insert_ms",
            "pmr_exact_ms",
            "rtree_exact_ms",
            "pmr_window_ms",
            "rtree_window_ms",
            "pmr_pages",
            "rtree_pages",
        ],
        &rows
            .iter()
            .map(|r| {
                vec![
                    r.size.into(),
                    r.pmr_insert_ms.into(),
                    r.rtree_insert_ms.into(),
                    r.pmr_exact_ms.into(),
                    r.rtree_exact_ms.into(),
                    r.pmr_window_ms.into(),
                    r.rtree_window_ms.into(),
                    r.pmr_pages.into(),
                    r.rtree_pages.into(),
                ]
            })
            .collect::<Vec<_>>(),
    );
}

fn print_substring_figure(opts: &Options) {
    let sizes = spgist_bench::substring_sizes(opts.scale);
    let rows = run_substring_experiments(&sizes, opts.queries, SEED);
    println!("== Figure 16: substring match, log10(sequential / suffix tree) ==");
    println!(
        "{:>10} {:>16} {:>16} {:>12}",
        "strings", "suffix (ms)", "seq scan (ms)", "log10 ratio"
    );
    for r in &rows {
        println!(
            "{:>10} {:>16.4} {:>16.4} {:>12.2}",
            r.size,
            r.suffix_ms,
            r.seqscan_ms,
            log10_ratio(r.seqscan_ms, r.suffix_ms)
        );
    }
    println!();
    emit_json(
        opts,
        "substring",
        &["size", "suffix_ms", "seqscan_ms"],
        &rows
            .iter()
            .map(|r| vec![r.size.into(), r.suffix_ms.into(), r.seqscan_ms.into()])
            .collect::<Vec<_>>(),
    );
}

fn print_nn_figure(opts: &Options) {
    let n = 20_000 * opts.scale.max(1);
    let rows = run_nn_experiments(n, &NN_KS, opts.queries.min(20), SEED);
    println!("== Figure 17: NN search performance ({n} tuples per relation) ==");
    println!(
        "{:>8} {:>14} {:>14} {:>14}",
        "k", "kd-tree (ms)", "pquadtree (ms)", "trie (ms)"
    );
    for r in &rows {
        println!(
            "{:>8} {:>14.3} {:>14.3} {:>14.3}",
            r.k, r.kd_ms, r.quad_ms, r.trie_ms
        );
    }
    println!();
    emit_json(
        opts,
        "nn",
        &["k", "kd_ms", "quad_ms", "trie_ms"],
        &rows
            .iter()
            .map(|r| {
                vec![
                    r.k.into(),
                    r.kd_ms.into(),
                    r.quad_ms.into(),
                    r.trie_ms.into(),
                ]
            })
            .collect::<Vec<_>>(),
    );
}

fn print_clustering_ablation(opts: &Options) {
    let rows = run_clustering_ablation(20_000 * opts.scale.max(1), opts.queries, SEED);
    println!("== Ablation: node-to-page clustering policy (patricia trie) ==");
    println!(
        "{:>18} {:>12} {:>10} {:>14}",
        "policy", "page height", "pages", "exact (ms)"
    );
    for r in &rows {
        println!(
            "{:>18} {:>12} {:>10} {:>14.4}",
            format!("{:?}", r.policy),
            r.page_height,
            r.pages,
            r.exact_ms
        );
    }
    println!();
    emit_json(
        opts,
        "ablation_clustering",
        &["policy", "page_height", "pages", "exact_ms"],
        &rows
            .iter()
            .map(|r| {
                vec![
                    format!("{:?}", r.policy).into(),
                    r.page_height.into(),
                    r.pages.into(),
                    r.exact_ms.into(),
                ]
            })
            .collect::<Vec<_>>(),
    );
}

fn print_concurrency(opts: &Options) {
    let n = 20_000 * opts.scale.max(1);
    let queries = opts.queries.max(20);
    let thread_counts = [1usize, 2, 4, 8];
    let rows = run_read_scaling(n, &thread_counts, queries, SEED);
    println!("== Concurrency: read-scaling on a shared kd-tree ({n} points) ==");
    println!(
        "(host reports {} cores; read latches scale with real cores)",
        std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get)
    );
    println!(
        "{:>8} {:>10} {:>12} {:>14} {:>12} {:>10}",
        "threads", "queries", "elapsed ms", "queries/s", "mean ms", "p99 ms"
    );
    for r in &rows {
        println!(
            "{:>8} {:>10} {:>12.1} {:>14.0} {:>12.4} {:>10.4}",
            r.threads, r.total_queries, r.elapsed_ms, r.throughput_qps, r.mean_ms, r.p99_ms
        );
    }
    let base = rows.iter().find(|r| r.threads == 1);
    let four = rows.iter().find(|r| r.threads == 4);
    if let (Some(base), Some(four)) = (base, four) {
        println!(
            "read throughput speedup at 4 threads vs 1: {:.2}x",
            four.throughput_qps / base.throughput_qps.max(1e-9)
        );
    }
    println!();

    let hot = run_hot_writer_scaling(n, &thread_counts, queries, SEED);
    println!("== Concurrency: read-scaling with one continuous hot writer ==");
    println!(
        "{:>8} {:>10} {:>12} {:>14} {:>8} {:>10} {:>10} {:>10} {:>12} {:>9} {:>8}",
        "threads",
        "queries",
        "elapsed ms",
        "queries/s",
        "speedup",
        "p99 ms",
        "ins/s",
        "latches",
        "latch waits",
        "pins",
        "backlog"
    );
    for r in &hot {
        println!(
            "{:>8} {:>10} {:>12.1} {:>14.0} {:>7.2}x {:>10.4} {:>10.0} {:>10} {:>12} {:>9} {:>8}",
            r.threads,
            r.total_queries,
            r.elapsed_ms,
            r.throughput_qps,
            r.speedup,
            r.p99_ms,
            r.write_ips,
            r.concurrency.latch_acquisitions,
            r.concurrency.latch_waits,
            r.concurrency.epoch_pins,
            r.concurrency.retired_backlog
        );
    }
    if let (Some(base), Some(eight)) = (
        hot.iter().find(|r| r.threads == 1),
        hot.iter().find(|r| r.threads == 8),
    ) {
        println!(
            "hot-writer read throughput speedup at 8 threads vs 1: {:.2}x \
             (mean epoch pin {:.1} us)",
            eight.throughput_qps / base.throughput_qps.max(1e-9),
            eight.concurrency.epoch_pin_nanos as f64
                / (eight.concurrency.epoch_pins.max(1) as f64 * 1e3)
        );
    }
    println!();

    let mixed = run_mixed_workload(n, 4, 2, queries, queries * 5, SEED);
    println!("== Concurrency: mixed readers + writer bursts ==");
    println!(
        "{:>8} {:>8} {:>8} {:>8} {:>12} {:>10} {:>10} {:>12} {:>13}",
        "readers",
        "writers",
        "reads",
        "writes",
        "elapsed ms",
        "read q/s",
        "ins/s",
        "read p99 ms",
        "write p99 ms"
    );
    println!(
        "{:>8} {:>8} {:>8} {:>8} {:>12.1} {:>10.0} {:>10.0} {:>12.4} {:>13.4}",
        mixed.readers,
        mixed.writers,
        mixed.reads,
        mixed.writes,
        mixed.elapsed_ms,
        mixed.read_qps,
        mixed.write_ips,
        mixed.read_p99_ms,
        mixed.write_p99_ms
    );
    println!();
    emit_json(
        opts,
        "concurrency",
        &[
            "threads",
            "total_queries",
            "elapsed_ms",
            "throughput_qps",
            "mean_ms",
            "p99_ms",
        ],
        &rows
            .iter()
            .map(|r| {
                vec![
                    r.threads.into(),
                    r.total_queries.into(),
                    r.elapsed_ms.into(),
                    r.throughput_qps.into(),
                    r.mean_ms.into(),
                    r.p99_ms.into(),
                ]
            })
            .collect::<Vec<_>>(),
    );
    emit_json(
        opts,
        "concurrency_hot_writer",
        &[
            "threads",
            "total_queries",
            "writer_inserts",
            "elapsed_ms",
            "throughput_qps",
            "speedup",
            "mean_ms",
            "p99_ms",
            "write_ips",
            "latch_acquisitions",
            "latch_waits",
            "epoch_pins",
            "epoch_pin_nanos",
            "retired",
            "reclaimed",
            "retired_backlog",
        ],
        &hot.iter()
            .map(|r| {
                vec![
                    r.threads.into(),
                    r.total_queries.into(),
                    r.writer_inserts.into(),
                    r.elapsed_ms.into(),
                    r.throughput_qps.into(),
                    r.speedup.into(),
                    r.mean_ms.into(),
                    r.p99_ms.into(),
                    r.write_ips.into(),
                    r.concurrency.latch_acquisitions.into(),
                    r.concurrency.latch_waits.into(),
                    r.concurrency.epoch_pins.into(),
                    r.concurrency.epoch_pin_nanos.into(),
                    r.concurrency.retired.into(),
                    r.concurrency.reclaimed.into(),
                    r.concurrency.retired_backlog.into(),
                ]
            })
            .collect::<Vec<_>>(),
    );
    emit_json(
        opts,
        "concurrency_mixed",
        &[
            "readers",
            "writers",
            "reads",
            "writes",
            "elapsed_ms",
            "read_qps",
            "write_ips",
            "read_p99_ms",
            "write_p99_ms",
        ],
        &[vec![
            mixed.readers.into(),
            mixed.writers.into(),
            mixed.reads.into(),
            mixed.writes.into(),
            mixed.elapsed_ms.into(),
            mixed.read_qps.into(),
            mixed.write_ips.into(),
            mixed.read_p99_ms.into(),
            mixed.write_p99_ms.into(),
        ]],
    );
}

fn print_trie_ablation(opts: &Options) {
    let rows = run_trie_variant_ablation(20_000 * opts.scale.max(1), opts.queries, SEED);
    println!("== Ablation: trie interface parameters (PathShrink / BucketSize) ==");
    println!(
        "{:>34} {:>10} {:>12} {:>8} {:>12}",
        "variant", "nodes", "node height", "pages", "exact (ms)"
    );
    for r in &rows {
        println!(
            "{:>34} {:>10} {:>12} {:>8} {:>12.4}",
            r.variant, r.nodes, r.node_height, r.pages, r.exact_ms
        );
    }
    println!();
    emit_json(
        opts,
        "ablation_trie",
        &["variant", "nodes", "node_height", "pages", "exact_ms"],
        &rows
            .iter()
            .map(|r| {
                vec![
                    r.variant.clone().into(),
                    r.nodes.into(),
                    r.node_height.into(),
                    r.pages.into(),
                    r.exact_ms.into(),
                ]
            })
            .collect::<Vec<_>>(),
    );
}
