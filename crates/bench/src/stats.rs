//! Small statistics helpers for the experiment harness.

use std::time::{Duration, Instant};

/// Times a closure, returning its result and the elapsed wall-clock time.
pub fn timed<R>(f: impl FnOnce() -> R) -> (R, Duration) {
    let start = Instant::now();
    let result = f();
    (result, start.elapsed())
}

/// Arithmetic mean of a slice of durations, in milliseconds.
pub fn mean_ms(samples: &[Duration]) -> f64 {
    if samples.is_empty() {
        return 0.0;
    }
    samples.iter().map(Duration::as_secs_f64).sum::<f64>() * 1e3 / samples.len() as f64
}

/// Standard deviation of a slice of durations, in milliseconds (population
/// standard deviation, as in the paper's Figure 8).
pub fn stddev_ms(samples: &[Duration]) -> f64 {
    if samples.len() < 2 {
        return 0.0;
    }
    let mean = mean_ms(samples);
    let var = samples
        .iter()
        .map(|d| {
            let ms = d.as_secs_f64() * 1e3;
            (ms - mean) * (ms - mean)
        })
        .sum::<f64>()
        / samples.len() as f64;
    var.sqrt()
}

/// Ratio `a / b` expressed as a percentage, the form the paper's relative
/// figures use (`(B-tree / trie) x 100`).
pub fn ratio_pct(a: f64, b: f64) -> f64 {
    if b == 0.0 {
        f64::NAN
    } else {
        a / b * 100.0
    }
}

/// `log10(a / b)`, the form of Figures 7 and 16.
pub fn log10_ratio(a: f64, b: f64) -> f64 {
    if a <= 0.0 || b <= 0.0 {
        f64::NAN
    } else {
        (a / b).log10()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_and_stddev() {
        let samples = vec![
            Duration::from_millis(10),
            Duration::from_millis(20),
            Duration::from_millis(30),
        ];
        assert!((mean_ms(&samples) - 20.0).abs() < 1e-9);
        let sd = stddev_ms(&samples);
        assert!((sd - 8.1649658).abs() < 1e-3);
        assert_eq!(stddev_ms(&samples[..1]), 0.0);
        assert_eq!(mean_ms(&[]), 0.0);
    }

    #[test]
    fn ratios() {
        assert!((ratio_pct(3.0, 2.0) - 150.0).abs() < 1e-9);
        assert!(ratio_pct(1.0, 0.0).is_nan());
        assert!((log10_ratio(1000.0, 1.0) - 3.0).abs() < 1e-9);
        assert!(log10_ratio(0.0, 1.0).is_nan());
    }

    #[test]
    fn timed_measures_something() {
        let (value, elapsed) = timed(|| (0..10_000u64).sum::<u64>());
        assert_eq!(value, 49_995_000);
        assert!(elapsed.as_nanos() > 0);
    }
}
