//! WAL commit-throughput experiment: group commit vs per-commit `fsync`.
//!
//! Every acknowledged DML statement waits for its log record to be
//! durable, so commit throughput is bounded by how many commits each
//! `fsync` amortizes.  This experiment drives 1→N writer threads inserting
//! into one table under two log configurations:
//!
//! * **per-commit** ([`WalConfig::per_commit`], `max_batch = 1`) — the
//!   classical baseline: every commit pays a full `fsync`;
//! * **group** ([`WalConfig::default`]) — writers submit and block on
//!   their LSN while a single flusher thread batches everything queued
//!   behind one `fsync`.
//!
//! With one writer the two are nearly identical (there is nobody to share
//! the sync with); as writers pile up, group commit's commits-per-sync
//! climbs and throughput follows.  The rows carry the measured sync counts
//! so the mechanism — not just the wall clock — is visible in the output.

use std::path::PathBuf;
use std::time::{Duration, Instant};

use spgist_catalog::{Database, KeyType, WalConfig};
use spgist_storage::BufferPoolConfig;

use crate::concurrent::p99_ms;
use crate::stats::mean_ms;

/// One row of the commit-throughput experiment: `threads` writers under
/// one log configuration.
#[derive(Debug, Clone)]
pub struct WalRow {
    /// Log configuration: `"per-commit"` or `"group"`.
    pub mode: &'static str,
    /// Number of concurrent writer threads.
    pub threads: usize,
    /// Total commits (acknowledged inserts) across all threads.
    pub commits: usize,
    /// Wall-clock time for the whole workload, milliseconds.
    pub elapsed_ms: f64,
    /// Aggregate commit throughput, commits per second.
    pub throughput_cps: f64,
    /// Mean per-commit latency, milliseconds.
    pub mean_ms: f64,
    /// 99th-percentile per-commit latency, milliseconds.
    pub p99_ms: f64,
    /// Log `fsync` calls spent on the workload.
    pub syncs: u64,
    /// Commits amortized per `fsync` — the group-commit batching factor.
    pub commits_per_sync: f64,
}

fn scratch_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("spgist-bench-wal-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("create bench scratch dir");
    dir
}

/// Runs `commits_per_thread` acknowledged inserts on each of `threads`
/// writer threads against a fresh durable database configured with
/// `config`, returning the measured row.
fn run_one(
    mode: &'static str,
    config: WalConfig,
    threads: usize,
    commits_per_thread: usize,
) -> WalRow {
    let dir = scratch_dir(&format!("{mode}-{threads}"));
    let path = dir.join("db.pages");
    let mut db = Database::create_with_wal_config(&path, BufferPoolConfig::default(), config)
        .expect("create bench database");
    db.create_table("commits", KeyType::Varchar)
        .expect("create table");

    let syncs_before = db.wal().expect("durable db has a wal").sync_count();
    let started = Instant::now();
    let per_thread: Vec<Vec<Duration>> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..threads)
            .map(|t| {
                let table = db.table_handle("commits").expect("table handle");
                scope.spawn(move || {
                    let mut latencies = Vec::with_capacity(commits_per_thread);
                    for i in 0..commits_per_thread {
                        let begun = Instant::now();
                        table
                            .insert(format!("w{t:02}-{i:06}"))
                            .expect("acknowledged insert");
                        latencies.push(begun.elapsed());
                    }
                    latencies
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });
    let elapsed = started.elapsed();
    let syncs = db.wal().expect("wal").sync_count() - syncs_before;

    let mut latencies: Vec<Duration> = per_thread.into_iter().flatten().collect();
    let commits = latencies.len();
    db.close().expect("close bench database");
    let _ = std::fs::remove_dir_all(&dir);

    let elapsed_ms = elapsed.as_secs_f64() * 1e3;
    WalRow {
        mode,
        threads,
        commits,
        elapsed_ms,
        throughput_cps: commits as f64 / elapsed.as_secs_f64().max(1e-9),
        mean_ms: mean_ms(&latencies),
        p99_ms: p99_ms(&mut latencies),
        syncs,
        commits_per_sync: commits as f64 / (syncs.max(1)) as f64,
    }
}

/// Runs the commit-throughput experiment: per-commit fsync vs group commit
/// at each thread count, `commits_per_thread` acknowledged inserts per
/// writer.
pub fn run_wal_experiment(thread_counts: &[usize], commits_per_thread: usize) -> Vec<WalRow> {
    let mut rows = Vec::new();
    for &threads in thread_counts {
        let threads = threads.max(1);
        rows.push(run_one(
            "per-commit",
            WalConfig::per_commit(),
            threads,
            commits_per_thread,
        ));
        rows.push(run_one(
            "group",
            WalConfig::default(),
            threads,
            commits_per_thread,
        ));
    }
    rows
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wal_experiment_measures_both_modes() {
        let rows = run_wal_experiment(&[2], 25);
        assert_eq!(rows.len(), 2);
        let per_commit = &rows[0];
        let group = &rows[1];
        assert_eq!(per_commit.mode, "per-commit");
        assert_eq!(group.mode, "group");
        assert_eq!(per_commit.commits, 50);
        assert_eq!(group.commits, 50);
        assert!(per_commit.syncs >= 50, "per-commit pays one fsync each");
        assert!(
            group.syncs <= per_commit.syncs,
            "group commit never syncs more than per-commit"
        );
        assert!(group.commits_per_sync >= 1.0);
        assert!(per_commit.throughput_cps > 0.0 && group.throughput_cps > 0.0);
    }
}
