//! Concurrent-access experiment: one shared index under multi-threaded
//! reader and writer load.
//!
//! The paper's setting is SP-GiST trees serving live PostgreSQL traffic,
//! where many backends read and write the same index at once.  This
//! experiment measures that directly on the shared-access `SpIndex`
//! surface: a kd-tree behind an `Arc`, readers running window queries
//! through epoch-pinned cursors, writers crabbing per-page latches.
//! Three workloads are reported:
//!
//! * **read scaling** — the same total query workload split across 1, 2, 4…
//!   reader threads; throughput should rise with the thread count on
//!   multi-core hardware because readers never contend;
//! * **mixed** — N writer threads inserting bursts while M reader threads
//!   query; reports per-side throughput and p99 latency, the numbers that
//!   show writers stalling readers (or not);
//! * **hot-writer read scaling** — the tentpole measurement: 1→8 reader
//!   threads while one writer inserts *continuously* for the whole window.
//!   Under the old one-RwLock-per-tree design the writer serialized every
//!   cursor and reader throughput stayed flat; with epoch-pinned reads it
//!   must scale.  Each row also carries the tree's latch/epoch counters
//!   (latch waits, pin durations, retired-page backlog) over the window.
//!
//! All workloads are deterministic (seeded); wall-clock numbers are
//! hardware-dependent as always, so the rows also carry the work counts.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use spgist_core::{ConcurrencyStats, RowId};
use spgist_datagen::{points, QueryWorkload};
use spgist_indexes::query::PointQuery;
use spgist_indexes::{KdTreeIndex, SpIndex};

use crate::experiments::experiment_pool;
use crate::stats::mean_ms;

/// One row of the read-scaling experiment: the same query workload served
/// by `threads` reader threads.
#[derive(Debug, Clone)]
pub struct ReadScalingRow {
    /// Number of concurrent reader threads.
    pub threads: usize,
    /// Total queries executed across all threads.
    pub total_queries: usize,
    /// Total rows reported by all queries — a per-row work checksum.  It
    /// grows with the thread count (each thread runs its own seeded
    /// workload of `queries_per_thread` queries), so compare it across
    /// nights for the *same* thread count, not across rows.
    pub total_rows: u64,
    /// Wall-clock time for the whole workload, milliseconds.
    pub elapsed_ms: f64,
    /// Aggregate throughput in queries per second.
    pub throughput_qps: f64,
    /// Mean per-query latency, milliseconds.
    pub mean_ms: f64,
    /// 99th-percentile per-query latency, milliseconds.
    pub p99_ms: f64,
}

/// One row of the mixed reader/writer experiment.
#[derive(Debug, Clone)]
pub struct MixedRow {
    /// Number of concurrent reader threads.
    pub readers: usize,
    /// Number of concurrent writer threads.
    pub writers: usize,
    /// Queries executed across all readers.
    pub reads: usize,
    /// Items inserted across all writers.
    pub writes: usize,
    /// Wall-clock time for the whole workload, milliseconds.
    pub elapsed_ms: f64,
    /// Reader throughput, queries per second.
    pub read_qps: f64,
    /// Writer throughput, inserts per second.
    pub write_ips: f64,
    /// 99th-percentile query latency, milliseconds.
    pub read_p99_ms: f64,
    /// 99th-percentile insert latency, milliseconds.
    pub write_p99_ms: f64,
}

/// One row of the hot-writer read-scaling experiment: `threads` readers
/// querying while one writer inserts continuously.
#[derive(Debug, Clone)]
pub struct HotWriterRow {
    /// Number of concurrent reader threads (the writer is always 1).
    pub threads: usize,
    /// Queries executed across all readers.
    pub total_queries: usize,
    /// Total rows reported by all queries — a per-row work checksum.
    pub total_rows: u64,
    /// Inserts the continuous writer landed during the reader window.
    pub writer_inserts: usize,
    /// Wall-clock time for the whole workload, milliseconds.
    pub elapsed_ms: f64,
    /// Aggregate reader throughput in queries per second.
    pub throughput_qps: f64,
    /// Reader throughput relative to the 1-reader row of the same run.
    pub speedup: f64,
    /// Mean per-query latency, milliseconds.
    pub mean_ms: f64,
    /// 99th-percentile per-query latency, milliseconds.
    pub p99_ms: f64,
    /// Writer throughput, inserts per second.
    pub write_ips: f64,
    /// Latch/epoch counters accumulated by the tree over this row's window.
    pub concurrency: ConcurrencyStats,
}

/// 99th-percentile of a latency sample, in milliseconds.
pub fn p99_ms(samples: &mut [Duration]) -> f64 {
    if samples.is_empty() {
        return 0.0;
    }
    samples.sort_unstable();
    let rank = ((samples.len() as f64) * 0.99).ceil() as usize;
    samples[rank.clamp(1, samples.len()) - 1].as_secs_f64() * 1e3
}

/// Builds the shared kd-tree the concurrency workloads run against.
fn shared_kdtree(n_points: usize, seed: u64) -> Arc<KdTreeIndex> {
    let data = points(n_points, seed);
    let index = KdTreeIndex::create(experiment_pool()).expect("create kd-tree");
    for (i, p) in data.iter().enumerate() {
        index.insert(*p, i as RowId).expect("insert point");
    }
    Arc::new(index)
}

/// Runs the read-scaling workload: `queries_per_thread × threads` window
/// queries against a shared kd-tree over `n_points` points, once per entry
/// in `thread_counts`.
///
/// Every thread count serves a workload of the same *per-thread* size, so
/// the throughput column is comparable: perfect read scaling doubles QPS
/// when the thread count doubles.
pub fn run_read_scaling(
    n_points: usize,
    thread_counts: &[usize],
    queries_per_thread: usize,
    seed: u64,
) -> Vec<ReadScalingRow> {
    let index = shared_kdtree(n_points, seed);
    thread_counts
        .iter()
        .map(|&threads| {
            let threads = threads.max(1);
            let started = Instant::now();
            let per_thread: Vec<(u64, Vec<Duration>)> = std::thread::scope(|scope| {
                let handles: Vec<_> = (0..threads)
                    .map(|t| {
                        let index = Arc::clone(&index);
                        scope.spawn(move || {
                            let windows = QueryWorkload::windows(
                                queries_per_thread,
                                5.0,
                                seed ^ (0xC0 + t as u64),
                            );
                            let mut rows = 0u64;
                            let mut latencies = Vec::with_capacity(windows.len());
                            for w in &windows {
                                let t0 = Instant::now();
                                let matched = index
                                    .cursor(&PointQuery::InRect(*w))
                                    .expect("window cursor")
                                    .rows()
                                    .expect("drain cursor");
                                latencies.push(t0.elapsed());
                                rows += matched.len() as u64;
                            }
                            (rows, latencies)
                        })
                    })
                    .collect();
                handles
                    .into_iter()
                    .map(|h| h.join().expect("reader thread panicked"))
                    .collect()
            });
            let elapsed = started.elapsed();
            let total_queries = threads * queries_per_thread;
            let total_rows = per_thread.iter().map(|(rows, _)| rows).sum();
            let mut latencies: Vec<Duration> =
                per_thread.into_iter().flat_map(|(_, lat)| lat).collect();
            ReadScalingRow {
                threads,
                total_queries,
                total_rows,
                elapsed_ms: elapsed.as_secs_f64() * 1e3,
                throughput_qps: total_queries as f64 / elapsed.as_secs_f64().max(1e-9),
                mean_ms: mean_ms(&latencies),
                p99_ms: p99_ms(&mut latencies),
            }
        })
        .collect()
}

/// Runs the hot-writer read-scaling workload: for each entry in
/// `thread_counts`, `queries_per_thread × threads` window queries run
/// against a shared kd-tree while **one writer inserts continuously** until
/// the last reader finishes.
///
/// Every thread count serves the same *per-thread* workload, so perfect
/// read scaling doubles QPS when the thread count doubles even though the
/// writer never pauses — the measurement the epoch-read design exists for.
/// The `speedup` column is each row's throughput over the 1-reader row;
/// each row also snapshots the tree's latch/epoch counters across its
/// window.
pub fn run_hot_writer_scaling(
    n_points: usize,
    thread_counts: &[usize],
    queries_per_thread: usize,
    seed: u64,
) -> Vec<HotWriterRow> {
    let index = shared_kdtree(n_points, seed);
    let mut rows: Vec<HotWriterRow> = Vec::with_capacity(thread_counts.len());
    for (writer_generation, &threads) in thread_counts.iter().enumerate() {
        let writer_generation = writer_generation as u64;
        let threads = threads.max(1);
        let stats_before = index.tree().concurrency_stats();
        let stop = AtomicBool::new(false);
        let started = Instant::now();
        let (per_thread, writer_inserts) = std::thread::scope(|scope| {
            let writer = {
                let index = Arc::clone(&index);
                let stop = &stop;
                let generation = writer_generation;
                scope.spawn(move || {
                    // Fresh keys arrive in small seeded chunks (generating
                    // them all upfront would delay the first insert past a
                    // short reader window); row ids are offset far past the
                    // preloaded range, per generation so rows never collide.
                    let base = (n_points as RowId + 1) * 1_000_003 * (generation + 1);
                    let mut chunk_seed = seed ^ (0xF0 + generation);
                    let mut landed = 0usize;
                    'window: loop {
                        let fresh = points(1_024, chunk_seed);
                        chunk_seed = chunk_seed.wrapping_add(0x9E37_79B9_7F4A_7C15);
                        for p in &fresh {
                            // Always land at least one insert so every row
                            // really measures readers-under-writer.
                            if landed > 0 && stop.load(Ordering::Relaxed) {
                                break 'window;
                            }
                            index
                                .insert(*p, base + landed as RowId)
                                .expect("hot insert");
                            landed += 1;
                        }
                    }
                    landed
                })
            };
            let handles: Vec<_> = (0..threads)
                .map(|t| {
                    let index = Arc::clone(&index);
                    scope.spawn(move || {
                        let windows = QueryWorkload::windows(
                            queries_per_thread,
                            5.0,
                            seed ^ (0xA0 + t as u64),
                        );
                        let mut rows = 0u64;
                        let mut latencies = Vec::with_capacity(windows.len());
                        for w in &windows {
                            let t0 = Instant::now();
                            let matched = index
                                .cursor(&PointQuery::InRect(*w))
                                .expect("window cursor")
                                .rows()
                                .expect("drain cursor");
                            latencies.push(t0.elapsed());
                            rows += matched.len() as u64;
                        }
                        (rows, latencies)
                    })
                })
                .collect();
            let per_thread: Vec<(u64, Vec<Duration>)> = handles
                .into_iter()
                .map(|h| h.join().expect("reader thread panicked"))
                .collect();
            stop.store(true, Ordering::Relaxed);
            (per_thread, writer.join().expect("writer thread panicked"))
        });
        let elapsed = started.elapsed();
        let total_queries = threads * queries_per_thread;
        let total_rows = per_thread.iter().map(|(rows, _)| rows).sum();
        let mut latencies: Vec<Duration> =
            per_thread.into_iter().flat_map(|(_, lat)| lat).collect();
        let throughput_qps = total_queries as f64 / elapsed.as_secs_f64().max(1e-9);
        let baseline = rows.first().map_or(throughput_qps, |r| r.throughput_qps);
        rows.push(HotWriterRow {
            threads,
            total_queries,
            total_rows,
            writer_inserts,
            elapsed_ms: elapsed.as_secs_f64() * 1e3,
            throughput_qps,
            speedup: throughput_qps / baseline.max(1e-9),
            mean_ms: mean_ms(&latencies),
            p99_ms: p99_ms(&mut latencies),
            write_ips: writer_inserts as f64 / elapsed.as_secs_f64().max(1e-9),
            concurrency: index.tree().concurrency_stats().delta_since(&stats_before),
        });
    }
    rows
}

/// Runs the mixed workload: `writers` threads each inserting
/// `inserts_per_writer` fresh points in bursts while `readers` threads each
/// run `queries_per_reader` window queries against the same kd-tree.
pub fn run_mixed_workload(
    n_points: usize,
    readers: usize,
    writers: usize,
    queries_per_reader: usize,
    inserts_per_writer: usize,
    seed: u64,
) -> MixedRow {
    let index = shared_kdtree(n_points, seed);
    let readers = readers.max(1);
    let started = Instant::now();
    let (read_latencies, write_latencies): (Vec<Vec<Duration>>, Vec<Vec<Duration>>) =
        std::thread::scope(|scope| {
            let read_handles: Vec<_> = (0..readers)
                .map(|t| {
                    let index = Arc::clone(&index);
                    scope.spawn(move || {
                        let windows = QueryWorkload::windows(
                            queries_per_reader,
                            5.0,
                            seed ^ (0xD0 + t as u64),
                        );
                        let mut latencies = Vec::with_capacity(windows.len());
                        for w in &windows {
                            let t0 = Instant::now();
                            index
                                .cursor(&PointQuery::InRect(*w))
                                .expect("window cursor")
                                .rows()
                                .expect("drain cursor");
                            latencies.push(t0.elapsed());
                        }
                        latencies
                    })
                })
                .collect();
            let write_handles: Vec<_> = (0..writers)
                .map(|t| {
                    let index = Arc::clone(&index);
                    scope.spawn(move || {
                        let fresh = points(inserts_per_writer, seed ^ (0xE0 + t as u64));
                        let base = (n_points * (t + 1)) as RowId * 1_000_003;
                        let mut latencies = Vec::with_capacity(fresh.len());
                        for (i, p) in fresh.iter().enumerate() {
                            let t0 = Instant::now();
                            index.insert(*p, base + i as RowId).expect("insert point");
                            latencies.push(t0.elapsed());
                        }
                        latencies
                    })
                })
                .collect();
            (
                read_handles
                    .into_iter()
                    .map(|h| h.join().expect("reader thread panicked"))
                    .collect(),
                write_handles
                    .into_iter()
                    .map(|h| h.join().expect("writer thread panicked"))
                    .collect(),
            )
        });
    let elapsed = started.elapsed();
    let mut reads: Vec<Duration> = read_latencies.into_iter().flatten().collect();
    let mut writes: Vec<Duration> = write_latencies.into_iter().flatten().collect();
    MixedRow {
        readers,
        writers,
        reads: reads.len(),
        writes: writes.len(),
        elapsed_ms: elapsed.as_secs_f64() * 1e3,
        read_qps: reads.len() as f64 / elapsed.as_secs_f64().max(1e-9),
        write_ips: writes.len() as f64 / elapsed.as_secs_f64().max(1e-9),
        read_p99_ms: p99_ms(&mut reads),
        write_p99_ms: p99_ms(&mut writes),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn read_scaling_rows_report_identical_work() {
        let rows = run_read_scaling(2_000, &[1, 2], 20, 42);
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[0].threads, 1);
        assert_eq!(rows[1].threads, 2);
        assert_eq!(rows[0].total_queries, 20);
        assert_eq!(rows[1].total_queries, 40);
        for row in &rows {
            assert!(row.throughput_qps > 0.0);
            assert!(row.p99_ms >= row.mean_ms * 0.5);
            assert!(row.total_rows > 0, "window queries must match something");
        }
    }

    #[test]
    fn mixed_workload_completes_all_reads_and_writes() {
        let row = run_mixed_workload(1_000, 2, 2, 15, 50, 7);
        assert_eq!(row.reads, 30);
        assert_eq!(row.writes, 100);
        assert!(row.read_qps > 0.0);
        assert!(row.write_ips > 0.0);
    }

    #[test]
    fn hot_writer_scaling_reports_work_and_counters() {
        let rows = run_hot_writer_scaling(2_000, &[1, 2], 15, 11);
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[0].threads, 1);
        assert_eq!(rows[1].threads, 2);
        assert!(
            (rows[0].speedup - 1.0).abs() < 1e-9,
            "row 0 is its own baseline"
        );
        for row in &rows {
            assert_eq!(row.total_queries, row.threads * 15);
            assert!(row.writer_inserts > 0, "the hot writer must land inserts");
            assert!(row.throughput_qps > 0.0);
            assert!(row.concurrency.epoch_pins >= row.total_queries as u64);
            assert!(row.concurrency.latch_acquisitions > 0);
            assert_eq!(row.concurrency.active_pins, 0, "no pin outlives its window");
        }
    }

    #[test]
    fn p99_is_the_tail() {
        let mut samples: Vec<Duration> = (1..=100).map(Duration::from_millis).collect();
        let p = p99_ms(&mut samples);
        assert!((p - 99.0).abs() < 1e-9);
        assert_eq!(p99_ms(&mut []), 0.0);
    }
}
