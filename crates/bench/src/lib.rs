//! Experiment harness reproducing every table and figure of the paper's
//! evaluation (Section 6).
//!
//! The functions in [`experiments`] build the SP-GiST index and its baseline
//! on the same storage substrate, run the paper's query workloads, and return
//! structured rows (sizes, times, page I/O, ratios).  The `experiments`
//! binary prints them in the same form as the paper's figures; the Criterion
//! benches under `benches/` reuse the same builders for statistically
//! rigorous single-operation timings.
//!
//! Dataset sizes default to a laptop/CI-friendly scale (the paper used up to
//! 32 M keys on a 2006-era PostgreSQL installation); pass `--scale` to the
//! binary to grow them.  The *shapes* — who wins, by roughly what factor,
//! where the crossovers are — are the reproduction target, not absolute
//! numbers.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod build;
pub mod checkpoint;
pub mod concurrent;
pub mod experiments;
pub mod io_patterns;
pub mod json;
pub mod loc;
pub mod reopen;
pub mod stats;
pub mod wal;

pub use build::{run_build_experiment, write_build_json, BuildRow, BuildSide};
pub use checkpoint::{run_checkpoint_experiment, CheckpointRow, MUTATION_FRACTIONS_PCT};
pub use concurrent::{
    run_hot_writer_scaling, run_mixed_workload, run_read_scaling, HotWriterRow, MixedRow,
    ReadScalingRow,
};
pub use experiments::*;
pub use io_patterns::{
    run_io_patterns, run_io_patterns_on, run_pool_overhead, IoBackend, IoPatternRow,
    PoolOverheadRow,
};
pub use json::{rows_json, write_rows_json, JsonVal};
pub use reopen::{run_reopen_experiment, ReopenRow};
pub use wal::{run_wal_experiment, WalRow};
