//! Table 7: lines of code of the external methods versus the SP-GiST core.
//!
//! The paper reports that each index's external methods are under 10 % of the
//! total index code, the rest being the shared SP-GiST core.  This module
//! recomputes the same table for this repository by counting non-blank,
//! non-comment-only lines of the instantiation files against the shared
//! crates.

use std::path::{Path, PathBuf};

/// One row of Table 7.
#[derive(Debug, Clone, PartialEq)]
pub struct LocRow {
    /// Index name (trie, kd-tree, point quadtree, PMR quadtree, suffix tree).
    pub index: String,
    /// Lines of external-method code for this index.
    pub external_lines: usize,
    /// Percentage of the total (external + shared core) code.
    pub percent_of_total: f64,
}

/// Counts the meaningful lines of one Rust source file (non-blank lines that
/// are not pure `//` comments).
pub fn count_lines(source: &str) -> usize {
    source
        .lines()
        .map(str::trim)
        .filter(|l| !l.is_empty() && !l.starts_with("//"))
        .count()
}

fn file_lines(path: &Path) -> usize {
    std::fs::read_to_string(path)
        .map(|s| count_lines(&s))
        .unwrap_or(0)
}

fn dir_lines(dir: &Path) -> usize {
    let Ok(entries) = std::fs::read_dir(dir) else {
        return 0;
    };
    entries
        .filter_map(Result::ok)
        .map(|e| e.path())
        .filter(|p| p.extension().is_some_and(|ext| ext == "rs"))
        .map(|p| file_lines(&p))
        .sum()
}

/// Locates the workspace root relative to this crate's manifest.
pub fn workspace_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .and_then(Path::parent)
        .expect("bench crate lives two levels below the workspace root")
        .to_path_buf()
}

/// Computes Table 7 for this repository.
pub fn table7() -> Vec<LocRow> {
    let root = workspace_root();
    let indexes = root.join("crates/indexes/src");
    // Shared code every instantiation reuses: the SP-GiST core (internal
    // methods, clustering, NN search) and the storage substrate.
    let core_lines =
        dir_lines(&root.join("crates/core/src")) + dir_lines(&root.join("crates/storage/src"));
    let files = [
        ("trie", "trie.rs"),
        ("kd-tree", "kdtree.rs"),
        ("point quadtree", "quadtree.rs"),
        ("PMR quadtree", "pmr.rs"),
        ("suffix tree", "suffix.rs"),
    ];
    files
        .iter()
        .map(|(name, file)| {
            let external = file_lines(&indexes.join(file));
            LocRow {
                index: (*name).to_string(),
                external_lines: external,
                percent_of_total: external as f64 / (external + core_lines) as f64 * 100.0,
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn count_lines_skips_blanks_and_comments() {
        let src = "fn f() {\n\n// comment\n  let x = 1; // trailing\n}\n";
        assert_eq!(count_lines(src), 3);
    }

    #[test]
    fn table7_reports_each_instantiation_as_a_small_fraction() {
        let rows = table7();
        assert_eq!(rows.len(), 5);
        for row in &rows {
            assert!(row.external_lines > 0, "{} has no code?", row.index);
            assert!(
                row.percent_of_total < 50.0,
                "{} external methods are {}% of total — the shared core should dominate",
                row.index,
                row.percent_of_total
            );
        }
    }
}
