//! Builders and runners for the paper's experiments (Figures 6–17).

use std::sync::Arc;
use std::time::Duration;

use spgist_baselines::{BPlusTree, RTree, SeqScanTable};
use spgist_core::{ClusteringPolicy, RowId, SpGistOps};
use spgist_datagen::{points, segments, words, world, QueryWorkload};
use spgist_indexes::geom::{Point, Segment};
use spgist_indexes::{
    KdTreeIndex, PmrQuadtreeIndex, PointQuadtreeIndex, SpIndex, SuffixTreeIndex, TrieIndex, TrieOps,
};
use spgist_storage::{BufferPool, BufferPoolConfig, MemPager};

use crate::stats::{mean_ms, stddev_ms, timed};

/// Buffer-pool capacity used by the experiments: deliberately small relative
/// to the datasets so that eviction and page I/O are exercised, as they would
/// be inside PostgreSQL.
pub const EXPERIMENT_POOL_PAGES: usize = 2_048;

/// Creates the buffer pool every experiment index is built on.
pub fn experiment_pool() -> Arc<BufferPool> {
    Arc::new(BufferPool::new(
        Arc::new(MemPager::new()),
        BufferPoolConfig {
            capacity: EXPERIMENT_POOL_PAGES,
            ..Default::default()
        },
    ))
}

/// Dataset sizes for the string experiments.  The paper uses 2 M – 32 M keys;
/// these are the same five-point doubling series scaled down by 1000×, and
/// `scale` multiplies them back up.
pub fn word_sizes(scale: usize) -> Vec<usize> {
    [2_000, 4_000, 8_000, 16_000, 32_000]
        .into_iter()
        .map(|s| s * scale.max(1))
        .collect()
}

/// Dataset sizes for the point and segment experiments (paper: 250 K – 4 M).
pub fn point_sizes(scale: usize) -> Vec<usize> {
    [2_500, 5_000, 10_000, 20_000, 40_000]
        .into_iter()
        .map(|s| s * scale.max(1))
        .collect()
}

/// Dataset sizes for the suffix-tree substring experiment (paper Figure 16,
/// 250 K – 4 M strings).  Smaller than the other string experiments because a
/// suffix tree stores every suffix of every word, and leaves of *identical*
/// one-character suffixes are bounded by a single page (see README
/// limitations).
pub fn substring_sizes(scale: usize) -> Vec<usize> {
    [1_500, 3_000, 6_000, 12_000]
        .into_iter()
        .map(|s| s * scale.max(1))
        .collect()
}

/// Numbers of requested neighbours for the NN experiment (paper Figure 17).
pub const NN_KS: [usize; 8] = [8, 16, 32, 64, 128, 256, 512, 1024];

// ---------------------------------------------------------------------------
// Builders
// ---------------------------------------------------------------------------

/// Builds a patricia trie over `data`, returning the index and the total
/// insertion time.
pub fn build_trie(data: &[String]) -> (TrieIndex, Duration) {
    let index = TrieIndex::create(experiment_pool()).expect("create trie");
    let (_, elapsed) = timed(|| {
        for (i, w) in data.iter().enumerate() {
            index.insert(w, i as RowId).expect("insert word");
        }
    });
    (index, elapsed)
}

/// Builds a B⁺-tree over `data`, returning the index and the insertion time.
pub fn build_btree(data: &[String]) -> (BPlusTree, Duration) {
    let mut tree = BPlusTree::create(experiment_pool()).expect("create btree");
    let (_, elapsed) = timed(|| {
        for (i, w) in data.iter().enumerate() {
            tree.insert_str(w, i as RowId).expect("insert word");
        }
    });
    (tree, elapsed)
}

/// Builds a kd-tree over `data`, returning the index and the insertion time.
pub fn build_kdtree(data: &[Point]) -> (KdTreeIndex, Duration) {
    let index = KdTreeIndex::create(experiment_pool()).expect("create kd-tree");
    let (_, elapsed) = timed(|| {
        for (i, p) in data.iter().enumerate() {
            index.insert(*p, i as RowId).expect("insert point");
        }
    });
    (index, elapsed)
}

/// Builds a point quadtree over `data`.
pub fn build_pquadtree(data: &[Point]) -> (PointQuadtreeIndex, Duration) {
    let index = PointQuadtreeIndex::create(experiment_pool()).expect("create quadtree");
    let (_, elapsed) = timed(|| {
        for (i, p) in data.iter().enumerate() {
            index.insert(*p, i as RowId).expect("insert point");
        }
    });
    (index, elapsed)
}

/// Builds an R-tree over points.
pub fn build_rtree_points(data: &[Point]) -> (RTree, Duration) {
    let mut tree = RTree::create(experiment_pool()).expect("create r-tree");
    let (_, elapsed) = timed(|| {
        for (i, p) in data.iter().enumerate() {
            tree.insert_point(*p, i as RowId).expect("insert point");
        }
    });
    (tree, elapsed)
}

/// Builds a PMR quadtree over segments.
pub fn build_pmr(data: &[Segment]) -> (PmrQuadtreeIndex, Duration) {
    let index = PmrQuadtreeIndex::create(experiment_pool(), world()).expect("create pmr");
    let (_, elapsed) = timed(|| {
        for (i, s) in data.iter().enumerate() {
            index.insert(*s, i as RowId).expect("insert segment");
        }
    });
    (index, elapsed)
}

/// Builds an R-tree over segments (by their MBRs).
pub fn build_rtree_segments(data: &[Segment]) -> (RTree, Duration) {
    let mut tree = RTree::create(experiment_pool()).expect("create r-tree");
    let (_, elapsed) = timed(|| {
        for (i, s) in data.iter().enumerate() {
            tree.insert_segment(*s, i as RowId).expect("insert segment");
        }
    });
    (tree, elapsed)
}

/// Builds a suffix-tree index over `data`.
pub fn build_suffix(data: &[String]) -> (SuffixTreeIndex, Duration) {
    let index = SuffixTreeIndex::create(experiment_pool()).expect("create suffix tree");
    let (_, elapsed) = timed(|| {
        for (i, w) in data.iter().enumerate() {
            index.insert(w, i as RowId).expect("insert word");
        }
    });
    (index, elapsed)
}

/// Builds a heap table scanned sequentially.
pub fn build_seqscan(data: &[String]) -> (SeqScanTable, Duration) {
    let mut table = SeqScanTable::create(experiment_pool()).expect("create heap");
    let (_, elapsed) = timed(|| {
        for (i, w) in data.iter().enumerate() {
            table.insert(w, i as RowId).expect("insert tuple");
        }
    });
    (table, elapsed)
}

// ---------------------------------------------------------------------------
// Figures 6–12: trie vs. B+-tree on strings
// ---------------------------------------------------------------------------

/// One per-dataset-size row covering Figures 6–12.
#[derive(Debug, Clone)]
pub struct StringRow {
    /// Number of indexed words.
    pub size: usize,
    /// Mean exact-match query time, trie (ms).
    pub trie_exact_ms: f64,
    /// Mean exact-match query time, B⁺-tree (ms).
    pub btree_exact_ms: f64,
    /// Standard deviation of the trie exact-match times (Figure 8).
    pub trie_exact_stddev_ms: f64,
    /// Mean prefix-match time, trie (ms).
    pub trie_prefix_ms: f64,
    /// Mean prefix-match time, B⁺-tree (ms).
    pub btree_prefix_ms: f64,
    /// Mean regular-expression-match time, trie (ms).
    pub trie_regex_ms: f64,
    /// Mean regular-expression-match time, B⁺-tree (ms).
    pub btree_regex_ms: f64,
    /// Total insertion time, trie (ms).
    pub trie_insert_ms: f64,
    /// Total insertion time, B⁺-tree (ms).
    pub btree_insert_ms: f64,
    /// Index size in pages, trie.
    pub trie_pages: u64,
    /// Index size in pages, B⁺-tree.
    pub btree_pages: u64,
    /// Maximum tree height in nodes, trie (Figure 11).
    pub trie_node_height: u32,
    /// Maximum tree height in pages, trie (Figure 12).
    pub trie_page_height: u32,
    /// B⁺-tree height (nodes = pages).
    pub btree_height: u32,
}

/// Runs the trie-vs-B⁺-tree string experiments for the given dataset sizes.
pub fn run_string_experiments(sizes: &[usize], queries: usize, seed: u64) -> Vec<StringRow> {
    sizes
        .iter()
        .map(|&size| {
            let data = words(size, seed);
            let (trie, trie_insert) = build_trie(&data);
            let (btree, btree_insert) = build_btree(&data);

            let exact_queries = QueryWorkload::existing(&data, queries, seed ^ 0x51);
            let prefix_queries = QueryWorkload::prefixes(&data, queries, 2, seed ^ 0x52);
            let regex_queries = QueryWorkload::regexes(&data, queries, 2, seed ^ 0x53);

            // Exact match (Figure 6) and its per-query deviation (Figure 8).
            let mut trie_exact = Vec::with_capacity(queries);
            let mut btree_exact = Vec::with_capacity(queries);
            for q in &exact_queries {
                trie_exact.push(timed(|| trie.equals(q).expect("trie equals")).1);
                btree_exact.push(timed(|| btree.search_str(q).expect("btree equals")).1);
            }
            // Prefix match (Figure 6).
            let mut trie_prefix = Vec::with_capacity(queries);
            let mut btree_prefix = Vec::with_capacity(queries);
            for q in &prefix_queries {
                trie_prefix.push(timed(|| trie.prefix(q).expect("trie prefix")).1);
                btree_prefix
                    .push(timed(|| btree.prefix_search(q.as_bytes()).expect("btree prefix")).1);
            }
            // Regular-expression match (Figure 7).
            let mut trie_regex = Vec::with_capacity(queries);
            let mut btree_regex = Vec::with_capacity(queries);
            for q in &regex_queries {
                trie_regex.push(timed(|| trie.regex(q).expect("trie regex")).1);
                btree_regex.push(timed(|| btree.regex_search(q).expect("btree regex")).1);
            }

            let trie_stats = trie.stats().expect("trie stats");
            let btree_stats = btree.stats().expect("btree stats");
            StringRow {
                size,
                trie_exact_ms: mean_ms(&trie_exact),
                btree_exact_ms: mean_ms(&btree_exact),
                trie_exact_stddev_ms: stddev_ms(&trie_exact),
                trie_prefix_ms: mean_ms(&trie_prefix),
                btree_prefix_ms: mean_ms(&btree_prefix),
                trie_regex_ms: mean_ms(&trie_regex),
                btree_regex_ms: mean_ms(&btree_regex),
                trie_insert_ms: trie_insert.as_secs_f64() * 1e3,
                btree_insert_ms: btree_insert.as_secs_f64() * 1e3,
                trie_pages: trie_stats.pages,
                btree_pages: btree_stats.pages,
                trie_node_height: trie_stats.max_node_height,
                trie_page_height: trie_stats.max_page_height,
                btree_height: btree_stats.height,
            }
        })
        .collect()
}

// ---------------------------------------------------------------------------
// Figures 13–14: kd-tree vs. R-tree on points
// ---------------------------------------------------------------------------

/// One per-dataset-size row covering Figures 13 and 14.
#[derive(Debug, Clone)]
pub struct PointRow {
    /// Number of indexed points.
    pub size: usize,
    /// Total insertion time, kd-tree (ms).
    pub kd_insert_ms: f64,
    /// Total insertion time, R-tree (ms).
    pub rtree_insert_ms: f64,
    /// Mean point-match query time, kd-tree (ms).
    pub kd_point_ms: f64,
    /// Mean point-match query time, R-tree (ms).
    pub rtree_point_ms: f64,
    /// Mean range-query time, kd-tree (ms).
    pub kd_range_ms: f64,
    /// Mean range-query time, R-tree (ms).
    pub rtree_range_ms: f64,
    /// Index size in pages, kd-tree.
    pub kd_pages: u64,
    /// Index size in pages, R-tree.
    pub rtree_pages: u64,
}

/// Runs the kd-tree-vs-R-tree point experiments.
pub fn run_point_experiments(sizes: &[usize], queries: usize, seed: u64) -> Vec<PointRow> {
    sizes
        .iter()
        .map(|&size| {
            let data = points(size, seed);
            let (kd, kd_insert) = build_kdtree(&data);
            let (rt, rt_insert) = build_rtree_points(&data);

            let point_queries = QueryWorkload::existing(&data, queries, seed ^ 0x61);
            let windows = QueryWorkload::windows(queries, 5.0, seed ^ 0x62);

            let mut kd_point = Vec::with_capacity(queries);
            let mut rt_point = Vec::with_capacity(queries);
            for q in &point_queries {
                kd_point.push(timed(|| kd.equals(*q).expect("kd equals")).1);
                rt_point.push(timed(|| rt.point_match(*q).expect("rtree point")).1);
            }
            let mut kd_range = Vec::with_capacity(queries);
            let mut rt_range = Vec::with_capacity(queries);
            for w in &windows {
                kd_range.push(timed(|| kd.range(*w).expect("kd range")).1);
                rt_range.push(timed(|| rt.window(*w).expect("rtree window")).1);
            }

            PointRow {
                size,
                kd_insert_ms: kd_insert.as_secs_f64() * 1e3,
                rtree_insert_ms: rt_insert.as_secs_f64() * 1e3,
                kd_point_ms: mean_ms(&kd_point),
                rtree_point_ms: mean_ms(&rt_point),
                kd_range_ms: mean_ms(&kd_range),
                rtree_range_ms: mean_ms(&rt_range),
                kd_pages: kd.stats().expect("kd stats").pages,
                rtree_pages: rt.stats().pages,
            }
        })
        .collect()
}

// ---------------------------------------------------------------------------
// Figure 15: PMR quadtree vs. R-tree on line segments
// ---------------------------------------------------------------------------

/// One per-dataset-size row covering Figure 15.
#[derive(Debug, Clone)]
pub struct SegmentRow {
    /// Number of indexed segments.
    pub size: usize,
    /// Total insertion time, PMR quadtree (ms).
    pub pmr_insert_ms: f64,
    /// Total insertion time, R-tree (ms).
    pub rtree_insert_ms: f64,
    /// Mean exact-match query time, PMR quadtree (ms).
    pub pmr_exact_ms: f64,
    /// Mean exact-match query time, R-tree (ms).
    pub rtree_exact_ms: f64,
    /// Mean window-query time, PMR quadtree (ms).
    pub pmr_window_ms: f64,
    /// Mean window-query time, R-tree (ms).
    pub rtree_window_ms: f64,
    /// Index size in pages, PMR quadtree.
    pub pmr_pages: u64,
    /// Index size in pages, R-tree.
    pub rtree_pages: u64,
}

/// Runs the PMR-quadtree-vs-R-tree segment experiments.
pub fn run_segment_experiments(sizes: &[usize], queries: usize, seed: u64) -> Vec<SegmentRow> {
    sizes
        .iter()
        .map(|&size| {
            let data = segments(size, 10.0, seed);
            let (pmr, pmr_insert) = build_pmr(&data);
            let (rt, rt_insert) = build_rtree_segments(&data);

            let exact_queries = QueryWorkload::existing(&data, queries, seed ^ 0x71);
            let windows = QueryWorkload::windows(queries, 5.0, seed ^ 0x72);

            let mut pmr_exact = Vec::with_capacity(queries);
            let mut rt_exact = Vec::with_capacity(queries);
            for q in &exact_queries {
                pmr_exact.push(timed(|| pmr.equals(*q).expect("pmr equals")).1);
                rt_exact.push(timed(|| rt.segment_match(*q).expect("rtree segment")).1);
            }
            let mut pmr_window = Vec::with_capacity(queries);
            let mut rt_window = Vec::with_capacity(queries);
            for w in &windows {
                pmr_window.push(timed(|| pmr.window(*w).expect("pmr window")).1);
                rt_window.push(timed(|| rt.window(*w).expect("rtree window")).1);
            }

            SegmentRow {
                size,
                pmr_insert_ms: pmr_insert.as_secs_f64() * 1e3,
                rtree_insert_ms: rt_insert.as_secs_f64() * 1e3,
                pmr_exact_ms: mean_ms(&pmr_exact),
                rtree_exact_ms: mean_ms(&rt_exact),
                pmr_window_ms: mean_ms(&pmr_window),
                rtree_window_ms: mean_ms(&rt_window),
                pmr_pages: pmr.stats().expect("pmr stats").pages,
                rtree_pages: rt.stats().pages,
            }
        })
        .collect()
}

// ---------------------------------------------------------------------------
// Figure 16: suffix tree vs. sequential scan
// ---------------------------------------------------------------------------

/// One per-dataset-size row covering Figure 16.
#[derive(Debug, Clone)]
pub struct SubstringRow {
    /// Number of indexed strings.
    pub size: usize,
    /// Mean substring-match time over the suffix tree (ms).
    pub suffix_ms: f64,
    /// Mean substring-match time by sequential scan (ms).
    pub seqscan_ms: f64,
}

/// Runs the suffix-tree-vs-sequential-scan substring experiments.
pub fn run_substring_experiments(sizes: &[usize], queries: usize, seed: u64) -> Vec<SubstringRow> {
    sizes
        .iter()
        .map(|&size| {
            let data = words(size, seed);
            let (suffix, _) = build_suffix(&data);
            let (table, _) = build_seqscan(&data);
            let needles = QueryWorkload::substrings(&data, queries, 4, seed ^ 0x81);

            let mut suffix_times = Vec::with_capacity(queries);
            let mut scan_times = Vec::with_capacity(queries);
            for needle in &needles {
                suffix_times.push(timed(|| suffix.substring(needle).expect("suffix")).1);
                scan_times.push(timed(|| table.substring(needle).expect("seqscan")).1);
            }
            SubstringRow {
                size,
                suffix_ms: mean_ms(&suffix_times),
                seqscan_ms: mean_ms(&scan_times),
            }
        })
        .collect()
}

// ---------------------------------------------------------------------------
// Figure 17: incremental NN search
// ---------------------------------------------------------------------------

/// One per-`k` row covering Figure 17.
#[derive(Debug, Clone)]
pub struct NnRow {
    /// Number of neighbours requested.
    pub k: usize,
    /// Mean time to retrieve `k` neighbours from the kd-tree (ms).
    pub kd_ms: f64,
    /// Mean time to retrieve `k` neighbours from the point quadtree (ms).
    pub quad_ms: f64,
    /// Mean time to retrieve `k` neighbours from the trie (ms).
    pub trie_ms: f64,
}

/// Runs the NN experiments: `n` tuples per index, `k` varied over `ks`.
pub fn run_nn_experiments(n: usize, ks: &[usize], queries: usize, seed: u64) -> Vec<NnRow> {
    let point_data = points(n, seed);
    let word_data = words(n, seed ^ 0x91);
    let (kd, _) = build_kdtree(&point_data);
    let (quad, _) = build_pquadtree(&point_data);
    let (trie, _) = build_trie(&word_data);

    let nn_points = QueryWorkload::nn_points(queries, seed ^ 0x92);
    let nn_words = QueryWorkload::existing(&word_data, queries, seed ^ 0x93);

    ks.iter()
        .map(|&k| {
            let mut kd_times = Vec::with_capacity(queries);
            let mut quad_times = Vec::with_capacity(queries);
            let mut trie_times = Vec::with_capacity(queries);
            for q in &nn_points {
                kd_times.push(timed(|| kd.nearest(*q, k).expect("kd nn")).1);
                quad_times.push(timed(|| quad.nearest(*q, k).expect("quad nn")).1);
            }
            for q in &nn_words {
                trie_times.push(timed(|| trie.nearest(q, k).expect("trie nn")).1);
            }
            NnRow {
                k,
                kd_ms: mean_ms(&kd_times),
                quad_ms: mean_ms(&quad_times),
                trie_ms: mean_ms(&trie_times),
            }
        })
        .collect()
}

// ---------------------------------------------------------------------------
// Ablations
// ---------------------------------------------------------------------------

/// One row of the clustering ablation: page height and size per policy.
#[derive(Debug, Clone)]
pub struct ClusteringRow {
    /// Clustering policy under test.
    pub policy: ClusteringPolicy,
    /// Maximum tree height in pages.
    pub page_height: u32,
    /// Number of pages.
    pub pages: u64,
    /// Mean exact-match query time (ms).
    pub exact_ms: f64,
}

/// Ablation of the node→page clustering policy (DESIGN.md decision 1): the
/// same trie built with each policy, plus the offline repack.
pub fn run_clustering_ablation(size: usize, queries: usize, seed: u64) -> Vec<ClusteringRow> {
    let data = words(size, seed);
    let exact_queries = QueryWorkload::existing(&data, queries, seed ^ 0xa1);
    let policies = [
        ClusteringPolicy::ParentFirst,
        ClusteringPolicy::FirstFit,
        ClusteringPolicy::NewPagePerNode,
    ];
    let mut rows = Vec::new();
    for policy in policies {
        let config = TrieOps::patricia().config().with_clustering(policy);
        let index = TrieIndex::with_ops(experiment_pool(), TrieOps::with_config(config))
            .expect("create trie");
        for (i, w) in data.iter().enumerate() {
            index.insert(w, i as RowId).expect("insert");
        }
        let stats = index.stats().expect("stats");
        let mut times = Vec::with_capacity(queries);
        for q in &exact_queries {
            times.push(timed(|| index.equals(q).expect("equals")).1);
        }
        rows.push(ClusteringRow {
            policy,
            page_height: stats.max_page_height,
            pages: stats.pages,
            exact_ms: mean_ms(&times),
        });
    }
    rows
}

/// One row of the trie-variant ablation (PathShrink / bucket size).
#[derive(Debug, Clone)]
pub struct TrieVariantRow {
    /// Human-readable variant name.
    pub variant: String,
    /// Total nodes in the tree.
    pub nodes: u64,
    /// Maximum height in nodes.
    pub node_height: u32,
    /// Number of pages.
    pub pages: u64,
    /// Mean exact-match query time (ms).
    pub exact_ms: f64,
}

/// Ablation of the trie interface parameters (paper Figures 1 and 2): the
/// patricia (TreeShrink) trie versus the plain NeverShrink trie at two bucket
/// sizes.
pub fn run_trie_variant_ablation(size: usize, queries: usize, seed: u64) -> Vec<TrieVariantRow> {
    let data = words(size, seed);
    let exact_queries = QueryWorkload::existing(&data, queries, seed ^ 0xb1);
    let variants: Vec<(String, TrieOps)> = vec![
        (
            "patricia (TreeShrink, bucket 16)".to_string(),
            TrieOps::patricia(),
        ),
        (
            "plain (NeverShrink, bucket 16)".to_string(),
            TrieOps::never_shrink(),
        ),
        (
            "patricia (TreeShrink, bucket 1)".to_string(),
            TrieOps::with_config(TrieOps::patricia().config().with_bucket_size(1)),
        ),
    ];
    variants
        .into_iter()
        .map(|(name, ops)| {
            let index = TrieIndex::with_ops(experiment_pool(), ops).expect("create trie");
            for (i, w) in data.iter().enumerate() {
                index.insert(w, i as RowId).expect("insert");
            }
            let stats = index.stats().expect("stats");
            let mut times = Vec::with_capacity(queries);
            for q in &exact_queries {
                times.push(timed(|| index.equals(q).expect("equals")).1);
            }
            TrieVariantRow {
                variant: name,
                nodes: stats.total_nodes(),
                node_height: stats.max_node_height,
                pages: stats.pages,
                exact_ms: mean_ms(&times),
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn string_experiment_shapes_match_the_paper_on_a_small_run() {
        let rows = run_string_experiments(&[2_000], 40, 42);
        assert_eq!(rows.len(), 1);
        let row = &rows[0];
        // Figure 7 shape: the trie wins regular-expression match decisively.
        assert!(
            row.trie_regex_ms < row.btree_regex_ms,
            "trie regex {} ms should beat btree {} ms",
            row.trie_regex_ms,
            row.btree_regex_ms
        );
        // Prefix, exact and insert timings exist (their ratios are too noisy
        // to assert at this tiny scale; see EXPERIMENTS.md for the
        // full-size shapes).
        assert!(row.btree_prefix_ms > 0.0 && row.trie_prefix_ms > 0.0);
        assert!(row.btree_insert_ms > 0.0 && row.trie_insert_ms > 0.0);
        // Figures 11–12 shape: clustering keeps the page height no larger
        // than the node height (they coincide at this tiny dataset size and
        // diverge as the trie deepens).
        assert!(row.trie_node_height >= row.trie_page_height);
    }

    #[test]
    fn nn_rows_cover_all_requested_ks() {
        let rows = run_nn_experiments(1_000, &[8, 16], 5, 7);
        assert_eq!(rows.len(), 2);
        assert!(rows.iter().all(|r| r.kd_ms >= 0.0 && r.trie_ms >= 0.0));
    }

    #[test]
    fn clustering_ablation_orders_page_heights() {
        let rows = run_clustering_ablation(3_000, 20, 11);
        let by_policy = |p: ClusteringPolicy| {
            rows.iter()
                .find(|r| r.policy == p)
                .expect("policy present")
                .clone()
        };
        let parent = by_policy(ClusteringPolicy::ParentFirst);
        let naive = by_policy(ClusteringPolicy::NewPagePerNode);
        assert!(parent.page_height <= naive.page_height);
        assert!(parent.pages < naive.pages);
    }
}
