//! Build experiment: insert-loop loading vs. the `spgistbuild` bulk build
//! (paper Section 4).
//!
//! For each of the five index classes the same data set is loaded twice on
//! identical eviction-bounded buffer pools:
//!
//! * **insert loop** — one [`SpIndex::insert`] per item, the pre-`bulk_build`
//!   status quo: every key walks from the root and hot pages are re-dirtied
//!   (and, once the pool is smaller than the tree, written back) over and
//!   over as splits reshape them;
//! * **bulk build** — one [`SpIndex::bulk_build`] call: the whole set is
//!   partitioned top-down with `picksplit` and every node is allocated and
//!   written once.
//!
//! Reported per side: wall-clock, physical page writes (including the final
//! flush — the deterministic component of the comparison), resulting pages,
//! tree height in pages, and page fill.  The pool is deliberately smaller
//! than the built indexes ([`BUILD_POOL_PAGES`]) so the numbers show
//! *eviction-bounded* builds — the regime the 2M–32M-key experiments live
//! in.

use std::path::Path;
use std::sync::Arc;

use spgist_core::RowId;
use spgist_datagen::{points, segments, words, world};
use spgist_indexes::{
    KdTreeIndex, PmrQuadtreeIndex, PointQuadtreeIndex, SpIndex, SuffixTreeIndex, TrieIndex,
};
use spgist_storage::{BufferPool, BufferPoolConfig, MemPager};

use crate::stats::timed;

/// Buffer-pool frames for the build experiment: deliberately smaller than
/// every index built even at `--scale 1`, so both sides pay eviction
/// write-backs — the regime a full-scale (2M–32M-key) build lives in, where
/// no pool holds the tree.
pub const BUILD_POOL_PAGES: usize = 16;

/// One measured load (either side of the comparison).
#[derive(Debug, Clone, Copy)]
pub struct BuildSide {
    /// Wall-clock milliseconds for the whole load.
    pub ms: f64,
    /// Physical page writes during the load, including the final flush.
    pub writes: u64,
    /// Buffer-pool hit rate over the whole load, in `[0, 1]`.
    pub hit_rate: f64,
    /// Pages of the resulting tree.
    pub pages: u64,
    /// Resulting maximum tree height in pages.
    pub page_height: u32,
    /// Resulting page fill (fraction of page bytes holding node data).
    pub fill: f64,
}

/// One class's insert-loop vs. bulk-build comparison.
#[derive(Debug, Clone)]
pub struct BuildRow {
    /// Index class under test.
    pub class: &'static str,
    /// Number of logical items loaded.
    pub rows: usize,
    /// The insert-loop side.
    pub insert: BuildSide,
    /// The bulk-build side.
    pub bulk: BuildSide,
}

impl BuildRow {
    /// Wall-clock speedup of the bulk build over the insert loop.
    pub fn speedup(&self) -> f64 {
        self.insert.ms / self.bulk.ms.max(1e-9)
    }
}

fn bounded_pool() -> Arc<BufferPool> {
    Arc::new(BufferPool::new(
        Arc::new(MemPager::new()),
        BufferPoolConfig {
            capacity: BUILD_POOL_PAGES,
            ..Default::default()
        },
    ))
}

fn measure<I: SpIndex>(
    pool: &Arc<BufferPool>,
    index: &I,
    items: Vec<(I::Key, RowId)>,
    bulk: bool,
) -> BuildSide {
    pool.reset_stats();
    let (_, elapsed) = timed(|| {
        if bulk {
            index.bulk_build(items).expect("bulk build");
        } else {
            for (key, row) in items {
                index.insert(key, row).expect("insert");
            }
        }
    });
    pool.flush_all().expect("flush");
    let io = pool.stats();
    let stats = index.stats().expect("stats");
    BuildSide {
        ms: elapsed.as_secs_f64() * 1e3,
        writes: io.physical_writes,
        hit_rate: io.hit_ratio(),
        pages: stats.pages,
        page_height: stats.max_page_height,
        fill: stats.utilization,
    }
}

fn compare<I: SpIndex>(class: &'static str, items: Vec<(I::Key, RowId)>) -> BuildRow {
    let rows = items.len();
    let insert_pool = bounded_pool();
    let insert_ix = I::open(Arc::clone(&insert_pool)).expect("open index");
    let insert = measure(&insert_pool, &insert_ix, items.clone(), false);
    let bulk_pool = bounded_pool();
    let bulk_ix = I::open(Arc::clone(&bulk_pool)).expect("open index");
    let bulk = measure(&bulk_pool, &bulk_ix, items, true);
    assert_eq!(
        insert_ix.len(),
        bulk_ix.len(),
        "{class}: both loads hold the same logical item count"
    );
    BuildRow {
        class,
        rows,
        insert,
        bulk,
    }
}

/// Runs the build comparison for all five index classes at `--scale`-scaled
/// sizes.  [`PmrQuadtreeIndex`]'s default world is the paper's `[0, 100]²`
/// space, matching the segment generator's [`world`].
pub fn run_build_experiment(scale: usize, seed: u64) -> Vec<BuildRow> {
    let scale = scale.max(1);
    // A real assert: the experiment runs in release, and a diverged world
    // would silently park every segment as out-of-world on the PMR side.
    assert_eq!(
        spgist_indexes::pmr::DEFAULT_WORLD,
        world(),
        "segment data must live inside the PMR default world"
    );
    let word_items = |n: usize, seed| -> Vec<(String, RowId)> {
        words(n, seed)
            .into_iter()
            .enumerate()
            .map(|(row, w)| (w, row as RowId))
            .collect()
    };
    let point_items: Vec<_> = points(10_000 * scale, seed ^ 0xb1)
        .into_iter()
        .enumerate()
        .map(|(row, p)| (p, row as RowId))
        .collect();
    let segment_items: Vec<_> = segments(4_000 * scale, 10.0, seed ^ 0xb2)
        .into_iter()
        .enumerate()
        .map(|(row, s)| (s, row as RowId))
        .collect();
    vec![
        compare::<TrieIndex>("trie", word_items(8_000 * scale, seed)),
        compare::<SuffixTreeIndex>("suffix", word_items(2_000 * scale, seed ^ 0xb0)),
        compare::<KdTreeIndex>("kdtree", point_items.clone()),
        compare::<PointQuadtreeIndex>("pquadtree", point_items),
        compare::<PmrQuadtreeIndex>("pmr", segment_items),
    ]
}

/// Serializes the build rows as the machine-readable `BENCH_build.json`
/// artifact nightly CI archives (groundwork for cross-night trend tracking).
pub fn build_json(rows: &[BuildRow], scale: usize) -> String {
    let mut out = String::from("{\n");
    out.push_str("  \"experiment\": \"build\",\n");
    out.push_str(&format!("  \"scale\": {scale},\n"));
    out.push_str(&format!("  \"pool_pages\": {BUILD_POOL_PAGES},\n"));
    out.push_str("  \"rows\": [\n");
    for (i, r) in rows.iter().enumerate() {
        let side = |s: &BuildSide| {
            format!(
                "{{\"ms\": {:.3}, \"writes\": {}, \"hit_rate\": {:.4}, \"pages\": {}, \"page_height\": {}, \"fill\": {:.4}}}",
                s.ms, s.writes, s.hit_rate, s.pages, s.page_height, s.fill
            )
        };
        out.push_str(&format!(
            "    {{\"class\": \"{}\", \"rows\": {}, \"insert\": {}, \"bulk\": {}, \"speedup\": {:.2}}}{}\n",
            r.class,
            r.rows,
            side(&r.insert),
            side(&r.bulk),
            r.speedup(),
            if i + 1 < rows.len() { "," } else { "" }
        ));
    }
    out.push_str("  ]\n}\n");
    out
}

/// Writes [`build_json`] to `dir/BENCH_build.json`.
pub fn write_build_json(rows: &[BuildRow], scale: usize, dir: &Path) -> std::io::Result<()> {
    std::fs::create_dir_all(dir)?;
    std::fs::write(dir.join("BENCH_build.json"), build_json(rows, scale))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn build_experiment_shapes_hold_at_tiny_scale() {
        let rows = run_build_experiment(1, 42);
        assert_eq!(rows.len(), 5);
        for r in &rows {
            assert!(r.rows > 0);
            assert!(r.insert.writes > 0 && r.bulk.writes > 0);
            assert!(
                r.bulk.writes < r.insert.writes,
                "{}: bulk build must write fewer pages ({} vs {})",
                r.class,
                r.bulk.writes,
                r.insert.writes
            );
            assert!(r.bulk.page_height >= 1 && r.insert.page_height >= 1);
        }
    }

    #[test]
    fn build_json_is_well_formed_enough() {
        let rows = vec![BuildRow {
            class: "trie",
            rows: 10,
            insert: BuildSide {
                ms: 1.0,
                writes: 5,
                hit_rate: 0.9,
                pages: 3,
                page_height: 2,
                fill: 0.5,
            },
            bulk: BuildSide {
                ms: 0.5,
                writes: 3,
                hit_rate: 0.95,
                pages: 3,
                page_height: 2,
                fill: 0.6,
            },
        }];
        let json = build_json(&rows, 1);
        assert!(json.contains("\"experiment\": \"build\""));
        assert!(json.contains("\"class\": \"trie\""));
        assert_eq!(json.matches('{').count(), json.matches('}').count());
    }
}
