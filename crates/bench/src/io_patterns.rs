//! I/O-pattern experiment: buffer replacement policies under a
//! larger-than-memory read path.
//!
//! The paper's evaluation (Section 6) runs on a PostgreSQL installation
//! whose shared-buffer pool is far smaller than the 2M–32M-key indexes, so
//! every reported number is shaped by the replacement policy as much as by
//! the tree.  This experiment makes that dimension explicit: one kd-tree
//! over uniform points is built once, then re-opened cold under every
//! replacement policy ([`ReplacementPolicyKind::ALL`]) at pool sizes from
//! 5% to 100% of the index's pages, and four query mixes are replayed over
//! identical traces:
//!
//! * **point** — Zipf-ranked exact-match lookups (a hot set exists);
//! * **range** — small window queries centered on Zipf-ranked points;
//! * **knn** — `@@`-style 10-nearest-neighbour queries at Zipf anchors;
//! * **scan+point** — the scan-resistance probe: the same Zipf point
//!   lookups with a full sequential scan of the backing heap table (the
//!   `AccessHint::Scan`-tagged one-touch pattern the executor's seq
//!   scans emit) injected every eighth query — the access mix that
//!   flushes a hint-oblivious pool's index hot set.
//!
//! Each cell warms the pool with one pass of the trace, resets the
//! counters, and measures a second pass: steady-state hit rate, physical
//! reads, evictions, wall-clock and per-query p99.  A second table
//! ([`run_pool_overhead`]) isolates the *replacement bookkeeping* cost:
//! uniform-random fetches on a pool at 50% of the page set, where the
//! legacy `lru-scan` baseline pays an O(frames) victim scan per miss and
//! the intrusive-list policies pay O(1).

use std::sync::Arc;
use std::time::{Duration, Instant};

use spgist_datagen::rng::DetRng;
use spgist_datagen::{points, WORLD_MAX};
use spgist_indexes::geom::{Point, Rect};
use spgist_indexes::{KdTreeIndex, KdTreeOps, SpIndex};
use spgist_storage::{
    BufferPool, BufferPoolConfig, FilePager, HeapFile, MemPager, PageId, Pager,
    ReplacementPolicyKind,
};

use crate::stats::timed;

/// Where the experiment's pages live: an in-memory pager (fast, measures
/// replacement behaviour in isolation) or a real file (`FilePager`), where
/// a pool smaller than the file pays actual kernel I/O per miss.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IoBackend {
    /// `MemPager`: page "disk" is a `Vec` behind a lock.
    Mem,
    /// `FilePager` on a scratch file under the OS temp directory.
    File,
}

impl IoBackend {
    /// Parses a `--backend` argument.
    pub fn parse(s: &str) -> Option<Self> {
        match s {
            "mem" => Some(IoBackend::Mem),
            "file" => Some(IoBackend::File),
            _ => None,
        }
    }

    /// The name the row reports.
    pub fn name(self) -> &'static str {
        match self {
            IoBackend::Mem => "mem",
            IoBackend::File => "file",
        }
    }
}

/// Pool sizes exercised, as percentages of the index's page count.
pub const POOL_FRACTIONS_PCT: [usize; 5] = [5, 10, 25, 50, 100];

/// Window-query side length (world units; the world is `[0, 100]²`).
const RANGE_SIDE: f64 = 4.0;

/// Neighbours per k-NN query.
const KNN_K: usize = 10;

/// One op in `queries` of the scan+point mix is a full-index sweep.
const SCAN_EVERY: usize = 8;

/// One measured cell: a `(policy, pool size, workload)` combination.
#[derive(Debug, Clone)]
pub struct IoPatternRow {
    /// Pager backend the cell ran on (`mem` or `file`).
    pub backend: &'static str,
    /// Replacement policy name (`lru`, `clock`, `sieve`, `lru-scan`).
    pub policy: &'static str,
    /// Pool size as a percentage of the index's pages.
    pub pool_pct: usize,
    /// Pool frames the cell ran with.
    pub frames: usize,
    /// Pages the index occupies (the working set a 100% pool holds).
    pub data_pages: usize,
    /// Workload name (`point`, `range`, `knn`, `scan+point`).
    pub workload: &'static str,
    /// Queries in the measured pass.
    pub queries: usize,
    /// Logical page reads during the measured pass.
    pub logical_reads: u64,
    /// Physical page reads during the measured pass.
    pub physical_reads: u64,
    /// Frames evicted during the measured pass.
    pub evictions: u64,
    /// Steady-state hit rate of the measured pass, in `[0, 1]`.
    pub hit_rate: f64,
    /// Wall-clock milliseconds for the measured pass.
    pub elapsed_ms: f64,
    /// 99th-percentile single-query latency, milliseconds.
    pub p99_ms: f64,
    /// Total rows every query of the pass reported (work checksum —
    /// identical across policies, or the cell measured different work).
    pub result_rows: u64,
}

/// One row of the replacement-bookkeeping microbenchmark.
#[derive(Debug, Clone)]
pub struct PoolOverheadRow {
    /// Replacement policy name.
    pub policy: &'static str,
    /// Pool frames.
    pub frames: usize,
    /// Distinct pages fetched from (twice the frames: ~50% miss rate).
    pub pages: usize,
    /// Fetches performed.
    pub fetches: usize,
    /// Wall-clock milliseconds for all fetches.
    pub elapsed_ms: f64,
    /// Fetches per second.
    pub fetches_per_sec: f64,
    /// Physical reads (≈ misses) the run paid.
    pub physical_reads: u64,
}

/// One pre-generated query of a workload trace.  Traces are generated once
/// per workload and replayed verbatim for every `(policy, pool size)` cell,
/// so cells differ only in the pool under test.
#[derive(Debug, Clone)]
enum Op {
    PointLookup(Point),
    Range(Rect),
    Knn(Point),
    FullScan,
}

/// Zipf(s=1) sampler over ranks `0..n` via the cumulative harmonic weights.
struct Zipf {
    cumulative: Vec<f64>,
}

impl Zipf {
    fn new(n: usize) -> Self {
        let mut cumulative = Vec::with_capacity(n);
        let mut total = 0.0;
        for rank in 0..n {
            total += 1.0 / (rank as f64 + 1.0);
            cumulative.push(total);
        }
        Zipf { cumulative }
    }

    fn sample(&self, rng: &mut DetRng) -> usize {
        let total = *self.cumulative.last().expect("non-empty domain");
        let u = rng.gen_range(0.0..total);
        self.cumulative.partition_point(|&c| c <= u)
    }
}

fn window_around(center: Point) -> Rect {
    let half = RANGE_SIDE / 2.0;
    Rect::new(
        (center.x - half).max(0.0),
        (center.y - half).max(0.0),
        (center.x + half).min(WORLD_MAX),
        (center.y + half).min(WORLD_MAX),
    )
}

/// Generates the trace of one workload: Zipf ranks index into `data`, so
/// the hot set of the trace is a hot set of stored keys (and therefore of
/// leaf pages).
fn make_trace(
    workload: &'static str,
    data: &[Point],
    zipf: &Zipf,
    queries: usize,
    seed: u64,
) -> Vec<Op> {
    let mut rng = DetRng::seed_from_u64(seed);
    (0..queries)
        .map(|i| match workload {
            "point" => Op::PointLookup(data[zipf.sample(&mut rng)]),
            "range" => Op::Range(window_around(data[zipf.sample(&mut rng)])),
            "knn" => Op::Knn(data[zipf.sample(&mut rng)]),
            "scan+point" => {
                if i % SCAN_EVERY == SCAN_EVERY - 1 {
                    Op::FullScan
                } else {
                    Op::PointLookup(data[zipf.sample(&mut rng)])
                }
            }
            other => unreachable!("unknown workload {other}"),
        })
        .collect()
}

/// Runs one op, returning the number of rows it reported.
fn run_op(kd: &KdTreeIndex, heap: &HeapFile, op: &Op) -> u64 {
    match op {
        Op::PointLookup(p) => kd.equals(*p).expect("point lookup").len() as u64,
        Op::Range(rect) => kd.range(*rect).expect("range query").len() as u64,
        Op::Knn(anchor) => kd.nearest(*anchor, KNN_K).expect("knn query").len() as u64,
        // The sweep is the executor's table scan: every heap page touched
        // exactly once.  [`HeapFile::scan`] tags its fetches Scan, so
        // hint-aware policies keep the index's hot set resident.
        Op::FullScan => {
            let mut rows = 0u64;
            heap.scan(|_, _| rows += 1).expect("heap scan");
            rows
        }
    }
}

/// Heap record width: a plausible tuple (two coordinates plus payload), so
/// the scanned table occupies a meaningful number of pages.
const HEAP_RECORD_BYTES: usize = 64;

fn heap_record(p: Point) -> [u8; HEAP_RECORD_BYTES] {
    let mut rec = [0u8; HEAP_RECORD_BYTES];
    rec[..8].copy_from_slice(&p.x.to_le_bytes());
    rec[8..16].copy_from_slice(&p.y.to_le_bytes());
    rec
}

/// The durable identity of the built dataset: the shared pager plus what
/// every cold pool needs to reopen the same physical index and heap.
struct Dataset {
    pager: Arc<dyn Pager>,
    meta: PageId,
    index_pages: Vec<PageId>,
    heap_pages: Vec<PageId>,
    heap_records: u64,
    /// Scratch directory backing a [`IoBackend::File`] dataset; removed on
    /// drop so repeated runs don't accumulate multi-gigabyte files.
    scratch: Option<std::path::PathBuf>,
}

impl Drop for Dataset {
    fn drop(&mut self) {
        if let Some(dir) = self.scratch.take() {
            let _ = std::fs::remove_dir_all(dir);
        }
    }
}

/// Builds the kd-tree and its backing heap table once on a throwaway pool
/// and flushes both — every measurement cell then re-opens the *same
/// physical data* under a cold pool.
fn build_dataset(data: &[Point], backend: IoBackend) -> Dataset {
    let (pager, scratch): (Arc<dyn Pager>, Option<std::path::PathBuf>) = match backend {
        IoBackend::Mem => (Arc::new(MemPager::new()), None),
        IoBackend::File => {
            let dir = std::env::temp_dir().join(format!(
                "spgist-io-patterns-{}-{}",
                std::process::id(),
                data.len()
            ));
            let _ = std::fs::remove_dir_all(&dir);
            std::fs::create_dir_all(&dir).expect("create scratch dir");
            let pager = FilePager::create(dir.join("dataset.pages")).expect("create file pager");
            (Arc::new(pager), Some(dir))
        }
    };
    let pool = Arc::new(BufferPool::new(
        Arc::clone(&pager),
        BufferPoolConfig {
            capacity: 4096,
            ..Default::default()
        },
    ));
    let kd = KdTreeIndex::create(Arc::clone(&pool)).expect("create kd-tree");
    kd.bulk_build(
        data.iter()
            .enumerate()
            .map(|(row, p)| (*p, row as u64))
            .collect(),
    )
    .expect("bulk build");
    let mut heap = HeapFile::create(Arc::clone(&pool)).expect("create heap");
    for p in data {
        heap.insert(&heap_record(*p)).expect("insert heap record");
    }
    let dataset = Dataset {
        pager: Arc::clone(&pager),
        meta: kd.meta_page(),
        index_pages: kd.owned_pages(),
        heap_pages: heap.pages().to_vec(),
        heap_records: heap.record_count(),
        scratch,
    };
    pool.flush_all().expect("flush built dataset");
    dataset
}

fn p99_ms(samples: &mut [Duration]) -> f64 {
    if samples.is_empty() {
        return 0.0;
    }
    samples.sort_unstable();
    let idx = ((samples.len() as f64 * 0.99).ceil() as usize).clamp(1, samples.len()) - 1;
    samples[idx].as_secs_f64() * 1e3
}

/// Runs the full policy × pool-size × workload grid over `n` points with
/// `queries` queries per trace, on the in-memory backend.
pub fn run_io_patterns(n: usize, queries: usize, seed: u64) -> Vec<IoPatternRow> {
    run_io_patterns_on(n, queries, seed, IoBackend::Mem)
}

/// [`run_io_patterns`] with an explicit backend.  With [`IoBackend::File`]
/// the dataset lives in a real file under the OS temp directory and every
/// pool miss is a kernel read — the configuration the paper's evaluation
/// ran in, where the shared-buffer pool is far smaller than the index.
pub fn run_io_patterns_on(
    n: usize,
    queries: usize,
    seed: u64,
    backend: IoBackend,
) -> Vec<IoPatternRow> {
    let data = points(n, seed);
    let dataset = build_dataset(&data, backend);
    let data_pages = dataset.index_pages.len() + dataset.heap_pages.len();
    let zipf = Zipf::new(data.len());

    let workloads: [&'static str; 4] = ["point", "range", "knn", "scan+point"];
    let traces: Vec<(&'static str, Vec<Op>)> = workloads
        .iter()
        .enumerate()
        .map(|(i, &w)| {
            (
                w,
                make_trace(w, &data, &zipf, queries, seed ^ (i as u64 + 1)),
            )
        })
        .collect();

    let mut rows = Vec::new();
    for &pct in &POOL_FRACTIONS_PCT {
        let frames = (data_pages * pct / 100).max(8);
        for kind in ReplacementPolicyKind::ALL {
            for (workload, trace) in &traces {
                // A cold pool per cell: every policy starts from the same
                // flushed on-"disk" state and replays the same trace.
                let pool = Arc::new(BufferPool::new(
                    Arc::clone(&dataset.pager),
                    BufferPoolConfig {
                        capacity: frames,
                        policy: kind,
                        ..Default::default()
                    },
                ));
                let kd = KdTreeIndex::open_with_ops(
                    Arc::clone(&pool),
                    KdTreeOps::default(),
                    dataset.meta,
                    dataset.index_pages.clone(),
                )
                .expect("reopen kd-tree");
                let heap = HeapFile::open(
                    Arc::clone(&pool),
                    dataset.heap_pages.clone(),
                    dataset.heap_records,
                )
                .expect("reopen heap");

                // Warm pass: reach the policy's steady state, then measure.
                for op in trace {
                    run_op(&kd, &heap, op);
                }
                pool.reset_stats();

                let mut latencies = Vec::with_capacity(trace.len());
                let mut result_rows = 0u64;
                let (_, elapsed) = timed(|| {
                    for op in trace {
                        let started = Instant::now();
                        result_rows += run_op(&kd, &heap, op);
                        latencies.push(started.elapsed());
                    }
                });
                let stats = pool.stats();
                rows.push(IoPatternRow {
                    backend: backend.name(),
                    policy: pool.policy_name(),
                    pool_pct: pct,
                    frames,
                    data_pages,
                    workload,
                    queries: trace.len(),
                    logical_reads: stats.logical_reads,
                    physical_reads: stats.physical_reads,
                    evictions: stats.evictions,
                    hit_rate: stats.hit_ratio(),
                    elapsed_ms: elapsed.as_secs_f64() * 1e3,
                    p99_ms: p99_ms(&mut latencies),
                    result_rows,
                });
            }
        }
    }
    rows
}

/// Measures raw replacement bookkeeping: `fetches` uniform-random page
/// fetches against a pool holding half the page set, so roughly every
/// second fetch misses and must pick a victim.  At `frames` in the
/// thousands this is where the legacy O(frames)-scan eviction separates
/// from the O(1) intrusive-list policies.
pub fn run_pool_overhead(frames: usize, fetches: usize, seed: u64) -> Vec<PoolOverheadRow> {
    let pages = frames * 2;
    let pager = Arc::new(MemPager::new());
    {
        let writer = BufferPool::new(
            Arc::clone(&pager) as Arc<dyn Pager>,
            BufferPoolConfig {
                capacity: 64,
                ..Default::default()
            },
        );
        for _ in 0..pages {
            writer.allocate_page().expect("allocate page");
        }
        writer.flush_all().expect("flush page set");
    }

    ReplacementPolicyKind::ALL
        .into_iter()
        .map(|kind| {
            let pool = BufferPool::new(
                Arc::clone(&pager) as Arc<dyn Pager>,
                BufferPoolConfig {
                    capacity: frames,
                    policy: kind,
                    ..Default::default()
                },
            );
            let mut rng = DetRng::seed_from_u64(seed);
            let (_, elapsed) = timed(|| {
                for _ in 0..fetches {
                    let id = rng.gen_range(0..pages as u64) as PageId;
                    pool.with_page(id, |_| ()).expect("fetch page");
                }
            });
            let elapsed_ms = elapsed.as_secs_f64() * 1e3;
            PoolOverheadRow {
                policy: pool.policy_name(),
                frames,
                pages,
                fetches,
                elapsed_ms,
                fetches_per_sec: fetches as f64 / elapsed.as_secs_f64().max(1e-9),
                physical_reads: pool.stats().physical_reads,
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zipf_prefers_low_ranks() {
        let zipf = Zipf::new(1000);
        let mut rng = DetRng::seed_from_u64(9);
        let mut low = 0usize;
        for _ in 0..2000 {
            if zipf.sample(&mut rng) < 100 {
                low += 1;
            }
        }
        // The first 10% of ranks carry ~62% of Zipf(1) mass over 1000 ranks.
        assert!(low > 1000, "only {low}/2000 samples hit the hot 10%");
    }

    #[test]
    fn grid_covers_every_cell_and_checksums_agree() {
        let rows = run_io_patterns(600, 24, 42);
        assert_eq!(
            rows.len(),
            POOL_FRACTIONS_PCT.len() * ReplacementPolicyKind::ALL.len() * 4
        );
        // Identical traces must do identical logical work regardless of
        // policy and pool size: group by workload and compare checksums.
        for workload in ["point", "range", "knn", "scan+point"] {
            let checksums: Vec<u64> = rows
                .iter()
                .filter(|r| r.workload == workload)
                .map(|r| r.result_rows)
                .collect();
            assert!(
                checksums.windows(2).all(|w| w[0] == w[1]),
                "{workload}: policies disagreed on results: {checksums:?}"
            );
        }
        for r in &rows {
            assert!(r.logical_reads > 0, "{r:?} measured nothing");
            assert!((0.0..=1.0).contains(&r.hit_rate));
            // At a full-size pool the warmed second pass misses nothing.
            if r.pool_pct == 100 {
                assert_eq!(
                    r.physical_reads, 0,
                    "{}/{}: full-size pool must serve the warmed pass from memory",
                    r.policy, r.workload
                );
            }
        }
    }

    #[test]
    fn scan_resistant_policies_beat_the_hint_oblivious_baseline() {
        let rows = run_io_patterns(2_000, 48, 7);
        let hit = |policy: &str| {
            rows.iter()
                .find(|r| r.policy == policy && r.pool_pct == 10 && r.workload == "scan+point")
                .map(|r| r.hit_rate)
                .expect("cell exists")
        };
        let oblivious = hit("lru-scan");
        let best = hit("sieve").max(hit("clock")).max(hit("lru"));
        assert!(
            best >= oblivious,
            "hint-aware policies ({best:.3}) must not lose to the \
             hint-oblivious baseline ({oblivious:.3}) on the scan mix"
        );
    }

    #[test]
    fn file_backend_pays_real_reads_on_a_starved_pool() {
        // Large enough that the 5% pool (floored at 8 frames) is smaller
        // than the page set — a starved pool over a real file must miss.
        let rows = run_io_patterns_on(6_000, 16, 42, IoBackend::File);
        assert!(rows.iter().all(|r| r.backend == "file"));
        assert!(
            rows.iter()
                .all(|r| r.pool_pct < 100 || r.frames >= r.data_pages),
            "100% pool should hold the whole dataset"
        );
        // A pool at 5% of the file must miss: physical reads come from the
        // actual file, not a Vec.
        let starved: u64 = rows
            .iter()
            .filter(|r| r.pool_pct == 5 && r.frames < r.data_pages)
            .map(|r| r.physical_reads)
            .sum();
        assert!(starved > 0, "5% pools on a real file never touched disk?");
        // Work checksums agree with the mem backend: the backend changes
        // where pages live, not what the queries compute.
        let mem = run_io_patterns(6_000, 16, 42);
        for (f, m) in rows.iter().zip(mem.iter()) {
            assert_eq!(f.result_rows, m.result_rows, "{}/{}", f.policy, f.workload);
        }
    }

    #[test]
    fn pool_overhead_counts_misses() {
        let rows = run_pool_overhead(128, 2_000, 3);
        assert_eq!(rows.len(), ReplacementPolicyKind::ALL.len());
        for r in &rows {
            // Uniform fetches over twice the frames: misses are roughly
            // half the fetches; at the very least they are plentiful.
            assert!(
                r.physical_reads as usize > r.fetches / 4,
                "{}: {} misses in {} fetches is implausibly few",
                r.policy,
                r.physical_reads,
                r.fetches
            );
        }
    }
}
