//! Checkpoint experiment: incremental checkpoints versus the full-rewrite
//! baseline.
//!
//! The durable catalog (SPGC v3) stores each table's row and heap
//! directories as fixed-size chunked segments and tracks which chunks DML
//! touched, so `checkpoint()` rewrites only the root, mutated tables'
//! metadata, and the dirty chunks.  This experiment measures what that
//! buys: for each database size, a `points` table (with a kd-tree index)
//! is bulk-loaded, folded into a baseline checkpoint, and then a sweep of
//! *mutation fractions* (0.1% – 100% of the table's row chunks) runs two
//! checkpoints per fraction:
//!
//! * **incremental** — the default `checkpoint()`, with a concurrent
//!   writer hammering a second table so the quiesce window shows up as a
//!   writer stall p99;
//! * **full** — `checkpoint_full()`, which marks every table fully dirty
//!   first: the pre-incremental behaviour (rewrite the whole catalog), on
//!   an identical mutation load.
//!
//! The headline column is `io_ratio_vs_full`: total checkpoint I/O bytes
//! (journal + catalog + flushed data pages) of the full rewrite divided by
//! the incremental checkpoint's.  The paper's realization argument is that
//! index maintenance must not cost more than the work done since the last
//! maintenance — at 1 M rows with ≤ 1% mutated the incremental path must
//! do ≥ 10× less I/O (asserted by CI on the emitted JSON).

use std::sync::atomic::{AtomicBool, Ordering};
use std::time::{Duration, Instant};

use spgist_catalog::durable::ROWS_PER_CHUNK;
use spgist_catalog::{Database, IndexSpec, KeyType};
use spgist_datagen::points;
use spgist_storage::PAGE_SIZE;

use crate::stats::timed;

/// Mutation fractions swept, in percent of the table's row chunks.
pub const MUTATION_FRACTIONS_PCT: [f64; 4] = [0.1, 1.0, 10.0, 100.0];

/// How many rows each `insert_many` batch of the bulk load carries.
const LOAD_BATCH: usize = 10_000;

/// One measured checkpoint: a `(rows, fraction, mode)` combination.
#[derive(Debug, Clone)]
pub struct CheckpointRow {
    /// Rows in the `points` table.
    pub rows: usize,
    /// Fraction of the table's row chunks mutated before the checkpoint,
    /// in percent.
    pub pct_mutated: f64,
    /// Row chunks actually mutated (≥ 1).
    pub chunks_mutated: usize,
    /// `incremental` (plain `checkpoint()`) or `full` (`checkpoint_full()`).
    pub mode: &'static str,
    /// Wall-clock milliseconds for the checkpoint call.
    pub wall_ms: f64,
    /// Catalog chunks rewritten by this checkpoint.
    pub chunks_written: u64,
    /// Catalog chunks skipped as unchanged.
    pub chunks_skipped: u64,
    /// Catalog content bytes written.
    pub catalog_bytes: u64,
    /// Pre-image journal bytes written.
    pub journal_bytes: u64,
    /// Dirty data pages flushed.
    pub data_pages_flushed: u64,
    /// Microseconds the checkpoint held every table's DML lock.
    pub quiesce_us: f64,
    /// 99th-percentile latency (µs) of a concurrent writer's inserts into
    /// a *different* table while the checkpoint ran (0 for `full` mode,
    /// which runs without the writer).
    pub stall_p99_us: f64,
    /// Total checkpoint I/O: journal + catalog + flushed data pages.
    pub io_bytes: u64,
    /// `full` io_bytes ÷ this row's io_bytes (1.0 for the full row itself).
    pub io_ratio_vs_full: f64,
}

fn p99_us(samples: &mut [Duration]) -> f64 {
    if samples.is_empty() {
        return 0.0;
    }
    samples.sort_unstable();
    let idx = ((samples.len() as f64 * 0.99).ceil() as usize).clamp(1, samples.len()) - 1;
    samples[idx].as_secs_f64() * 1e6
}

/// Evenly spaced chunk indices: `count` chunks out of `chunk_count`.
fn spaced_chunks(chunk_count: usize, count: usize) -> Vec<usize> {
    let count = count.clamp(1, chunk_count);
    (0..count).map(|i| i * chunk_count / count).collect()
}

/// Dirties the selected row chunks of `table` with one delete each.
/// `pass` picks a distinct in-chunk offset per call so repeated passes
/// always find a live row to delete.
fn mutate_chunks(db: &Database, table: &str, chunks: &[usize], rows: usize, pass: u64) {
    let handle = db.table_handle(table).expect("table exists");
    for &chunk in chunks {
        let row = (chunk as u64 * ROWS_PER_CHUNK + pass).min(rows as u64 - 1);
        handle.delete(row).expect("delete row");
    }
}

/// Runs the fraction sweep for one database size.  `with_index` controls
/// whether the points table carries a kd-tree (the experiment does; the
/// fast unit test skips it).
fn run_one_size(n: usize, seed: u64, with_index: bool) -> Vec<CheckpointRow> {
    let dir = std::env::temp_dir().join(format!("spgist-ckpt-bench-{}-{n}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("create bench dir");
    let path = dir.join("db.pages");

    let mut db = Database::create(&path).expect("create database");
    db.create_table("points", KeyType::Point)
        .expect("create points");
    if with_index {
        db.create_index("points", "points_kd", IndexSpec::KdTree)
            .expect("create kd-tree");
    }
    db.create_table("side", KeyType::Varchar)
        .expect("create side");

    let data = points(n, seed);
    {
        let handle = db.table_handle("points").expect("points handle");
        for batch in data.chunks(LOAD_BATCH) {
            handle
                .insert_many(batch.iter().copied())
                .expect("bulk load batch");
        }
    }
    drop(data);
    // Fold the load into the baseline image; everything after this is the
    // cost of checkpointing *mutations*, not the initial load.
    db.checkpoint().expect("baseline checkpoint");

    let chunk_count = n.div_ceil(ROWS_PER_CHUNK as usize);
    let mut rows_out = Vec::new();

    for (pass, &pct) in MUTATION_FRACTIONS_PCT.iter().enumerate() {
        let target = ((pct / 100.0) * chunk_count as f64).ceil() as usize;
        let chunks = spaced_chunks(chunk_count, target);

        // --- incremental: mutate, checkpoint under a concurrent writer ---
        mutate_chunks(&db, "points", &chunks, n, 2 * pass as u64);
        let before = db.checkpoint_stats();
        let stop = AtomicBool::new(false);
        let side = db.table_handle("side").expect("side handle");
        let (wall, mut stalls) = std::thread::scope(|scope| {
            let writer = scope.spawn(|| {
                let mut latencies = Vec::new();
                let mut i = 0u64;
                while !stop.load(Ordering::Acquire) {
                    let started = Instant::now();
                    side.insert(format!("s{i:012}")).expect("side insert");
                    latencies.push(started.elapsed());
                    i += 1;
                }
                latencies
            });
            let (_, wall) = timed(|| db.checkpoint().expect("incremental checkpoint"));
            stop.store(true, Ordering::Release);
            (wall, writer.join().expect("writer thread"))
        });
        let incr = db.checkpoint_stats().delta_since(&before);
        let incr_io =
            incr.journal_bytes + incr.catalog_bytes + incr.data_pages_flushed * PAGE_SIZE as u64;
        rows_out.push(CheckpointRow {
            rows: n,
            pct_mutated: pct,
            chunks_mutated: chunks.len(),
            mode: "incremental",
            wall_ms: wall.as_secs_f64() * 1e3,
            chunks_written: incr.chunks_written,
            chunks_skipped: incr.chunks_skipped,
            catalog_bytes: incr.catalog_bytes,
            journal_bytes: incr.journal_bytes,
            data_pages_flushed: incr.data_pages_flushed,
            quiesce_us: incr.quiesce_nanos as f64 / 1e3,
            stall_p99_us: p99_us(&mut stalls),
            io_bytes: incr_io,
            io_ratio_vs_full: 0.0, // patched below once the full row exists
        });

        // --- full baseline: identical mutation load, whole-catalog rewrite ---
        mutate_chunks(&db, "points", &chunks, n, 2 * pass as u64 + 1);
        let before = db.checkpoint_stats();
        let (_, wall) = timed(|| db.checkpoint_full().expect("full checkpoint"));
        let full = db.checkpoint_stats().delta_since(&before);
        let full_io =
            full.journal_bytes + full.catalog_bytes + full.data_pages_flushed * PAGE_SIZE as u64;
        rows_out.push(CheckpointRow {
            rows: n,
            pct_mutated: pct,
            chunks_mutated: chunks.len(),
            mode: "full",
            wall_ms: wall.as_secs_f64() * 1e3,
            chunks_written: full.chunks_written,
            chunks_skipped: full.chunks_skipped,
            catalog_bytes: full.catalog_bytes,
            journal_bytes: full.journal_bytes,
            data_pages_flushed: full.data_pages_flushed,
            quiesce_us: full.quiesce_nanos as f64 / 1e3,
            stall_p99_us: 0.0,
            io_bytes: full_io,
            io_ratio_vs_full: 1.0,
        });
        let last = rows_out.len() - 2;
        rows_out[last].io_ratio_vs_full = full_io as f64 / rows_out[last].io_bytes.max(1) as f64;
    }

    db.close().expect("close database");
    let _ = std::fs::remove_dir_all(&dir);
    rows_out
}

/// Runs the full size × mutation-fraction sweep on a file-backed database.
pub fn run_checkpoint_experiment(sizes: &[usize], seed: u64) -> Vec<CheckpointRow> {
    sizes
        .iter()
        .flat_map(|&n| run_one_size(n, seed, true))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spaced_chunks_cover_the_requested_count() {
        assert_eq!(spaced_chunks(10, 1), vec![0]);
        assert_eq!(spaced_chunks(10, 2), vec![0, 5]);
        assert_eq!(spaced_chunks(10, 100).len(), 10);
        let spread = spaced_chunks(1000, 10);
        assert_eq!(spread.len(), 10);
        assert!(spread.windows(2).all(|w| w[1] > w[0]));
    }

    #[test]
    fn incremental_checkpoint_beats_full_rewrite_by_10x_at_one_percent() {
        // 60k rows → 60 row chunks; 1% → one dirty chunk.  The acceptance
        // bar (≥ 10× less I/O at ≤ 1% mutated) must already hold at this
        // CI-friendly size — the gap only widens with scale.
        let rows = run_one_size(60_000, 0xC0FFEE, false);
        let one_pct_incr = rows
            .iter()
            .find(|r| r.pct_mutated == 1.0 && r.mode == "incremental")
            .expect("1% incremental row");
        let one_pct_full = rows
            .iter()
            .find(|r| r.pct_mutated == 1.0 && r.mode == "full")
            .expect("1% full row");
        assert_eq!(one_pct_incr.chunks_mutated, 1);
        assert!(
            one_pct_incr.io_ratio_vs_full >= 10.0,
            "incremental checkpoint I/O must be ≥10x smaller than the full \
             rewrite at 1% mutated: incr {} bytes vs full {} bytes (ratio {:.1})",
            one_pct_incr.io_bytes,
            one_pct_full.io_bytes,
            one_pct_incr.io_ratio_vs_full
        );
        // The 100% sweep converges: mutating every chunk makes incremental
        // do (roughly) the full rewrite's work.
        let all_incr = rows
            .iter()
            .find(|r| r.pct_mutated == 100.0 && r.mode == "incremental")
            .expect("100% incremental row");
        assert!(
            all_incr.io_ratio_vs_full < 4.0,
            "at 100% mutated the incremental path should approach the full \
             rewrite, got ratio {:.1}",
            all_incr.io_ratio_vs_full
        );
        for r in &rows {
            assert!(r.chunks_written > 0, "{r:?} wrote no chunks");
            assert!(r.io_bytes > 0, "{r:?} measured no I/O");
        }
    }
}
