//! Page allocation and retrieval.
//!
//! A [`Pager`] is the storage-manager abstraction of the paper's Section 4.2
//! ("PostgreSQL storage interface ... for the allocation and retrieval of
//! disk pages").  Two implementations are provided:
//!
//! * [`FilePager`] — pages live in a single file, read and written with
//!   positioned I/O; this is the durable, disk-based configuration,
//! * [`MemPager`] — pages live in memory; used by unit tests and by
//!   experiments that want deterministic page-I/O counts without disk noise.

use std::fs::{File, OpenOptions};
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::Path;

use parking_lot::Mutex;

use crate::error::{StorageError, StorageResult};
use crate::page::{Page, PageId, PAGE_SIZE};

/// Allocation and retrieval of fixed-size pages.
pub trait Pager: Send + Sync {
    /// Allocates a fresh, zeroed page and returns its id.  Implementations
    /// with a free list reuse returned pages before growing the store.
    fn allocate(&self) -> StorageResult<PageId>;

    /// Reads page `id` into `out`.
    fn read(&self, id: PageId, out: &mut Page) -> StorageResult<()>;

    /// Writes `page` as page `id`.
    fn write(&self, id: PageId, page: &Page) -> StorageResult<()>;

    /// Returns a whole page to the pager's free list so a later
    /// [`Pager::allocate`] can reuse it instead of growing the store.
    /// Freeing an already-free page is a no-op.  The default implementation
    /// leaks the page (no free-space reuse).
    fn free(&self, id: PageId) -> StorageResult<()> {
        let _ = id;
        Ok(())
    }

    /// Number of allocated pages (including pages currently on the free
    /// list: the store never shrinks, it only stops growing).
    fn page_count(&self) -> u32;

    /// Number of pages currently on the free list.
    fn free_page_count(&self) -> u32 {
        0
    }

    /// Flushes any buffered writes to stable storage.
    fn sync(&self) -> StorageResult<()>;
}

/// Shared free-list bookkeeping for [`MemPager`] and [`FilePager`]: a stack
/// for LIFO reuse plus a membership set so bulk frees (a whole tree's pages
/// on repack) stay linear.
#[derive(Default)]
struct FreeList {
    pages: Vec<PageId>,
    members: std::collections::HashSet<PageId>,
}

impl FreeList {
    fn push(&mut self, id: PageId) -> bool {
        if !self.members.insert(id) {
            return false;
        }
        self.pages.push(id);
        true
    }

    fn pop(&mut self) -> Option<PageId> {
        let id = self.pages.pop()?;
        self.members.remove(&id);
        Some(id)
    }

    fn len(&self) -> u32 {
        self.pages.len() as u32
    }
}

/// An in-memory pager.
pub struct MemPager {
    pages: Mutex<Vec<Box<[u8; PAGE_SIZE]>>>,
    free: Mutex<FreeList>,
}

impl MemPager {
    /// Creates an empty in-memory pager.
    pub fn new() -> Self {
        MemPager {
            pages: Mutex::new(Vec::new()),
            free: Mutex::new(FreeList::default()),
        }
    }
}

impl Default for MemPager {
    fn default() -> Self {
        Self::new()
    }
}

impl Pager for MemPager {
    fn allocate(&self) -> StorageResult<PageId> {
        if let Some(id) = self.free.lock().pop() {
            let mut pages = self.pages.lock();
            if let Some(slot) = pages.get_mut(id as usize) {
                **slot = *Page::new().as_bytes();
                return Ok(id);
            }
        }
        let mut pages = self.pages.lock();
        let id = pages.len() as PageId;
        pages.push(Box::new(*Page::new().as_bytes()));
        Ok(id)
    }

    fn free(&self, id: PageId) -> StorageResult<()> {
        let count = self.pages.lock().len() as u32;
        if id >= count {
            return Err(StorageError::PageOutOfBounds {
                requested: id,
                page_count: count,
            });
        }
        self.free.lock().push(id);
        Ok(())
    }

    fn free_page_count(&self) -> u32 {
        self.free.lock().len()
    }

    fn read(&self, id: PageId, out: &mut Page) -> StorageResult<()> {
        let pages = self.pages.lock();
        let bytes = pages
            .get(id as usize)
            .ok_or(StorageError::PageOutOfBounds {
                requested: id,
                page_count: pages.len() as u32,
            })?;
        *out = Page::from_bytes(**bytes);
        Ok(())
    }

    fn write(&self, id: PageId, page: &Page) -> StorageResult<()> {
        let mut pages = self.pages.lock();
        let count = pages.len() as u32;
        let slot = pages
            .get_mut(id as usize)
            .ok_or(StorageError::PageOutOfBounds {
                requested: id,
                page_count: count,
            })?;
        **slot = *page.as_bytes();
        Ok(())
    }

    fn page_count(&self) -> u32 {
        self.pages.lock().len() as u32
    }

    fn sync(&self) -> StorageResult<()> {
        Ok(())
    }
}

/// A pager backed by a single file of consecutive 8 KiB pages.
pub struct FilePager {
    file: Mutex<File>,
    page_count: Mutex<u32>,
    /// Freed whole pages awaiting reuse.  The free list is kept in memory
    /// only: after a reopen the file simply resumes append-only growth.
    free: Mutex<FreeList>,
}

impl FilePager {
    /// Creates (or truncates) a pager file at `path`.
    pub fn create<P: AsRef<Path>>(path: P) -> StorageResult<Self> {
        let file = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(true)
            .open(path)?;
        Ok(FilePager {
            file: Mutex::new(file),
            page_count: Mutex::new(0),
            free: Mutex::new(FreeList::default()),
        })
    }

    /// Opens an existing pager file at `path`.
    pub fn open<P: AsRef<Path>>(path: P) -> StorageResult<Self> {
        let file = OpenOptions::new().read(true).write(true).open(path)?;
        let len = file.metadata()?.len();
        if len % PAGE_SIZE as u64 != 0 {
            return Err(StorageError::Corrupt(format!(
                "file length {len} is not a multiple of the page size"
            )));
        }
        Ok(FilePager {
            file: Mutex::new(file),
            page_count: Mutex::new((len / PAGE_SIZE as u64) as u32),
            free: Mutex::new(FreeList::default()),
        })
    }
}

impl Pager for FilePager {
    fn allocate(&self) -> StorageResult<PageId> {
        if let Some(id) = self.free.lock().pop() {
            let mut file = self.file.lock();
            file.seek(SeekFrom::Start(id as u64 * PAGE_SIZE as u64))?;
            file.write_all(Page::new().as_bytes())?;
            return Ok(id);
        }
        let mut count = self.page_count.lock();
        let id = *count;
        let mut file = self.file.lock();
        file.seek(SeekFrom::Start(id as u64 * PAGE_SIZE as u64))?;
        file.write_all(Page::new().as_bytes())?;
        *count += 1;
        Ok(id)
    }

    fn free(&self, id: PageId) -> StorageResult<()> {
        let count = *self.page_count.lock();
        if id >= count {
            return Err(StorageError::PageOutOfBounds {
                requested: id,
                page_count: count,
            });
        }
        self.free.lock().push(id);
        Ok(())
    }

    fn free_page_count(&self) -> u32 {
        self.free.lock().len()
    }

    fn read(&self, id: PageId, out: &mut Page) -> StorageResult<()> {
        let count = *self.page_count.lock();
        if id >= count {
            return Err(StorageError::PageOutOfBounds {
                requested: id,
                page_count: count,
            });
        }
        let mut buf = [0u8; PAGE_SIZE];
        let mut file = self.file.lock();
        file.seek(SeekFrom::Start(id as u64 * PAGE_SIZE as u64))?;
        file.read_exact(&mut buf)?;
        *out = Page::from_bytes(buf);
        Ok(())
    }

    fn write(&self, id: PageId, page: &Page) -> StorageResult<()> {
        let count = *self.page_count.lock();
        if id >= count {
            return Err(StorageError::PageOutOfBounds {
                requested: id,
                page_count: count,
            });
        }
        let mut file = self.file.lock();
        file.seek(SeekFrom::Start(id as u64 * PAGE_SIZE as u64))?;
        file.write_all(page.as_bytes())?;
        Ok(())
    }

    fn page_count(&self) -> u32 {
        *self.page_count.lock()
    }

    fn sync(&self) -> StorageResult<()> {
        self.file.lock().sync_all()?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn exercise_pager(pager: &dyn Pager) {
        let a = pager.allocate().unwrap();
        let b = pager.allocate().unwrap();
        assert_ne!(a, b);
        assert_eq!(pager.page_count(), 2);

        let mut page = Page::new();
        let slot = page.insert(b"page payload").unwrap();
        pager.write(b, &page).unwrap();

        let mut read_back = Page::new();
        pager.read(b, &mut read_back).unwrap();
        assert_eq!(read_back.get(slot).unwrap(), b"page payload");

        // Page `a` is still the empty formatted page.
        pager.read(a, &mut read_back).unwrap();
        assert_eq!(read_back.num_slots(), 0);

        // Out-of-bounds access is an error.
        assert!(pager.read(99, &mut read_back).is_err());
        assert!(pager.write(99, &page).is_err());
        pager.sync().unwrap();
    }

    #[test]
    fn mem_pager_basic() {
        exercise_pager(&MemPager::new());
    }

    #[test]
    fn file_pager_basic_and_reopen() {
        let dir = std::env::temp_dir().join(format!("spgist-pager-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("test.pages");
        {
            let pager = FilePager::create(&path).unwrap();
            exercise_pager(&pager);
        }
        {
            // Re-open and verify persistence.
            let pager = FilePager::open(&path).unwrap();
            assert_eq!(pager.page_count(), 2);
            let mut page = Page::new();
            pager.read(1, &mut page).unwrap();
            assert_eq!(page.get(0).unwrap(), b"page payload");
        }
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn file_pager_open_missing_is_error() {
        assert!(FilePager::open("/nonexistent/path/to/pages").is_err());
    }

    fn exercise_free_list(pager: &dyn Pager) {
        let ids: Vec<PageId> = (0..4).map(|_| pager.allocate().unwrap()).collect();
        assert_eq!(pager.page_count(), 4);
        assert_eq!(pager.free_page_count(), 0);

        // Leave a fingerprint on a page, then free it.
        let mut page = Page::new();
        page.insert(b"stale").unwrap();
        pager.write(ids[1], &page).unwrap();
        pager.free(ids[1]).unwrap();
        pager.free(ids[2]).unwrap();
        assert_eq!(pager.free_page_count(), 2);
        // Double free is a no-op.
        pager.free(ids[1]).unwrap();
        assert_eq!(pager.free_page_count(), 2);

        // Delete-then-insert does not grow the store: the freed pages are
        // handed back, zeroed.
        let a = pager.allocate().unwrap();
        let b = pager.allocate().unwrap();
        let mut reused: Vec<PageId> = vec![a, b];
        reused.sort_unstable();
        assert_eq!(reused, vec![ids[1], ids[2]]);
        assert_eq!(pager.page_count(), 4, "no growth while the free list lasts");
        assert_eq!(pager.free_page_count(), 0);
        let mut read_back = Page::new();
        pager.read(ids[1], &mut read_back).unwrap();
        assert_eq!(read_back.num_slots(), 0, "reused pages come back zeroed");

        // Free list exhausted: the next allocation grows the store again.
        assert_eq!(pager.allocate().unwrap(), 4);
        assert_eq!(pager.page_count(), 5);

        // Freeing a page that was never allocated is an error.
        assert!(pager.free(99).is_err());
    }

    #[test]
    fn mem_pager_reuses_freed_pages() {
        exercise_free_list(&MemPager::new());
    }

    #[test]
    fn file_pager_reuses_freed_pages_without_growing_the_file() {
        let dir = std::env::temp_dir().join(format!("spgist-pager-free-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("free.pages");
        {
            let pager = FilePager::create(&path).unwrap();
            exercise_free_list(&pager);
            pager.sync().unwrap();
        }
        let len = std::fs::metadata(&path).unwrap().len();
        assert_eq!(len, 5 * PAGE_SIZE as u64, "file holds exactly 5 pages");
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
