//! Page allocation and retrieval.
//!
//! A [`Pager`] is the storage-manager abstraction of the paper's Section 4.2
//! ("PostgreSQL storage interface ... for the allocation and retrieval of
//! disk pages").  Two implementations are provided:
//!
//! * [`FilePager`] — pages live in a single file, read and written with
//!   positioned I/O; this is the durable, disk-based configuration,
//! * [`MemPager`] — pages live in memory; used by unit tests and by
//!   experiments that want deterministic page-I/O counts without disk noise.

use std::fs::{File, OpenOptions};
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::Path;

use parking_lot::Mutex;

use crate::error::{StorageError, StorageResult};
use crate::page::{Page, PageId, PAGE_SIZE};

/// Allocation and retrieval of fixed-size pages.
pub trait Pager: Send + Sync {
    /// Allocates a fresh, zeroed page and returns its id.  Implementations
    /// with a free list reuse returned pages before growing the store.
    fn allocate(&self) -> StorageResult<PageId>;

    /// Reads page `id` into `out`.
    fn read(&self, id: PageId, out: &mut Page) -> StorageResult<()>;

    /// Writes `page` as page `id`.
    fn write(&self, id: PageId, page: &Page) -> StorageResult<()>;

    /// Returns a whole page to the pager's free list so a later
    /// [`Pager::allocate`] can reuse it instead of growing the store.
    /// Freeing an already-free page is a no-op.  The default implementation
    /// leaks the page (no free-space reuse).
    fn free(&self, id: PageId) -> StorageResult<()> {
        let _ = id;
        Ok(())
    }

    /// Number of allocated pages (including pages currently on the free
    /// list: the store never shrinks, it only stops growing).
    fn page_count(&self) -> u32;

    /// Number of pages currently on the free list.
    fn free_page_count(&self) -> u32 {
        0
    }

    /// Flushes any buffered writes to stable storage.
    fn sync(&self) -> StorageResult<()>;
}

/// Shared free-list bookkeeping for [`MemPager`] and [`FilePager`]: a stack
/// for LIFO reuse plus a membership set so bulk frees (a whole tree's pages
/// on repack) stay linear.
#[derive(Default)]
struct FreeList {
    pages: Vec<PageId>,
    members: std::collections::HashSet<PageId>,
}

impl FreeList {
    fn push(&mut self, id: PageId) -> bool {
        if !self.members.insert(id) {
            return false;
        }
        self.pages.push(id);
        true
    }

    fn pop(&mut self) -> Option<PageId> {
        let id = self.pages.pop()?;
        self.members.remove(&id);
        Some(id)
    }

    fn len(&self) -> u32 {
        self.pages.len() as u32
    }
}

/// An in-memory pager.
pub struct MemPager {
    pages: Mutex<Vec<Box<[u8; PAGE_SIZE]>>>,
    free: Mutex<FreeList>,
}

impl MemPager {
    /// Creates an empty in-memory pager.
    pub fn new() -> Self {
        MemPager {
            pages: Mutex::new(Vec::new()),
            free: Mutex::new(FreeList::default()),
        }
    }
}

impl Default for MemPager {
    fn default() -> Self {
        Self::new()
    }
}

impl Pager for MemPager {
    fn allocate(&self) -> StorageResult<PageId> {
        if let Some(id) = self.free.lock().pop() {
            let mut pages = self.pages.lock();
            if let Some(slot) = pages.get_mut(id as usize) {
                **slot = *Page::new().as_bytes();
                return Ok(id);
            }
        }
        let mut pages = self.pages.lock();
        let id = pages.len() as PageId;
        pages.push(Box::new(*Page::new().as_bytes()));
        Ok(id)
    }

    fn free(&self, id: PageId) -> StorageResult<()> {
        let count = self.pages.lock().len() as u32;
        if id >= count {
            return Err(StorageError::PageOutOfBounds {
                requested: id,
                page_count: count,
            });
        }
        self.free.lock().push(id);
        Ok(())
    }

    fn free_page_count(&self) -> u32 {
        self.free.lock().len()
    }

    fn read(&self, id: PageId, out: &mut Page) -> StorageResult<()> {
        let pages = self.pages.lock();
        let bytes = pages
            .get(id as usize)
            .ok_or(StorageError::PageOutOfBounds {
                requested: id,
                page_count: pages.len() as u32,
            })?;
        *out = Page::from_bytes(**bytes);
        Ok(())
    }

    fn write(&self, id: PageId, page: &Page) -> StorageResult<()> {
        let mut pages = self.pages.lock();
        let count = pages.len() as u32;
        let slot = pages
            .get_mut(id as usize)
            .ok_or(StorageError::PageOutOfBounds {
                requested: id,
                page_count: count,
            })?;
        **slot = *page.as_bytes();
        Ok(())
    }

    fn page_count(&self) -> u32 {
        self.pages.lock().len() as u32
    }

    fn sync(&self) -> StorageResult<()> {
        Ok(())
    }
}

/// Magic marker identifying physical page 0 of a pager file as a
/// [`FilePager`] meta page (`"SPGP"`).
const META_MAGIC: u32 = 0x5350_4750;
/// Meta-page format version.
const META_VERSION: u32 = 1;
/// Chain terminator for the persistent free list.
const META_CHAIN_END: u32 = u32::MAX;
/// Free-list entries the meta page holds after its fixed header
/// (magic, version, page count, next pointer, entry count — 5 × 4 bytes).
const META_HEAD_CAP: usize = (PAGE_SIZE - 20) / 4;
/// Free-list entries a continuation page holds after its header
/// (next pointer, entry count — 2 × 4 bytes).
const META_CONT_CAP: usize = (PAGE_SIZE - 8) / 4;

/// A pager backed by a single file of consecutive 8 KiB pages.
///
/// Physical page 0 of the file is the pager's own **meta page**: it records
/// the logical page count and, chained through freed pages when it
/// overflows, the free-page list.  [`FilePager::sync`] persists both, and
/// [`FilePager::open`] restores them — so a reopened file resumes reusing
/// its freed pages instead of growing append-only.  Logical page ids (what
/// callers see) are dense from 0 and map to physical offset
/// `(id + 1) * PAGE_SIZE`.
pub struct FilePager {
    file: Mutex<File>,
    page_count: Mutex<u32>,
    /// Freed whole pages awaiting reuse; persisted to the meta page on
    /// `sync` (frees after the last sync are lost on reopen, like any
    /// unflushed write).
    free: Mutex<FileFree>,
}

/// [`FilePager`]'s free-list state: the in-memory list plus what the
/// on-disk meta is known to say about it.  One mutex guards both so every
/// meta write observes (and records) a consistent pairing.
#[derive(Default)]
struct FileFree {
    list: FreeList,
    /// True when the on-disk meta page is known to name **zero** free
    /// pages.  While this holds, reusing a free page needs no meta rewrite
    /// at all — the stale meta cannot name the reused page — which keeps
    /// draining a large free list O(1) per allocation instead of rewriting
    /// the whole chain every time.
    disk_names_none: bool,
}

/// Byte offset of logical page `id` (physical page 0 is the meta page).
fn physical_offset(id: PageId) -> u64 {
    (id as u64 + 1) * PAGE_SIZE as u64
}

fn read_u32(buf: &[u8], pos: usize) -> u32 {
    u32::from_le_bytes([buf[pos], buf[pos + 1], buf[pos + 2], buf[pos + 3]])
}

fn write_u32(buf: &mut [u8], pos: usize, value: u32) {
    buf[pos..pos + 4].copy_from_slice(&value.to_le_bytes());
}

impl FilePager {
    /// Creates (or truncates) a pager file at `path`.
    pub fn create<P: AsRef<Path>>(path: P) -> StorageResult<Self> {
        let file = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(true)
            .open(path)?;
        let pager = FilePager {
            file: Mutex::new(file),
            page_count: Mutex::new(0),
            free: Mutex::new(FileFree::default()),
        };
        // Establish the meta page immediately so even a never-synced file
        // reopens as a valid, empty pager.
        pager.write_meta()?;
        Ok(pager)
    }

    /// Opens an existing pager file at `path`, restoring the page count and
    /// the persistent free-page list from its meta page.
    pub fn open<P: AsRef<Path>>(path: P) -> StorageResult<Self> {
        let mut file = OpenOptions::new().read(true).write(true).open(path)?;
        let len = file.metadata()?.len();
        if len % PAGE_SIZE as u64 != 0 || len < PAGE_SIZE as u64 {
            return Err(StorageError::Corrupt(format!(
                "file length {len} is not a positive multiple of the page size"
            )));
        }
        let mut meta = [0u8; PAGE_SIZE];
        file.seek(SeekFrom::Start(0))?;
        file.read_exact(&mut meta)?;
        if read_u32(&meta, 0) != META_MAGIC {
            return Err(StorageError::Corrupt(
                "file has no pager meta page (not a FilePager file)".into(),
            ));
        }
        if read_u32(&meta, 4) != META_VERSION {
            return Err(StorageError::Corrupt(format!(
                "unsupported pager meta version {}",
                read_u32(&meta, 4)
            )));
        }
        // Trust the larger of the recorded count and the file length: pages
        // allocated after the last sync exist on disk but not in the meta.
        let recorded = read_u32(&meta, 8);
        let from_len = (len / PAGE_SIZE as u64 - 1) as u32;
        let page_count = recorded.max(from_len);

        // Reassemble the free list: the meta page's entries, then each
        // continuation page — which is itself a free page whose storage role
        // ends once it is read — followed by its entries.
        let mut free = FreeList::default();
        let mut push = |id: u32| -> StorageResult<()> {
            if id >= page_count {
                return Err(StorageError::Corrupt(format!(
                    "free list names page {id} beyond page count {page_count}"
                )));
            }
            free.push(id);
            Ok(())
        };
        let mut next = read_u32(&meta, 12);
        let head_count = read_u32(&meta, 16) as usize;
        if head_count > META_HEAD_CAP {
            return Err(StorageError::Corrupt(format!(
                "meta free-list count {head_count} exceeds page capacity"
            )));
        }
        for i in 0..head_count {
            push(read_u32(&meta, 20 + 4 * i))?;
        }
        let mut cont = [0u8; PAGE_SIZE];
        let mut visited = std::collections::HashSet::new();
        while next != META_CHAIN_END {
            let cont_page = next;
            if !visited.insert(cont_page) {
                return Err(StorageError::Corrupt(format!(
                    "free-list chain revisits page {cont_page}"
                )));
            }
            push(cont_page)?;
            file.seek(SeekFrom::Start(physical_offset(cont_page)))?;
            file.read_exact(&mut cont)?;
            next = read_u32(&cont, 0);
            let count = read_u32(&cont, 4) as usize;
            if count > META_CONT_CAP {
                return Err(StorageError::Corrupt(format!(
                    "free-list continuation count {count} exceeds page capacity"
                )));
            }
            for i in 0..count {
                push(read_u32(&cont, 8 + 4 * i))?;
            }
        }
        let disk_names_none = free.pages.is_empty();
        Ok(FilePager {
            file: Mutex::new(file),
            page_count: Mutex::new(page_count),
            free: Mutex::new(FileFree {
                list: free,
                disk_names_none,
            }),
        })
    }

    /// Writes the meta page — page count plus the free list, chained
    /// through freed pages when it outgrows the meta page itself.
    ///
    /// The free-list lock is held across the snapshot *and* the file write,
    /// serializing all meta writers: a snapshot taken before a concurrent
    /// `allocate` pops a page must also reach the file first, otherwise the
    /// stale snapshot — still naming the reallocated page as free — could
    /// land last and a reopen would resurrect the page under live data.
    /// Lock order is free → page_count → file; no other path acquires the
    /// free-list lock while holding either of the other two.
    fn write_meta(&self) -> StorageResult<()> {
        let mut free = self.free.lock();
        let page_count = *self.page_count.lock();
        let mut file = self.file.lock();

        // Partition the list: entries that fit in the head, then chunks of
        // continuation entries each stored *inside* one of the free pages
        // (reconstructed as free on open when the chain is traversed).
        let all = free.list.pages.as_slice();
        let head_take = all.len().min(META_HEAD_CAP);
        let (head_entries, mut rest) = all.split_at(head_take);
        let mut chain: Vec<(PageId, &[PageId])> = Vec::new();
        while !rest.is_empty() {
            let (&cont_page, tail) = rest.split_first().expect("rest is non-empty");
            let take = tail.len().min(META_CONT_CAP);
            let (entries, tail) = tail.split_at(take);
            chain.push((cont_page, entries));
            rest = tail;
        }

        let mut meta = [0u8; PAGE_SIZE];
        write_u32(&mut meta, 0, META_MAGIC);
        write_u32(&mut meta, 4, META_VERSION);
        write_u32(&mut meta, 8, page_count);
        write_u32(
            &mut meta,
            12,
            chain.first().map_or(META_CHAIN_END, |(page, _)| *page),
        );
        write_u32(&mut meta, 16, head_entries.len() as u32);
        for (i, &id) in head_entries.iter().enumerate() {
            write_u32(&mut meta, 20 + 4 * i, id);
        }
        file.seek(SeekFrom::Start(0))?;
        file.write_all(&meta)?;

        for (idx, (cont_page, entries)) in chain.iter().enumerate() {
            let mut cont = [0u8; PAGE_SIZE];
            let next = chain.get(idx + 1).map_or(META_CHAIN_END, |(page, _)| *page);
            write_u32(&mut cont, 0, next);
            write_u32(&mut cont, 4, entries.len() as u32);
            for (i, &id) in entries.iter().enumerate() {
                write_u32(&mut cont, 8 + 4 * i, id);
            }
            file.seek(SeekFrom::Start(physical_offset(*cont_page)))?;
            file.write_all(&cont)?;
        }
        let names_none = free.list.pages.is_empty();
        free.disk_names_none = names_none;
        Ok(())
    }

    /// Overwrites the meta page with an **empty** free list (keeping the
    /// page count), without touching the in-memory list.  Called when a
    /// free page is reused: the on-disk list must stop naming pages that
    /// may now hold live data, and naming *none* achieves that with a
    /// single page write — the rest of the list is merely leaked until the
    /// next [`FilePager::sync`] republishes it, which a reopen tolerates.
    /// Subsequent reuses skip even this write while `disk_names_none`
    /// still holds, so draining a large free list stays O(1) per
    /// allocation instead of rewriting the whole meta chain each time.
    fn clear_disk_free_list(&self) -> StorageResult<()> {
        let mut free = self.free.lock();
        if free.disk_names_none {
            return Ok(());
        }
        let page_count = *self.page_count.lock();
        let mut file = self.file.lock();
        let mut meta = [0u8; PAGE_SIZE];
        write_u32(&mut meta, 0, META_MAGIC);
        write_u32(&mut meta, 4, META_VERSION);
        write_u32(&mut meta, 8, page_count);
        write_u32(&mut meta, 12, META_CHAIN_END);
        write_u32(&mut meta, 16, 0);
        file.seek(SeekFrom::Start(0))?;
        file.write_all(&meta)?;
        free.disk_names_none = true;
        Ok(())
    }
}

impl Pager for FilePager {
    fn allocate(&self) -> StorageResult<PageId> {
        // Bind the pop result first: an `if let` on `self.free.lock().pop()`
        // would hold the free-list mutex for the whole body, deadlocking
        // against the meta writers' own acquisition.
        let reused = self.free.lock().list.pop();
        if let Some(id) = reused {
            {
                let mut file = self.file.lock();
                file.seek(SeekFrom::Start(physical_offset(id)))?;
                file.write_all(Page::new().as_bytes())?;
            }
            // Blank the on-disk free list now: it must never name a page
            // that has been handed back out, or a reopen before the next
            // sync would resurrect it under live data.  (Plain `free` can
            // stay lazy — a stale meta that lists *fewer* free pages only
            // leaks them until the next sync.)  The blanking is a buffered
            // write, so the no-resurrection guarantee covers clean process
            // exits and post-`sync` state; a kernel crash or power loss can
            // still reorder it behind the page's new contents, like any
            // unsynced write in this pager.
            self.clear_disk_free_list()?;
            return Ok(id);
        }
        let mut count = self.page_count.lock();
        let id = *count;
        let mut file = self.file.lock();
        file.seek(SeekFrom::Start(physical_offset(id)))?;
        file.write_all(Page::new().as_bytes())?;
        *count += 1;
        Ok(id)
    }

    fn free(&self, id: PageId) -> StorageResult<()> {
        let count = *self.page_count.lock();
        if id >= count {
            return Err(StorageError::PageOutOfBounds {
                requested: id,
                page_count: count,
            });
        }
        self.free.lock().list.push(id);
        Ok(())
    }

    fn free_page_count(&self) -> u32 {
        self.free.lock().list.len()
    }

    fn read(&self, id: PageId, out: &mut Page) -> StorageResult<()> {
        let count = *self.page_count.lock();
        if id >= count {
            return Err(StorageError::PageOutOfBounds {
                requested: id,
                page_count: count,
            });
        }
        let mut buf = [0u8; PAGE_SIZE];
        let mut file = self.file.lock();
        file.seek(SeekFrom::Start(physical_offset(id)))?;
        file.read_exact(&mut buf)?;
        *out = Page::from_bytes(buf);
        Ok(())
    }

    fn write(&self, id: PageId, page: &Page) -> StorageResult<()> {
        let count = *self.page_count.lock();
        if id >= count {
            return Err(StorageError::PageOutOfBounds {
                requested: id,
                page_count: count,
            });
        }
        let mut file = self.file.lock();
        file.seek(SeekFrom::Start(physical_offset(id)))?;
        file.write_all(page.as_bytes())?;
        Ok(())
    }

    fn page_count(&self) -> u32 {
        *self.page_count.lock()
    }

    fn sync(&self) -> StorageResult<()> {
        self.write_meta()?;
        self.file.lock().sync_all()?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn exercise_pager(pager: &dyn Pager) {
        let a = pager.allocate().unwrap();
        let b = pager.allocate().unwrap();
        assert_ne!(a, b);
        assert_eq!(pager.page_count(), 2);

        let mut page = Page::new();
        let slot = page.insert(b"page payload").unwrap();
        pager.write(b, &page).unwrap();

        let mut read_back = Page::new();
        pager.read(b, &mut read_back).unwrap();
        assert_eq!(read_back.get(slot).unwrap(), b"page payload");

        // Page `a` is still the empty formatted page.
        pager.read(a, &mut read_back).unwrap();
        assert_eq!(read_back.num_slots(), 0);

        // Out-of-bounds access is an error.
        assert!(pager.read(99, &mut read_back).is_err());
        assert!(pager.write(99, &page).is_err());
        pager.sync().unwrap();
    }

    #[test]
    fn mem_pager_basic() {
        exercise_pager(&MemPager::new());
    }

    #[test]
    fn file_pager_basic_and_reopen() {
        let dir = std::env::temp_dir().join(format!("spgist-pager-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("test.pages");
        {
            let pager = FilePager::create(&path).unwrap();
            exercise_pager(&pager);
        }
        {
            // Re-open and verify persistence.
            let pager = FilePager::open(&path).unwrap();
            assert_eq!(pager.page_count(), 2);
            let mut page = Page::new();
            pager.read(1, &mut page).unwrap();
            assert_eq!(page.get(0).unwrap(), b"page payload");
        }
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn file_pager_open_missing_is_error() {
        assert!(FilePager::open("/nonexistent/path/to/pages").is_err());
    }

    fn exercise_free_list(pager: &dyn Pager) {
        let ids: Vec<PageId> = (0..4).map(|_| pager.allocate().unwrap()).collect();
        assert_eq!(pager.page_count(), 4);
        assert_eq!(pager.free_page_count(), 0);

        // Leave a fingerprint on a page, then free it.
        let mut page = Page::new();
        page.insert(b"stale").unwrap();
        pager.write(ids[1], &page).unwrap();
        pager.free(ids[1]).unwrap();
        pager.free(ids[2]).unwrap();
        assert_eq!(pager.free_page_count(), 2);
        // Double free is a no-op.
        pager.free(ids[1]).unwrap();
        assert_eq!(pager.free_page_count(), 2);

        // Delete-then-insert does not grow the store: the freed pages are
        // handed back, zeroed.
        let a = pager.allocate().unwrap();
        let b = pager.allocate().unwrap();
        let mut reused: Vec<PageId> = vec![a, b];
        reused.sort_unstable();
        assert_eq!(reused, vec![ids[1], ids[2]]);
        assert_eq!(pager.page_count(), 4, "no growth while the free list lasts");
        assert_eq!(pager.free_page_count(), 0);
        let mut read_back = Page::new();
        pager.read(ids[1], &mut read_back).unwrap();
        assert_eq!(read_back.num_slots(), 0, "reused pages come back zeroed");

        // Free list exhausted: the next allocation grows the store again.
        assert_eq!(pager.allocate().unwrap(), 4);
        assert_eq!(pager.page_count(), 5);

        // Freeing a page that was never allocated is an error.
        assert!(pager.free(99).is_err());
    }

    #[test]
    fn mem_pager_reuses_freed_pages() {
        exercise_free_list(&MemPager::new());
    }

    #[test]
    fn file_pager_reuses_freed_pages_without_growing_the_file() {
        let dir = std::env::temp_dir().join(format!("spgist-pager-free-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("free.pages");
        {
            let pager = FilePager::create(&path).unwrap();
            exercise_free_list(&pager);
            pager.sync().unwrap();
        }
        let len = std::fs::metadata(&path).unwrap().len();
        assert_eq!(
            len,
            6 * PAGE_SIZE as u64,
            "file holds exactly 5 data pages plus the pager meta page"
        );
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn file_pager_free_list_survives_reopen() {
        let dir = std::env::temp_dir().join(format!("spgist-pager-persist-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("persist.pages");
        {
            // Create → free → sync.
            let pager = FilePager::create(&path).unwrap();
            for _ in 0..6 {
                pager.allocate().unwrap();
            }
            pager.free(1).unwrap();
            pager.free(4).unwrap();
            pager.sync().unwrap();
        }
        let len_before = std::fs::metadata(&path).unwrap().len();
        {
            // Reopen → allocate: the freed pages come back instead of
            // append-only growth.
            let pager = FilePager::open(&path).unwrap();
            assert_eq!(pager.page_count(), 6);
            assert_eq!(pager.free_page_count(), 2, "free list restored");
            let mut reused = vec![pager.allocate().unwrap(), pager.allocate().unwrap()];
            reused.sort_unstable();
            assert_eq!(reused, vec![1, 4], "freed pages are reused after reopen");
            assert_eq!(pager.page_count(), 6, "no growth while the list lasts");
            // Exhausted: only now does the file grow again.
            assert_eq!(pager.allocate().unwrap(), 6);
            pager.sync().unwrap();
        }
        assert_eq!(
            std::fs::metadata(&path).unwrap().len(),
            len_before + PAGE_SIZE as u64,
            "one net new page across the reopen"
        );
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn file_pager_persists_free_lists_longer_than_one_meta_page() {
        let dir = std::env::temp_dir().join(format!("spgist-pager-chain-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("chain.pages");
        // More free pages than the meta page holds (META_HEAD_CAP = 2043):
        // the list must chain through continuation pages stored in the free
        // pages themselves.
        let total: u32 = (META_HEAD_CAP + META_CONT_CAP / 2) as u32 + 10;
        {
            let pager = FilePager::create(&path).unwrap();
            for _ in 0..total {
                pager.allocate().unwrap();
            }
            for id in 0..total {
                pager.free(id).unwrap();
            }
            pager.sync().unwrap();
        }
        {
            let pager = FilePager::open(&path).unwrap();
            assert_eq!(pager.page_count(), total);
            assert_eq!(
                pager.free_page_count(),
                total,
                "every freed page survives the reopen, including the chain pages"
            );
            // Reallocating everything drains the list without growing.
            let mut seen = std::collections::HashSet::new();
            for _ in 0..total {
                assert!(seen.insert(pager.allocate().unwrap()), "no duplicates");
            }
            assert_eq!(pager.page_count(), total);
            assert_eq!(pager.free_page_count(), 0);
        }
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn file_pager_never_resurrects_a_reused_page_after_reopen() {
        let dir =
            std::env::temp_dir().join(format!("spgist-pager-resurrect-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("resurrect.pages");
        {
            let pager = FilePager::create(&path).unwrap();
            for _ in 0..3 {
                pager.allocate().unwrap();
            }
            pager.free(1).unwrap();
            pager.sync().unwrap(); // meta now lists page 1 as free
            assert_eq!(pager.allocate().unwrap(), 1); // …and it gets reused
            let mut page = Page::new();
            page.insert(b"live data").unwrap();
            pager.write(1, &page).unwrap();
            // No final sync: the process "exits" cleanly with the write
            // buffered but never explicitly flushed.  (This models a clean
            // exit only — after a power loss the kernel may persist the
            // reused page's contents but not the meta rewrite, which is
            // outside the guarantee; see `FilePager::allocate`.)
        }
        {
            let pager = FilePager::open(&path).unwrap();
            assert_eq!(
                pager.free_page_count(),
                0,
                "the reused page must not reappear on the free list"
            );
            // The live data survives; a fresh allocation grows the file
            // instead of clobbering page 1.
            let mut read_back = Page::new();
            pager.read(1, &mut read_back).unwrap();
            assert_eq!(read_back.get(0).unwrap(), b"live data");
            assert_eq!(pager.allocate().unwrap(), 3);
        }
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn file_pager_meta_never_stale_under_concurrent_allocate_and_sync() {
        // Regression for a write_meta race: a meta snapshot taken before a
        // concurrent allocate popped page P, but written to the file *after*
        // the allocate's own meta rewrite, left P on the on-disk free list
        // under live data.  Hammer allocate (draining a pre-seeded free
        // list) against sync, then verify the reopened free list is empty
        // and every fingerprint survived.
        let dir = std::env::temp_dir().join(format!("spgist-pager-race-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("race.pages");
        const SEED: u32 = 64;
        {
            let pager = std::sync::Arc::new(FilePager::create(&path).unwrap());
            for _ in 0..SEED {
                pager.allocate().unwrap();
            }
            for id in 0..SEED {
                pager.free(id).unwrap();
            }
            pager.sync().unwrap();

            let done = std::sync::atomic::AtomicBool::new(false);
            std::thread::scope(|scope| {
                let syncer = {
                    let pager = std::sync::Arc::clone(&pager);
                    let done = &done;
                    scope.spawn(move || {
                        while !done.load(std::sync::atomic::Ordering::Relaxed) {
                            pager.sync().unwrap();
                        }
                    })
                };
                let workers: Vec<_> = (0..4)
                    .map(|worker| {
                        let pager = std::sync::Arc::clone(&pager);
                        scope.spawn(move || {
                            for _ in 0..SEED / 4 {
                                let id = pager.allocate().unwrap();
                                let mut page = Page::new();
                                page.insert(format!("live-{worker}").as_bytes()).unwrap();
                                pager.write(id, &page).unwrap();
                            }
                        })
                    })
                    .collect();
                for worker in workers {
                    worker.join().unwrap();
                }
                done.store(true, std::sync::atomic::Ordering::Relaxed);
                syncer.join().unwrap();
            });
            pager.sync().unwrap();
        }
        {
            let pager = FilePager::open(&path).unwrap();
            assert_eq!(
                pager.free_page_count(),
                0,
                "no reallocated page may survive on the on-disk free list"
            );
            let mut page = Page::new();
            for id in 0..SEED {
                pager.read(id, &mut page).unwrap();
                assert!(
                    page.get(0).unwrap().starts_with(b"live-"),
                    "page {id} lost its fingerprint"
                );
            }
        }
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn file_pager_open_rejects_files_without_meta() {
        let dir = std::env::temp_dir().join(format!("spgist-pager-nometa-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("raw.pages");
        std::fs::write(&path, vec![0u8; PAGE_SIZE]).unwrap();
        assert!(FilePager::open(&path).is_err(), "no magic marker");
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
