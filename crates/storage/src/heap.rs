//! Heap file: an unordered collection of records.
//!
//! This is the analog of PostgreSQL's heap access method ("sequential scan
//! over the relation" in the paper's Section 4.2).  Indexes in the workspace
//! store [`RecordId`]s pointing into a heap file, and the sequential-scan
//! baseline of Figure 16 scans a heap file directly.

use std::sync::Arc;

use crate::buffer::BufferPool;
use crate::codec::Codec;
use crate::error::{StorageError, StorageResult};
use crate::page::{PageId, SlotId, MAX_RECORD_SIZE};
use crate::replacement::AccessHint;

/// Physical address of a record in a heap file (page, slot) — the analog of
/// a PostgreSQL tuple id (ctid).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct RecordId {
    /// Page containing the record.
    pub page: PageId,
    /// Slot within the page.
    pub slot: SlotId,
}

impl RecordId {
    /// Creates a record id from its parts.
    pub fn new(page: PageId, slot: SlotId) -> Self {
        RecordId { page, slot }
    }
}

impl Codec for RecordId {
    fn encode(&self, out: &mut Vec<u8>) {
        self.page.encode(out);
        self.slot.encode(out);
    }
    fn decode(buf: &mut &[u8]) -> StorageResult<Self> {
        Ok(RecordId {
            page: PageId::decode(buf)?,
            slot: SlotId::decode(buf)?,
        })
    }
}

/// A heap file: records appended to pages in allocation order.
pub struct HeapFile {
    pool: Arc<BufferPool>,
    pages: Vec<PageId>,
    record_count: u64,
}

impl HeapFile {
    /// Creates an empty heap file using `pool` for its pages.
    pub fn create(pool: Arc<BufferPool>) -> StorageResult<Self> {
        Ok(HeapFile {
            pool,
            pages: Vec::new(),
            record_count: 0,
        })
    }

    /// Re-opens a heap file from its persisted page directory (the list of
    /// pages it owns, in allocation order) and live-record count — the
    /// durable-catalog path: no scan, no rebuild.  Every page id is bounds-
    /// checked against the pager so a truncated file fails here with
    /// [`StorageError::Corrupt`] instead of returning wrong rows later.
    pub fn open(
        pool: Arc<BufferPool>,
        pages: Vec<PageId>,
        record_count: u64,
    ) -> StorageResult<Self> {
        let allocated = pool.page_count();
        if let Some(&bad) = pages.iter().find(|&&p| p >= allocated) {
            return Err(StorageError::Corrupt(format!(
                "heap directory names page {bad} beyond the {allocated} allocated pages"
            )));
        }
        Ok(HeapFile {
            pool,
            pages,
            record_count,
        })
    }

    /// The pages owned by this heap file, in allocation order (persisted by
    /// the durable catalog so [`HeapFile::open`] can restore the directory
    /// without scanning).
    pub fn pages(&self) -> &[PageId] {
        &self.pages
    }

    /// Number of records inserted and not deleted.
    pub fn record_count(&self) -> u64 {
        self.record_count
    }

    /// Number of pages owned by this heap file.
    pub fn page_count(&self) -> usize {
        self.pages.len()
    }

    /// Appends a record and returns its id.
    pub fn insert(&mut self, record: &[u8]) -> StorageResult<RecordId> {
        if record.len() > MAX_RECORD_SIZE {
            return Err(StorageError::RecordTooLarge {
                size: record.len(),
                max: MAX_RECORD_SIZE,
            });
        }
        // Append to the last page if the record fits, otherwise open a new page.
        if let Some(&last) = self.pages.last() {
            let fits = self.pool.with_page(last, |p| p.fits(record.len()))?;
            if fits {
                let slot = self.pool.with_page_mut(last, |p| p.insert(record))??;
                self.record_count += 1;
                return Ok(RecordId::new(last, slot));
            }
        }
        let page = self.pool.allocate_page()?;
        self.pages.push(page);
        let slot = self.pool.with_page_mut(page, |p| p.insert(record))??;
        self.record_count += 1;
        Ok(RecordId::new(page, slot))
    }

    /// Reads the record at `rid`.
    pub fn get(&self, rid: RecordId) -> StorageResult<Vec<u8>> {
        self.get_hinted(rid, AccessHint::Normal)
    }

    /// Reads the record at `rid` under an explicit [`AccessHint`].  Scans
    /// that address rows by record id (the executor's parallel seq scan)
    /// pass [`AccessHint::Scan`] so the one-touch pages do not displace the
    /// pool's hot set.
    pub fn get_hinted(&self, rid: RecordId, hint: AccessHint) -> StorageResult<Vec<u8>> {
        self.pool
            .with_page_hinted(rid.page, hint, |p| p.get(rid.slot).map(<[u8]>::to_vec))?
    }

    /// Deletes the record at `rid`.
    pub fn delete(&mut self, rid: RecordId) -> StorageResult<()> {
        self.pool
            .with_page_mut(rid.page, |p| p.delete(rid.slot))??;
        self.record_count -= 1;
        Ok(())
    }

    /// Sequentially scans every live record, invoking `f(rid, record)`.
    ///
    /// This is the sequential-scan access path used as the substring-match
    /// baseline in the paper's Figure 16.
    pub fn scan(&self, mut f: impl FnMut(RecordId, &[u8])) -> StorageResult<()> {
        for &page in &self.pages {
            // One-touch sequential pattern: hint the pool so a table scan
            // cannot flush the index working set.
            self.pool.with_page_hinted(page, AccessHint::Scan, |p| {
                for (slot, record) in p.iter() {
                    f(RecordId::new(page, slot), record);
                }
            })?;
        }
        Ok(())
    }

    /// Collects every live record into a vector (test helper).
    pub fn scan_all(&self) -> StorageResult<Vec<(RecordId, Vec<u8>)>> {
        let mut out = Vec::new();
        self.scan(|rid, rec| out.push((rid, rec.to_vec())))?;
        Ok(out)
    }

    /// Consumes the heap file, releasing every page it owns to the pager's
    /// free list (`DROP TABLE`): subsequent allocations reuse the space
    /// instead of growing the store.
    pub fn destroy(self) -> StorageResult<()> {
        let HeapFile { pool, pages, .. } = self;
        for page in pages {
            pool.free_page(page)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::buffer::{BufferPool, BufferPoolConfig};
    use crate::pager::MemPager;

    fn pool() -> Arc<BufferPool> {
        Arc::new(BufferPool::new(
            Arc::new(MemPager::new()),
            BufferPoolConfig {
                capacity: 16,
                ..Default::default()
            },
        ))
    }

    #[test]
    fn insert_get_roundtrip() {
        let mut heap = HeapFile::create(pool()).unwrap();
        let a = heap.insert(b"tuple one").unwrap();
        let b = heap.insert(b"tuple two").unwrap();
        assert_eq!(heap.get(a).unwrap(), b"tuple one");
        assert_eq!(heap.get(b).unwrap(), b"tuple two");
        assert_eq!(heap.record_count(), 2);
    }

    #[test]
    fn records_spill_to_new_pages() {
        let mut heap = HeapFile::create(pool()).unwrap();
        let record = vec![5u8; 1000];
        for _ in 0..50 {
            heap.insert(&record).unwrap();
        }
        assert!(heap.page_count() > 1, "50 KB of records must span pages");
        assert_eq!(heap.record_count(), 50);
        assert_eq!(heap.scan_all().unwrap().len(), 50);
    }

    #[test]
    fn delete_removes_from_scan() {
        let mut heap = HeapFile::create(pool()).unwrap();
        let a = heap.insert(b"keep").unwrap();
        let b = heap.insert(b"drop").unwrap();
        heap.delete(b).unwrap();
        let all = heap.scan_all().unwrap();
        assert_eq!(all.len(), 1);
        assert_eq!(all[0].0, a);
        assert!(heap.get(b).is_err());
    }

    #[test]
    fn scan_visits_in_insertion_order_within_pages() {
        let mut heap = HeapFile::create(pool()).unwrap();
        let expected: Vec<Vec<u8>> = (0..100u32).map(|i| i.to_le_bytes().to_vec()).collect();
        for rec in &expected {
            heap.insert(rec).unwrap();
        }
        let scanned: Vec<Vec<u8>> = heap
            .scan_all()
            .unwrap()
            .into_iter()
            .map(|(_, r)| r)
            .collect();
        assert_eq!(scanned, expected);
    }

    #[test]
    fn oversized_record_is_rejected() {
        let mut heap = HeapFile::create(pool()).unwrap();
        assert!(heap.insert(&vec![0u8; MAX_RECORD_SIZE + 1]).is_err());
    }

    #[test]
    fn record_id_codec_roundtrip() {
        let rid = RecordId::new(7, 13);
        assert_eq!(RecordId::from_bytes(&rid.to_bytes()).unwrap(), rid);
    }
}
