//! Error types shared by the storage layer.

use std::fmt;

/// Errors produced by the storage layer.
#[derive(Debug)]
pub enum StorageError {
    /// An underlying I/O error from the operating system.
    Io(std::io::Error),
    /// A page id that has never been allocated was requested.
    PageOutOfBounds {
        /// The requested page id.
        requested: u32,
        /// The number of allocated pages.
        page_count: u32,
    },
    /// A slot id that does not exist (or has been deleted) was requested.
    InvalidSlot {
        /// The page that was addressed.
        page: u32,
        /// The slot that was addressed.
        slot: u16,
    },
    /// A record does not fit in a page even when the page is empty.
    RecordTooLarge {
        /// Size of the record in bytes.
        size: usize,
        /// Maximum record size a page can hold.
        max: usize,
    },
    /// The page image read from disk is corrupt (bad header or slot table).
    Corrupt(String),
    /// Decoding a record failed (truncated or malformed bytes).
    Decode(String),
    /// The request is valid but not supported by the addressed component
    /// (e.g. a query predicate no registered access path can execute).
    Unsupported(String),
    /// A checkpoint was requested while transactions were still open.  The
    /// buffer pool is no-steal, so a checkpoint taken mid-transaction would
    /// persist uncommitted work; callers can match on the count to decide
    /// whether to retry after the transactions settle.
    OpenTransactions(usize),
}

impl fmt::Display for StorageError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StorageError::Io(e) => write!(f, "i/o error: {e}"),
            StorageError::PageOutOfBounds {
                requested,
                page_count,
            } => write!(
                f,
                "page {requested} out of bounds (only {page_count} pages allocated)"
            ),
            StorageError::InvalidSlot { page, slot } => {
                write!(f, "invalid slot {slot} on page {page}")
            }
            StorageError::RecordTooLarge { size, max } => {
                write!(
                    f,
                    "record of {size} bytes exceeds the page capacity of {max} bytes"
                )
            }
            StorageError::Corrupt(msg) => write!(f, "corrupt page: {msg}"),
            StorageError::Decode(msg) => write!(f, "decode error: {msg}"),
            StorageError::Unsupported(msg) => write!(f, "unsupported request: {msg}"),
            StorageError::OpenTransactions(count) => write!(
                f,
                "cannot checkpoint with {count} open transaction(s): the pool is \
                 no-steal, and a checkpoint would persist uncommitted work"
            ),
        }
    }
}

impl std::error::Error for StorageError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            StorageError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for StorageError {
    fn from(e: std::io::Error) -> Self {
        StorageError::Io(e)
    }
}

/// Convenience result alias for storage operations.
pub type StorageResult<T> = Result<T, StorageError>;
