//! A small length-prefixed binary codec.
//!
//! All access methods in the workspace serialize their node and record
//! payloads with this codec before storing them in slotted pages.  It is a
//! deliberately simple little-endian, length-prefixed format — enough to make
//! the trees genuinely disk-resident without pulling in a serialization
//! framework.

use crate::error::{StorageError, StorageResult};

/// Types that can be written to and read from a byte buffer.
pub trait Codec: Sized {
    /// Appends the encoded representation to `out`.
    fn encode(&self, out: &mut Vec<u8>);

    /// Decodes a value from the front of `buf`, advancing it past the
    /// consumed bytes.
    fn decode(buf: &mut &[u8]) -> StorageResult<Self>;

    /// Encodes into a fresh buffer.
    fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::new();
        self.encode(&mut out);
        out
    }

    /// Decodes from a complete buffer, requiring all bytes to be consumed.
    fn from_bytes(mut buf: &[u8]) -> StorageResult<Self> {
        let value = Self::decode(&mut buf)?;
        if !buf.is_empty() {
            return Err(StorageError::Decode(format!(
                "{} trailing bytes after decode",
                buf.len()
            )));
        }
        Ok(value)
    }
}

fn take<'a>(buf: &mut &'a [u8], n: usize) -> StorageResult<&'a [u8]> {
    if buf.len() < n {
        return Err(StorageError::Decode(format!(
            "need {n} bytes, only {} remain",
            buf.len()
        )));
    }
    let (head, tail) = buf.split_at(n);
    *buf = tail;
    Ok(head)
}

macro_rules! impl_codec_for_int {
    ($($t:ty),*) => {
        $(
            impl Codec for $t {
                fn encode(&self, out: &mut Vec<u8>) {
                    out.extend_from_slice(&self.to_le_bytes());
                }
                fn decode(buf: &mut &[u8]) -> StorageResult<Self> {
                    let bytes = take(buf, std::mem::size_of::<$t>())?;
                    Ok(<$t>::from_le_bytes(bytes.try_into().expect("length checked")))
                }
            }
        )*
    };
}

impl_codec_for_int!(u8, u16, u32, u64, i32, i64);

impl Codec for f64 {
    fn encode(&self, out: &mut Vec<u8>) {
        out.extend_from_slice(&self.to_le_bytes());
    }
    fn decode(buf: &mut &[u8]) -> StorageResult<Self> {
        let bytes = take(buf, 8)?;
        Ok(f64::from_le_bytes(
            bytes.try_into().expect("length checked"),
        ))
    }
}

impl Codec for bool {
    fn encode(&self, out: &mut Vec<u8>) {
        out.push(u8::from(*self));
    }
    fn decode(buf: &mut &[u8]) -> StorageResult<Self> {
        Ok(take(buf, 1)?[0] != 0)
    }
}

impl Codec for String {
    fn encode(&self, out: &mut Vec<u8>) {
        (self.len() as u32).encode(out);
        out.extend_from_slice(self.as_bytes());
    }
    fn decode(buf: &mut &[u8]) -> StorageResult<Self> {
        let len = u32::decode(buf)? as usize;
        let bytes = take(buf, len)?;
        String::from_utf8(bytes.to_vec())
            .map_err(|e| StorageError::Decode(format!("invalid utf-8 string: {e}")))
    }
}

impl<T: Codec> Codec for Option<T> {
    fn encode(&self, out: &mut Vec<u8>) {
        match self {
            None => out.push(0),
            Some(v) => {
                out.push(1);
                v.encode(out);
            }
        }
    }
    fn decode(buf: &mut &[u8]) -> StorageResult<Self> {
        match take(buf, 1)?[0] {
            0 => Ok(None),
            1 => Ok(Some(T::decode(buf)?)),
            tag => Err(StorageError::Decode(format!("invalid Option tag {tag}"))),
        }
    }
}

impl<A: Codec, B: Codec> Codec for (A, B) {
    fn encode(&self, out: &mut Vec<u8>) {
        self.0.encode(out);
        self.1.encode(out);
    }
    fn decode(buf: &mut &[u8]) -> StorageResult<Self> {
        Ok((A::decode(buf)?, B::decode(buf)?))
    }
}

impl<T: Codec> Codec for Vec<T> {
    fn encode(&self, out: &mut Vec<u8>) {
        (self.len() as u32).encode(out);
        for item in self {
            item.encode(out);
        }
    }
    fn decode(buf: &mut &[u8]) -> StorageResult<Self> {
        let len = u32::decode(buf)? as usize;
        let mut items = Vec::with_capacity(len.min(1 << 16));
        for _ in 0..len {
            items.push(T::decode(buf)?);
        }
        Ok(items)
    }
}

impl Codec for () {
    fn encode(&self, _out: &mut Vec<u8>) {}
    fn decode(_buf: &mut &[u8]) -> StorageResult<Self> {
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip<T: Codec + PartialEq + std::fmt::Debug>(value: T) {
        let bytes = value.to_bytes();
        let decoded = T::from_bytes(&bytes).unwrap();
        assert_eq!(decoded, value);
    }

    #[test]
    fn integer_roundtrips() {
        roundtrip(0u8);
        roundtrip(255u8);
        roundtrip(65_535u16);
        roundtrip(123_456_789u32);
        roundtrip(u64::MAX);
        roundtrip(-42i32);
        roundtrip(i64::MIN);
    }

    #[test]
    fn float_bool_string_roundtrips() {
        roundtrip(3.25f64);
        roundtrip(-0.0f64);
        roundtrip(true);
        roundtrip(false);
        roundtrip(String::from("space-partitioning"));
        roundtrip(String::new());
    }

    #[test]
    fn container_roundtrips() {
        roundtrip(Some(17u32));
        roundtrip(Option::<u32>::None);
        roundtrip(vec![1u64, 2, 3]);
        roundtrip(Vec::<String>::new());
        roundtrip((String::from("k"), 9u64));
        roundtrip(vec![(String::from("a"), 1u64), (String::from("b"), 2u64)]);
        roundtrip(vec![0u8, 1, 2, 255]);
    }

    #[test]
    fn truncated_input_is_an_error() {
        let bytes = 123_456u32.to_bytes();
        assert!(u64::from_bytes(&bytes).is_err());
        let mut string_bytes = String::from("hello").to_bytes();
        string_bytes.truncate(6);
        assert!(String::from_bytes(&string_bytes).is_err());
    }

    #[test]
    fn trailing_bytes_are_an_error() {
        let mut bytes = 1u32.to_bytes();
        bytes.push(0);
        assert!(u32::from_bytes(&bytes).is_err());
    }

    #[test]
    fn invalid_option_tag_is_an_error() {
        assert!(Option::<u32>::from_bytes(&[7]).is_err());
    }

    #[test]
    fn invalid_utf8_is_an_error() {
        let mut bytes = Vec::new();
        2u32.encode(&mut bytes);
        bytes.extend_from_slice(&[0xff, 0xfe]);
        assert!(String::from_bytes(&bytes).is_err());
    }
}
