//! CRC-32 (IEEE 802.3, the polynomial used by zlib, PNG and PostgreSQL's
//! pre-9.5 WAL) for on-disk integrity checks.
//!
//! The build environment is offline, so the checksum is implemented here
//! rather than pulled from crates.io: a table-driven, byte-at-a-time
//! reflected CRC with polynomial `0xEDB88320`.  Speed is a non-goal — the
//! callers (WAL record frames, the checkpoint pre-image journal) are
//! dominated by the `fsync` that follows.

/// Reflected CRC-32 lookup table for polynomial `0xEDB88320`, built at
/// compile time.
const TABLE: [u32; 256] = {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 {
                (crc >> 1) ^ 0xEDB8_8320
            } else {
                crc >> 1
            };
            bit += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
};

/// CRC-32 of `bytes` (initial value all-ones, final xor all-ones — the
/// standard "CRC-32" everyone means by the name).
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut crc = u32::MAX;
    for &byte in bytes {
        crc = (crc >> 8) ^ TABLE[((crc ^ byte as u32) & 0xFF) as usize];
    }
    !crc
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_vectors() {
        // The canonical check value for CRC-32/IEEE.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"a"), 0xE8B7_BE43);
        assert_eq!(
            crc32(b"The quick brown fox jumps over the lazy dog"),
            0x414F_A339
        );
    }

    #[test]
    fn single_bit_flips_change_the_checksum() {
        let base = b"wal record payload".to_vec();
        let crc = crc32(&base);
        for byte in 0..base.len() {
            for bit in 0..8 {
                let mut flipped = base.clone();
                flipped[byte] ^= 1 << bit;
                assert_ne!(crc32(&flipped), crc, "flip at byte {byte} bit {bit}");
            }
        }
    }
}
