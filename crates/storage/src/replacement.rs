//! Pluggable O(1) buffer replacement policies.
//!
//! The paper's headline experiments run disk-based at 2M–32M keys — data far
//! larger than memory — so every buffer-pool miss pays for victim selection.
//! The original pool picked its victim with an O(n) `min_by_key(last_used)`
//! scan under the pool mutex; at a few thousand frames that scan dominates
//! the miss path.  This module makes replacement a first-class subsystem:
//! the pool drives a [`ReplacementPolicy`] chosen by
//! [`ReplacementPolicyKind`] in `BufferPoolConfig`, and every policy decides
//! victims in amortized O(1).
//!
//! Three production policies plus one measured baseline:
//!
//! * [`LruList`] — classic LRU over an intrusive doubly-linked list: O(1)
//!   touch (unlink + relink at head) and O(1) evict (pop tail).  Scan-hinted
//!   pages enter an *old region* at the tail side (midpoint insertion): a
//!   one-touch page is the preferred victim, a re-referenced page is promoted
//!   into the young region.
//! * [`ClockRing`] — second-chance ring.  A hand sweeps the ring clearing
//!   reference bits; a page is evicted when the hand finds its bit clear.
//!   Scan-hinted pages are inserted *at the hand* with the bit clear, so
//!   they are the next victim candidate unless re-referenced.
//! * [`SieveHand`] — SIEVE (NSDI'24): a FIFO queue with a `visited` bit and
//!   a hand that moves from tail to head, evicting the first unvisited page
//!   and *lazily* clearing bits as it passes.  Pages are never moved on hit,
//!   which keeps hits O(1) with a single bit write and makes the policy
//!   naturally resistant to one-touch pollution; scan-hinted pages are
//!   additionally inserted at the hand.  This is the default.
//! * [`LruScan`] — the pre-refactor pool verbatim: a recency counter and an
//!   O(n) linear scan for the minimum on every eviction, oblivious to access
//!   hints.  Kept **only** as the measured baseline of the `io_patterns`
//!   benchmark; do not use it for real pools.
//!
//! Policies order *frame slots* (stable indices into the pool's frame slab);
//! they never see page ids or page contents.  Pin and dirty discipline stay
//! the pool's job: [`ReplacementPolicy::evict`] consults an `evictable`
//! predicate and must never return a slot the predicate rejects, so a pinned
//! frame or (in no-steal mode) a dirty frame is never chosen no matter the
//! policy.
//!
//! ## Access hints
//!
//! [`AccessHint::Scan`] marks fetches made by sequential, one-touch access
//! patterns — heap sequential scans, whole-tree statistics walks, bulk-build
//! page writes.  A scan-hinted *insertion* places the page at the policy's
//! eviction-preferred position, and a scan-hinted *touch* never promotes, so
//! one pass over a huge table cannot flush the index's hot upper levels out
//! of the pool.  Any later [`AccessHint::Normal`] access promotes the page
//! exactly as if it had entered normally.

/// Sentinel for "no slot" in the intrusive link arrays.
const NIL: usize = usize::MAX;

/// How a page fetch should influence the replacement policy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum AccessHint {
    /// A point access: the page may be re-referenced soon, cache it normally.
    #[default]
    Normal,
    /// A sequential one-touch access (seq scan, stats walk, bulk build):
    /// insert at the eviction-preferred position and never promote on touch.
    Scan,
}

/// Selects the [`ReplacementPolicy`] a `BufferPool` runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ReplacementPolicyKind {
    /// Intrusive-list LRU with midpoint (old-region) scan insertion.
    Lru,
    /// Second-chance clock ring.
    Clock,
    /// SIEVE: FIFO with lazy promotion — the scan-resistant default.
    #[default]
    Sieve,
    /// The legacy O(n) linear-scan LRU, hint-oblivious.  Benchmark baseline
    /// only.
    LruScan,
}

impl ReplacementPolicyKind {
    /// Every selectable policy, in display order.
    pub const ALL: [ReplacementPolicyKind; 4] = [
        ReplacementPolicyKind::Lru,
        ReplacementPolicyKind::Clock,
        ReplacementPolicyKind::Sieve,
        ReplacementPolicyKind::LruScan,
    ];

    /// Stable lowercase name, used in `IoStats` and benchmark artifacts.
    pub fn name(self) -> &'static str {
        match self {
            ReplacementPolicyKind::Lru => "lru",
            ReplacementPolicyKind::Clock => "clock",
            ReplacementPolicyKind::Sieve => "sieve",
            ReplacementPolicyKind::LruScan => "lru-scan",
        }
    }

    /// Parses a [`ReplacementPolicyKind::name`] back into a kind.
    pub fn parse(name: &str) -> Option<Self> {
        Self::ALL.into_iter().find(|k| k.name() == name)
    }

    /// Builds a fresh policy instance of this kind.
    pub fn build(self) -> Box<dyn ReplacementPolicy + Send> {
        match self {
            ReplacementPolicyKind::Lru => Box::new(LruList::new()),
            ReplacementPolicyKind::Clock => Box::new(ClockRing::new()),
            ReplacementPolicyKind::Sieve => Box::new(SieveHand::new()),
            ReplacementPolicyKind::LruScan => Box::new(LruScan::new()),
        }
    }
}

/// Victim selection over the pool's frame slots.
///
/// The pool calls `insert` when a page enters a slot, `touch` on every hit,
/// `remove` when a slot leaves the pool outside eviction (page freed), and
/// `evict` to choose and unlink a victim.  A slot is in the policy's
/// structure from `insert` until `remove`/successful `evict`; the pool never
/// passes an untracked slot to `touch`/`remove`.
pub trait ReplacementPolicy {
    /// The policy's stable name (matches [`ReplacementPolicyKind::name`]).
    fn name(&self) -> &'static str;

    /// Tracks a page newly placed in `slot`.
    fn insert(&mut self, slot: usize, hint: AccessHint);

    /// Records a hit on `slot`.
    fn touch(&mut self, slot: usize, hint: AccessHint);

    /// Stops tracking `slot` (page freed or dropped outside eviction).
    fn remove(&mut self, slot: usize);

    /// Chooses a victim among tracked slots for which `evictable` returns
    /// `true`, unlinks it, and returns it; `None` when no tracked slot is
    /// evictable.  Must never return a slot `evictable` rejected.
    fn evict(&mut self, evictable: &mut dyn FnMut(usize) -> bool) -> Option<usize>;

    /// Number of tracked slots.
    fn len(&self) -> usize;

    /// Whether no slots are tracked.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// Grows a per-slot vector so `slot` is indexable.
fn ensure_slot<T: Clone>(v: &mut Vec<T>, slot: usize, fill: T) {
    if slot >= v.len() {
        v.resize(slot + 1, fill);
    }
}

// ---------------------------------------------------------------------------
// LRU: intrusive doubly-linked list with an old region for scans
// ---------------------------------------------------------------------------

/// O(1) LRU.  `next` points toward the tail (older), `prev` toward the head
/// (recently used).  Evicts from the tail.  Scan-hinted insertions enter at
/// the head of the *old region* — the contiguous run of scan pages at the
/// tail — so sequential one-touch pages compete with each other for frames,
/// not with the recently-used region.
pub struct LruList {
    prev: Vec<usize>,
    next: Vec<usize>,
    /// Whether the slot currently sits in the old (scan) region.
    old: Vec<bool>,
    tracked: Vec<bool>,
    head: usize,
    tail: usize,
    /// Frontmost (most protected) old-region slot; everything from here to
    /// the tail is old.
    old_head: usize,
    len: usize,
}

impl LruList {
    /// An empty list.
    pub fn new() -> Self {
        LruList {
            prev: Vec::new(),
            next: Vec::new(),
            old: Vec::new(),
            tracked: Vec::new(),
            head: NIL,
            tail: NIL,
            old_head: NIL,
            len: 0,
        }
    }

    fn grow(&mut self, slot: usize) {
        ensure_slot(&mut self.prev, slot, NIL);
        ensure_slot(&mut self.next, slot, NIL);
        ensure_slot(&mut self.old, slot, false);
        ensure_slot(&mut self.tracked, slot, false);
    }

    fn push_head(&mut self, slot: usize) {
        self.prev[slot] = NIL;
        self.next[slot] = self.head;
        if self.head != NIL {
            self.prev[self.head] = slot;
        }
        self.head = slot;
        if self.tail == NIL {
            self.tail = slot;
        }
    }

    fn push_tail(&mut self, slot: usize) {
        self.next[slot] = NIL;
        self.prev[slot] = self.tail;
        if self.tail != NIL {
            self.next[self.tail] = slot;
        }
        self.tail = slot;
        if self.head == NIL {
            self.head = slot;
        }
    }

    /// Links `slot` immediately head-ward of `at`.
    fn insert_before(&mut self, slot: usize, at: usize) {
        let p = self.prev[at];
        self.prev[slot] = p;
        self.next[slot] = at;
        self.prev[at] = slot;
        if p == NIL {
            self.head = slot;
        } else {
            self.next[p] = slot;
        }
    }

    fn unlink(&mut self, slot: usize) {
        let (p, n) = (self.prev[slot], self.next[slot]);
        if p == NIL {
            self.head = n;
        } else {
            self.next[p] = n;
        }
        if n == NIL {
            self.tail = p;
        } else {
            self.prev[n] = p;
        }
        self.prev[slot] = NIL;
        self.next[slot] = NIL;
    }

    /// Detaches `slot` from the old-region bookkeeping before it leaves its
    /// position.  Everything tail-ward of `old_head` is old, so when the
    /// boundary slot itself leaves, the next old slot (if any) becomes the
    /// boundary.
    fn leave_old(&mut self, slot: usize) {
        if self.old_head == slot {
            let n = self.next[slot];
            self.old_head = if n != NIL && self.old[n] { n } else { NIL };
        }
        self.old[slot] = false;
    }
}

impl Default for LruList {
    fn default() -> Self {
        Self::new()
    }
}

impl ReplacementPolicy for LruList {
    fn name(&self) -> &'static str {
        "lru"
    }

    fn insert(&mut self, slot: usize, hint: AccessHint) {
        self.grow(slot);
        debug_assert!(!self.tracked[slot], "slot inserted twice");
        self.tracked[slot] = true;
        self.len += 1;
        match hint {
            AccessHint::Normal => {
                self.old[slot] = false;
                self.push_head(slot);
            }
            AccessHint::Scan => {
                self.old[slot] = true;
                if self.old_head == NIL {
                    self.push_tail(slot);
                } else {
                    self.insert_before(slot, self.old_head);
                }
                self.old_head = slot;
            }
        }
    }

    fn touch(&mut self, slot: usize, hint: AccessHint) {
        if hint == AccessHint::Scan {
            // Lazy: a scan re-reading a page (several records on one page)
            // must not promote it.
            return;
        }
        self.leave_old(slot);
        if self.head != slot {
            self.unlink(slot);
            self.push_head(slot);
        }
    }

    fn remove(&mut self, slot: usize) {
        debug_assert!(self.tracked[slot], "removing untracked slot");
        self.leave_old(slot);
        self.unlink(slot);
        self.tracked[slot] = false;
        self.len -= 1;
    }

    fn evict(&mut self, evictable: &mut dyn FnMut(usize) -> bool) -> Option<usize> {
        // Walk tail-ward frames oldest-first, skipping blocked (pinned or
        // dirty-in-no-steal) ones.  The common case takes the tail directly;
        // blocked frames are rare (pins are closure-scoped under the pool
        // mutex) except in no-steal overflow, where the caller grows the
        // pool anyway.
        let mut cur = self.tail;
        while cur != NIL {
            if evictable(cur) {
                self.remove(cur);
                return Some(cur);
            }
            cur = self.prev[cur];
        }
        None
    }

    fn len(&self) -> usize {
        self.len
    }
}

// ---------------------------------------------------------------------------
// Clock: second-chance ring
// ---------------------------------------------------------------------------

/// O(1) amortized second-chance clock.  The hand advances along `next`;
/// every touched frame gets one more sweep before eviction.  Normal
/// insertions land just behind the hand (a full sweep of grace) with their
/// reference bit set; scan insertions land *at* the hand with the bit clear,
/// making them the next victim candidate.
pub struct ClockRing {
    prev: Vec<usize>,
    next: Vec<usize>,
    referenced: Vec<bool>,
    tracked: Vec<bool>,
    hand: usize,
    len: usize,
}

impl ClockRing {
    /// An empty ring.
    pub fn new() -> Self {
        ClockRing {
            prev: Vec::new(),
            next: Vec::new(),
            referenced: Vec::new(),
            tracked: Vec::new(),
            hand: NIL,
            len: 0,
        }
    }

    fn grow(&mut self, slot: usize) {
        ensure_slot(&mut self.prev, slot, NIL);
        ensure_slot(&mut self.next, slot, NIL);
        ensure_slot(&mut self.referenced, slot, false);
        ensure_slot(&mut self.tracked, slot, false);
    }

    /// Links `slot` into the ring immediately before the hand in sweep
    /// order (the hand reaches it only after a full revolution).
    fn link_before_hand(&mut self, slot: usize) {
        if self.hand == NIL {
            self.prev[slot] = slot;
            self.next[slot] = slot;
            self.hand = slot;
        } else {
            let p = self.prev[self.hand];
            self.next[p] = slot;
            self.prev[slot] = p;
            self.next[slot] = self.hand;
            self.prev[self.hand] = slot;
        }
    }

    fn unlink(&mut self, slot: usize) {
        if self.next[slot] == slot {
            self.hand = NIL;
        } else {
            let (p, n) = (self.prev[slot], self.next[slot]);
            self.next[p] = n;
            self.prev[n] = p;
            if self.hand == slot {
                self.hand = n;
            }
        }
        self.prev[slot] = NIL;
        self.next[slot] = NIL;
    }
}

impl Default for ClockRing {
    fn default() -> Self {
        Self::new()
    }
}

impl ReplacementPolicy for ClockRing {
    fn name(&self) -> &'static str {
        "clock"
    }

    fn insert(&mut self, slot: usize, hint: AccessHint) {
        self.grow(slot);
        debug_assert!(!self.tracked[slot], "slot inserted twice");
        self.tracked[slot] = true;
        self.len += 1;
        self.link_before_hand(slot);
        match hint {
            AccessHint::Normal => self.referenced[slot] = true,
            AccessHint::Scan => {
                // Next victim candidate unless re-referenced first.
                self.referenced[slot] = false;
                self.hand = slot;
            }
        }
    }

    fn touch(&mut self, slot: usize, hint: AccessHint) {
        if hint == AccessHint::Normal {
            self.referenced[slot] = true;
            if self.hand == slot {
                // A scan insertion parked the hand on this slot; the
                // re-reference promotes it to a full sweep of grace.
                self.hand = self.next[slot];
            }
        }
    }

    fn remove(&mut self, slot: usize) {
        debug_assert!(self.tracked[slot], "removing untracked slot");
        self.unlink(slot);
        self.tracked[slot] = false;
        self.len -= 1;
    }

    fn evict(&mut self, evictable: &mut dyn FnMut(usize) -> bool) -> Option<usize> {
        if self.hand == NIL {
            return None;
        }
        // Two full sweeps bound the search: the first clears every set
        // reference bit, the second must find a victim unless every frame is
        // blocked.  Each cleared bit was paid for by a touch, so the
        // amortized cost per miss is O(1).
        let mut remaining = 2 * self.len + 1;
        while remaining > 0 {
            remaining -= 1;
            let cur = self.hand;
            if !evictable(cur) {
                self.hand = self.next[cur];
            } else if self.referenced[cur] {
                self.referenced[cur] = false;
                self.hand = self.next[cur];
            } else {
                self.remove(cur);
                return Some(cur);
            }
        }
        None
    }

    fn len(&self) -> usize {
        self.len
    }
}

// ---------------------------------------------------------------------------
// SIEVE: FIFO queue + lazy-promotion hand
// ---------------------------------------------------------------------------

/// SIEVE (Zhang et al., NSDI'24).  A FIFO list (new pages at the head) with
/// a hand moving tail→head.  The hand evicts the first frame whose `visited`
/// bit is clear and lazily clears bits as it passes; hits only set the bit —
/// frames are never relinked on access, so hot frames are retained without
/// LRU's constant list surgery.  One-touch pages keep a clear bit and are
/// sieved out on the hand's first pass; scan-hinted pages are inserted at
/// the hand, making them immediate candidates.
pub struct SieveHand {
    prev: Vec<usize>,
    next: Vec<usize>,
    visited: Vec<bool>,
    tracked: Vec<bool>,
    head: usize,
    tail: usize,
    /// Next slot the hand examines; `NIL` means "wrap to the tail".
    hand: usize,
    len: usize,
}

impl SieveHand {
    /// An empty queue.
    pub fn new() -> Self {
        SieveHand {
            prev: Vec::new(),
            next: Vec::new(),
            visited: Vec::new(),
            tracked: Vec::new(),
            head: NIL,
            tail: NIL,
            hand: NIL,
            len: 0,
        }
    }

    fn grow(&mut self, slot: usize) {
        ensure_slot(&mut self.prev, slot, NIL);
        ensure_slot(&mut self.next, slot, NIL);
        ensure_slot(&mut self.visited, slot, false);
        ensure_slot(&mut self.tracked, slot, false);
    }

    fn push_head(&mut self, slot: usize) {
        self.prev[slot] = NIL;
        self.next[slot] = self.head;
        if self.head != NIL {
            self.prev[self.head] = slot;
        }
        self.head = slot;
        if self.tail == NIL {
            self.tail = slot;
        }
    }

    /// Links `slot` immediately tail-ward of `at`.
    fn insert_after(&mut self, slot: usize, at: usize) {
        let n = self.next[at];
        self.next[at] = slot;
        self.prev[slot] = at;
        self.next[slot] = n;
        if n == NIL {
            self.tail = slot;
        } else {
            self.prev[n] = slot;
        }
    }

    fn unlink(&mut self, slot: usize) {
        if self.hand == slot {
            // The hand keeps moving tail→head past the vacated position.
            self.hand = self.prev[slot];
        }
        let (p, n) = (self.prev[slot], self.next[slot]);
        if p == NIL {
            self.head = n;
        } else {
            self.next[p] = n;
        }
        if n == NIL {
            self.tail = p;
        } else {
            self.prev[n] = p;
        }
        self.prev[slot] = NIL;
        self.next[slot] = NIL;
    }
}

impl Default for SieveHand {
    fn default() -> Self {
        Self::new()
    }
}

impl ReplacementPolicy for SieveHand {
    fn name(&self) -> &'static str {
        "sieve"
    }

    fn insert(&mut self, slot: usize, hint: AccessHint) {
        self.grow(slot);
        debug_assert!(!self.tracked[slot], "slot inserted twice");
        self.tracked[slot] = true;
        self.len += 1;
        self.visited[slot] = false;
        match hint {
            AccessHint::Normal => self.push_head(slot),
            AccessHint::Scan => {
                // Directly under the hand: examined (and, untouched, evicted)
                // at the very next miss.
                match self.hand {
                    NIL => {
                        self.push_head(slot);
                        self.hand = slot;
                    }
                    h => {
                        self.insert_after(slot, h);
                        self.hand = slot;
                    }
                }
            }
        }
    }

    fn touch(&mut self, slot: usize, hint: AccessHint) {
        if hint == AccessHint::Normal {
            self.visited[slot] = true;
        }
    }

    fn remove(&mut self, slot: usize) {
        debug_assert!(self.tracked[slot], "removing untracked slot");
        self.unlink(slot);
        self.tracked[slot] = false;
        self.len -= 1;
    }

    fn evict(&mut self, evictable: &mut dyn FnMut(usize) -> bool) -> Option<usize> {
        if self.len == 0 {
            return None;
        }
        // Two passes bound the walk exactly as for the clock: the first
        // clears `visited` bits (each paid for by a hit), the second finds
        // the victim unless everything is blocked.
        let mut remaining = 2 * self.len + 1;
        while remaining > 0 {
            remaining -= 1;
            let cur = if self.hand == NIL {
                self.tail
            } else {
                self.hand
            };
            if self.visited[cur] {
                self.visited[cur] = false;
                self.hand = self.prev[cur];
            } else if evictable(cur) {
                self.remove(cur);
                return Some(cur);
            } else {
                self.hand = self.prev[cur];
            }
        }
        None
    }

    fn len(&self) -> usize {
        self.len
    }
}

// ---------------------------------------------------------------------------
// LruScan: the legacy O(n) pool, kept as a measured baseline
// ---------------------------------------------------------------------------

/// The pre-refactor pool's victim selection, verbatim: a global recency
/// counter and a full linear scan for the minimum on every eviction.  Hint
/// oblivious.  Exists so `io_patterns` can measure what the O(n) scan costs
/// at realistic frame counts; never the right choice for a real pool.
pub struct LruScan {
    last_used: Vec<u64>,
    tracked: Vec<bool>,
    clock: u64,
    len: usize,
}

impl LruScan {
    /// An empty baseline policy.
    pub fn new() -> Self {
        LruScan {
            last_used: Vec::new(),
            tracked: Vec::new(),
            clock: 0,
            len: 0,
        }
    }
}

impl Default for LruScan {
    fn default() -> Self {
        Self::new()
    }
}

impl ReplacementPolicy for LruScan {
    fn name(&self) -> &'static str {
        "lru-scan"
    }

    fn insert(&mut self, slot: usize, _hint: AccessHint) {
        ensure_slot(&mut self.last_used, slot, 0);
        ensure_slot(&mut self.tracked, slot, false);
        debug_assert!(!self.tracked[slot], "slot inserted twice");
        self.tracked[slot] = true;
        self.len += 1;
        self.clock += 1;
        self.last_used[slot] = self.clock;
    }

    fn touch(&mut self, slot: usize, _hint: AccessHint) {
        self.clock += 1;
        self.last_used[slot] = self.clock;
    }

    fn remove(&mut self, slot: usize) {
        debug_assert!(self.tracked[slot], "removing untracked slot");
        self.tracked[slot] = false;
        self.len -= 1;
    }

    fn evict(&mut self, evictable: &mut dyn FnMut(usize) -> bool) -> Option<usize> {
        // Deliberately O(n): this is the baseline being measured against.
        let victim = (0..self.tracked.len())
            .filter(|&s| self.tracked[s] && evictable(s))
            .min_by_key(|&s| self.last_used[s])?;
        self.remove(victim);
        Some(victim)
    }

    fn len(&self) -> usize {
        self.len
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Deterministic xorshift for the property tests (the workspace builds
    /// offline; no rand crate).
    struct Rng(u64);
    impl Rng {
        fn next(&mut self) -> u64 {
            let mut x = self.0;
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            self.0 = x;
            x
        }
        fn below(&mut self, n: usize) -> usize {
            (self.next() % n as u64) as usize
        }
    }

    fn policies() -> Vec<Box<dyn ReplacementPolicy + Send>> {
        ReplacementPolicyKind::ALL
            .iter()
            .map(|k| k.build())
            .collect()
    }

    #[test]
    fn kind_name_parse_roundtrip() {
        for kind in ReplacementPolicyKind::ALL {
            assert_eq!(ReplacementPolicyKind::parse(kind.name()), Some(kind));
            assert_eq!(kind.build().name(), kind.name());
        }
        assert_eq!(ReplacementPolicyKind::parse("mru"), None);
        assert_eq!(
            ReplacementPolicyKind::default(),
            ReplacementPolicyKind::Sieve
        );
    }

    #[test]
    fn evict_empty_returns_none() {
        for mut p in policies() {
            assert_eq!(p.evict(&mut |_| true), None, "{}", p.name());
        }
    }

    #[test]
    fn single_slot_insert_evict() {
        for mut p in policies() {
            p.insert(0, AccessHint::Normal);
            assert_eq!(p.len(), 1);
            assert_eq!(p.evict(&mut |_| true), Some(0), "{}", p.name());
            assert_eq!(p.len(), 0);
            assert_eq!(p.evict(&mut |_| true), None);
        }
    }

    #[test]
    fn lru_evicts_least_recently_used() {
        let mut p = LruList::new();
        for s in 0..4 {
            p.insert(s, AccessHint::Normal);
        }
        p.touch(0, AccessHint::Normal); // order oldest-first: 1, 2, 3, 0
        assert_eq!(p.evict(&mut |_| true), Some(1));
        assert_eq!(p.evict(&mut |_| true), Some(2));
        p.touch(3, AccessHint::Normal); // order: 0, 3
        assert_eq!(p.evict(&mut |_| true), Some(0));
        assert_eq!(p.evict(&mut |_| true), Some(3));
    }

    #[test]
    fn lru_scan_insertions_evict_before_normal_pages() {
        let mut p = LruList::new();
        p.insert(0, AccessHint::Normal);
        p.insert(1, AccessHint::Normal);
        // 0 and 1 are older than every scan page, yet scans must go first.
        p.insert(2, AccessHint::Scan);
        p.insert(3, AccessHint::Scan);
        p.touch(2, AccessHint::Scan); // scan touch must not promote
        assert_eq!(p.evict(&mut |_| true), Some(2), "oldest scan page first");
        assert_eq!(p.evict(&mut |_| true), Some(3));
        assert_eq!(p.evict(&mut |_| true), Some(0), "then normal LRU order");
    }

    #[test]
    fn lru_normal_touch_promotes_scan_page_out_of_old_region() {
        let mut p = LruList::new();
        p.insert(0, AccessHint::Normal);
        p.insert(1, AccessHint::Scan);
        p.touch(1, AccessHint::Normal); // re-referenced: now young, MRU
        p.insert(2, AccessHint::Scan);
        assert_eq!(p.evict(&mut |_| true), Some(2));
        assert_eq!(p.evict(&mut |_| true), Some(0));
        assert_eq!(p.evict(&mut |_| true), Some(1));
    }

    #[test]
    fn clock_gives_touched_frames_a_second_chance() {
        let mut p = ClockRing::new();
        for s in 0..3 {
            p.insert(s, AccessHint::Normal);
        }
        // All referenced: the first eviction clears bits for a full sweep,
        // then takes the first frame it revisits.
        let first = p.evict(&mut |_| true).unwrap();
        p.touch(first ^ 1, AccessHint::Normal); // arbitrary surviving slot
        assert_eq!(p.len(), 2);
    }

    #[test]
    fn clock_scan_insertions_are_next_victims() {
        let mut p = ClockRing::new();
        p.insert(0, AccessHint::Normal);
        p.insert(1, AccessHint::Normal);
        p.insert(2, AccessHint::Scan);
        assert_eq!(p.evict(&mut |_| true), Some(2), "scan page goes first");
    }

    #[test]
    fn clock_scan_page_survives_when_re_referenced() {
        let mut p = ClockRing::new();
        p.insert(0, AccessHint::Normal);
        p.insert(1, AccessHint::Scan);
        p.touch(1, AccessHint::Normal);
        let v = p.evict(&mut |_| true).unwrap();
        assert_ne!(v, 1, "re-referenced scan page must not be the victim");
    }

    #[test]
    fn sieve_sieves_out_one_touch_pages() {
        let mut p = SieveHand::new();
        for s in 0..4 {
            p.insert(s, AccessHint::Normal);
        }
        p.touch(1, AccessHint::Normal);
        p.touch(3, AccessHint::Normal);
        // Hand starts at the tail (0, the first insertion): 0 is unvisited →
        // victim.  Then 2.  Visited 1 and 3 survive with bits cleared.
        assert_eq!(p.evict(&mut |_| true), Some(0));
        assert_eq!(p.evict(&mut |_| true), Some(2));
        assert_eq!(p.len(), 2);
    }

    #[test]
    fn sieve_scan_insertions_are_next_victims() {
        let mut p = SieveHand::new();
        for s in 0..3 {
            p.insert(s, AccessHint::Normal);
            p.touch(s, AccessHint::Normal);
        }
        p.insert(3, AccessHint::Scan);
        p.touch(3, AccessHint::Scan); // scan touch: no promotion
        assert_eq!(p.evict(&mut |_| true), Some(3), "scan page sieved first");
    }

    #[test]
    fn lru_scan_matches_recency_order_and_ignores_hints() {
        let mut p = LruScan::new();
        p.insert(0, AccessHint::Scan);
        p.insert(1, AccessHint::Normal);
        p.touch(0, AccessHint::Scan); // hint-oblivious: this DOES refresh 0
        assert_eq!(p.evict(&mut |_| true), Some(1));
        assert_eq!(p.evict(&mut |_| true), Some(0));
    }

    /// The core safety property: whatever the access pattern, `evict` never
    /// returns a slot the predicate rejected (the pool maps "rejected" to
    /// pinned frames and, in no-steal mode, dirty frames).
    #[test]
    fn property_evict_never_returns_blocked_slot() {
        for kind in ReplacementPolicyKind::ALL {
            let mut rng = Rng(0x5EED ^ kind.name().len() as u64);
            let mut p = kind.build();
            let mut tracked: Vec<usize> = Vec::new();
            let mut next_slot = 0usize;
            for _ in 0..4000 {
                match rng.below(10) {
                    0..=3 => {
                        let hint = if rng.below(2) == 0 {
                            AccessHint::Normal
                        } else {
                            AccessHint::Scan
                        };
                        p.insert(next_slot, hint);
                        tracked.push(next_slot);
                        next_slot += 1;
                    }
                    4..=6 if !tracked.is_empty() => {
                        let s = tracked[rng.below(tracked.len())];
                        let hint = if rng.below(2) == 0 {
                            AccessHint::Normal
                        } else {
                            AccessHint::Scan
                        };
                        p.touch(s, hint);
                    }
                    7 if !tracked.is_empty() => {
                        let i = rng.below(tracked.len());
                        let s = tracked.swap_remove(i);
                        p.remove(s);
                    }
                    _ if !tracked.is_empty() => {
                        // Block a random subset; eviction must respect it.
                        let mut blocked = vec![false; next_slot];
                        for _ in 0..rng.below(tracked.len() + 1) {
                            blocked[tracked[rng.below(tracked.len())]] = true;
                        }
                        let all_blocked = tracked.iter().all(|&s| blocked[s]);
                        match p.evict(&mut |s| !blocked[s]) {
                            Some(v) => {
                                assert!(!blocked[v], "{}: evicted a blocked slot", kind.name());
                                let i = tracked.iter().position(|&s| s == v).unwrap();
                                tracked.swap_remove(i);
                            }
                            None => {
                                assert!(
                                    all_blocked,
                                    "{}: refused to evict with unblocked slots tracked",
                                    kind.name()
                                );
                            }
                        }
                    }
                    _ => {}
                }
                assert_eq!(p.len(), tracked.len(), "{}: len drifted", kind.name());
            }
        }
    }

    /// Exercises a scan-heavy mixed pattern and checks each policy's
    /// bookkeeping stays consistent while every eviction request on a
    /// non-empty, fully-evictable policy succeeds.
    #[test]
    fn property_mixed_scan_pattern_always_finds_victims() {
        for kind in ReplacementPolicyKind::ALL {
            let mut p = kind.build();
            let mut rng = Rng(0xBEEF);
            let mut live: Vec<usize> = Vec::new();
            for slot in 0..512 {
                let hint = if slot % 3 == 0 {
                    AccessHint::Scan
                } else {
                    AccessHint::Normal
                };
                p.insert(slot, hint);
                live.push(slot);
                if live.len() > 64 {
                    let hot = live[rng.below(live.len())];
                    p.touch(hot, AccessHint::Normal);
                    let v = p.evict(&mut |_| true).unwrap_or_else(|| {
                        panic!("{}: no victim at {} slots", kind.name(), live.len())
                    });
                    let i = live.iter().position(|&s| s == v).unwrap();
                    live.swap_remove(i);
                }
            }
            assert_eq!(p.len(), live.len());
        }
    }
}
