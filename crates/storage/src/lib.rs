//! Storage substrate for the SP-GiST reproduction.
//!
//! The paper realizes SP-GiST inside PostgreSQL and relies on the PostgreSQL
//! storage manager and buffer manager for "the allocation and retrieval of
//! disk pages" (Section 4.2).  This crate provides the equivalent substrate
//! from scratch:
//!
//! * [`page`] — an 8 KiB slotted page, the unit of disk transfer,
//! * [`pager`] — page allocation and retrieval ([`pager::FilePager`] backed by a
//!   file, [`pager::MemPager`] for tests and fast experiments),
//! * [`buffer`] — a buffer pool with pin/unpin semantics, pluggable O(1)
//!   replacement ([`replacement`]: LRU, Clock, SIEVE) and I/O accounting
//!   ([`buffer::IoStats`]),
//! * [`heap`] — a heap file (PostgreSQL "heap access" / sequential scan),
//! * [`codec`] — a tiny length-prefixed binary codec used by every access
//!   method in the workspace to lay records out on pages.
//!
//! All access methods in the workspace (SP-GiST trees, the B+-tree and R-tree
//! baselines, heap files) perform their page reads and writes through
//! [`buffer::BufferPool`], so logical and physical page I/O is counted
//! uniformly — the experiment harness reports those counters next to
//! wall-clock time.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod buffer;
pub mod codec;
pub mod crc;
pub mod epoch;
pub mod error;
pub mod fault;
pub mod heap;
pub mod journal;
pub mod page;
pub mod pager;
pub mod replacement;

pub use buffer::{BufferPool, BufferPoolConfig, DirtyPageSnapshot, IoStats};
pub use codec::Codec;
pub use crc::crc32;
pub use epoch::{ConcurrencyStats, EpochManager, EpochPin, LatchSet, LatchTable, RetiredItem};
pub use error::{StorageError, StorageResult};
pub use fault::{FaultPager, SyncFault, WriteFault};
pub use heap::{HeapFile, RecordId};
pub use journal::CheckpointStats;
pub use page::{Page, PageId, SlotId, MAX_RECORD_SIZE, PAGE_SIZE};
pub use pager::{FilePager, MemPager, Pager};
pub use replacement::{AccessHint, ReplacementPolicy, ReplacementPolicyKind};
