//! Buffer pool with pluggable O(1) replacement and I/O accounting.
//!
//! Every access method in the workspace reads and writes pages through a
//! [`BufferPool`].  The pool keeps a bounded number of frames in memory,
//! chooses eviction victims through a pluggable [`ReplacementPolicy`]
//! (LRU, Clock, or SIEVE — see [`crate::replacement`]), and writes dirty
//! frames back to the [`Pager`] on eviction or on [`BufferPool::flush_all`].
//! Victim selection is O(1) per miss; scan-shaped callers pass
//! [`AccessHint::Scan`] so one-touch pages cannot flush the hot working set.
//!
//! [`IoStats`] counts logical reads (page requests), physical reads (requests
//! that missed the pool and went to the pager), physical writes, and
//! evictions, and names the active policy.  The experiment harness reports
//! these counters next to wall-clock time: page-I/O counts are the
//! deterministic component of the paper's timings and reproduce its
//! performance *shapes* even on noisy machines.

use std::collections::{HashMap, HashSet};
use std::sync::atomic::{AtomicBool, AtomicU32, AtomicU64, Ordering};
use std::sync::Arc;

use parking_lot::{Mutex, RwLock};

use crate::error::{StorageError, StorageResult};
use crate::page::{Page, PageId};
use crate::pager::Pager;
use crate::replacement::{AccessHint, ReplacementPolicy, ReplacementPolicyKind};

/// Configuration for a [`BufferPool`].
#[derive(Debug, Clone, Copy)]
pub struct BufferPoolConfig {
    /// Maximum number of pages held in memory at once.
    pub capacity: usize,
    /// Whether eviction may **steal** dirty frames (write them back to the
    /// pager mid-run).  `true` is the classic cache behavior.  `false` is
    /// the WAL discipline: between [`BufferPool::flush_all`] calls no data
    /// page reaches the pager at all — eviction picks only clean victims
    /// and the pool grows past `capacity` when every candidate is dirty
    /// (trimming back at the next flush), and [`BufferPool::free_page`]
    /// defers the pager free until the next flush.  Durable databases
    /// force `steal = false` so that after a crash the file holds exactly
    /// the last checkpoint's pages, the state logical WAL replay starts
    /// from.
    pub steal: bool,
    /// Which replacement policy picks eviction victims.
    pub policy: ReplacementPolicyKind,
}

impl Default for BufferPoolConfig {
    fn default() -> Self {
        // 1024 pages x 8 KiB = 8 MiB, a deliberately small pool so that the
        // experiments exercise eviction even at scaled-down data sizes.
        BufferPoolConfig {
            capacity: 1024,
            steal: true,
            policy: ReplacementPolicyKind::default(),
        }
    }
}

/// Counters of buffer-pool activity since the last reset.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct IoStats {
    /// Page requests served (hits + misses).
    pub logical_reads: u64,
    /// Page requests that had to read from the pager.
    pub physical_reads: u64,
    /// Dirty pages written back to the pager.
    pub physical_writes: u64,
    /// Frames evicted to make room.
    pub evictions: u64,
    /// Name of the replacement policy that produced these counters.
    pub policy: &'static str,
}

impl IoStats {
    /// Buffer-pool hit ratio in `[0, 1]`; `1.0` when no reads occurred.
    pub fn hit_ratio(&self) -> f64 {
        if self.logical_reads == 0 {
            1.0
        } else {
            1.0 - self.physical_reads as f64 / self.logical_reads as f64
        }
    }

    /// Component-wise difference (`self - earlier`), for measuring a single
    /// operation between two snapshots.
    pub fn delta_since(&self, earlier: &IoStats) -> IoStats {
        IoStats {
            logical_reads: self.logical_reads - earlier.logical_reads,
            physical_reads: self.physical_reads - earlier.physical_reads,
            physical_writes: self.physical_writes - earlier.physical_writes,
            evictions: self.evictions - earlier.evictions,
            policy: self.policy,
        }
    }
}

/// The shared, individually lockable state of one resident page.
///
/// Page access runs under the per-frame `lock`, *outside* the pool mutex, so
/// concurrent readers and writers of distinct pages never serialize on the
/// pool — the pool mutex covers only the page table, replacement policy,
/// stats, and eviction.  `pins` keeps eviction honest: it is incremented
/// only while holding the pool mutex and checked by the evictor under that
/// same mutex, so a frame observed unpinned cannot concurrently gain an
/// accessor (new accessors need the mutex), and an unpinned frame's lock is
/// free (the pin is dropped only after the page guard).
struct FrameCell {
    lock: RwLock<Page>,
    dirty: AtomicBool,
    /// Bumped on every mutable access (under the frame's write lock).  A
    /// [`BufferPool::dirty_snapshot`] records the epoch with each copied
    /// image; [`BufferPool::flush_snapshot`] marks a frame clean only when
    /// the epoch is unchanged, so a mutation that lands between snapshot
    /// and flush keeps the frame dirty for the next checkpoint.
    dirty_epoch: AtomicU64,
    pins: AtomicU32,
}

impl FrameCell {
    fn new(page: Page, dirty: bool) -> Arc<Self> {
        Arc::new(FrameCell {
            lock: RwLock::new(page),
            dirty: AtomicBool::new(dirty),
            dirty_epoch: AtomicU64::new(0),
            pins: AtomicU32::new(0),
        })
    }
}

/// A point-in-time copy of the pool's dirty frames, taken by
/// [`BufferPool::dirty_snapshot`] under the caller's exclusion and written
/// out later by [`BufferPool::flush_snapshot`].  Lets checkpointing code
/// release its write-blocking guards before paying for the disk I/O.
pub struct DirtyPageSnapshot {
    entries: Vec<SnapshotEntry>,
}

struct SnapshotEntry {
    page_id: PageId,
    image: Page,
    cell: Arc<FrameCell>,
    epoch: u64,
}

impl DirtyPageSnapshot {
    /// Number of captured pages.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when no frame was dirty at snapshot time.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Ids of the captured pages — the on-disk set
    /// [`BufferPool::flush_snapshot`] will overwrite, i.e. the pages a
    /// checkpoint journal must pre-image first.
    pub fn page_ids(&self) -> Vec<PageId> {
        self.entries.iter().map(|e| e.page_id).collect()
    }
}

struct Frame {
    page_id: PageId,
    cell: Arc<FrameCell>,
}

/// Unpins a frame when the accessor is done, even if its closure panics.
struct PinGuard {
    cell: Arc<FrameCell>,
}

impl Drop for PinGuard {
    fn drop(&mut self) {
        self.cell.pins.fetch_sub(1, Ordering::Release);
    }
}

/// Frames live in a slab (`Vec<Option<Frame>>` + free list) so slot indices
/// stay stable for the lifetime of a resident page — the intrusive-list
/// policies key their links on slot numbers.
struct PoolInner {
    frames: Vec<Option<Frame>>,
    free_slots: Vec<usize>,
    by_page: HashMap<PageId, usize>,
    policy: Box<dyn ReplacementPolicy + Send>,
    stats: IoStats,
    /// Pages released by [`BufferPool::free_page`] under the no-steal
    /// discipline, handed to the pager only at the next
    /// [`BufferPool::flush_all`] — a page the last checkpoint still
    /// references must not be reused (and rewritten on disk) before the
    /// checkpoint that stops referencing it is durable.
    pending_free: Vec<PageId>,
}

impl PoolInner {
    fn occupancy(&self) -> usize {
        self.by_page.len()
    }

    /// Picks a victim slot through the policy, honoring pins and (in
    /// no-steal mode) the dirty-page discipline via the predicate.  The
    /// policy unlinks the returned slot; the frame itself still holds the
    /// page until [`PoolInner::clear_slot`].
    fn choose_victim(&mut self, allow_dirty: bool) -> Option<usize> {
        let frames = &self.frames;
        self.policy.evict(&mut |slot| {
            frames[slot].as_ref().is_some_and(|f| {
                f.cell.pins.load(Ordering::Acquire) == 0
                    && (allow_dirty || !f.cell.dirty.load(Ordering::Acquire))
            })
        })
    }

    /// Empties `slot` (already unlinked from the policy) and recycles it.
    fn clear_slot(&mut self, slot: usize) -> Frame {
        let frame = self.frames[slot].take().expect("clearing an empty slot");
        self.by_page.remove(&frame.page_id);
        self.free_slots.push(slot);
        self.stats.evictions += 1;
        frame
    }

    /// Places `frame` in a fresh slot and registers it with the policy.
    fn place(&mut self, frame: Frame, hint: AccessHint) -> usize {
        let id = frame.page_id;
        let slot = match self.free_slots.pop() {
            Some(s) => {
                self.frames[s] = Some(frame);
                s
            }
            None => {
                self.frames.push(Some(frame));
                self.frames.len() - 1
            }
        };
        self.by_page.insert(id, slot);
        self.policy.insert(slot, hint);
        slot
    }
}

/// A shared, thread-safe buffer pool over a [`Pager`].
pub struct BufferPool {
    pager: Arc<dyn Pager>,
    capacity: usize,
    steal: bool,
    policy_name: &'static str,
    inner: Mutex<PoolInner>,
}

impl BufferPool {
    /// Creates a pool over `pager` with the given configuration.
    pub fn new(pager: Arc<dyn Pager>, config: BufferPoolConfig) -> Self {
        BufferPool {
            pager,
            capacity: config.capacity.max(1),
            steal: config.steal,
            policy_name: config.policy.name(),
            inner: Mutex::new(PoolInner {
                frames: Vec::new(),
                free_slots: Vec::new(),
                by_page: HashMap::new(),
                policy: config.policy.build(),
                stats: IoStats {
                    policy: config.policy.name(),
                    ..IoStats::default()
                },
                pending_free: Vec::new(),
            }),
        }
    }

    /// Creates a pool with the default configuration.
    pub fn with_default_config(pager: Arc<dyn Pager>) -> Self {
        Self::new(pager, BufferPoolConfig::default())
    }

    /// Convenience constructor: a pool over a fresh in-memory pager.
    pub fn in_memory() -> Arc<Self> {
        Arc::new(Self::with_default_config(Arc::new(
            crate::pager::MemPager::new(),
        )))
    }

    /// Name of the replacement policy this pool runs.
    pub fn policy_name(&self) -> &'static str {
        self.policy_name
    }

    /// Buffer-pool hit rate in `[0, 1]` since the last stats reset; `1.0`
    /// when no reads occurred.
    pub fn hit_rate(&self) -> f64 {
        self.stats().hit_ratio()
    }

    /// Number of pages allocated in the underlying pager.
    pub fn page_count(&self) -> u32 {
        self.pager.page_count()
    }

    /// Number of pages on the underlying pager's free list.
    pub fn free_page_count(&self) -> u32 {
        self.pager.free_page_count()
    }

    /// Allocates a new page and returns its id.  The new page starts cached
    /// and clean.
    pub fn allocate_page(&self) -> StorageResult<PageId> {
        self.allocate_page_hinted(AccessHint::Normal)
    }

    /// Allocates a new page, caching it under `hint` — bulk loads pass
    /// [`AccessHint::Scan`] so freshly written run pages do not displace the
    /// read working set.
    pub fn allocate_page_hinted(&self, hint: AccessHint) -> StorageResult<PageId> {
        let id = self.pager.allocate()?;
        let mut inner = self.inner.lock();
        self.install_frame(&mut inner, id, Page::new(), false, hint)?;
        Ok(id)
    }

    /// Returns page `id` to the pager's free list for reuse by a later
    /// [`BufferPool::allocate_page`].  Any cached frame is dropped without
    /// write-back (the content is garbage once the page is free); freeing a
    /// pinned page is an error.
    ///
    /// In no-steal mode the pager free is deferred to the next
    /// [`BufferPool::flush_all`]: freeing a page scribbles a free-list link
    /// into it, and the last durable checkpoint may still reference its old
    /// content.
    pub fn free_page(&self, id: PageId) -> StorageResult<()> {
        let mut inner = self.inner.lock();
        if let Some(&slot) = inner.by_page.get(&id) {
            let pinned = inner.frames[slot]
                .as_ref()
                .is_some_and(|f| f.cell.pins.load(Ordering::Acquire) > 0);
            if pinned {
                return Err(StorageError::Corrupt(format!(
                    "cannot free pinned page {id}"
                )));
            }
            inner.policy.remove(slot);
            inner.frames[slot] = None;
            inner.by_page.remove(&id);
            inner.free_slots.push(slot);
        }
        if self.steal {
            self.pager.free(id)
        } else {
            // Bounds-check now so bad ids fail at the call site, not at an
            // unrelated later flush.
            let page_count = self.pager.page_count();
            if id >= page_count {
                return Err(StorageError::PageOutOfBounds {
                    requested: id,
                    page_count,
                });
            }
            inner.pending_free.push(id);
            Ok(())
        }
    }

    /// Runs `f` with a shared view of page `id`.
    pub fn with_page<R>(&self, id: PageId, f: impl FnOnce(&Page) -> R) -> StorageResult<R> {
        self.with_page_hinted(id, AccessHint::Normal, f)
    }

    /// Runs `f` with a shared view of page `id`, telling the replacement
    /// policy how this access should count ([`AccessHint::Scan`] for
    /// one-touch sequential patterns).
    pub fn with_page_hinted<R>(
        &self,
        id: PageId,
        hint: AccessHint,
        f: impl FnOnce(&Page) -> R,
    ) -> StorageResult<R> {
        let pin = self.pin(id, hint)?;
        let page = pin.cell.lock.read();
        Ok(f(&page))
    }

    /// Runs `f` with a mutable view of page `id`; the page is marked dirty.
    pub fn with_page_mut<R>(&self, id: PageId, f: impl FnOnce(&mut Page) -> R) -> StorageResult<R> {
        self.with_page_mut_hinted(id, AccessHint::Normal, f)
    }

    /// Runs `f` with a mutable view of page `id`, marked dirty, under the
    /// given access hint (see [`BufferPool::with_page_hinted`]).
    pub fn with_page_mut_hinted<R>(
        &self,
        id: PageId,
        hint: AccessHint,
        f: impl FnOnce(&mut Page) -> R,
    ) -> StorageResult<R> {
        let pin = self.pin(id, hint)?;
        let mut page = pin.cell.lock.write();
        // Marked dirty while the write lock is held, so a concurrent flush
        // either snapshots the page before this mutation (and the flag comes
        // back) or after it (and the mutation is on disk).  The epoch bump
        // invalidates any in-flight dirty snapshot of this frame.
        pin.cell.dirty.store(true, Ordering::Release);
        pin.cell.dirty_epoch.fetch_add(1, Ordering::AcqRel);
        Ok(f(&mut page))
    }

    /// Fetches page `id` (installing it on a miss) and pins its frame.  The
    /// pin is taken under the pool mutex, which is what makes the eviction
    /// check sound; page locking happens after the mutex is released.
    fn pin(&self, id: PageId, hint: AccessHint) -> StorageResult<PinGuard> {
        let mut inner = self.inner.lock();
        let slot = self.fetch(&mut inner, id, hint)?;
        let frame = inner.frames[slot].as_ref().expect("fetched slot is empty");
        frame.cell.pins.fetch_add(1, Ordering::Acquire);
        Ok(PinGuard {
            cell: Arc::clone(&frame.cell),
        })
    }

    /// Writes all dirty frames back to the pager and syncs it, then (in
    /// no-steal mode) publishes deferred frees and trims the pool back to
    /// its configured capacity.
    ///
    /// Equivalent to [`flush_pages`](Self::flush_pages) followed by
    /// [`publish_pending`](Self::publish_pending); checkpointing code that
    /// needs an ordering barrier between data and catalog writes calls the
    /// two halves separately.
    pub fn flush_all(&self) -> StorageResult<()> {
        self.flush_pages()?;
        self.publish_pending()
    }

    /// Writes all dirty frames back to the pager and syncs it.  Frames are
    /// marked clean only after the sync succeeds, so a failed sync leaves
    /// them dirty and a retry rewrites them.
    pub fn flush_pages(&self) -> StorageResult<()> {
        let mut inner = self.inner.lock();
        let targets: Vec<(PageId, Arc<FrameCell>)> = inner
            .frames
            .iter()
            .flatten()
            .filter(|f| f.cell.dirty.load(Ordering::Acquire))
            .map(|f| (f.page_id, Arc::clone(&f.cell)))
            .collect();
        // Each frame is snapshotted under its page lock and marked clean at
        // that instant; a mutation that lands after the snapshot re-dirties
        // the frame itself.  On any error every flag taken here is restored,
        // so a failed write or sync leaves the frames dirty and a retry
        // rewrites them.
        let mut cleaned: Vec<Arc<FrameCell>> = Vec::new();
        let mut failed = None;
        for (pid, cell) in &targets {
            let page = cell.lock.read();
            if cell.dirty.swap(false, Ordering::AcqRel) {
                cleaned.push(Arc::clone(cell));
                if let Err(e) = self.pager.write(*pid, &page) {
                    failed = Some(e);
                    break;
                }
                inner.stats.physical_writes += 1;
            }
        }
        let result = match failed {
            Some(e) => Err(e),
            None => self.pager.sync(),
        };
        if result.is_err() {
            for cell in &cleaned {
                cell.dirty.store(true, Ordering::Release);
            }
        }
        result
    }

    /// Writes the dirty frames in `ids` back to the pager and syncs it,
    /// leaving other dirty frames untouched.  Same retry semantics as
    /// [`flush_pages`](Self::flush_pages): frames are marked clean only if
    /// the sync succeeds.  Ids in the set that are not resident (or not
    /// dirty) are skipped.
    pub fn flush_pages_subset(&self, ids: &HashSet<PageId>) -> StorageResult<()> {
        let mut inner = self.inner.lock();
        let targets: Vec<(PageId, Arc<FrameCell>)> = inner
            .frames
            .iter()
            .flatten()
            .filter(|f| ids.contains(&f.page_id) && f.cell.dirty.load(Ordering::Acquire))
            .map(|f| (f.page_id, Arc::clone(&f.cell)))
            .collect();
        let mut cleaned: Vec<Arc<FrameCell>> = Vec::new();
        let mut failed = None;
        for (pid, cell) in &targets {
            let page = cell.lock.read();
            if cell.dirty.swap(false, Ordering::AcqRel) {
                cleaned.push(Arc::clone(cell));
                if let Err(e) = self.pager.write(*pid, &page) {
                    failed = Some(e);
                    break;
                }
                inner.stats.physical_writes += 1;
            }
        }
        let result = match failed {
            Some(e) => Err(e),
            None => self.pager.sync(),
        };
        if result.is_err() {
            for cell in &cleaned {
                cell.dirty.store(true, Ordering::Release);
            }
        }
        result
    }

    /// Copies every dirty frame's current image out of the pool without
    /// writing anything to the pager.
    ///
    /// Incremental checkpoints call this inside the quiesce window (all DML
    /// guards held), then drop the guards and persist the copies with
    /// [`flush_snapshot`](Self::flush_snapshot).  The snapshot records each
    /// frame's dirty epoch; a frame mutated after the snapshot keeps its
    /// dirty flag when the snapshot is flushed, so the next checkpoint picks
    /// the newer content up.  The copied images are mutually consistent
    /// because the caller's exclusion (not this method) stops writers.
    pub fn dirty_snapshot(&self) -> DirtyPageSnapshot {
        let inner = self.inner.lock();
        let entries = inner
            .frames
            .iter()
            .flatten()
            .filter(|f| f.cell.dirty.load(Ordering::Acquire))
            .map(|f| {
                let cell = Arc::clone(&f.cell);
                let image = cell.lock.read().clone();
                let epoch = cell.dirty_epoch.load(Ordering::Acquire);
                SnapshotEntry {
                    page_id: f.page_id,
                    image,
                    cell,
                    epoch,
                }
            })
            .collect();
        DirtyPageSnapshot { entries }
    }

    /// Writes the images captured by [`dirty_snapshot`](Self::dirty_snapshot)
    /// to the pager and syncs it.
    ///
    /// A frame is marked clean only if its dirty epoch still matches the one
    /// recorded at snapshot time — frames re-dirtied since the snapshot stay
    /// dirty and their newer content goes out with the next flush.  On any
    /// write or sync error no flag is cleared, so a retry (or the next full
    /// flush) rewrites everything.  Requires a no-steal pool: between the
    /// snapshot and this call nothing else may push frame content to the
    /// pager, or the snapshot images would clobber it.
    pub fn flush_snapshot(&self, snapshot: &DirtyPageSnapshot) -> StorageResult<()> {
        {
            let mut inner = self.inner.lock();
            for entry in &snapshot.entries {
                self.pager.write(entry.page_id, &entry.image)?;
                inner.stats.physical_writes += 1;
            }
        }
        self.pager.sync()?;
        for entry in &snapshot.entries {
            // The frame read lock orders this against a concurrent mutation:
            // the writer bumps the epoch under the write lock, so either we
            // see the bump (and leave the frame dirty) or the mutation has
            // not happened yet and will re-dirty the frame itself.
            let _page = entry.cell.lock.read();
            if entry.cell.dirty_epoch.load(Ordering::Acquire) == entry.epoch {
                entry.cell.dirty.store(false, Ordering::Release);
            }
        }
        Ok(())
    }

    /// Publishes deferred frees to the pager and trims the pool back to its
    /// configured capacity.
    ///
    /// Only after a successful sync may deferred frees reach the pager:
    /// `free` writes a free-list link into the page itself, and until the
    /// sync lands the previous checkpoint (which may reference that
    /// content) is still the recovery point.  A crash between the sync and
    /// this call leaks the pending pages; a leak is safe, premature reuse
    /// is not.  Checkpointing code defers this further — past the deletion
    /// of the checkpoint journal — because a rollback to the previous
    /// checkpoint re-exposes whatever those pages held.
    pub fn publish_pending(&self) -> StorageResult<()> {
        let mut inner = self.inner.lock();
        let pending = std::mem::take(&mut inner.pending_free);
        for id in pending {
            self.pager.free(id)?;
        }
        self.trim(&mut inner)
    }

    /// Page ids of every dirty frame — the set an in-place flush is about
    /// to overwrite, i.e. the pages a checkpoint journal must pre-image.
    pub fn dirty_page_ids(&self) -> Vec<PageId> {
        self.inner
            .lock()
            .frames
            .iter()
            .flatten()
            .filter(|f| f.cell.dirty.load(Ordering::Acquire))
            .map(|f| f.page_id)
            .collect()
    }

    /// The underlying pager.  Used by checkpointing code to read pre-flush
    /// on-disk page images without them being shadowed by the pool's dirty
    /// copies.
    pub fn pager(&self) -> &Arc<dyn Pager> {
        &self.pager
    }

    /// Drops frames until the pool is back at its configured capacity.
    /// Clean unpinned victims are dropped directly; in steal mode a
    /// dirty-but-unpinned victim is flushed first and then dropped, so a
    /// steal-mode pool always bounds its memory.  In no-steal mode dirty
    /// frames are untouchable between flushes, so trimming stops at the
    /// first round with no clean victim (the caller flushed just before, so
    /// this only persists across a flush failure).
    fn trim(&self, inner: &mut PoolInner) -> StorageResult<()> {
        while inner.occupancy() > self.capacity {
            if let Some(slot) = inner.choose_victim(false) {
                inner.clear_slot(slot);
            } else if self.steal {
                let Some(slot) = inner.choose_victim(true) else {
                    break; // everything pinned
                };
                let frame = inner.clear_slot(slot);
                if frame.cell.dirty.load(Ordering::Acquire) {
                    let page = frame.cell.lock.read();
                    self.pager.write(frame.page_id, &page)?;
                    inner.stats.physical_writes += 1;
                }
            } else {
                break;
            }
        }
        Ok(())
    }

    /// Snapshot of the I/O counters.
    pub fn stats(&self) -> IoStats {
        self.inner.lock().stats
    }

    /// Resets the I/O counters to zero.
    pub fn reset_stats(&self) {
        self.inner.lock().stats = IoStats {
            policy: self.policy_name,
            ..IoStats::default()
        };
    }

    /// Number of frames currently cached.
    pub fn cached_pages(&self) -> usize {
        self.inner.lock().occupancy()
    }

    fn fetch(&self, inner: &mut PoolInner, id: PageId, hint: AccessHint) -> StorageResult<usize> {
        inner.stats.logical_reads += 1;
        if let Some(&slot) = inner.by_page.get(&id) {
            inner.policy.touch(slot, hint);
            return Ok(slot);
        }
        inner.stats.physical_reads += 1;
        let mut page = Page::new();
        self.pager.read(id, &mut page)?;
        self.install_frame(inner, id, page, false, hint)
    }

    fn install_frame(
        &self,
        inner: &mut PoolInner,
        id: PageId,
        page: Page,
        dirty: bool,
        hint: AccessHint,
    ) -> StorageResult<usize> {
        if let Some(&slot) = inner.by_page.get(&id) {
            let frame = inner.frames[slot].as_ref().expect("mapped slot is empty");
            *frame.cell.lock.write() = page;
            if dirty {
                frame.cell.dirty.store(true, Ordering::Release);
            }
            inner.policy.touch(slot, hint);
            return Ok(slot);
        }
        if inner.occupancy() >= self.capacity {
            // Evict one frame to make room; in no-steal mode only a *clean*
            // one — a dirty page must never reach the pager between flushes.
            match inner.choose_victim(self.steal) {
                Some(slot) => {
                    let victim = inner.clear_slot(slot);
                    if victim.cell.dirty.load(Ordering::Acquire) {
                        let page = victim.cell.lock.read();
                        self.pager.write(victim.page_id, &page)?;
                        inner.stats.physical_writes += 1;
                    }
                }
                None if !self.steal => {
                    // Every candidate is dirty (or pinned): grow past
                    // capacity instead of flushing mid-epoch; `flush_all`
                    // trims back.
                }
                None => {
                    return Err(StorageError::Corrupt(
                        "all buffer-pool frames are pinned".to_string(),
                    ))
                }
            }
        }
        Ok(inner.place(
            Frame {
                page_id: id,
                cell: FrameCell::new(page, dirty),
            },
            hint,
        ))
    }
}

impl std::fmt::Debug for BufferPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("BufferPool")
            .field("capacity", &self.capacity)
            .field("policy", &self.policy_name)
            .field("cached", &self.cached_pages())
            .field("stats", &self.stats())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pager::{FilePager, MemPager};

    fn small_pool(capacity: usize) -> BufferPool {
        BufferPool::new(
            Arc::new(MemPager::new()),
            BufferPoolConfig {
                capacity,
                ..Default::default()
            },
        )
    }

    fn pool_with_policy(capacity: usize, policy: ReplacementPolicyKind) -> BufferPool {
        BufferPool::new(
            Arc::new(MemPager::new()),
            BufferPoolConfig {
                capacity,
                steal: true,
                policy,
            },
        )
    }

    #[test]
    fn allocate_write_read_roundtrip() {
        let pool = small_pool(8);
        let pid = pool.allocate_page().unwrap();
        let slot = pool
            .with_page_mut(pid, |p| p.insert(b"buffered").unwrap())
            .unwrap();
        let data = pool
            .with_page(pid, |p| p.get(slot).unwrap().to_vec())
            .unwrap();
        assert_eq!(data, b"buffered");
    }

    #[test]
    fn hit_and_miss_accounting() {
        let pool = small_pool(8);
        let pid = pool.allocate_page().unwrap();
        pool.reset_stats();
        pool.with_page(pid, |_| ()).unwrap();
        pool.with_page(pid, |_| ()).unwrap();
        let stats = pool.stats();
        assert_eq!(stats.logical_reads, 2);
        assert_eq!(stats.physical_reads, 0, "page was cached by allocate_page");
        assert!((stats.hit_ratio() - 1.0).abs() < 1e-9);
        assert!((pool.hit_rate() - 1.0).abs() < 1e-9);
        assert_eq!(stats.policy, pool.policy_name());
    }

    #[test]
    fn default_policy_is_sieve() {
        let pool = small_pool(8);
        assert_eq!(pool.policy_name(), "sieve");
        assert_eq!(pool.stats().policy, "sieve");
    }

    #[test]
    fn eviction_writes_back_dirty_pages() {
        for policy in ReplacementPolicyKind::ALL {
            let pool = pool_with_policy(2, policy);
            let pids: Vec<_> = (0..4).map(|_| pool.allocate_page().unwrap()).collect();
            for (i, pid) in pids.iter().enumerate() {
                pool.with_page_mut(*pid, |p| p.insert(format!("page-{i}").as_bytes()).unwrap())
                    .unwrap();
            }
            // Re-read the first page: it must have been evicted and written
            // back.
            let value = pool
                .with_page(pids[0], |p| p.get(0).unwrap().to_vec())
                .unwrap();
            assert_eq!(value, b"page-0", "{}", policy.name());
            let stats = pool.stats();
            assert!(stats.evictions >= 2);
            assert!(stats.physical_writes >= 2);
            assert_eq!(pool.cached_pages(), 2, "{}", policy.name());
        }
    }

    #[test]
    fn flush_all_persists_to_file_pager() {
        let dir = std::env::temp_dir().join(format!("spgist-buffer-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("pool.pages");
        let slot;
        let pid;
        {
            let pool = BufferPool::with_default_config(Arc::new(FilePager::create(&path).unwrap()));
            pid = pool.allocate_page().unwrap();
            slot = pool
                .with_page_mut(pid, |p| p.insert(b"durable").unwrap())
                .unwrap();
            pool.flush_all().unwrap();
        }
        {
            let pool = BufferPool::with_default_config(Arc::new(FilePager::open(&path).unwrap()));
            let value = pool
                .with_page(pid, |p| p.get(slot).unwrap().to_vec())
                .unwrap();
            assert_eq!(value, b"durable");
        }
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn delta_since_subtracts_counters() {
        let pool = small_pool(2);
        let pid = pool.allocate_page().unwrap();
        let before = pool.stats();
        pool.with_page(pid, |_| ()).unwrap();
        let after = pool.stats();
        let delta = after.delta_since(&before);
        assert_eq!(delta.logical_reads, 1);
        assert_eq!(delta.policy, pool.policy_name());
    }

    #[test]
    fn missing_page_is_an_error() {
        let pool = small_pool(2);
        assert!(pool.with_page(42, |_| ()).is_err());
    }

    fn no_steal_pool(capacity: usize) -> BufferPool {
        BufferPool::new(
            Arc::new(MemPager::new()),
            BufferPoolConfig {
                capacity,
                steal: false,
                ..Default::default()
            },
        )
    }

    #[test]
    fn no_steal_eviction_never_writes_between_flushes() {
        for policy in ReplacementPolicyKind::ALL {
            let pool = BufferPool::new(
                Arc::new(MemPager::new()),
                BufferPoolConfig {
                    capacity: 2,
                    steal: false,
                    policy,
                },
            );
            let pids: Vec<_> = (0..4).map(|_| pool.allocate_page().unwrap()).collect();
            for (i, pid) in pids.iter().enumerate() {
                pool.with_page_mut(*pid, |p| p.insert(format!("page-{i}").as_bytes()).unwrap())
                    .unwrap();
            }
            // All four frames are dirty, so the pool grew past capacity
            // rather than writing any of them back.
            assert_eq!(pool.stats().physical_writes, 0, "{}", policy.name());
            assert_eq!(pool.cached_pages(), 4);
            pool.flush_all().unwrap();
            assert_eq!(pool.stats().physical_writes, 4);
            assert_eq!(pool.cached_pages(), 2, "flush trims back to capacity");
            for (i, pid) in pids.iter().enumerate() {
                let value = pool
                    .with_page(*pid, |p| p.get(0).unwrap().to_vec())
                    .unwrap();
                assert_eq!(value, format!("page-{i}").into_bytes());
            }
        }
    }

    #[test]
    fn no_steal_defers_frees_until_flush() {
        let pool = no_steal_pool(8);
        let a = pool.allocate_page().unwrap();
        let _b = pool.allocate_page().unwrap();
        pool.free_page(a).unwrap();
        assert_eq!(
            pool.free_page_count(),
            0,
            "the free must not reach the pager before a flush"
        );
        // Mid-epoch allocations must not reuse the page either.
        let c = pool.allocate_page().unwrap();
        assert_ne!(c, a);
        pool.flush_all().unwrap();
        assert_eq!(pool.free_page_count(), 1);
        let d = pool.allocate_page().unwrap();
        assert_eq!(d, a, "after the flush the page is reusable");
    }

    #[test]
    fn no_steal_free_of_unallocated_page_fails_fast() {
        let pool = no_steal_pool(8);
        assert!(matches!(
            pool.free_page(42),
            Err(StorageError::PageOutOfBounds { .. })
        ));
    }

    #[test]
    fn free_page_drops_the_frame_and_reuses_the_page() {
        let pool = small_pool(8);
        let a = pool.allocate_page().unwrap();
        let b = pool.allocate_page().unwrap();
        pool.with_page_mut(a, |p| p.insert(b"doomed").unwrap())
            .unwrap();
        pool.free_page(a).unwrap();
        // The next allocation reuses the freed page, zeroed — including the
        // cached frame.
        let c = pool.allocate_page().unwrap();
        assert_eq!(c, a);
        assert_eq!(pool.page_count(), 2);
        let slots = pool.with_page(c, |p| p.num_slots()).unwrap();
        assert_eq!(slots, 0, "reused page must not show stale cached content");
        let _ = b;
    }

    #[test]
    fn steal_mode_trim_flushes_dirty_overflow() {
        // Regression: trim() used to skip dirty-but-unpinned frames in steal
        // mode, leaving the pool over capacity forever.  It must flush them
        // and drop, so steal pools actually bound memory.
        let mut pool = pool_with_policy(4, ReplacementPolicyKind::Lru);
        let pids: Vec<_> = (0..4).map(|_| pool.allocate_page().unwrap()).collect();
        for (i, pid) in pids.iter().enumerate() {
            pool.with_page_mut(*pid, |p| p.insert(format!("dirty-{i}").as_bytes()).unwrap())
                .unwrap();
        }
        assert_eq!(pool.cached_pages(), 4);
        pool.capacity = 2; // shrink under the resident set
        pool.publish_pending().unwrap();
        assert_eq!(pool.cached_pages(), 2, "trim must reach capacity");
        assert!(
            pool.stats().physical_writes >= 2,
            "dirty victims were flushed, not dropped"
        );
        for (i, pid) in pids.iter().enumerate() {
            let value = pool
                .with_page(*pid, |p| p.get(0).unwrap().to_vec())
                .unwrap();
            assert_eq!(value, format!("dirty-{i}").into_bytes(), "no data lost");
        }
    }

    #[test]
    fn scan_hinted_reads_do_not_displace_hot_pages() {
        // A pool holding a hot working set, then a long scan of cold pages:
        // with Scan hints the hot pages must survive under every
        // scan-resistant policy.
        for policy in [
            ReplacementPolicyKind::Lru,
            ReplacementPolicyKind::Clock,
            ReplacementPolicyKind::Sieve,
        ] {
            let pool = pool_with_policy(8, policy);
            let hot: Vec<_> = (0..4).map(|_| pool.allocate_page().unwrap()).collect();
            let cold: Vec<_> = (0..32).map(|_| pool.allocate_page().unwrap()).collect();
            pool.flush_all().unwrap();
            // Establish the hot set with normal accesses.
            for _ in 0..3 {
                for pid in &hot {
                    pool.with_page(*pid, |_| ()).unwrap();
                }
            }
            // One-touch scan over everything cold.
            for pid in &cold {
                pool.with_page_hinted(*pid, AccessHint::Scan, |_| ())
                    .unwrap();
            }
            pool.reset_stats();
            for pid in &hot {
                pool.with_page(*pid, |_| ()).unwrap();
            }
            assert_eq!(
                pool.stats().physical_reads,
                0,
                "{}: scan displaced the hot set",
                policy.name()
            );
        }
    }

    /// The deterministic access-trace test: one fixed trace, exact physical
    /// read counts per policy.  Any accidental change to victim selection
    /// shows up here as an exact-count diff.
    #[test]
    fn access_trace_exact_physical_reads_per_policy() {
        // Trace over 8 pages with a 4-frame pool: populate 0..8, then a
        // loop that re-reads a hot pair {0, 1} between cold sweeps.
        let trace: Vec<u32> = {
            let mut t: Vec<u32> = (0..8).collect();
            for c in [4u32, 5, 6, 7] {
                t.extend_from_slice(&[0, 1, c]);
            }
            t.extend_from_slice(&[0, 1, 2, 3]);
            t
        };
        // (policy, unhinted reads, reads with the cold sweep scan-hinted).
        // Unhinted, every policy degenerates to the same miss count on this
        // trace; the hints are what separate the scan-resistant policies
        // from the hint-oblivious baseline.
        let expect = [
            (ReplacementPolicyKind::Lru, 16, 14),
            (ReplacementPolicyKind::Clock, 16, 13),
            (ReplacementPolicyKind::Sieve, 16, 13),
            (ReplacementPolicyKind::LruScan, 16, 16),
        ];
        for (policy, want_plain, want_hinted) in expect {
            // Materialize the 8 pages through a writer pool, then run the
            // trace on a fresh, cold pool over the same pager so every
            // policy starts from the identical empty state.
            let pager: Arc<MemPager> = Arc::new(MemPager::new());
            let pids: Vec<_> = {
                let writer = BufferPool::with_default_config(pager.clone());
                let pids: Vec<_> = (0..8).map(|_| writer.allocate_page().unwrap()).collect();
                for pid in &pids {
                    writer
                        .with_page_mut(*pid, |p| {
                            p.insert(b"x").unwrap();
                        })
                        .unwrap();
                }
                writer.flush_all().unwrap();
                pids
            };
            for hinted in [false, true] {
                let pool = BufferPool::new(
                    pager.clone(),
                    BufferPoolConfig {
                        capacity: 4,
                        steal: true,
                        policy,
                    },
                );
                for &p in &trace {
                    // The hot pair {0, 1} is point-accessed; everything
                    // else is part of a sweep and (optionally) scan-hinted.
                    let hint = if hinted && p >= 2 {
                        AccessHint::Scan
                    } else {
                        AccessHint::Normal
                    };
                    pool.with_page_hinted(pids[p as usize], hint, |_| ())
                        .unwrap();
                }
                let want = if hinted { want_hinted } else { want_plain };
                assert_eq!(
                    pool.stats().physical_reads,
                    want,
                    "{} (hinted = {hinted}): trace read count drifted",
                    policy.name()
                );
            }
        }
    }
}
