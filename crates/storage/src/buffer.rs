//! LRU buffer pool with I/O accounting.
//!
//! Every access method in the workspace reads and writes pages through a
//! [`BufferPool`].  The pool keeps a bounded number of frames in memory,
//! evicts the least-recently-used unpinned frame when full, and writes dirty
//! frames back to the [`Pager`] on eviction or on [`BufferPool::flush_all`].
//!
//! [`IoStats`] counts logical reads (page requests), physical reads (requests
//! that missed the pool and went to the pager), physical writes, and
//! evictions.  The experiment harness reports these counters next to
//! wall-clock time: page-I/O counts are the deterministic component of the
//! paper's timings and reproduce its performance *shapes* even on noisy
//! machines.

use std::collections::HashMap;
use std::sync::Arc;

use parking_lot::Mutex;

use crate::error::{StorageError, StorageResult};
use crate::page::{Page, PageId};
use crate::pager::Pager;

/// Configuration for a [`BufferPool`].
#[derive(Debug, Clone, Copy)]
pub struct BufferPoolConfig {
    /// Maximum number of pages held in memory at once.
    pub capacity: usize,
    /// Whether eviction may **steal** dirty frames (write them back to the
    /// pager mid-run).  `true` is the classic cache behavior.  `false` is
    /// the WAL discipline: between [`BufferPool::flush_all`] calls no data
    /// page reaches the pager at all — eviction picks only clean victims
    /// and the pool grows past `capacity` when every candidate is dirty
    /// (trimming back at the next flush), and [`BufferPool::free_page`]
    /// defers the pager free until the next flush.  Durable databases
    /// force `steal = false` so that after a crash the file holds exactly
    /// the last checkpoint's pages, the state logical WAL replay starts
    /// from.
    pub steal: bool,
}

impl Default for BufferPoolConfig {
    fn default() -> Self {
        // 1024 pages x 8 KiB = 8 MiB, a deliberately small pool so that the
        // experiments exercise eviction even at scaled-down data sizes.
        BufferPoolConfig {
            capacity: 1024,
            steal: true,
        }
    }
}

/// Counters of buffer-pool activity since the last reset.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct IoStats {
    /// Page requests served (hits + misses).
    pub logical_reads: u64,
    /// Page requests that had to read from the pager.
    pub physical_reads: u64,
    /// Dirty pages written back to the pager.
    pub physical_writes: u64,
    /// Frames evicted to make room.
    pub evictions: u64,
}

impl IoStats {
    /// Buffer-pool hit ratio in `[0, 1]`; `1.0` when no reads occurred.
    pub fn hit_ratio(&self) -> f64 {
        if self.logical_reads == 0 {
            1.0
        } else {
            1.0 - self.physical_reads as f64 / self.logical_reads as f64
        }
    }

    /// Component-wise difference (`self - earlier`), for measuring a single
    /// operation between two snapshots.
    pub fn delta_since(&self, earlier: &IoStats) -> IoStats {
        IoStats {
            logical_reads: self.logical_reads - earlier.logical_reads,
            physical_reads: self.physical_reads - earlier.physical_reads,
            physical_writes: self.physical_writes - earlier.physical_writes,
            evictions: self.evictions - earlier.evictions,
        }
    }
}

struct Frame {
    page: Page,
    page_id: PageId,
    dirty: bool,
    pins: u32,
    last_used: u64,
}

struct PoolInner {
    frames: Vec<Frame>,
    by_page: HashMap<PageId, usize>,
    clock: u64,
    stats: IoStats,
    /// Pages released by [`BufferPool::free_page`] under the no-steal
    /// discipline, handed to the pager only at the next
    /// [`BufferPool::flush_all`] — a page the last checkpoint still
    /// references must not be reused (and rewritten on disk) before the
    /// checkpoint that stops referencing it is durable.
    pending_free: Vec<PageId>,
}

/// A shared, thread-safe buffer pool over a [`Pager`].
pub struct BufferPool {
    pager: Arc<dyn Pager>,
    capacity: usize,
    steal: bool,
    inner: Mutex<PoolInner>,
}

impl BufferPool {
    /// Creates a pool over `pager` with the given configuration.
    pub fn new(pager: Arc<dyn Pager>, config: BufferPoolConfig) -> Self {
        BufferPool {
            pager,
            capacity: config.capacity.max(1),
            steal: config.steal,
            inner: Mutex::new(PoolInner {
                frames: Vec::new(),
                by_page: HashMap::new(),
                clock: 0,
                stats: IoStats::default(),
                pending_free: Vec::new(),
            }),
        }
    }

    /// Creates a pool with the default configuration.
    pub fn with_default_config(pager: Arc<dyn Pager>) -> Self {
        Self::new(pager, BufferPoolConfig::default())
    }

    /// Convenience constructor: a pool over a fresh in-memory pager.
    pub fn in_memory() -> Arc<Self> {
        Arc::new(Self::with_default_config(Arc::new(
            crate::pager::MemPager::new(),
        )))
    }

    /// Number of pages allocated in the underlying pager.
    pub fn page_count(&self) -> u32 {
        self.pager.page_count()
    }

    /// Number of pages on the underlying pager's free list.
    pub fn free_page_count(&self) -> u32 {
        self.pager.free_page_count()
    }

    /// Allocates a new page and returns its id.  The new page starts cached
    /// and clean.
    pub fn allocate_page(&self) -> StorageResult<PageId> {
        let id = self.pager.allocate()?;
        let mut inner = self.inner.lock();
        self.install_frame(&mut inner, id, Page::new(), false)?;
        Ok(id)
    }

    /// Returns page `id` to the pager's free list for reuse by a later
    /// [`BufferPool::allocate_page`].  Any cached frame is dropped without
    /// write-back (the content is garbage once the page is free); freeing a
    /// pinned page is an error.
    ///
    /// In no-steal mode the pager free is deferred to the next
    /// [`BufferPool::flush_all`]: freeing a page scribbles a free-list link
    /// into it, and the last durable checkpoint may still reference its old
    /// content.
    pub fn free_page(&self, id: PageId) -> StorageResult<()> {
        let mut inner = self.inner.lock();
        if let Some(&idx) = inner.by_page.get(&id) {
            if inner.frames[idx].pins > 0 {
                return Err(StorageError::Corrupt(format!(
                    "cannot free pinned page {id}"
                )));
            }
            // Swap-remove the frame and fix the moved frame's index.
            inner.by_page.remove(&id);
            inner.frames.swap_remove(idx);
            if idx < inner.frames.len() {
                let moved = inner.frames[idx].page_id;
                inner.by_page.insert(moved, idx);
            }
        }
        if self.steal {
            self.pager.free(id)
        } else {
            // Bounds-check now so bad ids fail at the call site, not at an
            // unrelated later flush.
            let page_count = self.pager.page_count();
            if id >= page_count {
                return Err(StorageError::PageOutOfBounds {
                    requested: id,
                    page_count,
                });
            }
            inner.pending_free.push(id);
            Ok(())
        }
    }

    /// Runs `f` with a shared view of page `id`.
    pub fn with_page<R>(&self, id: PageId, f: impl FnOnce(&Page) -> R) -> StorageResult<R> {
        let mut inner = self.inner.lock();
        let idx = self.fetch(&mut inner, id)?;
        inner.frames[idx].pins += 1;
        let result = f(&inner.frames[idx].page);
        inner.frames[idx].pins -= 1;
        Ok(result)
    }

    /// Runs `f` with a mutable view of page `id`; the page is marked dirty.
    pub fn with_page_mut<R>(&self, id: PageId, f: impl FnOnce(&mut Page) -> R) -> StorageResult<R> {
        let mut inner = self.inner.lock();
        let idx = self.fetch(&mut inner, id)?;
        inner.frames[idx].pins += 1;
        inner.frames[idx].dirty = true;
        let result = f(&mut inner.frames[idx].page);
        inner.frames[idx].pins -= 1;
        Ok(result)
    }

    /// Writes all dirty frames back to the pager and syncs it, then (in
    /// no-steal mode) publishes deferred frees and trims the pool back to
    /// its configured capacity.
    ///
    /// Equivalent to [`flush_pages`](Self::flush_pages) followed by
    /// [`publish_pending`](Self::publish_pending); checkpointing code that
    /// needs an ordering barrier between data and catalog writes calls the
    /// two halves separately.
    pub fn flush_all(&self) -> StorageResult<()> {
        self.flush_pages()?;
        self.publish_pending()
    }

    /// Writes all dirty frames back to the pager and syncs it.  Frames are
    /// marked clean only after the sync succeeds, so a failed sync leaves
    /// them dirty and a retry rewrites them.
    pub fn flush_pages(&self) -> StorageResult<()> {
        let mut inner = self.inner.lock();
        let mut written = Vec::new();
        for idx in 0..inner.frames.len() {
            if inner.frames[idx].dirty {
                let (pid, page) = {
                    let frame = &inner.frames[idx];
                    (frame.page_id, frame.page.clone())
                };
                self.pager.write(pid, &page)?;
                inner.stats.physical_writes += 1;
                written.push(idx);
            }
        }
        self.pager.sync()?;
        for idx in written {
            inner.frames[idx].dirty = false;
        }
        Ok(())
    }

    /// Publishes deferred frees to the pager and (in no-steal mode) trims
    /// the pool back to its configured capacity.
    ///
    /// Only after a successful sync may deferred frees reach the pager:
    /// `free` writes a free-list link into the page itself, and until the
    /// sync lands the previous checkpoint (which may reference that
    /// content) is still the recovery point.  A crash between the sync and
    /// this call leaks the pending pages; a leak is safe, premature reuse
    /// is not.  Checkpointing code defers this further — past the deletion
    /// of the checkpoint journal — because a rollback to the previous
    /// checkpoint re-exposes whatever those pages held.
    pub fn publish_pending(&self) -> StorageResult<()> {
        let mut inner = self.inner.lock();
        let pending = std::mem::take(&mut inner.pending_free);
        for id in pending {
            self.pager.free(id)?;
        }
        self.trim(&mut inner);
        Ok(())
    }

    /// Page ids of every dirty frame — the set an in-place flush is about
    /// to overwrite, i.e. the pages a checkpoint journal must pre-image.
    pub fn dirty_page_ids(&self) -> Vec<PageId> {
        self.inner
            .lock()
            .frames
            .iter()
            .filter(|f| f.dirty)
            .map(|f| f.page_id)
            .collect()
    }

    /// The underlying pager.  Used by checkpointing code to read pre-flush
    /// on-disk page images without them being shadowed by the pool's dirty
    /// copies.
    pub fn pager(&self) -> &Arc<dyn Pager> {
        &self.pager
    }

    /// Drops clean unpinned frames (oldest first) until the pool is back at
    /// its configured capacity.  No-ops unless eviction overflowed in
    /// no-steal mode.
    fn trim(&self, inner: &mut PoolInner) {
        while inner.frames.len() > self.capacity {
            let victim = inner
                .frames
                .iter()
                .enumerate()
                .filter(|(_, f)| f.pins == 0 && !f.dirty)
                .min_by_key(|(_, f)| f.last_used)
                .map(|(i, _)| i);
            let Some(idx) = victim else { break };
            let id = inner.frames[idx].page_id;
            inner.by_page.remove(&id);
            inner.frames.swap_remove(idx);
            if idx < inner.frames.len() {
                let moved = inner.frames[idx].page_id;
                inner.by_page.insert(moved, idx);
            }
            inner.stats.evictions += 1;
        }
    }

    /// Snapshot of the I/O counters.
    pub fn stats(&self) -> IoStats {
        self.inner.lock().stats
    }

    /// Resets the I/O counters to zero.
    pub fn reset_stats(&self) {
        self.inner.lock().stats = IoStats::default();
    }

    /// Number of frames currently cached.
    pub fn cached_pages(&self) -> usize {
        self.inner.lock().frames.len()
    }

    fn fetch(&self, inner: &mut PoolInner, id: PageId) -> StorageResult<usize> {
        inner.stats.logical_reads += 1;
        inner.clock += 1;
        let clock = inner.clock;
        if let Some(&idx) = inner.by_page.get(&id) {
            inner.frames[idx].last_used = clock;
            return Ok(idx);
        }
        inner.stats.physical_reads += 1;
        let mut page = Page::new();
        self.pager.read(id, &mut page)?;
        self.install_frame(inner, id, page, false)
    }

    fn install_frame(
        &self,
        inner: &mut PoolInner,
        id: PageId,
        page: Page,
        dirty: bool,
    ) -> StorageResult<usize> {
        if let Some(&idx) = inner.by_page.get(&id) {
            inner.frames[idx].page = page;
            inner.frames[idx].dirty |= dirty;
            return Ok(idx);
        }
        inner.clock += 1;
        let clock = inner.clock;
        if inner.frames.len() < self.capacity {
            let idx = inner.frames.len();
            inner.frames.push(Frame {
                page,
                page_id: id,
                dirty,
                pins: 0,
                last_used: clock,
            });
            inner.by_page.insert(id, idx);
            return Ok(idx);
        }
        // Evict the least-recently-used unpinned frame; in no-steal mode
        // only a *clean* one — a dirty page must never reach the pager
        // between flushes.
        let victim = inner
            .frames
            .iter()
            .enumerate()
            .filter(|(_, f)| f.pins == 0 && (self.steal || !f.dirty))
            .min_by_key(|(_, f)| f.last_used)
            .map(|(i, _)| i);
        let victim = match victim {
            Some(v) => v,
            None if !self.steal => {
                // Every candidate is dirty (or pinned): grow past capacity
                // instead of flushing mid-epoch; `flush_all` trims back.
                let idx = inner.frames.len();
                inner.frames.push(Frame {
                    page,
                    page_id: id,
                    dirty,
                    pins: 0,
                    last_used: clock,
                });
                inner.by_page.insert(id, idx);
                return Ok(idx);
            }
            None => {
                return Err(StorageError::Corrupt(
                    "all buffer-pool frames are pinned".to_string(),
                ))
            }
        };
        if inner.frames[victim].dirty {
            let (pid, old) = {
                let frame = &inner.frames[victim];
                (frame.page_id, frame.page.clone())
            };
            self.pager.write(pid, &old)?;
            inner.stats.physical_writes += 1;
        }
        inner.stats.evictions += 1;
        let old_id = inner.frames[victim].page_id;
        inner.by_page.remove(&old_id);
        inner.frames[victim] = Frame {
            page,
            page_id: id,
            dirty,
            pins: 0,
            last_used: clock,
        };
        inner.by_page.insert(id, victim);
        Ok(victim)
    }
}

impl std::fmt::Debug for BufferPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("BufferPool")
            .field("capacity", &self.capacity)
            .field("cached", &self.cached_pages())
            .field("stats", &self.stats())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pager::{FilePager, MemPager};

    fn small_pool(capacity: usize) -> BufferPool {
        BufferPool::new(
            Arc::new(MemPager::new()),
            BufferPoolConfig {
                capacity,
                ..Default::default()
            },
        )
    }

    #[test]
    fn allocate_write_read_roundtrip() {
        let pool = small_pool(8);
        let pid = pool.allocate_page().unwrap();
        let slot = pool
            .with_page_mut(pid, |p| p.insert(b"buffered").unwrap())
            .unwrap();
        let data = pool
            .with_page(pid, |p| p.get(slot).unwrap().to_vec())
            .unwrap();
        assert_eq!(data, b"buffered");
    }

    #[test]
    fn hit_and_miss_accounting() {
        let pool = small_pool(8);
        let pid = pool.allocate_page().unwrap();
        pool.reset_stats();
        pool.with_page(pid, |_| ()).unwrap();
        pool.with_page(pid, |_| ()).unwrap();
        let stats = pool.stats();
        assert_eq!(stats.logical_reads, 2);
        assert_eq!(stats.physical_reads, 0, "page was cached by allocate_page");
        assert!((stats.hit_ratio() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn eviction_writes_back_dirty_pages() {
        let pool = small_pool(2);
        let pids: Vec<_> = (0..4).map(|_| pool.allocate_page().unwrap()).collect();
        for (i, pid) in pids.iter().enumerate() {
            pool.with_page_mut(*pid, |p| p.insert(format!("page-{i}").as_bytes()).unwrap())
                .unwrap();
        }
        // Re-read the first page: it must have been evicted and written back.
        let value = pool
            .with_page(pids[0], |p| p.get(0).unwrap().to_vec())
            .unwrap();
        assert_eq!(value, b"page-0");
        let stats = pool.stats();
        assert!(stats.evictions >= 2);
        assert!(stats.physical_writes >= 2);
    }

    #[test]
    fn flush_all_persists_to_file_pager() {
        let dir = std::env::temp_dir().join(format!("spgist-buffer-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("pool.pages");
        let slot;
        let pid;
        {
            let pool = BufferPool::with_default_config(Arc::new(FilePager::create(&path).unwrap()));
            pid = pool.allocate_page().unwrap();
            slot = pool
                .with_page_mut(pid, |p| p.insert(b"durable").unwrap())
                .unwrap();
            pool.flush_all().unwrap();
        }
        {
            let pool = BufferPool::with_default_config(Arc::new(FilePager::open(&path).unwrap()));
            let value = pool
                .with_page(pid, |p| p.get(slot).unwrap().to_vec())
                .unwrap();
            assert_eq!(value, b"durable");
        }
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn delta_since_subtracts_counters() {
        let pool = small_pool(2);
        let pid = pool.allocate_page().unwrap();
        let before = pool.stats();
        pool.with_page(pid, |_| ()).unwrap();
        let after = pool.stats();
        let delta = after.delta_since(&before);
        assert_eq!(delta.logical_reads, 1);
    }

    #[test]
    fn missing_page_is_an_error() {
        let pool = small_pool(2);
        assert!(pool.with_page(42, |_| ()).is_err());
    }

    fn no_steal_pool(capacity: usize) -> BufferPool {
        BufferPool::new(
            Arc::new(MemPager::new()),
            BufferPoolConfig {
                capacity,
                steal: false,
            },
        )
    }

    #[test]
    fn no_steal_eviction_never_writes_between_flushes() {
        let pool = no_steal_pool(2);
        let pids: Vec<_> = (0..4).map(|_| pool.allocate_page().unwrap()).collect();
        for (i, pid) in pids.iter().enumerate() {
            pool.with_page_mut(*pid, |p| p.insert(format!("page-{i}").as_bytes()).unwrap())
                .unwrap();
        }
        // All four frames are dirty, so the pool grew past capacity rather
        // than writing any of them back.
        assert_eq!(pool.stats().physical_writes, 0);
        assert_eq!(pool.cached_pages(), 4);
        pool.flush_all().unwrap();
        assert_eq!(pool.stats().physical_writes, 4);
        assert_eq!(pool.cached_pages(), 2, "flush trims back to capacity");
        for (i, pid) in pids.iter().enumerate() {
            let value = pool
                .with_page(*pid, |p| p.get(0).unwrap().to_vec())
                .unwrap();
            assert_eq!(value, format!("page-{i}").into_bytes());
        }
    }

    #[test]
    fn no_steal_defers_frees_until_flush() {
        let pool = no_steal_pool(8);
        let a = pool.allocate_page().unwrap();
        let _b = pool.allocate_page().unwrap();
        pool.free_page(a).unwrap();
        assert_eq!(
            pool.free_page_count(),
            0,
            "the free must not reach the pager before a flush"
        );
        // Mid-epoch allocations must not reuse the page either.
        let c = pool.allocate_page().unwrap();
        assert_ne!(c, a);
        pool.flush_all().unwrap();
        assert_eq!(pool.free_page_count(), 1);
        let d = pool.allocate_page().unwrap();
        assert_eq!(d, a, "after the flush the page is reusable");
    }

    #[test]
    fn no_steal_free_of_unallocated_page_fails_fast() {
        let pool = no_steal_pool(8);
        assert!(matches!(
            pool.free_page(42),
            Err(StorageError::PageOutOfBounds { .. })
        ));
    }

    #[test]
    fn free_page_drops_the_frame_and_reuses_the_page() {
        let pool = small_pool(8);
        let a = pool.allocate_page().unwrap();
        let b = pool.allocate_page().unwrap();
        pool.with_page_mut(a, |p| p.insert(b"doomed").unwrap())
            .unwrap();
        pool.free_page(a).unwrap();
        // The next allocation reuses the freed page, zeroed — including the
        // cached frame.
        let c = pool.allocate_page().unwrap();
        assert_eq!(c, a);
        assert_eq!(pool.page_count(), 2);
        let slots = pool.with_page(c, |p| p.num_slots()).unwrap();
        assert_eq!(slots, 0, "reused page must not show stale cached content");
        let _ = b;
    }
}
