//! Epoch-based reclamation and per-page latching for shared tree access.
//!
//! Two cooperating mechanisms let readers traverse a tree without blocking
//! on writers:
//!
//! * [`EpochManager`] — structural modifications *retire* superseded records
//!   and pages instead of freeing them.  A reader pins the current epoch on
//!   entry ([`EpochManager::pin`]); retiring an item stamps it with the
//!   epoch at which it became unreachable and advances the global epoch.
//!   An item may be reclaimed (its slot deleted, its page freed) only once
//!   every live pin started *after* the item was retired — at that point no
//!   reader can still hold a pointer to it.  Writers unlink before they
//!   retire, and both pinning and retiring go through one mutex, so the
//!   ordering argument is airtight: a pin at epoch `p` can only ever reach
//!   items that are live or retired at an epoch `>= p`.
//! * [`LatchTable`] — writers coordinate *with each other* through per-page
//!   latches acquired root-to-leaf (latch crabbing).  Readers never touch
//!   them.  Because node→page clustering can put two descents' pages in
//!   opposite orders, acquisition is try-lock based: a conflict releases
//!   everything, waits for the contended latch once, and restarts the
//!   descent from the root.  Contended acquisitions are counted as latch
//!   waits.
//!
//! Both report into [`ConcurrencyStats`], surfaced next to
//! [`crate::IoStats`] by the experiment harness.

use std::collections::{BTreeMap, HashMap, VecDeque};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex as StdMutex};
use std::time::Instant;

use parking_lot::Mutex;

use crate::page::{PageId, SlotId};

/// A unit of storage retired by a structural modification, awaiting
/// reclamation once no live reader epoch can reference it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RetiredItem {
    /// A single record slot superseded by a relocation (the old copy of a
    /// moved node, or an orphaned spill-chain record).
    Slot(PageId, SlotId),
    /// A whole page superseded by a repack.
    Page(PageId),
}

/// Counters describing latch and epoch activity since the tree was opened.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct ConcurrencyStats {
    /// Page-latch acquisitions by writers.
    pub latch_acquisitions: u64,
    /// Latch acquisitions that found the latch held (each one forces the
    /// writer to release everything and restart its descent).
    pub latch_waits: u64,
    /// Reader epochs pinned (queries, cursors, scans).
    pub epoch_pins: u64,
    /// Epochs currently pinned by live readers.
    pub active_pins: u64,
    /// Cumulative wall-clock time readers held epoch pins, in nanoseconds.
    pub epoch_pin_nanos: u64,
    /// Items (slots and pages) retired by structural modifications.
    pub retired: u64,
    /// Retired items reclaimed so far.
    pub reclaimed: u64,
    /// Retired items still awaiting reclamation (the retired-page backlog).
    pub retired_backlog: u64,
}

impl ConcurrencyStats {
    /// Component-wise difference (`self - earlier`), for measuring one
    /// workload between two snapshots.  Gauge-style fields (`active_pins`,
    /// `retired_backlog`) keep their current value.
    pub fn delta_since(&self, earlier: &ConcurrencyStats) -> ConcurrencyStats {
        ConcurrencyStats {
            latch_acquisitions: self.latch_acquisitions - earlier.latch_acquisitions,
            latch_waits: self.latch_waits - earlier.latch_waits,
            epoch_pins: self.epoch_pins - earlier.epoch_pins,
            active_pins: self.active_pins,
            epoch_pin_nanos: self.epoch_pin_nanos - earlier.epoch_pin_nanos,
            retired: self.retired - earlier.retired,
            reclaimed: self.reclaimed - earlier.reclaimed,
            retired_backlog: self.retired_backlog,
        }
    }
}

struct EpochState {
    /// The global epoch, advanced by every retirement.
    global: u64,
    /// Live reader pins, counted per pinned epoch.
    active: BTreeMap<u64, usize>,
    /// Retired items in FIFO (epoch) order.
    retired: VecDeque<(u64, RetiredItem)>,
}

struct EpochShared {
    state: Mutex<EpochState>,
    pins: AtomicU64,
    pin_nanos: AtomicU64,
    retired_total: AtomicU64,
    reclaimed_total: AtomicU64,
}

/// The epoch clock and retire list of one tree.  Cheap to clone-share via
/// `Arc`; a repack installs fresh pages under the same manager so pins taken
/// before the repack keep protecting the old layout.
pub struct EpochManager {
    shared: Arc<EpochShared>,
}

impl Default for EpochManager {
    fn default() -> Self {
        Self::new()
    }
}

impl EpochManager {
    /// Creates a manager with no pins and nothing retired.
    pub fn new() -> Self {
        EpochManager {
            shared: Arc::new(EpochShared {
                state: Mutex::new(EpochState {
                    global: 0,
                    active: BTreeMap::new(),
                    retired: VecDeque::new(),
                }),
                pins: AtomicU64::new(0),
                pin_nanos: AtomicU64::new(0),
                retired_total: AtomicU64::new(0),
                reclaimed_total: AtomicU64::new(0),
            }),
        }
    }

    /// Pins the current epoch for a reader.  Until the returned guard drops,
    /// no item retired at or after this epoch is reclaimed, so every pointer
    /// the reader can reach through the tree stays dereferenceable.
    pub fn pin(&self) -> EpochPin {
        let epoch = {
            let mut state = self.shared.state.lock();
            let epoch = state.global;
            *state.active.entry(epoch).or_insert(0) += 1;
            epoch
        };
        self.shared.pins.fetch_add(1, Ordering::Relaxed);
        EpochPin {
            shared: Arc::clone(&self.shared),
            epoch,
            start: Instant::now(),
        }
    }

    /// Retires `item`: stamps it with the current epoch and advances the
    /// clock.  The caller must have already unlinked the item from the tree
    /// (no new traversal can reach it) *before* calling this.
    pub fn retire(&self, item: RetiredItem) {
        let mut state = self.shared.state.lock();
        let epoch = state.global;
        state.retired.push_back((epoch, item));
        state.global += 1;
        self.shared.retired_total.fetch_add(1, Ordering::Relaxed);
    }

    /// Drains every retired item no live pin can reference (retired strictly
    /// before the oldest active pin epoch; everything, when nothing is
    /// pinned).  The caller owns freeing the returned items.
    pub fn take_reclaimable(&self) -> Vec<RetiredItem> {
        let mut state = self.shared.state.lock();
        let horizon = state.active.keys().next().copied();
        let mut out = Vec::new();
        while let Some(&(epoch, item)) = state.retired.front() {
            if horizon.is_some_and(|h| epoch >= h) {
                break;
            }
            state.retired.pop_front();
            out.push(item);
        }
        self.shared
            .reclaimed_total
            .fetch_add(out.len() as u64, Ordering::Relaxed);
        out
    }

    /// Number of retired items awaiting reclamation.
    pub fn backlog(&self) -> usize {
        self.shared.state.lock().retired.len()
    }

    /// Epoch counters (the latch fields are zero; [`LatchTable::stats_into`]
    /// fills them).
    pub fn stats(&self) -> ConcurrencyStats {
        let (active_pins, backlog) = {
            let state = self.shared.state.lock();
            (
                state.active.values().map(|&n| n as u64).sum(),
                state.retired.len() as u64,
            )
        };
        ConcurrencyStats {
            epoch_pins: self.shared.pins.load(Ordering::Relaxed),
            active_pins,
            epoch_pin_nanos: self.shared.pin_nanos.load(Ordering::Relaxed),
            retired: self.shared.retired_total.load(Ordering::Relaxed),
            reclaimed: self.shared.reclaimed_total.load(Ordering::Relaxed),
            retired_backlog: backlog,
            ..ConcurrencyStats::default()
        }
    }
}

impl std::fmt::Debug for EpochManager {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("EpochManager")
            .field("backlog", &self.backlog())
            .finish()
    }
}

/// A reader's pinned epoch; dropping it unpins and records the pin duration.
pub struct EpochPin {
    shared: Arc<EpochShared>,
    epoch: u64,
    start: Instant,
}

impl Drop for EpochPin {
    fn drop(&mut self) {
        {
            let mut state = self.shared.state.lock();
            if let Some(count) = state.active.get_mut(&self.epoch) {
                *count -= 1;
                if *count == 0 {
                    state.active.remove(&self.epoch);
                }
            }
        }
        self.shared
            .pin_nanos
            .fetch_add(self.start.elapsed().as_nanos() as u64, Ordering::Relaxed);
    }
}

impl std::fmt::Debug for EpochPin {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("EpochPin")
            .field("epoch", &self.epoch)
            .finish()
    }
}

/// One page's writer latch: a plain exclusive lock with explicit lock /
/// unlock so a guard can be stored by value in a [`LatchSet`].
struct PageLatch {
    locked: StdMutex<bool>,
    cv: Condvar,
}

impl PageLatch {
    fn new() -> Self {
        PageLatch {
            locked: StdMutex::new(false),
            cv: Condvar::new(),
        }
    }

    fn try_lock(&self) -> bool {
        let mut locked = self.locked.lock().unwrap_or_else(|e| e.into_inner());
        if *locked {
            false
        } else {
            *locked = true;
            true
        }
    }

    /// Waits (bounded) for the latch to be released, without taking it.
    /// Purely a backoff so a restarting writer does not busy-spin against
    /// the conflicting writer; the bound means a waiter can never be stuck
    /// behind a holder that is not making progress.
    fn wait_briefly(&self) {
        let locked = self.locked.lock().unwrap_or_else(|e| e.into_inner());
        if *locked {
            let _ = self
                .cv
                .wait_timeout(locked, std::time::Duration::from_millis(1));
        }
    }

    fn unlock(&self) {
        let mut locked = self.locked.lock().unwrap_or_else(|e| e.into_inner());
        *locked = false;
        drop(locked);
        self.cv.notify_all();
    }
}

/// The per-page writer latches of one tree.
///
/// Latches exist only while the table does; entries are created on first
/// acquisition and kept (a page id → latch entry is a few dozen bytes, and
/// the set of pages a tree touches is bounded by its size).
#[derive(Default)]
pub struct LatchTable {
    latches: Mutex<HashMap<PageId, Arc<PageLatch>>>,
    acquisitions: AtomicU64,
    waits: AtomicU64,
}

impl LatchTable {
    /// Creates an empty latch table.
    pub fn new() -> Self {
        Self::default()
    }

    fn latch_for(&self, page: PageId) -> Arc<PageLatch> {
        Arc::clone(
            self.latches
                .lock()
                .entry(page)
                .or_insert_with(|| Arc::new(PageLatch::new())),
        )
    }

    /// Copies this table's counters into `stats`.
    pub fn stats_into(&self, stats: &mut ConcurrencyStats) {
        stats.latch_acquisitions = self.acquisitions.load(Ordering::Relaxed);
        stats.latch_waits = self.waits.load(Ordering::Relaxed);
    }
}

impl std::fmt::Debug for LatchTable {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("LatchTable")
            .field("waits", &self.waits.load(Ordering::Relaxed))
            .finish()
    }
}

/// The set of page latches one writer descent holds — the crabbing guard.
///
/// Acquisition is deadlock-free by construction: [`LatchSet::acquire`] never
/// blocks while holding other latches.  On contention it releases every held
/// latch, waits once for the contended one (so the restart makes progress),
/// and reports `false` — the caller must restart its descent from the root.
pub struct LatchSet<'t> {
    table: &'t LatchTable,
    held: Vec<(PageId, Arc<PageLatch>)>,
    /// Pages a caller frame needs across nested descents (a replicating
    /// multi-way descend holds its node's page for all sub-descents);
    /// [`LatchSet::retain`] never releases these.  Duplicates encode
    /// nesting depth.
    protected: Vec<PageId>,
}

impl<'t> LatchSet<'t> {
    /// An empty guard over `table`.
    pub fn new(table: &'t LatchTable) -> Self {
        LatchSet {
            table,
            held: Vec::new(),
            protected: Vec::new(),
        }
    }

    /// True if this guard already holds the latch on `page`.
    pub fn holds(&self, page: PageId) -> bool {
        self.held.iter().any(|(p, _)| *p == page)
    }

    /// Acquires the latch on `page` (a no-op if already held).  Returns
    /// `false` when the latch was contended: every held latch has been
    /// released and the caller must restart its descent.
    #[must_use]
    pub fn acquire(&mut self, page: PageId) -> bool {
        if self.holds(page) {
            return true;
        }
        self.table.acquisitions.fetch_add(1, Ordering::Relaxed);
        let latch = self.table.latch_for(page);
        if latch.try_lock() {
            self.held.push((page, latch));
            return true;
        }
        // Contended: back out completely, then wait (bounded) for the
        // conflicting writer so the restart is not a busy spin.
        self.table.waits.fetch_add(1, Ordering::Relaxed);
        self.release_all();
        latch.wait_briefly();
        false
    }

    /// Marks `page` as protected: [`LatchSet::retain`] keeps it even when it
    /// is not in the keep list.  Calls nest; undo with
    /// [`LatchSet::unprotect`].
    pub fn protect(&mut self, page: PageId) {
        self.protected.push(page);
    }

    /// Removes one protection of `page`.
    pub fn unprotect(&mut self, page: PageId) {
        if let Some(pos) = self.protected.iter().rposition(|&p| p == page) {
            self.protected.remove(pos);
        }
    }

    /// Releases every held latch except the ones named in `keep` and the
    /// protected set — the crab step that lets ancestors go once the child
    /// is known safe.
    pub fn retain(&mut self, keep: &[PageId]) {
        let protected = &self.protected;
        self.held.retain(|(page, latch)| {
            if keep.contains(page) || protected.contains(page) {
                true
            } else {
                latch.unlock();
                false
            }
        });
    }

    /// Releases every held latch (protections stay registered but protect
    /// nothing until re-acquired).
    pub fn release_all(&mut self) {
        for (_, latch) in self.held.drain(..) {
            latch.unlock();
        }
    }
}

impl Drop for LatchSet<'_> {
    fn drop(&mut self) {
        self.release_all();
    }
}

impl std::fmt::Debug for LatchSet<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let pages: Vec<PageId> = self.held.iter().map(|(p, _)| *p).collect();
        f.debug_struct("LatchSet").field("held", &pages).finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unpinned_retires_reclaim_immediately() {
        let epochs = EpochManager::new();
        epochs.retire(RetiredItem::Slot(1, 2));
        epochs.retire(RetiredItem::Page(3));
        assert_eq!(epochs.backlog(), 2);
        let items = epochs.take_reclaimable();
        assert_eq!(
            items,
            vec![RetiredItem::Slot(1, 2), RetiredItem::Page(3)],
            "FIFO order"
        );
        assert_eq!(epochs.backlog(), 0);
        let stats = epochs.stats();
        assert_eq!(stats.retired, 2);
        assert_eq!(stats.reclaimed, 2);
    }

    #[test]
    fn a_pin_blocks_reclamation_of_later_retires() {
        let epochs = EpochManager::new();
        epochs.retire(RetiredItem::Page(1)); // epoch 0, before the pin
        let pin = epochs.pin(); // epoch 1
        epochs.retire(RetiredItem::Page(2)); // epoch 1: the pin may reference it
        assert_eq!(
            epochs.take_reclaimable(),
            vec![RetiredItem::Page(1)],
            "items retired before the pin are safe to reclaim"
        );
        assert_eq!(epochs.backlog(), 1);
        assert_eq!(epochs.stats().active_pins, 1);
        drop(pin);
        assert_eq!(epochs.take_reclaimable(), vec![RetiredItem::Page(2)]);
        assert!(epochs.stats().epoch_pin_nanos > 0);
    }

    #[test]
    fn overlapping_pins_hold_the_oldest_horizon() {
        let epochs = EpochManager::new();
        let old_pin = epochs.pin(); // epoch 0
        epochs.retire(RetiredItem::Page(1)); // epoch 0
        let young_pin = epochs.pin(); // epoch 1
        drop(young_pin);
        assert!(
            epochs.take_reclaimable().is_empty(),
            "the older pin still guards epoch 0"
        );
        drop(old_pin);
        assert_eq!(epochs.take_reclaimable(), vec![RetiredItem::Page(1)]);
    }

    #[test]
    fn latch_set_crabs_and_restarts_on_contention() {
        let table = LatchTable::new();
        let mut a = LatchSet::new(&table);
        assert!(a.acquire(1));
        assert!(a.acquire(2));
        assert!(a.acquire(2), "re-acquire of a held latch is a no-op");
        a.retain(&[2]);
        assert!(!a.holds(1));
        assert!(a.holds(2));

        let mut b = LatchSet::new(&table);
        assert!(b.acquire(1), "released latches are available again");
        assert!(!b.acquire(2), "contended acquire reports a restart");
        assert!(!b.holds(1), "a failed acquire releases everything");
        let mut stats = ConcurrencyStats::default();
        table.stats_into(&mut stats);
        assert_eq!(stats.latch_waits, 1);
        drop(a);
        assert!(b.acquire(2), "dropping the holder frees the latch");
    }

    #[test]
    fn protected_pages_survive_retain() {
        let table = LatchTable::new();
        let mut set = LatchSet::new(&table);
        assert!(set.acquire(7));
        assert!(set.acquire(8));
        set.protect(7);
        set.retain(&[]);
        assert!(set.holds(7), "protected page survives an empty keep list");
        assert!(!set.holds(8));
        set.unprotect(7);
        set.retain(&[]);
        assert!(!set.holds(7));
    }

    #[test]
    fn contended_latches_serialize_across_threads() {
        let table = Arc::new(LatchTable::new());
        let counter = Arc::new(AtomicU64::new(0));
        let mut handles = Vec::new();
        for _ in 0..4 {
            let table = Arc::clone(&table);
            let counter = Arc::clone(&counter);
            handles.push(std::thread::spawn(move || {
                for _ in 0..200 {
                    let mut set = LatchSet::new(&table);
                    while !set.acquire(42) {}
                    assert_eq!(
                        counter.fetch_add(1, Ordering::SeqCst),
                        0,
                        "latch holders are exclusive"
                    );
                    assert_eq!(counter.fetch_sub(1, Ordering::SeqCst), 1);
                    set.release_all();
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
    }
}
