//! Fault-injection pager for durability testing.
//!
//! [`FaultPager`] wraps any [`Pager`] and emulates the operating system's
//! volatile page cache: writes land in an in-memory map and only reach the
//! inner pager when [`Pager::sync`] runs.  [`FaultPager::crash`] throws the
//! cache away — exactly what a power cut does to un-synced writes.  On top
//! of that model it injects the two classes of failure durability code must
//! survive:
//!
//! * **sync faults** ([`SyncFault`]): the sync call fails loudly, or —
//!   worse — reports success without persisting anything ([`SyncFault::SilentDrop`],
//!   the lying-`fsync` case).  The regression tests here prove that a
//!   checkpoint acknowledged over a dropped sync is *not* durable, i.e.
//!   that the real pagers' `sync` had better actually sync.
//! * **write faults** ([`WriteFault`]): the n-th write fails, or tears —
//!   half the new image and half the old reach the disk, the classic torn
//!   page a crash mid-`write(2)` leaves behind.
//!
//! The crash-recovery suites build real databases over a
//! `FaultPager<FilePager>` and kill them at chosen points; nothing in this
//! module is compiled into production paths beyond the trait dispatch cost.

use std::collections::HashMap;
use std::sync::Arc;

use parking_lot::Mutex;

use crate::error::{StorageError, StorageResult};
use crate::page::{Page, PageId, PAGE_SIZE};
use crate::pager::Pager;

/// How [`Pager::sync`] misbehaves.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SyncFault {
    /// Sync works: flush the cache to the inner pager and sync it.
    #[default]
    None,
    /// Sync returns an I/O error; cached writes stay cached (a retry after
    /// clearing the fault can still succeed).
    Fail,
    /// The next `n` syncs succeed normally, then one fails as [`Fail`]
    /// (one-shot).  Lets a test target the *second* sync of a two-phase
    /// checkpoint.
    ///
    /// [`Fail`]: SyncFault::Fail
    FailAfter(u64),
    /// Sync reports success **without flushing anything** — the lying
    /// `fsync`.  A crash afterwards loses every cached write even though
    /// the caller was told they were durable.
    SilentDrop,
}

/// How [`Pager::write`] misbehaves.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum WriteFault {
    /// Writes work.
    #[default]
    None,
    /// The next `n` writes succeed, then one fails with an I/O error.
    FailAfter(u64),
    /// The next `n` writes succeed, then one **tears**: the first half of
    /// the new image and the second half of the old image reach the inner
    /// pager directly (as if the kernel wrote one sector before the power
    /// died), and the write reports failure.
    TornAfter(u64),
}

#[derive(Default)]
struct FaultState {
    cache: HashMap<PageId, Page>,
    sync_fault: SyncFault,
    write_fault: WriteFault,
}

/// A [`Pager`] decorator with a volatile write cache and injectable faults.
pub struct FaultPager {
    inner: Arc<dyn Pager>,
    state: Mutex<FaultState>,
}

impl FaultPager {
    /// Wraps `inner` with faults disabled.
    pub fn new(inner: Arc<dyn Pager>) -> Self {
        FaultPager {
            inner,
            state: Mutex::new(FaultState::default()),
        }
    }

    /// Arms (or clears) the sync fault.
    pub fn set_sync_fault(&self, fault: SyncFault) {
        self.state.lock().sync_fault = fault;
    }

    /// Arms (or clears) the write fault.
    pub fn set_write_fault(&self, fault: WriteFault) {
        self.state.lock().write_fault = fault;
    }

    /// Simulates a crash: every write that has not survived a successful
    /// sync disappears.
    pub fn crash(&self) {
        self.state.lock().cache.clear();
    }

    /// Simulates a crash where the kernel had already persisted an
    /// arbitrary **subset** of the un-synced writes: cached writes for
    /// which `keep` returns true reach the inner pager (in no particular
    /// order, like a page-cache writeback racing the power cut), the rest
    /// disappear.  [`crash`](Self::crash) is `crash_keeping(|_| false)`.
    ///
    /// This is the crash model the all-or-nothing `crash` cannot express,
    /// and the one that breaks single-sync checkpoints: any mix of old and
    /// new pages may be on the platter after the lights go out.
    pub fn crash_keeping(&self, keep: impl Fn(PageId) -> bool) -> StorageResult<()> {
        let mut state = self.state.lock();
        for (id, page) in state.cache.drain() {
            if keep(id) {
                self.inner.write(id, &page)?;
            }
        }
        Ok(())
    }

    /// Number of writes currently held only in the volatile cache.
    pub fn cached_writes(&self) -> usize {
        self.state.lock().cache.len()
    }

    /// Page ids of the writes currently held only in the volatile cache,
    /// sorted.  Subset-sweep tests enumerate this set once, then re-run the
    /// same deterministic scenario with [`crash_keeping`](Self::crash_keeping)
    /// persisting each subset in turn.
    pub fn cached_page_ids(&self) -> Vec<PageId> {
        let mut ids: Vec<PageId> = self.state.lock().cache.keys().copied().collect();
        ids.sort_unstable();
        ids
    }

    fn injected(kind: &str) -> StorageError {
        StorageError::Io(std::io::Error::other(format!("injected {kind} fault")))
    }
}

impl Pager for FaultPager {
    fn allocate(&self) -> StorageResult<PageId> {
        self.inner.allocate()
    }

    fn read(&self, id: PageId, out: &mut Page) -> StorageResult<()> {
        if let Some(page) = self.state.lock().cache.get(&id) {
            *out = page.clone();
            return Ok(());
        }
        self.inner.read(id, out)
    }

    fn write(&self, id: PageId, page: &Page) -> StorageResult<()> {
        let mut state = self.state.lock();
        match state.write_fault {
            WriteFault::None => {}
            WriteFault::FailAfter(0) => {
                state.write_fault = WriteFault::None;
                return Err(Self::injected("write"));
            }
            WriteFault::FailAfter(n) => state.write_fault = WriteFault::FailAfter(n - 1),
            WriteFault::TornAfter(0) => {
                state.write_fault = WriteFault::None;
                // Half the new image, half the old, straight past the
                // cache to the "platter".
                let mut old = Page::new();
                self.inner.read(id, &mut old)?;
                let mut torn = *page.as_bytes();
                torn[PAGE_SIZE / 2..].copy_from_slice(&old.as_bytes()[PAGE_SIZE / 2..]);
                self.inner.write(id, &Page::from_bytes(torn))?;
                state.cache.remove(&id);
                return Err(Self::injected("torn-write"));
            }
            WriteFault::TornAfter(n) => state.write_fault = WriteFault::TornAfter(n - 1),
        }
        state.cache.insert(id, page.clone());
        Ok(())
    }

    fn free(&self, id: PageId) -> StorageResult<()> {
        self.state.lock().cache.remove(&id);
        self.inner.free(id)
    }

    fn page_count(&self) -> u32 {
        self.inner.page_count()
    }

    fn free_page_count(&self) -> u32 {
        self.inner.free_page_count()
    }

    fn sync(&self) -> StorageResult<()> {
        let mut state = self.state.lock();
        match state.sync_fault {
            SyncFault::Fail => return Err(Self::injected("sync")),
            SyncFault::FailAfter(0) => {
                state.sync_fault = SyncFault::None;
                return Err(Self::injected("sync"));
            }
            SyncFault::FailAfter(n) => state.sync_fault = SyncFault::FailAfter(n - 1),
            SyncFault::SilentDrop => return Ok(()),
            SyncFault::None => {}
        }
        for (id, page) in state.cache.drain() {
            self.inner.write(id, &page)?;
        }
        self.inner.sync()
    }
}

impl std::fmt::Debug for FaultPager {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let state = self.state.lock();
        f.debug_struct("FaultPager")
            .field("cached_writes", &state.cache.len())
            .field("sync_fault", &state.sync_fault)
            .field("write_fault", &state.write_fault)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::buffer::{BufferPool, BufferPoolConfig};
    use crate::pager::{FilePager, MemPager};
    use std::path::PathBuf;

    struct TempDir(PathBuf);

    impl TempDir {
        fn new(tag: &str) -> Self {
            let dir =
                std::env::temp_dir().join(format!("spgist-fault-{tag}-{}", std::process::id()));
            let _ = std::fs::remove_dir_all(&dir);
            std::fs::create_dir_all(&dir).unwrap();
            TempDir(dir)
        }
    }

    impl Drop for TempDir {
        fn drop(&mut self) {
            let _ = std::fs::remove_dir_all(&self.0);
        }
    }

    fn no_steal_pool(pager: Arc<FaultPager>) -> BufferPool {
        BufferPool::new(
            pager,
            BufferPoolConfig {
                capacity: 8,
                steal: false,
                ..Default::default()
            },
        )
    }

    #[test]
    fn crash_discards_unsynced_writes() {
        let fault = FaultPager::new(Arc::new(MemPager::new()));
        let id = fault.allocate().unwrap();
        fault
            .write(id, &Page::from_bytes([0xAA; PAGE_SIZE]))
            .unwrap();
        let mut page = Page::new();
        fault.read(id, &mut page).unwrap();
        assert_eq!(page.as_bytes()[0], 0xAA, "cached write is readable");
        fault.crash();
        fault.read(id, &mut page).unwrap();
        assert_ne!(page.as_bytes()[0], 0xAA, "crash loses un-synced writes");
    }

    #[test]
    fn sync_makes_writes_survive_a_crash() {
        let fault = FaultPager::new(Arc::new(MemPager::new()));
        let id = fault.allocate().unwrap();
        fault
            .write(id, &Page::from_bytes([0xBB; PAGE_SIZE]))
            .unwrap();
        fault.sync().unwrap();
        assert_eq!(fault.cached_writes(), 0);
        fault.crash();
        let mut page = Page::new();
        fault.read(id, &mut page).unwrap();
        assert_eq!(page.as_bytes()[0], 0xBB);
    }

    #[test]
    fn torn_write_mixes_old_and_new_halves() {
        let fault = FaultPager::new(Arc::new(MemPager::new()));
        let id = fault.allocate().unwrap();
        fault
            .write(id, &Page::from_bytes([0x11; PAGE_SIZE]))
            .unwrap();
        fault.sync().unwrap();
        fault.set_write_fault(WriteFault::TornAfter(0));
        assert!(fault
            .write(id, &Page::from_bytes([0x22; PAGE_SIZE]))
            .is_err());
        fault.crash();
        let mut page = Page::new();
        fault.read(id, &mut page).unwrap();
        assert_eq!(page.as_bytes()[0], 0x22, "first half is the new image");
        assert_eq!(
            page.as_bytes()[PAGE_SIZE - 1],
            0x11,
            "second half is the old"
        );
    }

    #[test]
    fn crash_keeping_persists_an_arbitrary_subset() {
        let fault = FaultPager::new(Arc::new(MemPager::new()));
        let a = fault.allocate().unwrap();
        let b = fault.allocate().unwrap();
        fault
            .write(a, &Page::from_bytes([0xAA; PAGE_SIZE]))
            .unwrap();
        fault
            .write(b, &Page::from_bytes([0xBB; PAGE_SIZE]))
            .unwrap();
        fault.crash_keeping(|id| id == b).unwrap();
        let mut page = Page::new();
        fault.read(a, &mut page).unwrap();
        assert_ne!(page.as_bytes()[0], 0xAA, "un-kept write is lost");
        fault.read(b, &mut page).unwrap();
        assert_eq!(page.as_bytes()[0], 0xBB, "kept write hit the platter");
        assert_eq!(fault.cached_writes(), 0, "cache is gone either way");
    }

    #[test]
    fn sync_fail_after_targets_a_later_sync() {
        let fault = FaultPager::new(Arc::new(MemPager::new()));
        let id = fault.allocate().unwrap();
        fault.set_sync_fault(SyncFault::FailAfter(1));
        fault
            .write(id, &Page::from_bytes([0x01; PAGE_SIZE]))
            .unwrap();
        fault.sync().unwrap();
        assert!(fault.sync().is_err(), "second sync fails");
        assert!(fault.sync().is_ok(), "fault is one-shot");
        fault.crash();
        let mut page = Page::new();
        fault.read(id, &mut page).unwrap();
        assert_eq!(page.as_bytes()[0], 0x01, "first sync was honest");
    }

    #[test]
    fn fail_after_counts_down_before_failing() {
        let fault = FaultPager::new(Arc::new(MemPager::new()));
        let id = fault.allocate().unwrap();
        fault.set_write_fault(WriteFault::FailAfter(2));
        assert!(fault.write(id, &Page::new()).is_ok());
        assert!(fault.write(id, &Page::new()).is_ok());
        assert!(fault.write(id, &Page::new()).is_err());
        assert!(fault.write(id, &Page::new()).is_ok(), "fault is one-shot");
    }

    /// The satellite audit in test form: a checkpoint whose sync was
    /// silently dropped is *acknowledged* but not durable — after a crash,
    /// a direct reopen of the underlying file shows the pre-checkpoint
    /// state.  This is why `FilePager::sync` must really `sync_all`, and
    /// why every flush path has to propagate sync errors instead of
    /// swallowing them.
    #[test]
    fn silently_dropped_sync_is_not_durable() {
        let dir = TempDir::new("lying-fsync");
        let path = dir.0.join("db.pages");
        let fault = Arc::new(FaultPager::new(Arc::new(FilePager::create(&path).unwrap())));
        let pool = no_steal_pool(Arc::clone(&fault));

        // Epoch 1: an honest checkpoint.
        let pid = pool.allocate_page().unwrap();
        pool.with_page_mut(pid, |p| p.insert(b"base").unwrap())
            .unwrap();
        pool.flush_all().unwrap();

        // Epoch 2: more data, but the sync lies.
        pool.with_page_mut(pid, |p| p.insert(b"lost").unwrap())
            .unwrap();
        fault.set_sync_fault(SyncFault::SilentDrop);
        pool.flush_all().unwrap(); // acknowledged!
        fault.crash();

        let reopened = FilePager::open(&path).unwrap();
        let mut page = Page::new();
        reopened.read(pid, &mut page).unwrap();
        assert_eq!(
            page.num_slots(),
            1,
            "only the honestly-synced epoch survived"
        );
        assert_eq!(page.get(0).unwrap(), b"base");
    }

    #[test]
    fn failing_sync_propagates_through_flush_all() {
        let dir = TempDir::new("sync-err");
        let path = dir.0.join("db.pages");
        let fault = Arc::new(FaultPager::new(Arc::new(FilePager::create(&path).unwrap())));
        let pool = no_steal_pool(Arc::clone(&fault));
        let pid = pool.allocate_page().unwrap();
        pool.with_page_mut(pid, |p| p.insert(b"retry-me").unwrap())
            .unwrap();
        fault.set_sync_fault(SyncFault::Fail);
        assert!(
            pool.flush_all().is_err(),
            "sync failure must not be swallowed"
        );
        // Clearing the fault and retrying succeeds: nothing was lost.
        fault.set_sync_fault(SyncFault::None);
        pool.flush_all().unwrap();
        fault.crash();
        let mut page = Page::new();
        fault.read(pid, &mut page).unwrap();
        assert_eq!(page.get(0).unwrap(), b"retry-me");
    }
}
