//! Checkpoint pre-image journal: crash atomicity for multi-page,
//! multi-`fsync` checkpoint writes.
//!
//! A checkpoint overwrites many pages in place — data pages, index pages
//! and the catalog chain — and a power cut mid-way can leave the file with
//! an arbitrary *subset* of those writes persisted (the kernel flushes its
//! page cache in any order it likes).  Logical WAL replay cannot repair a
//! physically torn page image, so before the first in-place write the
//! checkpointer journals the **pre-image** of every page it is about to
//! touch ([`write_pre_images`]), syncs the journal, and only then starts
//! overwriting.  On reopen, [`recover`] rolls any surviving journal back,
//! restoring the exact previous-checkpoint image; the still-un-pruned WAL
//! then replays everything acknowledged since.  This is SQLite's rollback
//! journal, scoped to checkpoints.
//!
//! The commit point is the **deletion** of the journal file: a valid
//! journal on disk means "the checkpoint that was running may be torn —
//! roll it back"; no journal means the last checkpoint completed.  Because
//! the journal is written to a temporary file, synced, and renamed into
//! place, a journal that is present but fails validation (short file, bad
//! CRC) can only be a journal whose *own* write was interrupted — at that
//! point no in-place page write had begun, so discarding it is safe.
//!
//! On-disk format (all integers little-endian):
//!
//! ```text
//! magic "SPGJ" u32 | version u32 | entry count u32 | crc32(entries) u32
//! entry* : page id u32 | page image [PAGE_SIZE]
//! ```

use std::collections::BTreeMap;
use std::fs::{File, OpenOptions};
use std::io::{Read, Write};
use std::path::Path;

use crate::crc::crc32;
use crate::error::{StorageError, StorageResult};
use crate::page::{Page, PageId, PAGE_SIZE};
use crate::pager::Pager;

/// `"SPGJ"` little-endian.
const MAGIC: u32 = u32::from_le_bytes(*b"SPGJ");
const VERSION: u32 = 1;
const HEADER_BYTES: usize = 16;
const ENTRY_BYTES: usize = 4 + PAGE_SIZE;

/// Counters of checkpoint activity, surfaced by the database layer next to
/// [`IoStats`](crate::buffer::IoStats) and
/// [`ConcurrencyStats`](crate::epoch::ConcurrencyStats).  Incremental
/// checkpoints are judged by these numbers: an untouched table shows up as
/// `chunks_skipped`, and `quiesce_nanos` is the only window in which
/// concurrent writers stall.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct CheckpointStats {
    /// Checkpoints completed.
    pub checkpoints: u64,
    /// Catalog chunks (row-directory runs, heap-directory runs, table
    /// metadata segments, the root) actually rewritten.
    pub chunks_written: u64,
    /// Catalog chunks whose content was unchanged and which therefore cost
    /// zero page writes.
    pub chunks_skipped: u64,
    /// Tables skipped outright (not mutated since the last checkpoint).
    pub tables_skipped: u64,
    /// Bytes of catalog content written (chunk records, metadata segments,
    /// root segments).
    pub catalog_bytes: u64,
    /// Data pages flushed from the buffer pool's dirty set.
    pub data_pages_flushed: u64,
    /// Size in bytes of the pre-image rollback journal written, summed over
    /// checkpoints.
    pub journal_bytes: u64,
    /// Nanoseconds spent holding every table's DML lock (the quiesce
    /// window: log rotation plus the in-memory snapshot of dirty chunks and
    /// dirty pages — flush and sync happen after the guards drop).
    pub quiesce_nanos: u64,
}

impl CheckpointStats {
    /// Component-wise difference (`self - earlier`), for measuring a single
    /// checkpoint between two snapshots.
    pub fn delta_since(&self, earlier: &CheckpointStats) -> CheckpointStats {
        CheckpointStats {
            checkpoints: self.checkpoints - earlier.checkpoints,
            chunks_written: self.chunks_written - earlier.chunks_written,
            chunks_skipped: self.chunks_skipped - earlier.chunks_skipped,
            tables_skipped: self.tables_skipped - earlier.tables_skipped,
            catalog_bytes: self.catalog_bytes - earlier.catalog_bytes,
            data_pages_flushed: self.data_pages_flushed - earlier.data_pages_flushed,
            journal_bytes: self.journal_bytes - earlier.journal_bytes,
            quiesce_nanos: self.quiesce_nanos - earlier.quiesce_nanos,
        }
    }
}

/// Syncs the directory holding `path` so a create/rename/delete of the
/// journal itself is durable.  Best-effort: not every filesystem supports
/// directory fsync, and the fallback (an extra rollback or an extra
/// recovery replay) is correct either way.
fn sync_parent(path: &Path) {
    let dir = path.parent().unwrap_or_else(|| Path::new("."));
    if let Ok(handle) = File::open(dir) {
        let _ = handle.sync_all();
    }
}

/// Reads and validates the journal at `path`.  `Ok(None)` when the file
/// is missing or fails validation — that can only be a journal whose own
/// write was interrupted, i.e. before any in-place page write, so it is
/// safe to ignore.  An unknown *version* under a valid magic is different:
/// a torn write of this version cannot produce it, only other software
/// can, and skipping a rollback it may require is not safe — `Corrupt`
/// (the workspace's no-migrations policy).
fn load_valid(path: &Path) -> StorageResult<Option<BTreeMap<PageId, Page>>> {
    let mut bytes = Vec::new();
    match File::open(path) {
        Ok(mut file) => file.read_to_end(&mut bytes)?,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(None),
        Err(e) => return Err(e.into()),
    };
    if bytes.len() < HEADER_BYTES {
        return Ok(None);
    }
    let word = |at: usize| u32::from_le_bytes(bytes[at..at + 4].try_into().unwrap());
    if word(0) != MAGIC {
        return Ok(None);
    }
    if word(4) != VERSION {
        return Err(StorageError::Corrupt(format!(
            "checkpoint journal {path:?} has version {} (this build reads v{VERSION}; \
             no migration)",
            word(4)
        )));
    }
    let count = word(8) as usize;
    let body = &bytes[HEADER_BYTES..];
    if body.len() != count * ENTRY_BYTES || crc32(body) != word(12) {
        return Ok(None);
    }
    let mut entries = BTreeMap::new();
    for entry in body.chunks_exact(ENTRY_BYTES) {
        let id = u32::from_le_bytes(entry[..4].try_into().unwrap());
        let image: [u8; PAGE_SIZE] = entry[4..].try_into().unwrap();
        entries.insert(id, Page::from_bytes(image));
    }
    Ok(Some(entries))
}

fn write_file(path: &Path, entries: &BTreeMap<PageId, Page>) -> StorageResult<u64> {
    let mut body = Vec::with_capacity(entries.len() * ENTRY_BYTES);
    for (id, page) in entries {
        body.extend_from_slice(&id.to_le_bytes());
        body.extend_from_slice(page.as_bytes());
    }
    let mut header = [0u8; HEADER_BYTES];
    header[0..4].copy_from_slice(&MAGIC.to_le_bytes());
    header[4..8].copy_from_slice(&VERSION.to_le_bytes());
    header[8..12].copy_from_slice(&(entries.len() as u32).to_le_bytes());
    header[12..16].copy_from_slice(&crc32(&body).to_le_bytes());

    // Write-to-temp, sync, rename: the journal appears atomically, so a
    // crash during its own construction leaves either no journal or the
    // previous (still-valid) one.
    let mut tmp = path.as_os_str().to_os_string();
    tmp.push(".tmp");
    let tmp = Path::new(&tmp);
    let mut file = OpenOptions::new()
        .write(true)
        .create(true)
        .truncate(true)
        .open(tmp)?;
    file.write_all(&header)?;
    file.write_all(&body)?;
    file.sync_all()?;
    drop(file);
    std::fs::rename(tmp, path)?;
    sync_parent(path);
    Ok((HEADER_BYTES + body.len()) as u64)
}

/// Journals the current on-disk image of every page in `ids`, merging with
/// any valid journal already at `path` (old entries win: after a failed
/// checkpoint attempt the on-disk image of an already-journaled page may be
/// mid-overwrite, and the *original* pre-image is the one that restores the
/// last completed checkpoint).  The journal is durable when this returns.
///
/// Pre-images are read through `pager` directly — callers journal before
/// flushing, so the buffer pool's dirty copies must not shadow the on-disk
/// content being protected.  Returns the size in bytes of the journal file
/// now on disk (checkpoint accounting).
pub fn write_pre_images(
    path: &Path,
    pager: &dyn Pager,
    ids: impl IntoIterator<Item = PageId>,
) -> StorageResult<u64> {
    let mut entries = load_valid(path)?.unwrap_or_default();
    let page_count = pager.page_count();
    for id in ids {
        if entries.contains_key(&id) {
            continue;
        }
        // Pages allocated since the last completed checkpoint may sit past
        // the durable page count after rollback; the old catalog does not
        // reference them, so they need no pre-image.
        if id >= page_count {
            continue;
        }
        let mut page = Page::new();
        pager.read(id, &mut page)?;
        entries.insert(id, page);
    }
    write_file(path, &entries)
}

/// Rolls back the journal at `path`, if a valid one exists: writes every
/// pre-image through `pager`, syncs, then deletes the journal.  Returns
/// `true` when a rollback happened.  An invalid journal is deleted without
/// being applied (see the module docs for why that is safe).
pub fn recover(path: &Path, pager: &dyn Pager) -> StorageResult<bool> {
    let Some(entries) = load_valid(path)? else {
        discard(path)?;
        return Ok(false);
    };
    let page_count = pager.page_count();
    for (&id, page) in &entries {
        if id >= page_count {
            return Err(StorageError::Corrupt(format!(
                "checkpoint journal references page {id} beyond file end ({page_count} pages)"
            )));
        }
        pager.write(id, page)?;
    }
    pager.sync()?;
    discard(path)?;
    Ok(true)
}

/// Removes the journal (and any leftover temp file); missing files are
/// fine.  Deleting the journal is the checkpoint's commit point, so the
/// removal is followed by a directory sync.
pub fn discard(path: &Path) -> StorageResult<()> {
    let mut tmp = path.as_os_str().to_os_string();
    tmp.push(".tmp");
    for p in [Path::new(&tmp), path] {
        match std::fs::remove_file(p) {
            Ok(()) => {}
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => continue,
            Err(e) => return Err(e.into()),
        }
    }
    sync_parent(path);
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pager::MemPager;
    use std::path::PathBuf;

    struct TempDir(PathBuf);

    impl TempDir {
        fn new(tag: &str) -> Self {
            let dir =
                std::env::temp_dir().join(format!("spgist-journal-{tag}-{}", std::process::id()));
            let _ = std::fs::remove_dir_all(&dir);
            std::fs::create_dir_all(&dir).unwrap();
            TempDir(dir)
        }
    }

    impl Drop for TempDir {
        fn drop(&mut self) {
            let _ = std::fs::remove_dir_all(&self.0);
        }
    }

    fn page(fill: u8) -> Page {
        Page::from_bytes([fill; PAGE_SIZE])
    }

    #[test]
    fn rollback_restores_journaled_pre_images() {
        let dir = TempDir::new("roundtrip");
        let path = dir.0.join("db.ckpt");
        let pager = MemPager::new();
        let a = pager.allocate().unwrap();
        let b = pager.allocate().unwrap();
        pager.write(a, &page(0x0A)).unwrap();
        pager.write(b, &page(0x0B)).unwrap();

        write_pre_images(&path, &pager, [a, b]).unwrap();
        // "Checkpoint" overwrites both, then crashes before committing.
        pager.write(a, &page(0xFA)).unwrap();
        pager.write(b, &page(0xFB)).unwrap();

        assert!(recover(&path, &pager).unwrap());
        let mut out = Page::new();
        pager.read(a, &mut out).unwrap();
        assert_eq!(out.as_bytes()[0], 0x0A);
        pager.read(b, &mut out).unwrap();
        assert_eq!(out.as_bytes()[0], 0x0B);
        assert!(!path.exists(), "rollback consumes the journal");
        assert!(!recover(&path, &pager).unwrap(), "idempotent when absent");
    }

    #[test]
    fn merge_keeps_the_oldest_pre_image() {
        let dir = TempDir::new("merge");
        let path = dir.0.join("db.ckpt");
        let pager = MemPager::new();
        let a = pager.allocate().unwrap();
        pager.write(a, &page(0x01)).unwrap();

        // First (failed) checkpoint attempt journals the original image...
        write_pre_images(&path, &pager, [a]).unwrap();
        // ...then overwrites the page and dies.  The retry journals again;
        // the on-disk image is now mid-overwrite garbage, and the merge
        // must keep the original.
        pager.write(a, &page(0x99)).unwrap();
        write_pre_images(&path, &pager, [a]).unwrap();

        assert!(recover(&path, &pager).unwrap());
        let mut out = Page::new();
        pager.read(a, &mut out).unwrap();
        assert_eq!(out.as_bytes()[0], 0x01, "original pre-image wins");
    }

    #[test]
    fn torn_journal_is_discarded_not_applied() {
        let dir = TempDir::new("torn");
        let path = dir.0.join("db.ckpt");
        let pager = MemPager::new();
        let a = pager.allocate().unwrap();
        pager.write(a, &page(0x42)).unwrap();
        write_pre_images(&path, &pager, [a]).unwrap();

        // Truncate mid-entry: the CRC/length check must reject it.
        let bytes = std::fs::read(&path).unwrap();
        std::fs::write(&path, &bytes[..bytes.len() - 7]).unwrap();
        pager.write(a, &page(0x43)).unwrap();

        assert!(!recover(&path, &pager).unwrap(), "torn journal ignored");
        assert!(!path.exists(), "and cleaned up");
        let mut out = Page::new();
        pager.read(a, &mut out).unwrap();
        assert_eq!(out.as_bytes()[0], 0x43, "no rollback happened");
    }

    #[test]
    fn out_of_range_ids_are_skipped_on_write_and_corrupt_on_recover() {
        let dir = TempDir::new("range");
        let path = dir.0.join("db.ckpt");
        let pager = MemPager::new();
        let a = pager.allocate().unwrap();
        pager.write(a, &page(0x07)).unwrap();
        // Page 57 does not exist yet — e.g. freshly allocated this epoch.
        write_pre_images(&path, &pager, [a, 57]).unwrap();
        assert!(recover(&path, &pager).unwrap());

        // A journal that *does* reference a page beyond the file is corrupt.
        let mut entries = BTreeMap::new();
        entries.insert(57u32, page(0x00));
        write_file(&path, &entries).unwrap();
        assert!(matches!(
            recover(&path, &pager),
            Err(StorageError::Corrupt(_))
        ));
    }

    #[test]
    fn unknown_journal_version_is_corrupt_not_discarded() {
        let dir = TempDir::new("version");
        let path = dir.0.join("db.ckpt");
        let pager = MemPager::new();
        let a = pager.allocate().unwrap();
        write_pre_images(&path, &pager, [a]).unwrap();
        // Bump the version byte: only other software writes this, and
        // skipping a rollback it may require is not safe.
        let mut bytes = std::fs::read(&path).unwrap();
        bytes[4] = 99;
        std::fs::write(&path, &bytes).unwrap();
        assert!(matches!(
            recover(&path, &pager),
            Err(StorageError::Corrupt(_))
        ));
        assert!(path.exists(), "a version-mismatched journal is kept");
    }
}
