//! Slotted page layout.
//!
//! A [`Page`] is the unit of disk transfer, [`PAGE_SIZE`] bytes long (8 KiB,
//! matching PostgreSQL).  Records are stored with a classic slotted layout:
//!
//! ```text
//! +-----------+------------------+..free..+---------------+--------------+
//! | header    | slot directory → |        | ← record data | record data  |
//! +-----------+------------------+--------+---------------+--------------+
//! ```
//!
//! * the header stores the number of slots and the offset of the start of the
//!   record-data area,
//! * the slot directory grows forward; each slot holds `(offset, len)` of a
//!   record, with `offset == 0` marking a dead (deleted) slot,
//! * record data grows backward from the end of the page.
//!
//! Slot ids are stable: deleting a record leaves a dead slot behind so other
//! records (and external pointers such as tree child pointers or heap
//! [`crate::heap::RecordId`]s) are never invalidated.  Updating a record in
//! place is supported when the new payload fits either in the old byte range
//! or in the page's remaining free space.

use crate::error::{StorageError, StorageResult};

/// Size of a disk page in bytes (PostgreSQL's default block size).
pub const PAGE_SIZE: usize = 8192;

/// Bytes of page header: `slot_count: u16`, `data_start: u16`.
const HEADER_SIZE: usize = 4;
/// Bytes per slot directory entry: `offset: u16`, `len: u16`.
const SLOT_SIZE: usize = 4;

/// Identifier of a page within a pager (0-based).
pub type PageId = u32;
/// Identifier of a slot within a page.
pub type SlotId = u16;

/// Largest record that fits in an otherwise empty page.
pub const MAX_RECORD_SIZE: usize = PAGE_SIZE - HEADER_SIZE - SLOT_SIZE;

/// A fixed-size disk page with a slotted record layout.
#[derive(Clone)]
pub struct Page {
    bytes: Box<[u8; PAGE_SIZE]>,
}

impl Default for Page {
    fn default() -> Self {
        Self::new()
    }
}

impl Page {
    /// Creates an empty, formatted page.
    pub fn new() -> Self {
        let mut page = Page {
            bytes: Box::new([0u8; PAGE_SIZE]),
        };
        page.set_slot_count(0);
        page.set_data_start(PAGE_SIZE as u16);
        page
    }

    /// Builds a page from a raw on-disk image.
    pub fn from_bytes(bytes: [u8; PAGE_SIZE]) -> Self {
        Page {
            bytes: Box::new(bytes),
        }
    }

    /// Raw page image (for writing to disk).
    pub fn as_bytes(&self) -> &[u8; PAGE_SIZE] {
        &self.bytes
    }

    fn slot_count(&self) -> u16 {
        u16::from_le_bytes([self.bytes[0], self.bytes[1]])
    }

    fn set_slot_count(&mut self, n: u16) {
        self.bytes[0..2].copy_from_slice(&n.to_le_bytes());
    }

    fn data_start(&self) -> u16 {
        u16::from_le_bytes([self.bytes[2], self.bytes[3]])
    }

    fn set_data_start(&mut self, n: u16) {
        self.bytes[2..4].copy_from_slice(&n.to_le_bytes());
    }

    fn slot(&self, slot: SlotId) -> (u16, u16) {
        let base = HEADER_SIZE + slot as usize * SLOT_SIZE;
        let off = u16::from_le_bytes([self.bytes[base], self.bytes[base + 1]]);
        let len = u16::from_le_bytes([self.bytes[base + 2], self.bytes[base + 3]]);
        (off, len)
    }

    fn set_slot(&mut self, slot: SlotId, off: u16, len: u16) {
        let base = HEADER_SIZE + slot as usize * SLOT_SIZE;
        self.bytes[base..base + 2].copy_from_slice(&off.to_le_bytes());
        self.bytes[base + 2..base + 4].copy_from_slice(&len.to_le_bytes());
    }

    /// Number of slots in the page, including dead ones.
    pub fn num_slots(&self) -> u16 {
        self.slot_count()
    }

    /// Number of live (non-deleted) records in the page.
    pub fn num_live_records(&self) -> u16 {
        (0..self.slot_count())
            .filter(|&s| self.slot(s).0 != 0)
            .count() as u16
    }

    /// Free space available for a new record (including its slot entry).
    pub fn free_space(&self) -> usize {
        let dir_end = HEADER_SIZE + self.slot_count() as usize * SLOT_SIZE;
        let data_start = self.data_start() as usize;
        (data_start - dir_end).saturating_sub(SLOT_SIZE)
    }

    /// True if a record of `len` bytes can be inserted.
    pub fn fits(&self, len: usize) -> bool {
        len <= self.free_space()
    }

    /// Inserts a record, returning its slot id.
    ///
    /// Returns [`StorageError::RecordTooLarge`] if the record can never fit in
    /// a page, and [`StorageError::Corrupt`] if it does not fit in this page's
    /// remaining free space (callers are expected to check [`Page::fits`]).
    pub fn insert(&mut self, record: &[u8]) -> StorageResult<SlotId> {
        if record.len() > MAX_RECORD_SIZE {
            return Err(StorageError::RecordTooLarge {
                size: record.len(),
                max: MAX_RECORD_SIZE,
            });
        }
        if !self.fits(record.len()) {
            return Err(StorageError::Corrupt(format!(
                "insert of {} bytes into a page with {} free bytes",
                record.len(),
                self.free_space()
            )));
        }
        let slot = self.slot_count();
        let new_start = self.data_start() as usize - record.len();
        self.bytes[new_start..new_start + record.len()].copy_from_slice(record);
        self.set_data_start(new_start as u16);
        self.set_slot(slot, new_start as u16, record.len() as u16);
        self.set_slot_count(slot + 1);
        Ok(slot)
    }

    /// Reads the record stored in `slot`.
    pub fn get(&self, slot: SlotId) -> StorageResult<&[u8]> {
        if slot >= self.slot_count() {
            return Err(StorageError::InvalidSlot { page: 0, slot });
        }
        let (off, len) = self.slot(slot);
        if off == 0 {
            return Err(StorageError::InvalidSlot { page: 0, slot });
        }
        Ok(&self.bytes[off as usize..off as usize + len as usize])
    }

    /// True if `slot` holds a live record.
    pub fn is_live(&self, slot: SlotId) -> bool {
        slot < self.slot_count() && self.slot(slot).0 != 0
    }

    /// Deletes the record in `slot`.  The slot id is not reused; the space is
    /// reclaimed lazily by [`Page::compact`].
    pub fn delete(&mut self, slot: SlotId) -> StorageResult<()> {
        if slot >= self.slot_count() || self.slot(slot).0 == 0 {
            return Err(StorageError::InvalidSlot { page: 0, slot });
        }
        self.set_slot(slot, 0, 0);
        Ok(())
    }

    /// Updates the record in `slot` in place.
    ///
    /// The update succeeds if the new payload fits in the old byte range or in
    /// the remaining free space (possibly after compaction).  Returns `true`
    /// if the update was applied, `false` if the record must be relocated to
    /// another page by the caller.
    pub fn update(&mut self, slot: SlotId, record: &[u8]) -> StorageResult<bool> {
        if slot >= self.slot_count() || self.slot(slot).0 == 0 {
            return Err(StorageError::InvalidSlot { page: 0, slot });
        }
        let (off, len) = self.slot(slot);
        if record.len() <= len as usize {
            // Reuse the existing byte range (leaving a gap of len - record.len()
            // bytes which compaction can reclaim later).
            let start = off as usize + (len as usize - record.len());
            self.bytes[start..start + record.len()].copy_from_slice(record);
            self.set_slot(slot, start as u16, record.len() as u16);
            return Ok(true);
        }
        // Growing: drop the old copy, compact to coalesce every gap (including
        // garbage left by earlier growths), and append the new copy.  If it
        // still does not fit the old record is restored untouched and the
        // caller must relocate.
        let needed = record.len();
        let old = self.bytes[off as usize..off as usize + len as usize].to_vec();
        self.set_slot(slot, 0, 0);
        self.compact();
        let append_space =
            self.data_start() as usize - (HEADER_SIZE + self.slot_count() as usize * SLOT_SIZE);
        let (payload, fits): (&[u8], bool) = if needed <= append_space {
            (record, true)
        } else {
            (old.as_slice(), false)
        };
        let new_start = self.data_start() as usize - payload.len();
        self.bytes[new_start..new_start + payload.len()].copy_from_slice(payload);
        self.set_data_start(new_start as u16);
        self.set_slot(slot, new_start as u16, payload.len() as u16);
        Ok(fits)
    }

    /// Rewrites the record area to remove gaps left by deletions and
    /// shrinking updates.  Slot ids are preserved.
    pub fn compact(&mut self) {
        let slot_count = self.slot_count();
        let mut records: Vec<(SlotId, Vec<u8>)> = Vec::with_capacity(slot_count as usize);
        for s in 0..slot_count {
            let (off, len) = self.slot(s);
            if off != 0 {
                records.push((
                    s,
                    self.bytes[off as usize..off as usize + len as usize].to_vec(),
                ));
            }
        }
        let mut data_start = PAGE_SIZE;
        for (s, rec) in &records {
            data_start -= rec.len();
            self.bytes[data_start..data_start + rec.len()].copy_from_slice(rec);
            self.set_slot(*s, data_start as u16, rec.len() as u16);
        }
        self.set_data_start(data_start as u16);
    }

    /// Iterates over `(slot, record)` pairs of live records.
    pub fn iter(&self) -> impl Iterator<Item = (SlotId, &[u8])> + '_ {
        (0..self.slot_count()).filter_map(move |s| {
            let (off, len) = self.slot(s);
            if off == 0 {
                None
            } else {
                Some((s, &self.bytes[off as usize..off as usize + len as usize]))
            }
        })
    }
}

impl std::fmt::Debug for Page {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Page")
            .field("slots", &self.slot_count())
            .field("live", &self.num_live_records())
            .field("free", &self.free_space())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_page_is_empty() {
        let page = Page::new();
        assert_eq!(page.num_slots(), 0);
        assert_eq!(page.num_live_records(), 0);
        assert!(page.free_space() > PAGE_SIZE - 16);
    }

    #[test]
    fn insert_and_get_roundtrip() {
        let mut page = Page::new();
        let a = page.insert(b"hello").unwrap();
        let b = page.insert(b"world!").unwrap();
        assert_eq!(page.get(a).unwrap(), b"hello");
        assert_eq!(page.get(b).unwrap(), b"world!");
        assert_eq!(page.num_live_records(), 2);
    }

    #[test]
    fn delete_keeps_other_slots_stable() {
        let mut page = Page::new();
        let a = page.insert(b"aaa").unwrap();
        let b = page.insert(b"bbb").unwrap();
        page.delete(a).unwrap();
        assert!(page.get(a).is_err());
        assert_eq!(page.get(b).unwrap(), b"bbb");
        assert!(!page.is_live(a));
        assert!(page.is_live(b));
    }

    #[test]
    fn update_in_place_smaller_and_larger() {
        let mut page = Page::new();
        let a = page.insert(b"0123456789").unwrap();
        assert!(page.update(a, b"xy").unwrap());
        assert_eq!(page.get(a).unwrap(), b"xy");
        assert!(page.update(a, b"a longer record than before").unwrap());
        assert_eq!(page.get(a).unwrap(), b"a longer record than before");
    }

    #[test]
    fn update_relocation_signalled_when_full() {
        let mut page = Page::new();
        let a = page.insert(&[1u8; 100]).unwrap();
        // Fill the page almost completely.
        while page.fits(200) {
            page.insert(&[2u8; 200]).unwrap();
        }
        let huge = vec![3u8; 4000];
        if !page.fits(huge.len()) {
            assert!(!page.update(a, &huge).unwrap());
            // The original record is still intact after a failed grow.
            assert_eq!(page.get(a).unwrap(), &vec![1u8; 100][..]);
        }
    }

    #[test]
    fn record_too_large_is_rejected() {
        let mut page = Page::new();
        let err = page.insert(&vec![0u8; PAGE_SIZE]).unwrap_err();
        assert!(matches!(err, StorageError::RecordTooLarge { .. }));
    }

    #[test]
    fn fill_page_until_full() {
        let mut page = Page::new();
        let mut count = 0;
        while page.fits(64) {
            page.insert(&[7u8; 64]).unwrap();
            count += 1;
        }
        assert!(count > 100, "8 KiB page should hold >100 64-byte records");
        assert_eq!(page.num_live_records() as usize, count);
        // All records are retrievable.
        for (_, rec) in page.iter() {
            assert_eq!(rec, &vec![7u8; 64][..]);
        }
    }

    #[test]
    fn compact_reclaims_deleted_space() {
        let mut page = Page::new();
        let mut slots = Vec::new();
        while page.fits(256) {
            slots.push(page.insert(&vec![9u8; 256]).unwrap());
        }
        let before = page.free_space();
        // Delete every other record and compact.
        for s in slots.iter().step_by(2) {
            page.delete(*s).unwrap();
        }
        page.compact();
        assert!(page.free_space() > before + 100);
        // Remaining records survive compaction.
        for s in slots.iter().skip(1).step_by(2) {
            assert_eq!(page.get(*s).unwrap(), &vec![9u8; 256][..]);
        }
    }

    #[test]
    fn roundtrip_through_bytes() {
        let mut page = Page::new();
        let a = page.insert(b"persisted").unwrap();
        let image = *page.as_bytes();
        let reloaded = Page::from_bytes(image);
        assert_eq!(reloaded.get(a).unwrap(), b"persisted");
    }
}
