//! Offline benchmark-harness shim with a criterion-compatible API.
//!
//! The build environment has no network access, so the real
//! [criterion](https://crates.io/crates/criterion) crate cannot be fetched.
//! This shim implements the small API subset the `spgist-bench` benchmarks
//! use — [`Criterion::benchmark_group`], [`BenchmarkGroup::sample_size`],
//! [`BenchmarkGroup::bench_function`], [`Bencher::iter`], [`BenchmarkId`],
//! [`criterion_group!`] and [`criterion_main!`] — with honest wall-clock
//! timing (warm-up iteration followed by timed samples, reporting mean and
//! min/max).  Swapping back to the real crate is a one-line change in
//! `Cargo.toml`; no benchmark source needs to change.

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Identifier of one benchmark within a group: a function name plus a
/// parameter (dataset size, variant name, …).
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// Creates an id from a function name and a displayed parameter.
    pub fn new(function_name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            id: format!("{}/{}", function_name.into(), parameter),
        }
    }

    /// Creates an id from a parameter alone.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId { id: s.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(id: String) -> Self {
        BenchmarkId { id }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.id)
    }
}

/// The timing loop handed to each benchmark closure.
pub struct Bencher {
    samples: Vec<Duration>,
    sample_size: usize,
}

impl Bencher {
    /// Runs `f` once to warm up, then `sample_size` timed samples.
    pub fn iter<R>(&mut self, mut f: impl FnMut() -> R) {
        black_box(f());
        self.samples.clear();
        for _ in 0..self.sample_size {
            let start = Instant::now();
            black_box(f());
            self.samples.push(start.elapsed());
        }
    }

    fn report(&self) -> String {
        if self.samples.is_empty() {
            return "no samples".to_string();
        }
        let total: Duration = self.samples.iter().sum();
        let mean = total / self.samples.len() as u32;
        let min = self.samples.iter().min().expect("non-empty");
        let max = self.samples.iter().max().expect("non-empty");
        format!(
            "time: [{} {} {}] ({} samples)",
            fmt_duration(*min),
            fmt_duration(mean),
            fmt_duration(*max),
            self.samples.len()
        )
    }
}

fn fmt_duration(d: Duration) -> String {
    let nanos = d.as_nanos();
    if nanos < 1_000 {
        format!("{nanos} ns")
    } else if nanos < 1_000_000 {
        format!("{:.2} µs", nanos as f64 / 1e3)
    } else if nanos < 1_000_000_000 {
        format!("{:.2} ms", nanos as f64 / 1e6)
    } else {
        format!("{:.2} s", nanos as f64 / 1e9)
    }
}

/// A named collection of related benchmarks sharing a sample size.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Runs one benchmark and prints its timing summary.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let mut bencher = Bencher {
            samples: Vec::new(),
            // The shim keeps runs CI-friendly; the real criterion uses the
            // sample count for its statistical model instead.
            sample_size: self.sample_size.min(10),
        };
        f(&mut bencher);
        println!("{}/{:<40} {}", self.name, id, bencher.report());
        self
    }

    /// Ends the group (kept for API compatibility).
    pub fn finish(self) {}
}

/// Entry point mirroring `criterion::Criterion`.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: 10,
            _criterion: self,
        }
    }
}

/// Declares a benchmark group function, mirroring `criterion::criterion_group!`.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares the benchmark binary's `main`, mirroring `criterion::criterion_main!`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_bench(c: &mut Criterion) {
        let mut group = c.benchmark_group("shim");
        group.sample_size(3);
        group.bench_function(BenchmarkId::new("sum", 100), |b| {
            b.iter(|| (0..100u64).sum::<u64>())
        });
        group.finish();
    }

    criterion_group!(benches, sample_bench);

    #[test]
    fn group_runs_and_reports() {
        benches();
    }

    #[test]
    fn id_formats_name_and_parameter() {
        assert_eq!(BenchmarkId::new("trie", 20_000).to_string(), "trie/20000");
        assert_eq!(BenchmarkId::from_parameter("x").to_string(), "x");
    }
}
