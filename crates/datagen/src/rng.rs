//! A small deterministic pseudo-random generator.
//!
//! The workload generators only need reproducible, reasonably uniform
//! streams — not cryptographic quality — and the build environment is
//! offline, so depending on the `rand` crate is not an option.  `DetRng`
//! is a SplitMix64 generator (Steele, Lea & Flood, OOPSLA 2014) exposing
//! the same `seed_from_u64` / `gen_range` call shape the generators were
//! originally written against.

use std::ops::{Range, RangeInclusive};

/// Deterministic generator: same seed, same stream, on every platform.
#[derive(Debug, Clone)]
pub struct DetRng {
    state: u64,
}

impl DetRng {
    /// Creates a generator from a 64-bit seed (the `rand::SeedableRng`
    /// call shape).
    pub fn seed_from_u64(seed: u64) -> Self {
        DetRng { state: seed }
    }

    /// Next raw 64-bit output (SplitMix64).
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform `f64` in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        // 53 random mantissa bits.
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }

    /// Uniform value in `range` (half-open or inclusive; empty ranges are a
    /// caller bug, as in `rand`).
    pub fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T {
        range.sample_from(self)
    }
}

/// Ranges that can be sampled uniformly by [`DetRng::gen_range`].
pub trait SampleRange<T> {
    /// Draws one uniform value from the range.
    fn sample_from(self, rng: &mut DetRng) -> T;
}

macro_rules! int_sample_range {
    ($($t:ty),+) => {
        $(
            impl SampleRange<$t> for Range<$t> {
                fn sample_from(self, rng: &mut DetRng) -> $t {
                    assert!(self.start < self.end, "empty range");
                    let span = (self.end - self.start) as u64;
                    self.start + (rng.next_u64() % span) as $t
                }
            }
            impl SampleRange<$t> for RangeInclusive<$t> {
                fn sample_from(self, rng: &mut DetRng) -> $t {
                    let (start, end) = (*self.start(), *self.end());
                    assert!(start <= end, "empty range");
                    let span = (end - start) as u64 + 1;
                    if span == 0 {
                        // The range covers the whole u64 domain.
                        return rng.next_u64() as $t;
                    }
                    start + (rng.next_u64() % span) as $t
                }
            }
        )+
    };
}

int_sample_range!(u8, u16, u32, u64, usize);

impl SampleRange<f64> for Range<f64> {
    fn sample_from(self, rng: &mut DetRng) -> f64 {
        assert!(self.start < self.end, "empty range");
        self.start + rng.next_f64() * (self.end - self.start)
    }
}

impl SampleRange<f64> for RangeInclusive<f64> {
    fn sample_from(self, rng: &mut DetRng) -> f64 {
        let (start, end) = (*self.start(), *self.end());
        assert!(start <= end, "empty range");
        start + rng.next_f64() * (end - start)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = DetRng::seed_from_u64(42);
        let mut b = DetRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = DetRng::seed_from_u64(43);
        assert_ne!(DetRng::seed_from_u64(42).next_u64(), c.next_u64());
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = DetRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v = rng.gen_range(3..10usize);
            assert!((3..10).contains(&v));
            let v = rng.gen_range(1..=15usize);
            assert!((1..=15).contains(&v));
            let v = rng.gen_range(0..26u8);
            assert!(v < 26);
            let f = rng.gen_range(0.0..=100.0);
            assert!((0.0..=100.0).contains(&f));
            let f = rng.gen_range(2.5..3.5);
            assert!((2.5..3.5).contains(&f));
        }
    }

    #[test]
    fn output_is_roughly_uniform() {
        let mut rng = DetRng::seed_from_u64(123);
        let mut counts = [0usize; 10];
        for _ in 0..10_000 {
            counts[rng.gen_range(0..10usize)] += 1;
        }
        for &c in &counts {
            assert!(
                (700..1300).contains(&c),
                "bucket count {c} far from uniform"
            );
        }
    }
}
