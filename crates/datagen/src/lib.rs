//! Deterministic workload generators for the SP-GiST experiments.
//!
//! The paper's evaluation uses three synthetic dataset families
//! (Section 6): words whose length is uniform over `[1, 15]` with letters
//! `'a'..='z'`, two-dimensional points uniform in `[0, 100]²`, and random
//! line segments in the same space.  All generators here are seeded so every
//! experiment is reproducible run-to-run.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

use spgist_indexes::geom::{Point, Rect, Segment};

pub mod rng;

use rng::DetRng;

/// Paper word-length range: uniform over `[1, 15]`.
pub const WORD_LEN_RANGE: (usize, usize) = (1, 15);
/// Paper coordinate space: `[0, 100]` on both axes.
pub const WORLD_MAX: f64 = 100.0;

/// The world rectangle of the spatial experiments.
pub fn world() -> Rect {
    Rect::new(0.0, 0.0, WORLD_MAX, WORLD_MAX)
}

/// Generates `n` random words, length uniform in [`WORD_LEN_RANGE`], letters
/// `'a'..='z'` (the paper's string datasets).
pub fn words(n: usize, seed: u64) -> Vec<String> {
    let mut rng = DetRng::seed_from_u64(seed);
    (0..n)
        .map(|_| {
            let len = rng.gen_range(WORD_LEN_RANGE.0..=WORD_LEN_RANGE.1);
            (0..len)
                .map(|_| char::from(b'a' + rng.gen_range(0..26u8)))
                .collect()
        })
        .collect()
}

/// Generates `n` uniform points in `[0, 100]²`.
pub fn points(n: usize, seed: u64) -> Vec<Point> {
    let mut rng = DetRng::seed_from_u64(seed);
    (0..n)
        .map(|_| {
            Point::new(
                rng.gen_range(0.0..=WORLD_MAX),
                rng.gen_range(0.0..=WORLD_MAX),
            )
        })
        .collect()
}

/// Generates `n` random line segments inside the world, with length uniform
/// in `(0, max_len]`.
pub fn segments(n: usize, max_len: f64, seed: u64) -> Vec<Segment> {
    let mut rng = DetRng::seed_from_u64(seed);
    (0..n)
        .map(|_| {
            let a = Point::new(
                rng.gen_range(0.0..=WORLD_MAX),
                rng.gen_range(0.0..=WORLD_MAX),
            );
            let angle = rng.gen_range(0.0..std::f64::consts::TAU);
            let len = rng.gen_range(0.0..=max_len).max(1e-3);
            let b = Point::new(
                (a.x + angle.cos() * len).clamp(0.0, WORLD_MAX),
                (a.y + angle.sin() * len).clamp(0.0, WORLD_MAX),
            );
            Segment::new(a, b)
        })
        .collect()
}

/// Query workloads derived from a dataset, mirroring the paper's search
/// experiments.
pub struct QueryWorkload;

impl QueryWorkload {
    /// Picks `n` existing keys for exact-match queries.
    pub fn existing<T: Clone>(data: &[T], n: usize, seed: u64) -> Vec<T> {
        let mut rng = DetRng::seed_from_u64(seed);
        (0..n)
            .map(|_| data[rng.gen_range(0..data.len())].clone())
            .collect()
    }

    /// Builds `n` prefix queries by truncating existing words.
    pub fn prefixes(words: &[String], n: usize, min_len: usize, seed: u64) -> Vec<String> {
        let mut rng = DetRng::seed_from_u64(seed);
        (0..n)
            .map(|_| {
                let w = &words[rng.gen_range(0..words.len())];
                let len = rng.gen_range(min_len..=w.len().max(min_len)).min(w.len());
                w[..len.max(1).min(w.len())].to_string()
            })
            .collect()
    }

    /// Builds `n` `?`-wildcard patterns by replacing `wildcards` random
    /// positions of existing words (the paper notes B⁺-tree performance is
    /// very sensitive to where those wildcards fall, including position 0).
    pub fn regexes(words: &[String], n: usize, wildcards: usize, seed: u64) -> Vec<String> {
        let mut rng = DetRng::seed_from_u64(seed);
        (0..n)
            .map(|_| {
                let w = &words[rng.gen_range(0..words.len())];
                let mut pattern: Vec<u8> = w.as_bytes().to_vec();
                for _ in 0..wildcards.min(pattern.len()) {
                    let pos = rng.gen_range(0..pattern.len());
                    pattern[pos] = b'?';
                }
                String::from_utf8(pattern).expect("ascii pattern")
            })
            .collect()
    }

    /// Builds `n` substring queries by slicing existing words.
    pub fn substrings(words: &[String], n: usize, len: usize, seed: u64) -> Vec<String> {
        let mut rng = DetRng::seed_from_u64(seed);
        (0..n)
            .map(|_| {
                let w = &words[rng.gen_range(0..words.len())];
                if w.len() <= len {
                    w.clone()
                } else {
                    let start = rng.gen_range(0..=w.len() - len);
                    w[start..start + len].to_string()
                }
            })
            .collect()
    }

    /// Builds `n` square range-query windows with the given side length.
    pub fn windows(n: usize, side: f64, seed: u64) -> Vec<Rect> {
        let mut rng = DetRng::seed_from_u64(seed);
        (0..n)
            .map(|_| {
                let x = rng.gen_range(0.0..=(WORLD_MAX - side).max(0.0));
                let y = rng.gen_range(0.0..=(WORLD_MAX - side).max(0.0));
                Rect::new(x, y, x + side, y + side)
            })
            .collect()
    }

    /// Builds `n` NN query anchor points.
    pub fn nn_points(n: usize, seed: u64) -> Vec<Point> {
        points(n, seed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn words_are_deterministic_and_in_range() {
        let a = words(500, 7);
        let b = words(500, 7);
        assert_eq!(a, b, "same seed, same dataset");
        assert_ne!(a, words(500, 8));
        assert!(a.iter().all(|w| {
            (WORD_LEN_RANGE.0..=WORD_LEN_RANGE.1).contains(&w.len())
                && w.bytes().all(|c| c.is_ascii_lowercase())
        }));
    }

    #[test]
    fn points_and_segments_stay_in_world() {
        let pts = points(500, 3);
        assert!(pts.iter().all(|p| world().contains_point(p)));
        let segs = segments(300, 10.0, 3);
        assert!(segs
            .iter()
            .all(|s| world().contains_point(&s.a) && world().contains_point(&s.b)));
        assert!(segs.iter().all(|s| s.length() <= 10.0 + 1e-9));
    }

    #[test]
    fn query_workloads_derive_from_data() {
        let ws = words(200, 11);
        let exact = QueryWorkload::existing(&ws, 50, 1);
        assert_eq!(exact.len(), 50);
        assert!(exact.iter().all(|q| ws.contains(q)));

        let prefixes = QueryWorkload::prefixes(&ws, 50, 2, 2);
        assert!(prefixes
            .iter()
            .all(|p| ws.iter().any(|w| w.starts_with(p.as_str()))));

        let regexes = QueryWorkload::regexes(&ws, 50, 2, 3);
        assert!(regexes.iter().all(|r| r.contains('?') || r.len() <= 2));

        let subs = QueryWorkload::substrings(&ws, 50, 3, 4);
        assert!(subs
            .iter()
            .all(|s| ws.iter().any(|w| w.contains(s.as_str()))));

        let wins = QueryWorkload::windows(20, 5.0, 5);
        assert!(wins.iter().all(|r| (r.width() - 5.0).abs() < 1e-9));
    }
}
