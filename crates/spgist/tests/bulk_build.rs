//! Bulk-build equivalence: `SpIndex::bulk_build` must answer every query
//! exactly like the insert loop it replaces, for all five index classes, on
//! DetRng-seeded data — including the degenerate inputs (all-equal keys,
//! resolution-exhausted partitions) where `picksplit` can make no progress —
//! and a bulk-built database must round-trip through the durable catalog.

use std::sync::Arc;

use spgist::prelude::*;
use spgist_datagen::rng::DetRng;
use spgist_datagen::{points, segments, words, world, QueryWorkload};
use spgist_indexes::query::hamming_distance;

const SEED: u64 = 0xb01d_b11d;

fn pool() -> Arc<BufferPool> {
    BufferPool::in_memory()
}

/// Sorted row ids a query returns.
fn rows<I: SpIndex>(index: &I, query: &I::Query) -> Vec<RowId> {
    let mut rows = index.cursor(query).unwrap().rows().unwrap();
    rows.sort_unstable();
    rows
}

/// Drains an ordered (`@@`) cursor into its `(key, row)` stream.
fn ordered<I: SpIndex>(index: &I, query: &I::Query) -> Vec<(I::Key, RowId)> {
    index
        .ordered_cursor(query)
        .unwrap()
        .expect("class registers @@")
        .collect::<Result<_, _>>()
        .unwrap()
}

/// Asserts two ordered streams agree: same row set, and the same distance
/// *profile* position by position (tie order inside one distance may differ
/// between differently-shaped trees).
fn assert_ordered_equivalent<K: Clone>(
    bulk: &[(K, RowId)],
    looped: &[(K, RowId)],
    dist: impl Fn(&K) -> f64,
) {
    assert_eq!(bulk.len(), looped.len());
    let profile =
        |items: &[(K, RowId)]| -> Vec<f64> { items.iter().map(|(k, _)| dist(k)).collect() };
    let (bp, lp) = (profile(bulk), profile(looped));
    assert!(
        bp.windows(2).all(|w| w[0] <= w[1]),
        "bulk stream is distance-ordered"
    );
    for (i, (b, l)) in bp.iter().zip(&lp).enumerate() {
        assert!(
            (b - l).abs() < 1e-9,
            "distance profile diverges at {i}: {b} vs {l}"
        );
    }
    let mut br: Vec<RowId> = bulk.iter().map(|(_, r)| *r).collect();
    let mut lr: Vec<RowId> = looped.iter().map(|(_, r)| *r).collect();
    br.sort_unstable();
    lr.sort_unstable();
    assert_eq!(br, lr, "ordered streams report the same rows");
}

/// Builds the same item set twice — bulk and loop — and checks logical
/// counts plus the build-stats/len invariants shared by every class.
fn twins<I: SpIndex>(items: Vec<(I::Key, RowId)>) -> (I, I) {
    let bulk = I::open(pool()).unwrap();
    let stats = bulk.bulk_build(items.clone()).unwrap();
    let looped = I::open(pool()).unwrap();
    for (key, row) in items {
        looped.insert(key, row).unwrap();
    }
    assert_eq!(bulk.len(), looped.len(), "logical item counts agree");
    assert_eq!(
        stats.items,
        bulk.stats().unwrap().items,
        "build-time stats agree with a traversal"
    );
    (bulk, looped)
}

// ---------------------------------------------------------------------------
// Per-class equivalence on DetRng-seeded data
// ---------------------------------------------------------------------------

#[test]
fn trie_bulk_build_equivalent_to_insert_loop() {
    let data = words(3_000, SEED);
    let items: Vec<(String, RowId)> = data
        .iter()
        .cloned()
        .enumerate()
        .map(|(row, w)| (w, row as RowId))
        .collect();
    let (bulk, looped) = twins::<TrieIndex>(items.clone());

    for probe in QueryWorkload::existing(&data, 30, SEED ^ 1) {
        let q = StringQuery::Equals(probe);
        assert_eq!(rows(&bulk, &q), rows(&looped, &q));
    }
    for prefix in QueryWorkload::prefixes(&data, 20, 2, SEED ^ 2) {
        let q = StringQuery::Prefix(prefix);
        assert_eq!(rows(&bulk, &q), rows(&looped, &q));
    }
    for regex in QueryWorkload::regexes(&data, 20, 2, SEED ^ 3) {
        let q = StringQuery::Regex(regex);
        assert_eq!(rows(&bulk, &q), rows(&looped, &q));
    }

    // Ordered scans stream the same distance profile.
    let anchor = data[17].clone();
    let q = StringQuery::Nearest(anchor.clone());
    assert_ordered_equivalent(&ordered(&bulk, &q), &ordered(&looped, &q), |k| {
        hamming_distance(k, &anchor)
    });

    // Deletes behave identically on both trees.
    let mut rng = DetRng::seed_from_u64(SEED ^ 4);
    for _ in 0..50 {
        let row = rng.gen_range(0..items.len()) as RowId;
        let key = &items[row as usize].0;
        assert_eq!(
            SpIndex::delete(&bulk, key, row).unwrap(),
            SpIndex::delete(&looped, key, row).unwrap()
        );
    }
    assert_eq!(bulk.len(), looped.len());
    for probe in QueryWorkload::existing(&data, 20, SEED ^ 5) {
        let q = StringQuery::Equals(probe);
        assert_eq!(rows(&bulk, &q), rows(&looped, &q));
    }
}

#[test]
fn suffix_bulk_build_equivalent_to_insert_loop() {
    let data = words(800, SEED ^ 0x10);
    let items: Vec<(String, RowId)> = data
        .iter()
        .cloned()
        .enumerate()
        .map(|(row, w)| (w, row as RowId))
        .collect();
    let (bulk, looped) = twins::<SuffixTreeIndex>(items.clone());
    assert_eq!(
        bulk.suffix_count(),
        looped.suffix_count(),
        "both expansions store every suffix"
    );

    for needle in QueryWorkload::substrings(&data, 30, 3, SEED ^ 0x11) {
        let q = StringQuery::Substring(needle);
        assert_eq!(rows(&bulk, &q), rows(&looped, &q));
    }

    // Uniform delete removes every suffix of the word from both.
    let (word, row) = (&items[11].0, 11);
    assert!(SpIndex::delete(&bulk, word, row).unwrap());
    assert!(SpIndex::delete(&looped, word, row).unwrap());
    assert_eq!(bulk.len(), looped.len());
    assert_eq!(bulk.suffix_count(), looped.suffix_count());
    let q = StringQuery::Substring(word.clone());
    assert_eq!(rows(&bulk, &q), rows(&looped, &q));
}

#[test]
fn kdtree_bulk_build_equivalent_to_insert_loop() {
    let data = points(3_000, SEED ^ 0x20);
    let items: Vec<(Point, RowId)> = data
        .iter()
        .enumerate()
        .map(|(row, p)| (*p, row as RowId))
        .collect();
    let (bulk, looped) = twins::<KdTreeIndex>(items.clone());

    for probe in QueryWorkload::existing(&data, 30, SEED ^ 0x21) {
        let q = PointQuery::Equals(probe);
        assert_eq!(rows(&bulk, &q), rows(&looped, &q));
    }
    for window in QueryWorkload::windows(20, 8.0, SEED ^ 0x22) {
        let q = PointQuery::InRect(window);
        assert_eq!(rows(&bulk, &q), rows(&looped, &q));
    }

    let anchor = Point::new(47.0, 53.0);
    let q = PointQuery::Nearest(anchor);
    assert_ordered_equivalent(&ordered(&bulk, &q), &ordered(&looped, &q), |p| {
        p.distance(&anchor)
    });

    // The median-split build must not be *worse* than insertion order.
    let (bs, ls) = (bulk.stats().unwrap(), looped.stats().unwrap());
    assert!(
        bs.max_node_height <= ls.max_node_height,
        "median splits keep the bulk-built kd-tree no deeper ({} vs {})",
        bs.max_node_height,
        ls.max_node_height
    );

    let mut rng = DetRng::seed_from_u64(SEED ^ 0x23);
    for _ in 0..40 {
        let row = rng.gen_range(0..items.len()) as RowId;
        let key = items[row as usize].0;
        assert_eq!(
            SpIndex::delete(&bulk, &key, row).unwrap(),
            SpIndex::delete(&looped, &key, row).unwrap()
        );
    }
    for window in QueryWorkload::windows(10, 10.0, SEED ^ 0x24) {
        let q = PointQuery::InRect(window);
        assert_eq!(rows(&bulk, &q), rows(&looped, &q));
    }
}

#[test]
fn pquadtree_bulk_build_equivalent_to_insert_loop() {
    let data = points(3_000, SEED ^ 0x30);
    let items: Vec<(Point, RowId)> = data
        .iter()
        .enumerate()
        .map(|(row, p)| (*p, row as RowId))
        .collect();
    let (bulk, looped) = twins::<PointQuadtreeIndex>(items.clone());

    for probe in QueryWorkload::existing(&data, 30, SEED ^ 0x31) {
        let q = PointQuery::Equals(probe);
        assert_eq!(rows(&bulk, &q), rows(&looped, &q));
    }
    for window in QueryWorkload::windows(20, 8.0, SEED ^ 0x32) {
        let q = PointQuery::InRect(window);
        assert_eq!(rows(&bulk, &q), rows(&looped, &q));
    }
    let anchor = Point::new(12.0, 88.0);
    let q = PointQuery::Nearest(anchor);
    assert_ordered_equivalent(&ordered(&bulk, &q), &ordered(&looped, &q), |p| {
        p.distance(&anchor)
    });
}

#[test]
fn pmr_bulk_build_equivalent_to_insert_loop() {
    let data = segments(1_500, 10.0, SEED ^ 0x40);
    let items: Vec<(Segment, RowId)> = data
        .iter()
        .enumerate()
        .map(|(row, s)| (*s, row as RowId))
        .collect();
    let (bulk, looped) = twins::<PmrQuadtreeIndex>(items.clone());

    for probe in QueryWorkload::existing(&data, 30, SEED ^ 0x41) {
        let q = SegmentQuery::Equals(probe);
        assert_eq!(rows(&bulk, &q), rows(&looped, &q));
    }
    for window in QueryWorkload::windows(20, 8.0, SEED ^ 0x42) {
        let q = SegmentQuery::InRect(window);
        assert_eq!(rows(&bulk, &q), rows(&looped, &q));
    }
    let anchor = Point::new(60.0, 40.0);
    let q = SegmentQuery::Nearest(anchor);
    assert_ordered_equivalent(&ordered(&bulk, &q), &ordered(&looped, &q), |s| {
        s.distance_to_point(&anchor)
    });

    // Replicated delete removes every replica from both trees.
    let mut rng = DetRng::seed_from_u64(SEED ^ 0x43);
    for _ in 0..30 {
        let row = rng.gen_range(0..items.len()) as RowId;
        let key = items[row as usize].0;
        assert_eq!(
            SpIndex::delete(&bulk, &key, row).unwrap(),
            SpIndex::delete(&looped, &key, row).unwrap()
        );
    }
    assert_eq!(bulk.len(), looped.len());
    let q = SegmentQuery::InRect(world());
    assert_eq!(rows(&bulk, &q), rows(&looped, &q));
}

// ---------------------------------------------------------------------------
// Degenerate partitions: all-equal keys and exhausted resolution
// ---------------------------------------------------------------------------

#[test]
fn all_equal_keys_build_on_every_class() {
    let n: usize = 200;
    let word_items: Vec<(String, RowId)> = (0..n)
        .map(|row| ("same".to_string(), row as RowId))
        .collect();
    let (bulk, looped) = twins::<TrieIndex>(word_items);
    let q = StringQuery::Equals("same".into());
    assert_eq!(rows(&bulk, &q), rows(&looped, &q));
    assert_eq!(rows(&bulk, &q).len(), n);

    let (bulk, looped) = twins::<SuffixTreeIndex>(
        (0..n)
            .map(|row| ("echo".to_string(), row as RowId))
            .collect(),
    );
    let q = StringQuery::Substring("ch".into());
    assert_eq!(rows(&bulk, &q), rows(&looped, &q));
    assert_eq!(rows(&bulk, &q).len(), n);

    // Bucket size 1 + identical points: the insert path chains duplicates
    // down to the resolution; the bulk build must terminate the same way.
    let p = Point::new(33.3, 44.4);
    let (bulk, looped) = twins::<KdTreeIndex>((0..n).map(|row| (p, row as RowId)).collect());
    let q = PointQuery::Equals(p);
    assert_eq!(rows(&bulk, &q), rows(&looped, &q));
    assert_eq!(rows(&bulk, &q).len(), n);

    let (bulk, looped) = twins::<PointQuadtreeIndex>((0..n).map(|row| (p, row as RowId)).collect());
    assert_eq!(rows(&bulk, &q), rows(&looped, &q));

    // A short off-boundary segment: every decomposition level keeps all
    // copies in one quadrant until the resolution is exhausted — the
    // resolution-exhausted-partition case for the space-driven class.
    let s = Segment::new(Point::new(33.31, 44.41), Point::new(33.37, 44.47));
    let (bulk, looped) = twins::<PmrQuadtreeIndex>((0..n).map(|row| (s, row as RowId)).collect());
    let q = SegmentQuery::Equals(s);
    assert_eq!(rows(&bulk, &q), rows(&looped, &q));
    assert_eq!(rows(&bulk, &q).len(), n);
}

#[test]
fn overlapping_duplicate_segments_do_not_blow_up_the_bulk_build() {
    // Identical (or world-spanning, heavily overlapping) segments past the
    // splitting threshold replicate into several quadrants at every level
    // without ever separating; the builder must stop with an oversized leaf
    // instead of decomposing to the resolution (which would multiply the
    // replicas ~25,000×).
    let dup = Segment::new(Point::new(10.0, 10.0), Point::new(60.0, 65.0));
    let items: Vec<(Segment, RowId)> = (0..24).map(|row| (dup, row as RowId)).collect();
    let bulk = PmrQuadtreeIndex::open(pool()).unwrap();
    let stats = bulk.bulk_build(items.clone()).unwrap();
    assert!(
        stats.total_nodes() <= 16,
        "replication without separation must terminate early ({} nodes)",
        stats.total_nodes()
    );
    let looped = PmrQuadtreeIndex::open(pool()).unwrap();
    for (key, row) in items {
        SpIndex::insert(&looped, key, row).unwrap();
    }
    let q = SegmentQuery::Equals(dup);
    assert_eq!(rows(&bulk, &q), rows(&looped, &q));
    assert_eq!(rows(&bulk, &q).len(), 24);

    // A mixed set — many distinct segments plus an over-threshold clump of
    // duplicates — still decomposes the distinct part and answers queries
    // identically.
    let mut mixed: Vec<(Segment, RowId)> = segments(600, 10.0, SEED ^ 0x55)
        .into_iter()
        .enumerate()
        .map(|(row, s)| (s, row as RowId))
        .collect();
    for i in 0..20 {
        mixed.push((dup, 600 + i as RowId));
    }
    let (bulk, looped) = twins::<PmrQuadtreeIndex>(mixed);
    for window in QueryWorkload::windows(15, 8.0, SEED ^ 0x56) {
        let q = SegmentQuery::InRect(window);
        assert_eq!(rows(&bulk, &q), rows(&looped, &q));
    }
}

#[test]
fn resolution_exhausted_trie_partitions_match() {
    // A resolution of 3 forces oversized leaves for every shared 3+ prefix.
    let config = TrieOps::patricia().config();
    let tight = SpGistConfig {
        resolution: 3,
        ..config
    };
    let data = words(1_200, SEED ^ 0x50);
    let items: Vec<(String, RowId)> = data
        .iter()
        .cloned()
        .enumerate()
        .map(|(row, w)| (w, row as RowId))
        .collect();

    let bulk = TrieIndex::with_ops(pool(), TrieOps::with_config(tight)).unwrap();
    bulk.bulk_build(items.clone()).unwrap();
    let looped = TrieIndex::with_ops(pool(), TrieOps::with_config(tight)).unwrap();
    for (key, row) in items {
        SpIndex::insert(&looped, key, row).unwrap();
    }
    assert_eq!(bulk.len(), looped.len());
    for probe in QueryWorkload::existing(&data, 40, SEED ^ 0x51) {
        let q = StringQuery::Equals(probe);
        assert_eq!(rows(&bulk, &q), rows(&looped, &q));
    }
    for prefix in QueryWorkload::prefixes(&data, 20, 1, SEED ^ 0x52) {
        let q = StringQuery::Prefix(prefix);
        assert_eq!(rows(&bulk, &q), rows(&looped, &q));
    }
}

#[test]
fn out_of_world_segments_survive_a_bulk_build() {
    // Segments outside the PMR world intersect no quadrant; the builder
    // must park them (as the insert path does), not drop them.
    let mut items: Vec<(Segment, RowId)> = segments(400, 10.0, SEED ^ 0x60)
        .into_iter()
        .enumerate()
        .map(|(row, s)| (s, row as RowId))
        .collect();
    let outside = Segment::new(Point::new(150.0, 150.0), Point::new(160.0, 160.0));
    items.push((outside, 400));
    let (bulk, looped) = twins::<PmrQuadtreeIndex>(items);
    let q = SegmentQuery::Equals(outside);
    assert_eq!(rows(&bulk, &q), vec![400]);
    assert_eq!(rows(&bulk, &q), rows(&looped, &q));
}

// ---------------------------------------------------------------------------
// Executor DDL and the batched DML statement
// ---------------------------------------------------------------------------

#[test]
fn create_index_bulk_path_answers_like_the_maintenance_path() {
    let data = words(2_500, SEED ^ 0x70);

    // Path A: populate first, CREATE INDEX bulk-builds from the heap scan —
    // on an eviction-bounded pool, the regime the bulk path exists for.
    let mut after = Database::in_memory_with_config(BufferPoolConfig {
        capacity: 24,
        ..Default::default()
    });
    after.create_table("words", KeyType::Varchar).unwrap();
    after
        .table("words")
        .unwrap()
        .insert_many(data.iter().map(String::as_str))
        .unwrap();
    after.create_index("words", "t", IndexSpec::Trie).unwrap();

    // Path B: CREATE INDEX first, every insert maintains it incrementally.
    let mut before = Database::in_memory();
    before.create_table("words", KeyType::Varchar).unwrap();
    before.create_index("words", "t", IndexSpec::Trie).unwrap();
    for w in &data {
        before.table("words").unwrap().insert(w.as_str()).unwrap();
    }

    for probe in QueryWorkload::prefixes(&data, 25, 2, SEED ^ 0x71) {
        let qa = after.query("words", Predicate::str_prefix(&probe)).unwrap();
        assert!(
            qa.source().scans_index("t"),
            "selective prefix {probe:?} routes to the bulk-built index"
        );
        let mut a = qa.rows().unwrap();
        let mut b = before
            .query("words", Predicate::str_prefix(&probe))
            .unwrap()
            .rows()
            .unwrap();
        a.sort_unstable();
        b.sort_unstable();
        assert_eq!(a, b, "probe {probe:?}");
    }

    // The bulk-built index participates in DML like any other.
    let table = after.table("words").unwrap();
    let row = table.insert("zzyzx").unwrap();
    assert_eq!(
        after
            .query("words", Predicate::str_equals("zzyzx"))
            .unwrap()
            .rows()
            .unwrap(),
        vec![row]
    );
    assert!(table.delete(row).unwrap());
}

#[test]
fn create_index_bulk_path_covers_every_spec() {
    // Points and segments take the same DDL route; exercise the remaining
    // specs against the seq-scan ground truth.
    let mut db = Database::in_memory();
    db.create_table("pts", KeyType::Point).unwrap();
    let data = points(2_000, SEED ^ 0x80);
    db.table("pts").unwrap().insert_many(data.clone()).unwrap();
    db.create_index("pts", "kd", IndexSpec::KdTree).unwrap();
    db.create_index("pts", "quad", IndexSpec::PointQuadtree)
        .unwrap();

    let window = Rect::new(20.0, 20.0, 45.0, 60.0);
    let expected: Vec<RowId> = data
        .iter()
        .enumerate()
        .filter(|(_, p)| window.contains_point(p))
        .map(|(row, _)| row as RowId)
        .collect();
    let mut got = db
        .query("pts", Predicate::point_in_rect(window))
        .unwrap()
        .rows()
        .unwrap();
    got.sort_unstable();
    assert_eq!(got, expected);

    let mut db = Database::in_memory();
    db.create_table("segs", KeyType::Segment).unwrap();
    let data = segments(1_000, 10.0, SEED ^ 0x81);
    db.table("segs").unwrap().insert_many(data.clone()).unwrap();
    db.create_index("segs", "pmr", IndexSpec::PmrQuadtree { world: world() })
        .unwrap();
    let expected: Vec<RowId> = data
        .iter()
        .enumerate()
        .filter(|(_, s)| s.intersects_rect(&window))
        .map(|(row, _)| row as RowId)
        .collect();
    let mut got = db
        .query("segs", Predicate::segment_in_rect(window))
        .unwrap()
        .rows()
        .unwrap();
    got.sort_unstable();
    assert_eq!(got, expected);
}

// ---------------------------------------------------------------------------
// Durability: bulk-built indexes checkpoint through the catalog unchanged
// ---------------------------------------------------------------------------

#[test]
fn bulk_built_database_round_trips_through_close_and_open() {
    let dir = std::env::temp_dir().join(format!("spgist-bulk-durable-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("db.pages");
    let data = words(3_000, SEED ^ 0x90);
    let probe_prefixes = QueryWorkload::prefixes(&data, 15, 2, SEED ^ 0x91);

    let expected: Vec<Vec<RowId>> = {
        let mut db = Database::create(&path).unwrap();
        db.create_table("words", KeyType::Varchar).unwrap();
        db.table("words")
            .unwrap()
            .insert_many(data.iter().map(String::as_str))
            .unwrap();
        db.create_index("words", "words_trie", IndexSpec::Trie)
            .unwrap();
        db.create_index("words", "words_suffix", IndexSpec::SuffixTree)
            .unwrap();
        let expected = probe_prefixes
            .iter()
            .map(|p| {
                let mut rows = db
                    .query("words", Predicate::str_prefix(p))
                    .unwrap()
                    .rows()
                    .unwrap();
                rows.sort_unstable();
                rows
            })
            .collect();
        db.close().unwrap();
        expected
    };

    {
        let mut db = Database::open(&path).unwrap();
        assert_eq!(db.table("words").unwrap().len(), 3_000);
        assert_eq!(
            db.table("words").unwrap().index_names(),
            vec!["words_trie", "words_suffix"]
        );
        for (p, want) in probe_prefixes.iter().zip(&expected) {
            let cursor = db.query("words", Predicate::str_prefix(p)).unwrap();
            assert!(
                cursor.source().scans_index("words_trie"),
                "reopened bulk-built index serves {p:?}"
            );
            let mut rows = cursor.rows().unwrap();
            rows.sort_unstable();
            assert_eq!(&rows, want, "prefix {p:?} after reopen");
        }
        // Substring queries exercise the reopened bulk-built suffix tree.
        let needle = &data[7][..2.min(data[7].len())];
        let via_suffix = db.query("words", Predicate::str_substring(needle)).unwrap();
        assert!(via_suffix.source().scans_index("words_suffix"));
        let got = via_suffix.rows().unwrap().len();
        let brute = data.iter().filter(|w| w.contains(needle)).count();
        assert_eq!(got, brute, "needle {needle:?}");

        // The reopened database stays fully operational.
        db.table("words").unwrap().insert_many(["freshly"]).unwrap();
        assert!(db.table("words").unwrap().delete(3).unwrap());
        assert!(db.drop_index("words", "words_suffix").unwrap());
        db.close().unwrap();
    }
    {
        let db = Database::open(&path).unwrap();
        assert_eq!(db.table("words").unwrap().len(), 3_000);
        assert_eq!(db.table("words").unwrap().index_names(), vec!["words_trie"]);
    }
    std::fs::remove_dir_all(&dir).unwrap();
}
