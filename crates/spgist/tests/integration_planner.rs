//! Integration of the catalog/planner layer with real indexes: the planner's
//! choice is driven by statistics measured from actually-built indexes, and
//! the chosen access path returns the same rows as a scan.

use spgist::catalog::planner::AvailableIndex;
use spgist::catalog::AccessPath;
use spgist::datagen::words;
use spgist::prelude::*;

fn build_table(
    n: usize,
) -> (
    Vec<String>,
    TrieIndex,
    BPlusTree,
    SuffixTreeIndex,
    TableStats,
) {
    let data = words(n, 77);
    let trie = TrieIndex::create(BufferPool::in_memory()).unwrap();
    let mut btree = BPlusTree::create(BufferPool::in_memory()).unwrap();
    let suffix = SuffixTreeIndex::create(BufferPool::in_memory()).unwrap();
    for (row, w) in data.iter().enumerate() {
        trie.insert(w, row as RowId).unwrap();
        btree.insert_str(w, row as RowId).unwrap();
        suffix.insert(w, row as RowId).unwrap();
    }
    let mut distinct = data.clone();
    distinct.sort();
    distinct.dedup();
    let stats = TableStats {
        rows: data.len() as u64,
        heap_pages: (data.len() as u64 / 300).max(1),
        distinct_values: distinct.len() as u64,
    };
    (data, trie, btree, suffix, stats)
}

fn available(trie: &TrieIndex, btree: &BPlusTree, suffix: &SuffixTreeIndex) -> Vec<AvailableIndex> {
    let trie_stats = trie.stats().unwrap();
    let btree_stats = btree.stats().unwrap();
    let suffix_stats = suffix.stats().unwrap();
    vec![
        AvailableIndex {
            name: "sp_trie_index".into(),
            operator_class: "SP_GiST_trie".into(),
            pages: trie_stats.pages,
            page_height: trie_stats.max_page_height,
        },
        AvailableIndex {
            name: "btree_index".into(),
            operator_class: "btree_varchar".into(),
            pages: btree_stats.pages,
            page_height: btree_stats.height,
        },
        AvailableIndex {
            name: "sp_suffix_index".into(),
            operator_class: "SP_GiST_suffix".into(),
            pages: suffix_stats.pages,
            page_height: suffix_stats.max_page_height,
        },
    ]
}

#[test]
fn planner_routes_each_operator_to_an_index_that_supports_it() {
    let (_, trie, btree, suffix, stats) = build_table(6_000);
    let catalog = Catalog::with_paper_defaults();
    let planner = Planner::new(&catalog);
    let indexes = available(&trie, &btree, &suffix);

    // Regular-expression queries can only use the trie operator class.
    let path = planner.plan(&QueryPredicate::new("?=", "VARCHAR"), &stats, &indexes);
    match path {
        AccessPath::IndexScan { index, .. } => assert_eq!(index, "sp_trie_index"),
        other => panic!("expected trie index scan, got {other:?}"),
    }

    // Substring queries can only use the suffix tree.
    let path = planner.plan(&QueryPredicate::new("@=", "VARCHAR"), &stats, &indexes);
    match path {
        AccessPath::IndexScan { index, .. } => assert_eq!(index, "sp_suffix_index"),
        other => panic!("expected suffix index scan, got {other:?}"),
    }

    // Equality is supported by both string indexes; some index must win over
    // the sequential scan on a selective predicate.
    let path = planner.plan(&QueryPredicate::new("=", "VARCHAR"), &stats, &indexes);
    assert!(matches!(path, AccessPath::IndexScan { .. }));

    // A spatial operator over a VARCHAR column has no matching class.
    let path = planner.plan(&QueryPredicate::new("^", "VARCHAR"), &stats, &indexes);
    assert!(matches!(path, AccessPath::SeqScan { .. }));
}

#[test]
fn planned_index_scan_returns_the_same_rows_as_executing_the_query() {
    let (data, trie, btree, suffix, stats) = build_table(6_000);
    let catalog = Catalog::with_paper_defaults();
    let planner = Planner::new(&catalog);
    let indexes = available(&trie, &btree, &suffix);

    let query_word = data[123].clone();
    let path = planner.plan(&QueryPredicate::new("=", "VARCHAR"), &stats, &indexes);
    let rows = match path {
        AccessPath::IndexScan { index, .. } => match index.as_str() {
            "sp_trie_index" => trie.equals(&query_word).unwrap(),
            "btree_index" => btree.search_str(&query_word).unwrap(),
            other => panic!("unexpected index {other}"),
        },
        other => panic!("a selective equality query should use an index scan, got {other:?}"),
    };
    let mut rows = rows;
    rows.sort_unstable();
    let expected: Vec<RowId> = data
        .iter()
        .enumerate()
        .filter(|(_, w)| **w == query_word)
        .map(|(i, _)| i as RowId)
        .collect();
    assert_eq!(rows, expected);
}
