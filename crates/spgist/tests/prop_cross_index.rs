//! Property-based tests: for randomized datasets and queries, every index
//! agrees with a straightforward in-memory model, and the streaming
//! [`Cursor`] API returns exactly what the materializing API returns.
//!
//! The generators are seeded by case number (no external property-testing
//! crate: the build environment is offline), so every failure is
//! reproducible from the case index printed in the assertion message.

use spgist::datagen::rng::DetRng;
use spgist::prelude::*;

const CASES: u64 = 32;

/// Random word over a tiny alphabet, length 0..=15 — small alphabets
/// maximize prefix sharing and duplicate keys.
fn random_word(rng: &mut DetRng) -> String {
    let len = rng.gen_range(0..=15usize);
    (0..len)
        .map(|_| char::from(b'a' + rng.gen_range(0..4u8)))
        .collect()
}

fn random_words(rng: &mut DetRng, max: usize) -> Vec<String> {
    let n = rng.gen_range(1..=max);
    (0..n).map(|_| random_word(rng)).collect()
}

/// Random point on a coarse 50×50 grid scaled by 2 — many duplicate
/// coordinates and exact duplicate points.
fn random_point(rng: &mut DetRng) -> Point {
    Point::new(
        f64::from(rng.gen_range(0..50u32)) * 2.0,
        f64::from(rng.gen_range(0..50u32)) * 2.0,
    )
}

fn random_points(rng: &mut DetRng, max: usize) -> Vec<Point> {
    let n = rng.gen_range(1..=max);
    (0..n).map(|_| random_point(rng)).collect()
}

fn random_segment(rng: &mut DetRng) -> Segment {
    let a = random_point(rng);
    let b = Point::new(
        (a.x + rng.gen_range(0.0..=20.0)).min(100.0),
        (a.y + rng.gen_range(0.0..=20.0)).min(100.0),
    );
    Segment::new(a, b)
}

fn sorted(mut rows: Vec<RowId>) -> Vec<RowId> {
    rows.sort_unstable();
    rows
}

#[test]
fn trie_matches_model_for_equality_prefix_and_regex() {
    for case in 0..CASES {
        let mut rng = DetRng::seed_from_u64(1000 + case);
        let word_list = random_words(&mut rng, 200);
        let probe = random_word(&mut rng);

        let trie = TrieIndex::create(BufferPool::in_memory()).unwrap();
        for (row, w) in word_list.iter().enumerate() {
            trie.insert(w, row as RowId).unwrap();
        }

        // Equality.
        let got = sorted(trie.equals(&probe).unwrap());
        let expected: Vec<RowId> = word_list
            .iter()
            .enumerate()
            .filter(|(_, w)| **w == probe)
            .map(|(i, _)| i as RowId)
            .collect();
        assert_eq!(got, expected, "case {case}: equality of {probe:?}");

        // Prefix.
        let prefix: String = probe.chars().take(2).collect();
        let got = sorted(
            trie.prefix(&prefix)
                .unwrap()
                .into_iter()
                .map(|(_, r)| r)
                .collect(),
        );
        let expected: Vec<RowId> = word_list
            .iter()
            .enumerate()
            .filter(|(_, w)| w.starts_with(&prefix))
            .map(|(i, _)| i as RowId)
            .collect();
        assert_eq!(got, expected, "case {case}: prefix {prefix:?}");

        // Regular expression built from the probe with a wildcard in the
        // middle.
        if probe.len() >= 2 {
            let mut pattern = probe.clone().into_bytes();
            pattern[probe.len() / 2] = b'?';
            let pattern = String::from_utf8(pattern).unwrap();
            let got = sorted(
                trie.regex(&pattern)
                    .unwrap()
                    .into_iter()
                    .map(|(_, r)| r)
                    .collect(),
            );
            let expected: Vec<RowId> = word_list
                .iter()
                .enumerate()
                .filter(|(_, w)| {
                    w.len() == pattern.len()
                        && pattern
                            .bytes()
                            .zip(w.bytes())
                            .all(|(p, c)| p == b'?' || p == c)
                })
                .map(|(i, _)| i as RowId)
                .collect();
            assert_eq!(got, expected, "case {case}: regex {pattern:?}");
        }
    }
}

#[test]
fn trie_deletion_removes_exactly_the_requested_rows() {
    for case in 0..CASES {
        let mut rng = DetRng::seed_from_u64(2000 + case);
        let word_list = random_words(&mut rng, 100);

        let trie = TrieIndex::create(BufferPool::in_memory()).unwrap();
        for (row, w) in word_list.iter().enumerate() {
            trie.insert(w, row as RowId).unwrap();
        }
        let mut kept: Vec<(usize, &String)> = Vec::new();
        for (row, w) in word_list.iter().enumerate() {
            if rng.gen_range(0..2u32) == 0 {
                assert!(
                    trie.delete(w, row as RowId).unwrap(),
                    "case {case}: delete {w:?}"
                );
            } else {
                kept.push((row, w));
            }
        }
        for (row, w) in kept {
            let hits = trie.equals(w).unwrap();
            assert!(
                hits.contains(&(row as RowId)),
                "case {case}: row {row} for {w:?} lost"
            );
        }
    }
}

#[test]
fn kdtree_and_quadtree_match_model_for_equality_and_range() {
    for case in 0..CASES {
        let mut rng = DetRng::seed_from_u64(3000 + case);
        let point_list = random_points(&mut rng, 200);

        let kd = KdTreeIndex::create(BufferPool::in_memory()).unwrap();
        let quad = PointQuadtreeIndex::create(BufferPool::in_memory()).unwrap();
        for (row, p) in point_list.iter().enumerate() {
            kd.insert(*p, row as RowId).unwrap();
            quad.insert(*p, row as RowId).unwrap();
        }

        // Equality on the first point (duplicates likely on the coarse grid).
        let probe = point_list[0];
        let expected: Vec<RowId> = point_list
            .iter()
            .enumerate()
            .filter(|(_, p)| **p == probe)
            .map(|(i, _)| i as RowId)
            .collect();
        assert_eq!(
            sorted(kd.equals(probe).unwrap()),
            expected,
            "case {case}: kd equality"
        );
        assert_eq!(
            sorted(quad.equals(probe).unwrap()),
            expected,
            "case {case}: quadtree equality"
        );

        // Range query.
        let (x, y) = (rng.gen_range(0..40u32), rng.gen_range(0..40u32));
        let (w, h) = (rng.gen_range(1..30u32), rng.gen_range(1..30u32));
        let rect = Rect::new(
            f64::from(x) * 2.0,
            f64::from(y) * 2.0,
            f64::from(x + w) * 2.0,
            f64::from(y + h) * 2.0,
        );
        let expected = point_list.iter().filter(|p| rect.contains_point(p)).count();
        assert_eq!(
            kd.range(rect).unwrap().len(),
            expected,
            "case {case}: kd range"
        );
        assert_eq!(
            quad.range(rect).unwrap().len(),
            expected,
            "case {case}: quad range"
        );
    }
}

#[test]
fn kdtree_nn_matches_brute_force() {
    for case in 0..CASES {
        let mut rng = DetRng::seed_from_u64(4000 + case);
        let point_list = random_points(&mut rng, 150);
        let query = random_point(&mut rng);
        let k = rng.gen_range(1..10usize).min(point_list.len());

        let kd = KdTreeIndex::create(BufferPool::in_memory()).unwrap();
        for (row, p) in point_list.iter().enumerate() {
            kd.insert(*p, row as RowId).unwrap();
        }
        let nn = kd.nearest(query, k).unwrap();
        assert_eq!(nn.len(), k, "case {case}");
        let mut brute: Vec<f64> = point_list.iter().map(|p| p.distance(&query)).collect();
        brute.sort_by(f64::total_cmp);
        for (i, (_, _, d)) in nn.iter().enumerate() {
            assert!(
                (d - brute[i]).abs() < 1e-9,
                "case {case}: k={i}: {} vs {}",
                d,
                brute[i]
            );
        }
    }
}

/// The headline property of the streaming API: for every index kind and
/// randomized workloads, pulling results through [`SpIndex::cursor`] yields
/// exactly the items [`SpIndex::execute`] materializes, in the same order.
#[test]
fn cursor_results_equal_materialized_results_on_all_five_indexes() {
    fn assert_cursor_matches<I: SpIndex>(index: &I, query: I::Query, context: &str)
    where
        I::Key: PartialEq + std::fmt::Debug,
    {
        let eager = index.execute(&query).unwrap();
        let streamed: Vec<(I::Key, RowId)> = index
            .cursor(&query)
            .unwrap()
            .collect::<Result<_, _>>()
            .unwrap();
        assert_eq!(streamed, eager, "{context}");
    }

    for case in 0..CASES {
        let mut rng = DetRng::seed_from_u64(5000 + case);

        // String indexes share the word list.
        let words = random_words(&mut rng, 150);
        let trie = TrieIndex::create(BufferPool::in_memory()).unwrap();
        let suffix = SuffixTreeIndex::create(BufferPool::in_memory()).unwrap();
        for (row, w) in words.iter().enumerate() {
            trie.insert(w, row as RowId).unwrap();
            suffix.insert(w, row as RowId).unwrap();
        }
        let probe = random_word(&mut rng);
        let prefix: String = probe.chars().take(2).collect();
        for query in [
            StringQuery::Equals(probe.clone()),
            StringQuery::Prefix(prefix.clone()),
            StringQuery::Regex(probe.clone()),
        ] {
            assert_cursor_matches(&trie, query, &format!("case {case}: trie"));
        }
        assert_cursor_matches(
            &suffix,
            StringQuery::Substring(prefix),
            &format!("case {case}: suffix tree"),
        );

        // Point indexes share the point list.
        let points = random_points(&mut rng, 150);
        let kd = KdTreeIndex::create(BufferPool::in_memory()).unwrap();
        let quad = PointQuadtreeIndex::create(BufferPool::in_memory()).unwrap();
        for (row, p) in points.iter().enumerate() {
            kd.insert(*p, row as RowId).unwrap();
            quad.insert(*p, row as RowId).unwrap();
        }
        let window = Rect::new(10.0, 10.0, 70.0, 70.0);
        for query in [PointQuery::Equals(points[0]), PointQuery::InRect(window)] {
            assert_cursor_matches(&kd, query.clone(), &format!("case {case}: kd-tree"));
            assert_cursor_matches(&quad, query, &format!("case {case}: point quadtree"));
        }

        // PMR quadtree over random segments.
        let world = Rect::new(0.0, 0.0, 100.0, 100.0);
        let pmr = PmrQuadtreeIndex::create(BufferPool::in_memory(), world).unwrap();
        let n_segments = rng.gen_range(1..=120usize);
        let segments: Vec<Segment> = (0..n_segments).map(|_| random_segment(&mut rng)).collect();
        for (row, s) in segments.iter().enumerate() {
            pmr.insert(*s, row as RowId).unwrap();
        }
        for query in [
            SegmentQuery::Equals(segments[0]),
            SegmentQuery::InRect(Rect::new(20.0, 20.0, 60.0, 60.0)),
        ] {
            assert_cursor_matches(&pmr, query, &format!("case {case}: PMR quadtree"));
        }
    }
}
