//! Shared-access guarantees under real threads.  Readers pin a reclamation
//! epoch and run latch-free while writers crab per-page latches, so a scan
//! is *not* an atomic snapshot: it may observe some of the inserts that
//! land while it drains.  What these tests hold the system to instead:
//! nothing committed before a scan began ever goes missing, nothing that
//! was never inserted ever surfaces, no row surfaces twice, writers are
//! never blocked by open cursors, and the multi-threaded query driver
//! agrees with serial execution.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

use spgist::prelude::*;

/// Compile-time proof that the shared-access surface is actually shareable:
/// `Database`, `Table`, and all five `SpIndex` implementations.
#[test]
fn shared_handles_are_send_sync() {
    fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<Database>();
    assert_send_sync::<Table>();
    assert_send_sync::<Arc<Table>>();
    assert_send_sync::<TrieIndex>();
    assert_send_sync::<SuffixTreeIndex>();
    assert_send_sync::<KdTreeIndex>();
    assert_send_sync::<PointQuadtreeIndex>();
    assert_send_sync::<PmrQuadtreeIndex>();
    assert_send_sync::<BufferPool>();
}

/// Deterministic point for row `i`, inside the `[0, 100]²` world.
fn point_for(i: u64) -> Point {
    let x = (i % 100) as f64 + 0.25;
    let y = ((i / 100) % 100) as f64 + 0.75;
    Point::new(x, y)
}

/// The core stress invariant: a single writer inserts rows `0, 1, 2, …` in
/// order while readers repeatedly scan everything.  A cursor pins a
/// reclamation epoch instead of a latch, so a scan is not an atomic
/// snapshot — it may observe part of the concurrent insert stream — but
/// three things must hold on every drain: everything committed before the
/// scan began is present, nothing that was never inserted surfaces, and no
/// row surfaces twice.
#[test]
fn concurrent_readers_never_lose_committed_inserts() {
    const TOTAL: u64 = 2_000;
    let index = Arc::new(KdTreeIndex::open(BufferPool::in_memory()).unwrap());
    let committed = Arc::new(AtomicU64::new(0));
    let world = Rect::new(0.0, 0.0, 100.0, 100.0);

    std::thread::scope(|scope| {
        let writer_index = Arc::clone(&index);
        let writer_committed = Arc::clone(&committed);
        let writer = scope.spawn(move || {
            for i in 0..TOTAL {
                writer_index.insert(point_for(i), i).unwrap();
                writer_committed.store(i + 1, Ordering::Release);
            }
        });

        let mut readers = Vec::new();
        for _ in 0..3 {
            let index = Arc::clone(&index);
            let committed = Arc::clone(&committed);
            readers.push(scope.spawn(move || {
                let mut scans = 0u32;
                loop {
                    let before = committed.load(Ordering::Acquire);
                    let mut rows = index
                        .cursor(&PointQuery::InRect(world))
                        .unwrap()
                        .rows()
                        .unwrap();
                    let after = committed.load(Ordering::Acquire);
                    let k = rows.len() as u64;
                    // Everything committed before the scan started must be
                    // visible.
                    assert!(
                        k >= before,
                        "scan lost committed inserts: saw {k}, {before} were committed"
                    );
                    rows.sort_unstable();
                    rows.dedup();
                    assert_eq!(rows.len() as u64, k, "a row surfaced twice in one scan");
                    // Any row the scan saw had been inserted when it was
                    // read, and the writer publishes the counter for insert
                    // `i` before starting insert `i+1`, so by drain end the
                    // counter covers every observed row.
                    if let Some(&max) = rows.last() {
                        assert!(
                            max <= after,
                            "scan saw row {max} but only {after} inserts ever committed"
                        );
                    }
                    scans += 1;
                    if before == TOTAL {
                        break;
                    }
                }
                scans
            }));
        }

        writer.join().unwrap();
        for reader in readers {
            let scans = reader.join().unwrap();
            assert!(scans > 0, "every reader completed at least one scan");
        }
    });

    assert_eq!(index.len(), TOTAL);
}

/// The same invariant at the executor level: writers burst inserts through
/// a shared `Arc<Table>` handle while readers query through the `Database`
/// facade (trie-indexed), checking that every result contains everything
/// committed when the query began, nothing never inserted, and no
/// duplicates.
#[test]
fn table_handles_support_concurrent_dml_and_queries() {
    const TOTAL: u64 = 1_200;
    let mut db = Database::in_memory();
    db.create_table("words", KeyType::Varchar).unwrap();
    db.table_mut("words")
        .unwrap()
        .create_index("words_trie", IndexSpec::Trie)
        .unwrap();
    let handle = db.table_handle("words").unwrap();
    let committed = Arc::new(AtomicU64::new(0));
    let done = Arc::new(AtomicBool::new(false));

    std::thread::scope(|scope| {
        let writer_handle = Arc::clone(&handle);
        let writer_committed = Arc::clone(&committed);
        let writer_done = Arc::clone(&done);
        scope.spawn(move || {
            // Bursts: a batch of inserts, then a yield to let readers in.
            for burst in 0..(TOTAL / 100) {
                for i in (burst * 100)..((burst + 1) * 100) {
                    let row = writer_handle.insert(format!("word{i:06}")).unwrap();
                    assert_eq!(row, i);
                    writer_committed.store(i + 1, Ordering::Release);
                }
                std::thread::yield_now();
            }
            writer_done.store(true, Ordering::Release);
        });

        for _ in 0..2 {
            let db = &db;
            let committed = Arc::clone(&committed);
            let done = Arc::clone(&done);
            scope.spawn(move || loop {
                let finished = done.load(Ordering::Acquire);
                let before = committed.load(Ordering::Acquire);
                let mut rows = db
                    .query("words", Predicate::str_prefix("word"))
                    .unwrap()
                    .rows()
                    .unwrap();
                let after = committed.load(Ordering::Acquire);
                let k = rows.len() as u64;
                assert!(
                    k >= before,
                    "query lost committed inserts: saw {k}, {before} were committed"
                );
                rows.sort_unstable();
                rows.dedup();
                assert_eq!(rows.len() as u64, k, "a row surfaced twice in one query");
                if let Some(&max) = rows.last() {
                    assert!(
                        max <= after,
                        "query saw row {max} but only {after} inserts ever committed"
                    );
                }
                if finished {
                    break;
                }
            });
        }
    });

    assert_eq!(handle.len(), TOTAL);
}

/// The multi-threaded query driver returns exactly the serial answers, in
/// input order, at every thread count.
#[test]
fn run_parallel_is_deterministic_across_thread_counts() {
    let mut db = Database::in_memory();
    db.create_table("points", KeyType::Point).unwrap();
    let table = db.table_mut("points").unwrap();
    for i in 0..4_000u64 {
        table.insert(point_for(i)).unwrap();
    }
    table.create_index("points_kd", IndexSpec::KdTree).unwrap();

    let queries: Vec<Query> = (0..12)
        .map(|i| {
            let lo = (i * 7) as f64;
            Query::new(Predicate::point_in_rect(Rect::new(lo, 0.0, lo + 9.0, 50.0)))
        })
        .collect();
    let serial: Vec<Vec<RowId>> = queries
        .iter()
        .map(|q| db.query("points", q).unwrap().rows().unwrap())
        .collect();
    assert!(serial.iter().any(|rows| !rows.is_empty()));
    for threads in [1, 2, 4, 16] {
        assert_eq!(
            db.run_parallel("points", &queries, threads).unwrap(),
            serial,
            "driver output must match serial execution at {threads} threads"
        );
    }
}

/// Regression test for the composite-plan latch deadlock: a Union (or
/// Intersect) whose inputs scan the *same* index must never hold two read
/// latches at once — with a concurrent writer queued on the latch, the
/// second acquisition would wait behind the writer, which waits behind the
/// first, hanging the table forever.  Execution now drains each input
/// before opening the next, so this test completing *is* the assertion.
#[test]
fn composite_plans_on_one_index_survive_concurrent_writers() {
    let mut db = Database::in_memory();
    db.create_table("words", KeyType::Varchar).unwrap();
    {
        let table = db.table_mut("words").unwrap();
        // Large enough that the cost model prefers index scans (and their
        // union) over the heap: on a small table a seq scan genuinely wins
        // and the composite latch pattern never runs.
        for i in 0..12_000u64 {
            let prefix = ["aa", "ab", "ba"][(i % 3) as usize];
            table.insert(format!("{prefix}{i:05}")).unwrap();
        }
        table.create_index("trie", IndexSpec::Trie).unwrap();
    }
    let union_query = Predicate::str_prefix("aa").or(Predicate::str_prefix("ab"));
    assert!(
        matches!(
            db.plan("words", &union_query).unwrap(),
            AccessPath::Union { .. }
        ),
        "both disjuncts must route to the same trie for this test to bite"
    );
    let and_query = Predicate::str_prefix("a").and(Predicate::str_prefix("ab"));

    let handle = db.table_handle("words").unwrap();
    let done = Arc::new(AtomicBool::new(false));
    std::thread::scope(|scope| {
        let writer_handle = Arc::clone(&handle);
        let writer_done = Arc::clone(&done);
        scope.spawn(move || {
            let mut i = 100_000u64;
            while !writer_done.load(Ordering::Acquire) {
                writer_handle.insert(format!("zz{i:06}")).unwrap();
                i += 1;
            }
        });
        for _ in 0..25 {
            let rows = db.query("words", &union_query).unwrap().rows().unwrap();
            assert_eq!(rows.len(), 8_000, "4000 aa-words and 4000 ab-words");
            let rows = db.query("words", &and_query).unwrap().rows().unwrap();
            assert_eq!(rows.len(), 4_000, "the ab-words satisfy both conjuncts");
        }
        done.store(true, Ordering::Release);
    });
}

/// DML statements are atomic with respect to each other: a delete racing an
/// insert can never run its index removals *between* the insert's heap
/// append and its index update.  Without that ordering, the removal finds
/// nothing, the insert's index entry then lands anyway, and the index
/// permanently names a dead row — a durable phantom every later query
/// reports.  Deleters here target arbitrary recent row ids (modelling a
/// scan-then-delete), and afterwards the index-backed answer must agree
/// exactly with heap ground truth.
#[test]
fn interleaved_inserts_and_deletes_leave_no_phantom_index_entries() {
    const WRITERS: u64 = 2;
    const PER_WRITER: u64 = 3_000;
    const TOTAL: u64 = WRITERS * PER_WRITER;
    let mut db = Database::in_memory();
    db.create_table("words", KeyType::Varchar).unwrap();
    db.table_mut("words")
        .unwrap()
        .create_index("trie", IndexSpec::Trie)
        .unwrap();
    let handle = db.table_handle("words").unwrap();
    let committed = Arc::new(AtomicU64::new(0));

    std::thread::scope(|scope| {
        for w in 0..WRITERS {
            let handle = Arc::clone(&handle);
            let committed = Arc::clone(&committed);
            scope.spawn(move || {
                for i in 0..PER_WRITER {
                    // A selective minority of aa-words keeps the check
                    // query on the index instead of the heap.
                    let prefix = if i % 8 == 0 { "aa" } else { "zz" };
                    handle.insert(format!("{prefix}{w}{i:06}")).unwrap();
                    committed.fetch_add(1, Ordering::Release);
                }
            });
        }
        for d in 0..2u64 {
            let handle = Arc::clone(&handle);
            let committed = Arc::clone(&committed);
            scope.spawn(move || {
                let mut probe = d; // deleters interleave over the id space
                loop {
                    let seen = committed.load(Ordering::Acquire);
                    if seen >= TOTAL {
                        break;
                    }
                    if seen > 0 {
                        // Delete a recent row id — racing the tail of the
                        // insert stream is what used to split a statement.
                        handle.delete(probe % seen).unwrap();
                        probe += 7;
                    }
                    std::thread::yield_now();
                }
            });
        }
    });

    assert!(
        matches!(
            db.plan("words", Predicate::str_prefix("aa")).unwrap(),
            AccessPath::IndexScan { .. }
        ),
        "the check must route through the index for phantoms to surface"
    );
    let mut via_index = db
        .query("words", Predicate::str_prefix("aa"))
        .unwrap()
        .rows()
        .unwrap();
    via_index.sort_unstable();
    let mut ground_truth: Vec<RowId> = Vec::new();
    for row in 0..TOTAL {
        if let Some(Datum::Text(word)) = handle.try_datum(row).unwrap() {
            if word.starts_with("aa") {
                ground_truth.push(row);
            }
        }
    }
    assert_eq!(
        via_index, ground_truth,
        "index-backed rows must exactly match heap-live rows once DML settles"
    );
}

/// A long-lived cursor pins a reclamation epoch, not a latch: a writer
/// lands *while* the cursor is open (the join below completes before the
/// cursor is drained — under the old one-RwLock-per-tree design this
/// deadlocked), the open cursor still drains every pre-write word without
/// error, and a cursor opened after the write sees the new word.
#[test]
fn open_cursors_never_block_writers() {
    let index = Arc::new(TrieIndex::open(BufferPool::in_memory()).unwrap());
    for (row, word) in ["alpha", "beta", "gamma"].iter().enumerate() {
        index.insert(word, row as RowId).unwrap();
    }

    let mut cursor = index.cursor(&StringQuery::Prefix(String::new())).unwrap();
    let first = cursor.next().unwrap().unwrap();
    assert!(!first.0.is_empty());

    // The writer completes while the cursor is still open — this join is
    // the assertion that cursors no longer exclude writers.
    let writer = {
        let index = Arc::clone(&index);
        std::thread::spawn(move || index.insert("delta", 3).unwrap())
    };
    writer.join().unwrap();

    // The open cursor drains without error; it sees every pre-write word
    // and may or may not see "delta" depending on where its traversal was.
    let mut seen: Vec<(String, RowId)> = cursor.map(Result::unwrap).collect();
    seen.push(first);
    seen.sort_unstable();
    seen.dedup();
    for word in ["alpha", "beta", "gamma"] {
        assert!(
            seen.iter().any(|(w, _)| w == word),
            "open cursor lost pre-write word {word}"
        );
    }
    assert!(seen.len() <= 4, "cursor saw words that were never inserted");

    assert_eq!(
        index
            .cursor(&StringQuery::Prefix(String::new()))
            .unwrap()
            .rows()
            .unwrap()
            .len(),
        4,
        "a cursor opened after the write sees it"
    );
}

/// Reopen regression: a database restored from its durable catalog must
/// withstand the same reader-during-writer-burst stress as a freshly built
/// one — the per-index latches, the table latch, the DML lock and the
/// pager's free-list state all have to come back in working order.
///
/// The writer deletes and re-inserts against the reopened handle (so freed
/// pages cycle through the restored free list) while readers assert the
/// committed-prefix invariant on rows that predate the reopen.
#[test]
fn reopened_database_survives_reader_during_writer_burst() {
    const PRELOADED: u64 = 1_500;
    const BURSTS: u64 = 10;
    let dir = std::env::temp_dir().join(format!("spgist-reopen-stress-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("db.pages");

    {
        let mut db = Database::create(&path).unwrap();
        db.create_table("words", KeyType::Varchar).unwrap();
        db.create_index("words", "words_trie", IndexSpec::Trie)
            .unwrap();
        let table = db.table_handle("words").unwrap();
        for i in 0..PRELOADED {
            assert_eq!(table.insert(format!("word{i:06}")).unwrap(), i);
        }
        drop(table);
        db.close().unwrap();
    }

    // Immediately stress the *reopened* handles.
    let db = Database::open(&path).unwrap();
    let handle = db.table_handle("words").unwrap();
    assert_eq!(handle.len(), PRELOADED);
    let committed = Arc::new(AtomicU64::new(PRELOADED));
    let done = Arc::new(AtomicBool::new(false));

    std::thread::scope(|scope| {
        // Writer: bursts of inserts, plus delete/re-insert churn that cycles
        // pages through the free list restored by the reopen.
        let writer_handle = Arc::clone(&handle);
        let writer_committed = Arc::clone(&committed);
        let writer_done = Arc::clone(&done);
        scope.spawn(move || {
            let mut next = PRELOADED;
            for burst in 0..BURSTS {
                for _ in 0..50 {
                    let row = writer_handle.insert(format!("word{next:06}")).unwrap();
                    assert_eq!(row, next);
                    next += 1;
                    writer_committed.store(next, Ordering::Release);
                }
                // Churn: delete a handful of *new* rows' predecessors and
                // re-insert fresh rows (row ids keep growing; readers only
                // assert on the preloaded prefix).
                for k in 0..5 {
                    let victim = PRELOADED + burst * 50 + k;
                    writer_handle.delete(victim).unwrap();
                }
                std::thread::yield_now();
            }
            writer_done.store(true, Ordering::Release);
        });

        for _ in 0..2 {
            let db = &db;
            let done = Arc::clone(&done);
            scope.spawn(move || loop {
                let finished = done.load(Ordering::Acquire);
                // The preloaded prefix (which predates the reopen) must stay
                // fully visible whatever the concurrent churn does.
                let rows = db
                    .query("words", Predicate::str_prefix("word"))
                    .unwrap()
                    .rows()
                    .unwrap();
                let preloaded_seen = rows.iter().filter(|&&r| r < PRELOADED).count() as u64;
                assert_eq!(
                    preloaded_seen, PRELOADED,
                    "rows committed before the reopen must never flicker"
                );
                if finished {
                    break;
                }
            });
        }
    });

    // Post-stress: a full reopen cycle still works and the state is sane.
    let expected = handle.len();
    drop(handle);
    db.close().unwrap();
    let db = Database::open(&path).unwrap();
    assert_eq!(db.table("words").unwrap().len(), expected);
    drop(db);
    std::fs::remove_dir_all(&dir).unwrap();
}

/// Seeded N-writer × M-reader stress on one shared index.  Each writer owns
/// a disjoint row-id range and inserts it in a deterministically shuffled
/// order (xorshift from a fixed seed, so a failure replays); readers scan
/// continuously.  Every scan must contain at least as many of each writer's
/// rows as that writer had committed when the scan began, and nothing that
/// was never inserted; once the writers finish, every insert must be
/// present exactly once.
#[test]
fn seeded_multi_writer_multi_reader_stress_loses_no_inserts() {
    const WRITERS: u64 = 4;
    const READERS: usize = 3;
    const PER_WRITER: u64 = 800;
    const TOTAL: u64 = WRITERS * PER_WRITER;
    const SEED: u64 = 0x5113_7e57_0000_0001;

    /// Deterministic Fisher–Yates over `0..n` driven by xorshift64.
    fn shuffled(n: u64, mut state: u64) -> Vec<u64> {
        let mut order: Vec<u64> = (0..n).collect();
        for i in (1..order.len()).rev() {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            order.swap(i, (state % (i as u64 + 1)) as usize);
        }
        order
    }

    let index = Arc::new(KdTreeIndex::open(BufferPool::in_memory()).unwrap());
    let committed: Arc<Vec<AtomicU64>> =
        Arc::new((0..WRITERS).map(|_| AtomicU64::new(0)).collect());
    let world = Rect::new(0.0, 0.0, 100.0, 100.0);

    std::thread::scope(|scope| {
        let mut writers = Vec::new();
        for w in 0..WRITERS {
            let index = Arc::clone(&index);
            let committed = Arc::clone(&committed);
            writers.push(scope.spawn(move || {
                for i in shuffled(PER_WRITER, SEED.wrapping_add(w)) {
                    let row = w * PER_WRITER + i;
                    index.insert(point_for(row), row).unwrap();
                    committed[w as usize].fetch_add(1, Ordering::Release);
                }
            }));
        }

        for _ in 0..READERS {
            let index = Arc::clone(&index);
            let committed = Arc::clone(&committed);
            scope.spawn(move || loop {
                let before: Vec<u64> = committed
                    .iter()
                    .map(|c| c.load(Ordering::Acquire))
                    .collect();
                let mut rows = index
                    .cursor(&PointQuery::InRect(world))
                    .unwrap()
                    .rows()
                    .unwrap();
                rows.sort_unstable();
                let deduped = rows.len();
                rows.dedup();
                assert_eq!(rows.len(), deduped, "a row surfaced twice in one scan");
                assert!(
                    rows.iter().all(|&r| r < TOTAL),
                    "scan saw a row id that was never inserted"
                );
                for (w, &committed) in before.iter().enumerate() {
                    let lo = w as u64 * PER_WRITER;
                    let seen = rows
                        .iter()
                        .filter(|&&r| (lo..lo + PER_WRITER).contains(&r))
                        .count() as u64;
                    assert!(
                        seen >= committed,
                        "scan lost inserts: writer {w} had committed {committed} but only {seen} visible"
                    );
                }
                if before.iter().sum::<u64>() == TOTAL {
                    break;
                }
            });
        }

        for writer in writers {
            writer.join().unwrap();
        }
    });

    assert_eq!(index.len(), TOTAL);
    let mut rows = index
        .cursor(&PointQuery::InRect(world))
        .unwrap()
        .rows()
        .unwrap();
    rows.sort_unstable();
    let expected: Vec<RowId> = (0..TOTAL).collect();
    assert_eq!(
        rows, expected,
        "after the dust settles every insert is present once"
    );
}
