//! End-to-end tests of the compositional query pipeline: boolean predicate
//! trees plan to index scans + residual filters, `LIMIT` is pushed down and
//! streams instead of materializing, and `@@` nearest-neighbour predicates
//! execute through a planner-chosen ordered scan on every NN-capable index.

use spgist::datagen::{points, segments, words, world};
use spgist::prelude::*;

fn word_database(n: usize) -> (Database, Vec<String>) {
    let mut db = Database::in_memory();
    db.create_table("words", KeyType::Varchar).unwrap();
    let data = words(n, 20060403);
    let table = db.table_mut("words").unwrap();
    for w in &data {
        table.insert(w.as_str()).unwrap();
    }
    table.create_index("words_trie", IndexSpec::Trie).unwrap();
    (db, data)
}

/// The acceptance query: `(prefix AND regex) OR equals`, with `LIMIT k`.
fn acceptance_predicate(data: &[String]) -> (Predicate, impl Fn(&str) -> bool + '_) {
    let long = data.iter().find(|w| w.len() >= 5).unwrap().clone();
    let prefix = long[..2].to_string();
    let pattern = {
        let mut p = long.clone().into_bytes();
        let last = p.len() - 1;
        p[last] = b'?';
        String::from_utf8(p).unwrap()
    };
    let equals = data[7].clone();
    let predicate = Predicate::str_prefix(&prefix)
        .and(Predicate::str_regex(&pattern))
        .or(Predicate::str_equals(&equals));
    let model = move |w: &str| {
        let pb = pattern.as_bytes();
        let regex_hit =
            w.len() == pb.len() && pb.iter().zip(w.bytes()).all(|(p, c)| *p == b'?' || *p == c);
        (w.starts_with(prefix.as_str()) && regex_hit) || w == equals
    };
    (predicate, model)
}

#[test]
fn boolean_tree_with_limit_plans_to_index_scans_plus_residual_filter() {
    let (db, data) = word_database(6_000);
    let (predicate, model) = acceptance_predicate(&data);

    let cursor = db.query("words", predicate.clone().limit(3)).unwrap();

    // Plan shape: LIMIT over a union of (a filtered index scan) and (an
    // index scan) — the conjunction drives one index scan and re-checks the
    // other conjunct as a residual filter.
    let AccessPath::Limit { input, k } = cursor.path() else {
        panic!(
            "LIMIT must be pushed into the plan, got {:?}",
            cursor.path()
        );
    };
    assert_eq!(*k, 3);
    let AccessPath::Union { inputs, .. } = input.as_ref() else {
        panic!("the disjunction must plan to a union, got {input:?}");
    };
    assert_eq!(inputs.len(), 2);
    assert!(
        matches!(
            &inputs[0],
            AccessPath::Filter { input, .. }
                if matches!(input.as_ref(), AccessPath::IndexScan { index, .. } if index == "words_trie")
        ) || matches!(&inputs[0], AccessPath::Intersect { .. }),
        "the AND arm must be an index scan + residual filter (or an intersection), got {:?}",
        inputs[0]
    );
    assert!(
        matches!(&inputs[1], AccessPath::IndexScan { index, .. } if index == "words_trie"),
        "the equality arm must be a bare index scan, got {:?}",
        inputs[1]
    );

    // Dispatch mirrors the plan.
    assert!(
        matches!(cursor.source(), ScanSource::Limit { input }
            if matches!(input.as_ref(), ScanSource::Union { .. })),
        "executed source must mirror the plan, got {:?}",
        cursor.source()
    );
    assert!(cursor.source().scans_index("words_trie"));

    // ≤ k rows, all satisfying the predicate.
    let rows = cursor.rows().unwrap();
    assert!(rows.len() <= 3);
    assert!(!rows.is_empty());
    for &row in &rows {
        let Datum::Text(w) = db.table("words").unwrap().datum(row).unwrap() else {
            panic!("non-text datum");
        };
        assert!(
            model(&w),
            "row {row} ({w:?}) does not satisfy the predicate"
        );
    }

    // Without the limit, the union returns exactly the set-algebra model.
    let mut all = db.query("words", &predicate).unwrap().rows().unwrap();
    all.sort_unstable();
    let expected: Vec<RowId> = data
        .iter()
        .enumerate()
        .filter(|(_, w)| model(w))
        .map(|(i, _)| i as RowId)
        .collect();
    assert_eq!(all, expected);
    assert!(rows.iter().all(|r| expected.contains(r)));
}

#[test]
fn limit_streams_without_materializing_the_full_result() {
    let (db, _) = word_database(8_000);
    let predicate = Predicate::str_prefix("a");

    // Warm up the memoized planner statistics (their first derivation walks
    // the tree) so the measurement below isolates scan I/O.
    db.plan("words", &predicate).unwrap();

    db.pool().reset_stats();
    let limited = db
        .query("words", predicate.clone().limit(3))
        .unwrap()
        .rows()
        .unwrap();
    let limited_reads = db.pool().stats().logical_reads;
    assert_eq!(limited.len(), 3);

    db.pool().reset_stats();
    let full = db.query("words", &predicate).unwrap().rows().unwrap();
    let full_reads = db.pool().stats().logical_reads;
    assert!(full.len() > 100, "prefix 'a' must match many words");

    assert!(
        limited_reads * 5 < full_reads,
        "LIMIT 3 must stop the scan early: {limited_reads} reads vs {full_reads} for the full scan"
    );
}

#[test]
fn dropping_the_operator_class_reroutes_the_boolean_tree_to_the_heap() {
    let (mut db, data) = word_database(5_000);
    let (predicate, _) = acceptance_predicate(&data);

    let planned = db.plan("words", &predicate).unwrap();
    assert!(planned.uses_index());
    let indexed_rows = {
        let mut rows = db.query("words", &predicate).unwrap().rows().unwrap();
        rows.sort_unstable();
        rows
    };

    db.catalog_mut().unregister_operator_class("SP_GiST_trie");
    let cursor = db.query("words", &predicate).unwrap();
    assert!(
        matches!(cursor.path(), AccessPath::SeqScan { .. }),
        "without the operator class the whole tree must fall back to the heap"
    );
    assert_eq!(cursor.source(), &ScanSource::Heap);
    let mut rows = cursor.rows().unwrap();
    rows.sort_unstable();
    assert_eq!(rows, indexed_rows, "same rows either way");
}

/// k-NN through the executor on one spatial table: plan shape, dispatch
/// shape, and agreement with the brute-force distances.
fn check_knn_table(
    db: &Database,
    table: &str,
    index_name: &str,
    anchor: Point,
    k: usize,
    brute: &mut [f64],
    distance_of: impl Fn(&Datum) -> f64,
) {
    let nearest = match db.table(table).unwrap().key_type() {
        KeyType::Point => Predicate::point_nearest(anchor),
        KeyType::Segment => Predicate::segment_nearest(anchor),
        KeyType::Varchar => unreachable!("spatial tables only"),
    };
    let cursor = db.query(table, nearest.limit(k)).unwrap();

    let AccessPath::Limit { input, .. } = cursor.path() else {
        panic!(
            "{table}: LIMIT must wrap the ordered scan, got {:?}",
            cursor.path()
        );
    };
    assert!(
        matches!(input.as_ref(), AccessPath::OrderedScan { index, .. } if index == index_name),
        "{table}: `@@` must plan to an ordered scan over {index_name}, got {input:?}"
    );
    assert!(
        matches!(cursor.source(), ScanSource::Limit { input }
            if matches!(input.as_ref(), ScanSource::OrderedIndex { name } if name == index_name)),
        "{table}: dispatch must be the ordered index scan, got {:?}",
        cursor.source()
    );

    let results: Vec<(RowId, Datum)> = cursor.collect::<Result<_, _>>().unwrap();
    assert_eq!(results.len(), k);
    let dists: Vec<f64> = results.iter().map(|(_, d)| distance_of(d)).collect();
    assert!(
        dists.windows(2).all(|w| w[0] <= w[1] + 1e-9),
        "{table}: results must stream in non-decreasing distance"
    );
    brute.sort_by(f64::total_cmp);
    for (i, d) in dists.iter().enumerate() {
        assert!(
            (d - brute[i]).abs() < 1e-9,
            "{table}: k={i} distance mismatch ({d} vs {})",
            brute[i]
        );
    }
}

#[test]
fn knn_executes_via_planned_ordered_scan_on_kdtree_quadtree_and_pmr() {
    let mut db = Database::in_memory();
    let pts = points(4_000, 11);
    for (table, spec) in [
        ("kd_points", IndexSpec::KdTree),
        ("quad_points", IndexSpec::PointQuadtree),
    ] {
        db.create_table(table, KeyType::Point).unwrap();
        let t = db.table_mut(table).unwrap();
        for p in &pts {
            t.insert(*p).unwrap();
        }
        t.create_index(&format!("{table}_idx"), spec).unwrap();
    }
    let segs = segments(2_000, 12.0, 12);
    db.create_table("roads", KeyType::Segment).unwrap();
    let t = db.table_mut("roads").unwrap();
    for s in &segs {
        t.insert(*s).unwrap();
    }
    t.create_index("roads_idx", IndexSpec::PmrQuadtree { world: world() })
        .unwrap();

    let anchor = Point::new(37.0, 61.0);
    let k = 15;
    for table in ["kd_points", "quad_points"] {
        let mut brute: Vec<f64> = pts.iter().map(|p| p.distance(&anchor)).collect();
        check_knn_table(
            &db,
            table,
            &format!("{table}_idx"),
            anchor,
            k,
            &mut brute,
            |d| match d {
                Datum::Point(p) => p.distance(&anchor),
                other => panic!("non-point datum {other:?}"),
            },
        );
    }
    let mut brute: Vec<f64> = segs.iter().map(|s| s.distance_to_point(&anchor)).collect();
    check_knn_table(
        &db,
        "roads",
        "roads_idx",
        anchor,
        k,
        &mut brute,
        |d| match d {
            Datum::Segment(s) => s.distance_to_point(&anchor),
            other => panic!("non-segment datum {other:?}"),
        },
    );
}

#[test]
fn constrained_knn_filters_an_ordered_scan() {
    let mut db = Database::in_memory();
    let pts = points(3_000, 21);
    db.create_table("pts", KeyType::Point).unwrap();
    let t = db.table_mut("pts").unwrap();
    for p in &pts {
        t.insert(*p).unwrap();
    }
    t.create_index("pts_kd", IndexSpec::KdTree).unwrap();

    let anchor = Point::new(50.0, 50.0);
    let window = Rect::new(30.0, 30.0, 70.0, 70.0);
    let k = 10;
    let cursor = db
        .query(
            "pts",
            Predicate::point_nearest(anchor)
                .and(Predicate::point_in_rect(window))
                .limit(k),
        )
        .unwrap();

    // Plan: LIMIT over a residual filter over the ordered scan — the
    // constrained-k-NN shape (order survives filtering).
    let AccessPath::Limit { input, .. } = cursor.path() else {
        panic!("expected a LIMIT plan, got {:?}", cursor.path());
    };
    let AccessPath::Filter { input, .. } = input.as_ref() else {
        panic!("expected a residual filter, got {input:?}");
    };
    assert!(matches!(input.as_ref(), AccessPath::OrderedScan { index, .. } if index == "pts_kd"));

    let results: Vec<(RowId, Datum)> = cursor.collect::<Result<_, _>>().unwrap();
    assert_eq!(results.len(), k);
    let mut brute: Vec<f64> = pts
        .iter()
        .filter(|p| window.contains_point(p))
        .map(|p| p.distance(&anchor))
        .collect();
    brute.sort_by(f64::total_cmp);
    for (i, (_, datum)) in results.iter().enumerate() {
        let Datum::Point(p) = datum else {
            panic!("non-point datum");
        };
        assert!(window.contains_point(p), "k={i} violates the window filter");
        assert!(
            (p.distance(&anchor) - brute[i]).abs() < 1e-9,
            "k={i} distance mismatch"
        );
    }
}

#[test]
fn knn_without_an_nn_capable_index_falls_back_to_a_sorted_heap_scan() {
    let mut db = Database::in_memory();
    let pts = points(500, 31);
    db.create_table("pts", KeyType::Point).unwrap();
    let t = db.table_mut("pts").unwrap();
    for p in &pts {
        t.insert(*p).unwrap();
    }
    // No index at all: the ordered query must still work, sorted.
    let anchor = Point::new(10.0, 90.0);
    let cursor = db
        .query("pts", Predicate::point_nearest(anchor).limit(5))
        .unwrap();
    assert!(matches!(cursor.path(), AccessPath::Limit { input, .. }
        if matches!(input.as_ref(), AccessPath::SeqScan { .. })));
    let results: Vec<(RowId, Datum)> = cursor.collect::<Result<_, _>>().unwrap();
    let mut brute: Vec<f64> = pts.iter().map(|p| p.distance(&anchor)).collect();
    brute.sort_by(f64::total_cmp);
    for (i, (_, datum)) in results.iter().enumerate() {
        let Datum::Point(p) = datum else {
            panic!("non-point datum");
        };
        assert!((p.distance(&anchor) - brute[i]).abs() < 1e-9);
    }
}

#[test]
fn empty_prefix_is_honestly_planned_as_a_seq_scan() {
    let (db, data) = word_database(6_000);
    // The trie supports `#=`, but an empty prefix matches every row — the
    // cost model must route it to the heap (the satellite regression).
    let cursor = db.query("words", Predicate::str_prefix("")).unwrap();
    assert!(
        matches!(cursor.path(), AccessPath::SeqScan { .. }),
        "an all-rows prefix must not use the index, got {:?}",
        cursor.path()
    );
    assert_eq!(cursor.rows().unwrap().len(), data.len());
    // A selective prefix still uses it: the crossover exists.
    let selective = db.query("words", Predicate::str_prefix("abc")).unwrap();
    assert!(selective.path().uses_index());
}
