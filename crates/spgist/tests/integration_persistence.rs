//! Durability integration: indexes built on a file-backed buffer pool can be
//! flushed, re-opened from disk, queried, and updated again — and the whole
//! `Database` reopens from its durable catalog with zero rebuild scans.
//!
//! Three layers of coverage:
//!
//! * raw `SpGistTree` reopen (the original smoke test);
//! * **reopen round-trip property tests for all five index classes**: build
//!   → close → open via the persisted identity (meta page + owned-page
//!   list + config) → verify `cursor`, `ordered_cursor` and `delete` behave
//!   identically to a never-closed twin, and `destroy` still frees every
//!   page;
//! * **crash-point tests**: truncate or zero the tail of a cleanly closed
//!   database file and assert `Database::open` either recovers the
//!   committed state or fails with `Corrupt` — wrong rows are never
//!   returned (reopen durability is clean-shutdown-scoped; these tests pin
//!   the failure mode, not WAL recovery).

use std::sync::Arc;

use spgist::datagen::words;
use spgist::indexes::trie::TrieOps;
use spgist::prelude::*;
use spgist::storage::{PageId, StorageError, PAGE_SIZE};

fn temp_dir(name: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("spgist-it-{}-{}", name, std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn file_pool(path: &std::path::Path, create: bool) -> Arc<BufferPool> {
    let pager = if create {
        FilePager::create(path).unwrap()
    } else {
        FilePager::open(path).unwrap()
    };
    Arc::new(BufferPool::new(
        Arc::new(pager),
        BufferPoolConfig {
            capacity: 256,
            ..Default::default()
        },
    ))
}

#[test]
fn trie_survives_restart_and_remains_updatable() {
    let dir = temp_dir("trie");
    let path = dir.join("trie.pages");
    let data = words(5_000, 99);
    let meta;
    {
        let pool = file_pool(&path, true);
        let tree =
            spgist::core::SpGistTree::create(Arc::clone(&pool), TrieOps::patricia()).unwrap();
        for (row, w) in data.iter().enumerate() {
            tree.insert(w.clone(), row as RowId).unwrap();
        }
        meta = tree.meta_page();
        pool.flush_all().unwrap();
    }
    {
        // Re-open from the file and verify queries and further updates.
        let pool = file_pool(&path, false);
        let tree =
            spgist::core::SpGistTree::open(Arc::clone(&pool), TrieOps::patricia(), meta).unwrap();
        assert_eq!(tree.len(), data.len() as u64);
        for (row, w) in data.iter().enumerate().step_by(501) {
            let hits = tree.search(&StringQuery::Equals(w.clone())).unwrap();
            assert!(hits.iter().any(|(_, r)| *r == row as RowId), "lost {w:?}");
        }
        // The index keeps working after reopening.
        tree.insert("freshlyinserted".to_string(), 1_000_000)
            .unwrap();
        let hits = tree
            .search(&StringQuery::Equals("freshlyinserted".to_string()))
            .unwrap();
        assert_eq!(hits.len(), 1);
        assert!(tree.delete(&data[0], 0).unwrap());
        pool.flush_all().unwrap();
    }
    {
        // A third open sees the post-restart modifications.
        let pool = file_pool(&path, false);
        let tree = spgist::core::SpGistTree::open(pool, TrieOps::patricia(), meta).unwrap();
        let hits = tree
            .search(&StringQuery::Equals("freshlyinserted".to_string()))
            .unwrap();
        assert_eq!(hits.len(), 1);
        let gone = tree.search(&StringQuery::Equals(data[0].clone())).unwrap();
        assert!(gone.iter().all(|(_, r)| *r != 0));
    }
    std::fs::remove_dir_all(&dir).unwrap();
}

// ---------------------------------------------------------------------------
// Reopen round-trip property tests: all five index classes
// ---------------------------------------------------------------------------

/// Builds an index twice — once on a file (closed and reopened through its
/// persisted identity) and once in memory (never closed) — and checks the
/// two behave identically: same query results, same ordered (`@@`) streams,
/// same delete outcomes, and the reopened index still frees every page on
/// destroy (the owned-page list survived the round trip).
fn class_roundtrip<I, Build, Reopen>(
    tag: &str,
    build: Build,
    reopen: Reopen,
    items: Vec<(I::Key, RowId)>,
    queries: Vec<I::Query>,
    ordered_query: Option<I::Query>,
) where
    I: SpIndex,
    I::Key: std::fmt::Debug + PartialEq,
    Build: Fn(Arc<BufferPool>) -> I,
    Reopen: FnOnce(Arc<BufferPool>, PageId, Vec<PageId>, u64) -> I,
{
    let dir = temp_dir(&format!("class-{tag}"));
    let path = dir.join("index.pages");

    // Never-closed reference twin on an in-memory pool.
    let reference = build(BufferPool::in_memory());
    for (key, row) in &items {
        reference.insert(key.clone(), *row).unwrap();
    }

    // Build on a file, record the persisted identity, close.
    let (meta, pages, len) = {
        let pool = file_pool(&path, true);
        let index = build(Arc::clone(&pool));
        for (key, row) in &items {
            index.insert(key.clone(), *row).unwrap();
        }
        let identity = (index.meta_page(), index.owned_pages(), index.len());
        pool.flush_all().unwrap();
        identity
    };

    // Reopen from the persisted identity.
    let pool = file_pool(&path, false);
    let reopened = reopen(Arc::clone(&pool), meta, pages.clone(), len);
    assert_eq!(reopened.len(), reference.len(), "{tag}: len after reopen");
    assert_eq!(
        reopened.owned_pages(),
        pages,
        "{tag}: owned-page list survives the round trip"
    );

    let compare_queries = |ctx: &str, reopened: &I, reference: &I| {
        for query in &queries {
            let mut a = reopened.cursor(query).unwrap().rows().unwrap();
            let mut b = reference.cursor(query).unwrap().rows().unwrap();
            a.sort_unstable();
            b.sort_unstable();
            assert_eq!(a, b, "{tag} {ctx}: cursor disagreement");
        }
    };
    compare_queries("after reopen", &reopened, &reference);

    // Ordered scans stream the same rows in the same distance order.
    if let Some(query) = &ordered_query {
        let a: Vec<RowId> = reopened
            .ordered_cursor(query)
            .unwrap()
            .expect("class registers @@")
            .map(|item| item.map(|(_, row)| row))
            .collect::<Result<_, _>>()
            .unwrap();
        let b: Vec<RowId> = reference
            .ordered_cursor(query)
            .unwrap()
            .expect("class registers @@")
            .map(|item| item.map(|(_, row)| row))
            .collect::<Result<_, _>>()
            .unwrap();
        assert_eq!(a, b, "{tag}: ordered_cursor disagreement");
    }

    // Deletes behave identically: the first item goes, twice is a no-op.
    let (key, row) = &items[0];
    assert!(reopened.delete(key, *row).unwrap(), "{tag}: first delete");
    assert!(reference.delete(key, *row).unwrap());
    assert!(!reopened.delete(key, *row).unwrap(), "{tag}: double delete");
    assert!(!reference.delete(key, *row).unwrap());
    assert_eq!(reopened.len(), reference.len(), "{tag}: len after delete");
    compare_queries("after delete", &reopened, &reference);

    // Inserts keep working on the reopened index.
    let (key, _) = items[1].clone();
    reopened.insert(key.clone(), 999_999).unwrap();
    reference.insert(key, 999_999).unwrap();
    compare_queries("after post-reopen insert", &reopened, &reference);

    // The reopened index knows its pages: destroy returns them all.
    let owned = reopened.owned_pages().len() as u32;
    let free_before = pool.free_page_count();
    reopened.destroy().unwrap();
    assert!(
        pool.free_page_count() >= free_before + owned,
        "{tag}: destroy must free the {owned} owned pages (freed {})",
        pool.free_page_count() - free_before
    );

    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn trie_reopen_roundtrip() {
    let data = words(3_000, 42);
    class_roundtrip(
        "trie",
        |pool| TrieIndex::create(pool).unwrap(),
        |pool, meta, pages, _| {
            TrieIndex::open_with_ops(pool, TrieOps::patricia(), meta, pages).unwrap()
        },
        data.iter()
            .enumerate()
            .map(|(i, w)| (w.clone(), i as RowId))
            .collect(),
        vec![
            StringQuery::Equals(data[17].clone()),
            StringQuery::Prefix(data[99][..2.min(data[99].len())].to_string()),
            StringQuery::Prefix(String::new()),
            StringQuery::Regex(format!("{}?", &data[5][..data[5].len() - 1])),
        ],
        Some(StringQuery::Nearest(data[1_000].clone())),
    );
}

#[test]
fn suffix_tree_reopen_roundtrip() {
    let data = words(600, 43);
    class_roundtrip(
        "suffix",
        |pool| SuffixTreeIndex::create(pool).unwrap(),
        |pool, meta, pages, strings| {
            SuffixTreeIndex::open_with_ops(pool, TrieOps::patricia(), meta, pages, strings).unwrap()
        },
        data.iter()
            .enumerate()
            .map(|(i, w)| (w.clone(), i as RowId))
            .collect(),
        vec![
            StringQuery::Substring("a".into()),
            StringQuery::Substring(data[50][1..].to_string()),
            StringQuery::Substring("zzz".into()),
            StringQuery::Equals(data[7].clone()),
        ],
        None,
    );
}

#[test]
fn kdtree_reopen_roundtrip() {
    let data = spgist::datagen::points(3_000, 44);
    class_roundtrip(
        "kdtree",
        |pool| KdTreeIndex::create(pool).unwrap(),
        |pool, meta, pages, _| {
            KdTreeIndex::open_with_ops(pool, spgist::indexes::KdTreeOps::default(), meta, pages)
                .unwrap()
        },
        data.iter()
            .enumerate()
            .map(|(i, p)| (*p, i as RowId))
            .collect(),
        vec![
            PointQuery::Equals(data[12]),
            PointQuery::InRect(Rect::new(10.0, 10.0, 60.0, 60.0)),
            PointQuery::InRect(Rect::new(0.0, 0.0, 100.0, 100.0)),
        ],
        Some(PointQuery::Nearest(Point::new(47.0, 53.0))),
    );
}

#[test]
fn point_quadtree_reopen_roundtrip() {
    let data = spgist::datagen::points(3_000, 45);
    class_roundtrip(
        "pquadtree",
        |pool| PointQuadtreeIndex::create(pool).unwrap(),
        |pool, meta, pages, _| {
            PointQuadtreeIndex::open_with_ops(
                pool,
                spgist::indexes::PointQuadtreeOps::default(),
                meta,
                pages,
            )
            .unwrap()
        },
        data.iter()
            .enumerate()
            .map(|(i, p)| (*p, i as RowId))
            .collect(),
        vec![
            PointQuery::Equals(data[3]),
            PointQuery::InRect(Rect::new(25.0, 25.0, 75.0, 75.0)),
        ],
        Some(PointQuery::Nearest(Point::new(5.0, 95.0))),
    );
}

#[test]
fn pmr_quadtree_reopen_roundtrip() {
    const WORLD: Rect = Rect {
        min_x: 0.0,
        min_y: 0.0,
        max_x: 100.0,
        max_y: 100.0,
    };
    let data = spgist::datagen::segments(1_500, 15.0, 46);
    class_roundtrip(
        "pmr",
        |pool| PmrQuadtreeIndex::create(pool, WORLD).unwrap(),
        |pool, meta, pages, _| {
            PmrQuadtreeIndex::open_with_ops(
                pool,
                spgist::indexes::PmrQuadtreeOps::new(WORLD),
                meta,
                pages,
            )
            .unwrap()
        },
        data.iter()
            .enumerate()
            .map(|(i, s)| (*s, i as RowId))
            .collect(),
        vec![
            SegmentQuery::Equals(data[9]),
            SegmentQuery::InRect(Rect::new(20.0, 20.0, 55.0, 55.0)),
        ],
        Some(SegmentQuery::Nearest(Point::new(50.0, 50.0))),
    );
}

// ---------------------------------------------------------------------------
// Database reopen: zero rebuild scans
// ---------------------------------------------------------------------------

/// `Database::open` must restore tables and indexes from the catalog, not by
/// re-scanning data: the physical reads at open time are the catalog chain
/// plus one tree meta page per index — a handful — while the data itself
/// spans hundreds of pages.
#[test]
fn database_open_performs_no_rebuild_scans() {
    let dir = temp_dir("db-coldopen");
    let path = dir.join("db.pages");
    let data = words(10_000, 47);
    {
        let mut db = Database::create(&path).unwrap();
        db.create_table("words", KeyType::Varchar).unwrap();
        let table = db.table_handle("words").unwrap();
        for w in &data {
            table.insert(w.as_str()).unwrap();
        }
        drop(table);
        db.create_index("words", "words_trie", IndexSpec::Trie)
            .unwrap();
        db.close().unwrap();
    }
    let db = Database::open(&path).unwrap();
    let opened = db.pool().stats();
    let total_pages = db.pool().page_count();
    assert!(
        total_pages > 50,
        "the dataset must span many pages (got {total_pages})"
    );
    assert!(
        opened.physical_reads < u64::from(total_pages) / 3,
        "cold open must read only catalog + meta pages, not the data: \
         {} physical reads over a {total_pages}-page file",
        opened.physical_reads
    );
    // The data is really there: a query touches it lazily and agrees with
    // the ground truth.
    let probe = &data[123];
    let rows = db
        .query("words", Predicate::str_equals(probe))
        .unwrap()
        .rows()
        .unwrap();
    let expected: Vec<RowId> = data
        .iter()
        .enumerate()
        .filter(|(_, w)| *w == probe)
        .map(|(i, _)| i as RowId)
        .collect();
    assert_eq!(rows, {
        let mut e = expected;
        e.sort_unstable();
        e
    });
    drop(db);
    std::fs::remove_dir_all(&dir).unwrap();
}

// ---------------------------------------------------------------------------
// Crash-point tests: truncated / zeroed tails
// ---------------------------------------------------------------------------

/// Builds a database with data in all three key types, closes it cleanly,
/// and returns the expected per-table row counts.
fn build_crash_fixture(path: &std::path::Path) -> Vec<(String, Predicate, usize)> {
    let mut db = Database::create(path).unwrap();
    db.create_table("words", KeyType::Varchar).unwrap();
    let data = words(2_000, 48);
    for w in &data {
        db.table_mut("words").unwrap().insert(w.as_str()).unwrap();
    }
    db.create_index("words", "trie", IndexSpec::Trie).unwrap();
    // A sync boundary mid-life: DML after this checkpoint, then a clean
    // close (another boundary).  Truncations land after each.
    db.checkpoint().unwrap();
    db.create_table("pts", KeyType::Point).unwrap();
    let pts = spgist::datagen::points(1_000, 49);
    for p in &pts {
        db.table_mut("pts").unwrap().insert(*p).unwrap();
    }
    db.create_index("pts", "kd", IndexSpec::KdTree).unwrap();
    db.close().unwrap();
    vec![
        ("words".to_string(), Predicate::str_prefix(""), data.len()),
        (
            "pts".to_string(),
            Predicate::point_in_rect(Rect::new(0.0, 0.0, 100.0, 100.0)),
            pts.len(),
        ),
    ]
}

/// Opens a damaged copy and asserts the only possible outcomes: the open
/// fails (a torn catalog reports `Corrupt`), or every query either errors
/// or returns exactly the committed state.  Silently wrong rows — the one
/// forbidden outcome — fail the assertion.
fn assert_committed_or_error(
    damaged: &std::path::Path,
    expected: &[(String, Predicate, usize)],
    ctx: &str,
) {
    match Database::open(damaged) {
        Err(_) => {} // refusing to open damaged files is always correct
        Ok(db) => {
            for (table, predicate, count) in expected {
                if db.table(table).is_none() {
                    // A committed prefix from before the table existed.
                    continue;
                }
                match db.query(table, predicate).and_then(|cursor| cursor.rows()) {
                    Err(_) => {} // surfacing damage as an error is correct
                    Ok(rows) => assert_eq!(
                        rows.len(),
                        *count,
                        "{ctx}: table {table} returned wrong rows from a damaged file"
                    ),
                }
            }
        }
    }
}

#[test]
fn truncated_tail_recovers_committed_state_or_fails_corrupt() {
    let dir = temp_dir("crash-truncate");
    let path = dir.join("db.pages");
    let expected = build_crash_fixture(&path);
    let len = std::fs::metadata(&path).unwrap().len();
    let total_pages = (len / PAGE_SIZE as u64) as u32;
    assert!(total_pages > 20, "fixture must span many pages");

    // Cut the tail back page by page (coarser further out), crossing every
    // late sync boundary.
    let mut cuts: Vec<u32> = (1..=8).collect();
    cuts.extend([12, 16, 24, 32, 48, 64, total_pages / 2, total_pages - 2]);
    for cut in cuts {
        if cut >= total_pages {
            continue;
        }
        let damaged = dir.join(format!("truncated-{cut}.pages"));
        std::fs::copy(&path, &damaged).unwrap();
        let file = std::fs::OpenOptions::new()
            .write(true)
            .open(&damaged)
            .unwrap();
        file.set_len(len - u64::from(cut) * PAGE_SIZE as u64)
            .unwrap();
        drop(file);
        assert_committed_or_error(&damaged, &expected, &format!("cut {cut} pages"));
    }

    // A torn (non-page-aligned) truncation is refused outright by the pager.
    let damaged = dir.join("torn.pages");
    std::fs::copy(&path, &damaged).unwrap();
    let file = std::fs::OpenOptions::new()
        .write(true)
        .open(&damaged)
        .unwrap();
    file.set_len(len - 1000).unwrap();
    drop(file);
    assert!(
        matches!(Database::open(&damaged), Err(StorageError::Corrupt(_))),
        "a non-page-aligned file must fail Corrupt"
    );

    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn zeroed_tail_recovers_committed_state_or_fails_corrupt() {
    let dir = temp_dir("crash-zero");
    let path = dir.join("db.pages");
    let expected = build_crash_fixture(&path);
    let len = std::fs::metadata(&path).unwrap().len();
    let total_pages = (len / PAGE_SIZE as u64) as u32;

    for zeroed in [1u32, 2, 4, 8, 16, 32, total_pages / 2] {
        if zeroed >= total_pages - 1 {
            continue;
        }
        let damaged = dir.join(format!("zeroed-{zeroed}.pages"));
        std::fs::copy(&path, &damaged).unwrap();
        {
            use std::io::{Seek, SeekFrom, Write};
            let mut file = std::fs::OpenOptions::new()
                .write(true)
                .open(&damaged)
                .unwrap();
            file.seek(SeekFrom::Start(len - u64::from(zeroed) * PAGE_SIZE as u64))
                .unwrap();
            file.write_all(&vec![0u8; zeroed as usize * PAGE_SIZE])
                .unwrap();
        }
        assert_committed_or_error(&damaged, &expected, &format!("zeroed {zeroed} pages"));
    }

    // Zeroing the catalog root (logical page 0 = second physical page) must
    // fail the open with Corrupt: the catalog is unreadable, and guessing
    // is forbidden.
    let damaged = dir.join("zeroed-root.pages");
    std::fs::copy(&path, &damaged).unwrap();
    {
        use std::io::{Seek, SeekFrom, Write};
        let mut file = std::fs::OpenOptions::new()
            .write(true)
            .open(&damaged)
            .unwrap();
        file.seek(SeekFrom::Start(PAGE_SIZE as u64)).unwrap();
        file.write_all(&vec![0u8; PAGE_SIZE]).unwrap();
    }
    assert!(
        matches!(Database::open(&damaged), Err(StorageError::Corrupt(_))),
        "a zeroed catalog root must fail Corrupt"
    );

    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn buffer_pool_io_counters_reflect_disk_activity() {
    let dir = temp_dir("io");
    let path = dir.join("kd.pages");
    {
        let pool = file_pool(&path, true);
        let kd = KdTreeIndex::create(Arc::clone(&pool)).unwrap();
        let pts = spgist::datagen::points(5_000, 5);
        for (row, p) in pts.iter().enumerate() {
            kd.insert(*p, row as RowId).unwrap();
        }
        pool.flush_all().unwrap();
        let io = pool.stats();
        assert!(io.logical_reads > 0);
        assert!(io.physical_writes > 0, "flush must write dirty pages");
        // With a 256-page pool and a ~5k-point kd-tree everything fits, so the
        // hit ratio should be very high.
        assert!(io.hit_ratio() > 0.9, "hit ratio {}", io.hit_ratio());
    }
    std::fs::remove_dir_all(&dir).unwrap();
}
