//! Durability integration: indexes built on a file-backed buffer pool can be
//! flushed, re-opened from disk, queried, and updated again.

use std::sync::Arc;

use spgist::datagen::words;
use spgist::indexes::trie::TrieOps;
use spgist::prelude::*;

fn temp_dir(name: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("spgist-it-{}-{}", name, std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn file_pool(path: &std::path::Path, create: bool) -> Arc<BufferPool> {
    let pager = if create {
        FilePager::create(path).unwrap()
    } else {
        FilePager::open(path).unwrap()
    };
    Arc::new(BufferPool::new(
        Arc::new(pager),
        BufferPoolConfig { capacity: 256 },
    ))
}

#[test]
fn trie_survives_restart_and_remains_updatable() {
    let dir = temp_dir("trie");
    let path = dir.join("trie.pages");
    let data = words(5_000, 99);
    let meta;
    {
        let pool = file_pool(&path, true);
        let mut tree =
            spgist::core::SpGistTree::create(Arc::clone(&pool), TrieOps::patricia()).unwrap();
        for (row, w) in data.iter().enumerate() {
            tree.insert(w.clone(), row as RowId).unwrap();
        }
        meta = tree.meta_page();
        pool.flush_all().unwrap();
    }
    {
        // Re-open from the file and verify queries and further updates.
        let pool = file_pool(&path, false);
        let mut tree =
            spgist::core::SpGistTree::open(Arc::clone(&pool), TrieOps::patricia(), meta).unwrap();
        assert_eq!(tree.len(), data.len() as u64);
        for (row, w) in data.iter().enumerate().step_by(501) {
            let hits = tree.search(&StringQuery::Equals(w.clone())).unwrap();
            assert!(hits.iter().any(|(_, r)| *r == row as RowId), "lost {w:?}");
        }
        // The index keeps working after reopening.
        tree.insert("freshlyinserted".to_string(), 1_000_000)
            .unwrap();
        let hits = tree
            .search(&StringQuery::Equals("freshlyinserted".to_string()))
            .unwrap();
        assert_eq!(hits.len(), 1);
        assert!(tree.delete(&data[0], 0).unwrap());
        pool.flush_all().unwrap();
    }
    {
        // A third open sees the post-restart modifications.
        let pool = file_pool(&path, false);
        let tree = spgist::core::SpGistTree::open(pool, TrieOps::patricia(), meta).unwrap();
        let hits = tree
            .search(&StringQuery::Equals("freshlyinserted".to_string()))
            .unwrap();
        assert_eq!(hits.len(), 1);
        let gone = tree.search(&StringQuery::Equals(data[0].clone())).unwrap();
        assert!(gone.iter().all(|(_, r)| *r != 0));
    }
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn buffer_pool_io_counters_reflect_disk_activity() {
    let dir = temp_dir("io");
    let path = dir.join("kd.pages");
    {
        let pool = file_pool(&path, true);
        let kd = KdTreeIndex::create(Arc::clone(&pool)).unwrap();
        let pts = spgist::datagen::points(5_000, 5);
        for (row, p) in pts.iter().enumerate() {
            kd.insert(*p, row as RowId).unwrap();
        }
        pool.flush_all().unwrap();
        let io = pool.stats();
        assert!(io.logical_reads > 0);
        assert!(io.physical_writes > 0, "flush must write dirty pages");
        // With a 256-page pool and a ~5k-point kd-tree everything fits, so the
        // hit ratio should be very high.
        assert!(io.hit_ratio() > 0.9, "hit ratio {}", io.hit_ratio());
    }
    std::fs::remove_dir_all(&dir).unwrap();
}
