//! Property-style tests of the compositional pipeline against materialized
//! set algebra, using the seeded workload generators from `spgist-datagen`:
//!
//! * random `And`/`Or`/`Not` predicate trees over an indexed words table
//!   must return exactly the rows a heap-scan model selects, with and
//!   without `LIMIT`;
//! * `@@` k-NN through the executor must agree with brute-force distance
//!   ranking on all three spatial indexes (kd-tree, point quadtree, PMR
//!   quadtree).

use spgist::datagen::rng::DetRng;
use spgist::datagen::{points, segments, words, world, QueryWorkload};
use spgist::prelude::*;

/// Builds a random predicate tree of the given depth from workload-derived
/// leaves (existing words, prefixes, wildcard patterns, substrings).
fn random_tree(rng: &mut DetRng, data: &[String], depth: usize) -> Predicate {
    if depth == 0 || rng.gen_range(0..4u32) == 0 {
        let w = &data[rng.gen_range(0..data.len())];
        return match rng.gen_range(0..4u32) {
            0 => Predicate::str_equals(w),
            1 => Predicate::str_prefix(&w[..rng.gen_range(1..=w.len().min(3))]),
            2 => {
                let mut p = w.clone().into_bytes();
                let pos = rng.gen_range(0..p.len());
                p[pos] = b'?';
                Predicate::str_regex(&String::from_utf8(p).unwrap())
            }
            _ => {
                let len = w.len().min(2);
                let start = rng.gen_range(0..=w.len() - len);
                Predicate::str_substring(&w[start..start + len])
            }
        };
    }
    let a = random_tree(rng, data, depth - 1);
    match rng.gen_range(0..3u32) {
        0 => a.and(random_tree(rng, data, depth - 1)),
        1 => a.or(random_tree(rng, data, depth - 1)),
        _ => a.negate(),
    }
}

#[test]
fn random_boolean_trees_match_materialized_set_algebra() {
    let data = words(1_500, 42);
    let mut db = Database::in_memory();
    db.create_table("words", KeyType::Varchar).unwrap();
    let table = db.table_mut("words").unwrap();
    for w in &data {
        table.insert(w.as_str()).unwrap();
    }
    table.create_index("trie", IndexSpec::Trie).unwrap();
    table.create_index("suffix", IndexSpec::SuffixTree).unwrap();

    let mut rng = DetRng::seed_from_u64(20060403);
    for case in 0..40 {
        let predicate = random_tree(&mut rng, &data, 3);
        let expected: Vec<RowId> = data
            .iter()
            .enumerate()
            .filter(|(_, w)| predicate.matches(&Datum::Text((*w).clone())))
            .map(|(i, _)| i as RowId)
            .collect();

        let cursor = db.query("words", &predicate).unwrap();
        let mut rows = cursor.rows().unwrap();
        rows.sort_unstable();
        assert_eq!(rows, expected, "case {case}: {predicate:?}");

        // LIMIT returns a subset of the right size.
        let limited = db
            .query("words", predicate.clone().limit(5))
            .unwrap()
            .rows()
            .unwrap();
        assert_eq!(limited.len(), expected.len().min(5), "case {case} limit");
        assert!(
            limited.iter().all(|r| expected.contains(r)),
            "case {case}: limited rows must come from the full result"
        );
    }
}

#[test]
fn knn_matches_brute_force_on_all_three_spatial_indexes() {
    let mut db = Database::in_memory();
    let pts = points(1_200, 5);
    for (table, spec) in [
        ("kd", IndexSpec::KdTree),
        ("quad", IndexSpec::PointQuadtree),
    ] {
        db.create_table(table, KeyType::Point).unwrap();
        let t = db.table_mut(table).unwrap();
        for p in &pts {
            t.insert(*p).unwrap();
        }
        t.create_index(&format!("{table}_idx"), spec).unwrap();
    }
    let segs = segments(900, 10.0, 6);
    db.create_table("pmr", KeyType::Segment).unwrap();
    let t = db.table_mut("pmr").unwrap();
    for s in &segs {
        t.insert(*s).unwrap();
    }
    t.create_index("pmr_idx", IndexSpec::PmrQuadtree { world: world() })
        .unwrap();

    for (q, anchor) in QueryWorkload::nn_points(10, 77).into_iter().enumerate() {
        let k = 8;
        for table in ["kd", "quad"] {
            let cursor = db
                .query(table, Predicate::point_nearest(anchor).limit(k))
                .unwrap();
            assert!(
                matches!(cursor.path(), AccessPath::Limit { input, .. }
                    if matches!(input.as_ref(), AccessPath::OrderedScan { .. })),
                "query {q} on {table}: expected an ordered scan"
            );
            let dists: Vec<f64> = cursor
                .collect::<Result<Vec<_>, _>>()
                .unwrap()
                .into_iter()
                .map(|(_, d)| match d {
                    Datum::Point(p) => p.distance(&anchor),
                    other => panic!("non-point datum {other:?}"),
                })
                .collect();
            let mut brute: Vec<f64> = pts.iter().map(|p| p.distance(&anchor)).collect();
            brute.sort_by(f64::total_cmp);
            assert_eq!(dists.len(), k);
            for (i, d) in dists.iter().enumerate() {
                assert!(
                    (d - brute[i]).abs() < 1e-9,
                    "query {q} on {table}: k={i} distance mismatch"
                );
            }
        }
        let cursor = db
            .query("pmr", Predicate::segment_nearest(anchor).limit(k))
            .unwrap();
        assert!(matches!(cursor.path(), AccessPath::Limit { input, .. }
            if matches!(input.as_ref(), AccessPath::OrderedScan { .. })));
        let dists: Vec<f64> = cursor
            .collect::<Result<Vec<_>, _>>()
            .unwrap()
            .into_iter()
            .map(|(_, d)| match d {
                Datum::Segment(s) => s.distance_to_point(&anchor),
                other => panic!("non-segment datum {other:?}"),
            })
            .collect();
        let mut brute: Vec<f64> = segs.iter().map(|s| s.distance_to_point(&anchor)).collect();
        brute.sort_by(f64::total_cmp);
        assert_eq!(dists.len(), k);
        for (i, d) in dists.iter().enumerate() {
            assert!(
                (d - brute[i]).abs() < 1e-9,
                "query {q} on pmr: k={i} distance mismatch"
            );
        }
    }
}
