//! End-to-end plan→execute tests: the access path the planner chooses is
//! the one the executor actually scans, routing is decided purely by the
//! catalog and the measured index statistics, and every path returns the
//! same rows.

use spgist::datagen::words;
use spgist::prelude::*;

/// A words table large enough that selective predicates favour index scans.
fn word_database(n: usize) -> (Database, Vec<String>) {
    let mut db = Database::in_memory();
    db.create_table("words", KeyType::Varchar).unwrap();
    let data = words(n, 77);
    let table = db.table_mut("words").unwrap();
    for w in &data {
        table.insert(w.as_str()).unwrap();
    }
    (db, data)
}

fn scan_model(data: &[String], pred: impl Fn(&str) -> bool) -> Vec<RowId> {
    data.iter()
        .enumerate()
        .filter(|(_, w)| pred(w))
        .map(|(i, _)| i as RowId)
        .collect()
}

#[test]
fn planner_routes_each_operator_to_the_index_that_supports_it() {
    let (mut db, data) = word_database(6_000);
    let table = db.table_mut("words").unwrap();
    table.create_index("words_trie", IndexSpec::Trie).unwrap();
    table
        .create_index("words_suffix", IndexSpec::SuffixTree)
        .unwrap();

    // `?=` (regex) is only in the trie operator class.
    let pattern = {
        let mut p = data[100].clone().into_bytes();
        p[0] = b'?';
        String::from_utf8(p).unwrap()
    };
    let cursor = db.query("words", Predicate::str_regex(&pattern)).unwrap();
    assert!(matches!(cursor.path(), AccessPath::IndexScan { index, .. } if index == "words_trie"));
    assert_eq!(
        cursor.source(),
        &ScanSource::Index {
            name: "words_trie".into()
        },
        "the planned index is the one scanned"
    );
    let mut rows = cursor.rows().unwrap();
    rows.sort_unstable();
    let pb = pattern.as_bytes();
    assert_eq!(
        rows,
        scan_model(&data, |w| {
            w.len() == pb.len() && pb.iter().zip(w.bytes()).all(|(p, c)| *p == b'?' || *p == c)
        })
    );

    // `@=` (substring) is only in the suffix-tree operator class.
    let needle = &data[200][..data[200].len().min(3)];
    let cursor = db.query("words", Predicate::str_substring(needle)).unwrap();
    assert!(
        matches!(cursor.path(), AccessPath::IndexScan { index, .. } if index == "words_suffix")
    );
    assert_eq!(
        cursor.source(),
        &ScanSource::Index {
            name: "words_suffix".into()
        }
    );
    let mut rows = cursor.rows().unwrap();
    rows.sort_unstable();
    assert_eq!(rows, scan_model(&data, |w| w.contains(needle)));
}

#[test]
fn unsupported_operator_falls_back_to_a_sequential_scan_with_same_results() {
    let (mut db, data) = word_database(4_000);
    db.table_mut("words")
        .unwrap()
        .create_index("words_trie", IndexSpec::Trie)
        .unwrap();

    // The trie class does not register `@=`: with no suffix tree built, the
    // planner must fall back to the heap even though an index exists.
    let needle = &data[42][..data[42].len().min(3)];
    let cursor = db.query("words", Predicate::str_substring(needle)).unwrap();
    assert!(matches!(cursor.path(), AccessPath::SeqScan { .. }));
    assert_eq!(cursor.source(), &ScanSource::Heap);
    let mut rows = cursor.rows().unwrap();
    rows.sort_unstable();
    assert_eq!(rows, scan_model(&data, |w| w.contains(needle)));
}

#[test]
fn routing_follows_the_catalog_not_the_physical_indexes() {
    let (mut db, data) = word_database(5_000);
    db.table_mut("words")
        .unwrap()
        .create_index("words_trie", IndexSpec::Trie)
        .unwrap();
    let probe = data[7].clone();

    // With the trie's operator class registered, equality uses the trie.
    let cursor = db.query("words", Predicate::str_equals(&probe)).unwrap();
    assert_eq!(
        cursor.source(),
        &ScanSource::Index {
            name: "words_trie".into()
        }
    );
    let indexed = cursor.rows().unwrap();

    // Drop the operator class from the catalog (`DROP OPERATOR CLASS`): the
    // physical index is untouched, but the planner can no longer use it —
    // the same query now routes to the heap, purely by catalog decision.
    db.catalog_mut().unregister_operator_class("SP_GiST_trie");
    let cursor = db.query("words", Predicate::str_equals(&probe)).unwrap();
    assert!(matches!(cursor.path(), AccessPath::SeqScan { .. }));
    assert_eq!(cursor.source(), &ScanSource::Heap);
    assert_eq!(cursor.rows().unwrap(), indexed, "same rows either way");

    // Re-register the class: the index is immediately chosen again.
    db.catalog_mut().register_operator_class(
        spgist::catalog::OperatorClass::paper_classes()
            .into_iter()
            .find(|c| c.name == "SP_GiST_trie")
            .unwrap(),
    );
    let cursor = db.query("words", Predicate::str_equals(&probe)).unwrap();
    assert_eq!(
        cursor.source(),
        &ScanSource::Index {
            name: "words_trie".into()
        }
    );
}

#[test]
fn same_query_routes_to_different_physical_indexes_per_table_setup() {
    // Two identical point tables, indexed differently: the identical
    // predicate is served by the kd-tree on one and the quadtree on the
    // other, with identical results — one API, interchangeable physical
    // structures.  The table must be large enough that descending a deep
    // spatial index beats rescanning the (compact) point heap.
    let mut db = Database::in_memory();
    let pts = spgist::datagen::points(20_000, 9);
    for (name, spec) in [
        ("kd_points", IndexSpec::KdTree),
        ("quad_points", IndexSpec::PointQuadtree),
    ] {
        db.create_table(name, KeyType::Point).unwrap();
        let table = db.table_mut(name).unwrap();
        for p in &pts {
            table.insert(*p).unwrap();
        }
        table.create_index(&format!("{name}_idx"), spec).unwrap();
    }

    let predicate = Predicate::point_equals(pts[123]);
    let kd_cursor = db.query("kd_points", &predicate).unwrap();
    assert_eq!(
        kd_cursor.source(),
        &ScanSource::Index {
            name: "kd_points_idx".into()
        }
    );
    let quad_cursor = db.query("quad_points", &predicate).unwrap();
    assert_eq!(
        quad_cursor.source(),
        &ScanSource::Index {
            name: "quad_points_idx".into()
        }
    );
    let mut kd_rows = kd_cursor.rows().unwrap();
    let mut quad_rows = quad_cursor.rows().unwrap();
    kd_rows.sort_unstable();
    quad_rows.sort_unstable();
    assert_eq!(kd_rows, quad_rows);
    assert!(kd_rows.contains(&123));
}

#[test]
fn segment_table_routes_window_queries_to_the_pmr_quadtree() {
    let mut db = Database::in_memory();
    db.create_table("roads", KeyType::Segment).unwrap();
    let world = spgist::datagen::world();
    let segs = spgist::datagen::segments(3_000, 15.0, 4);
    let table = db.table_mut("roads").unwrap();
    for s in &segs {
        table.insert(*s).unwrap();
    }
    table
        .create_index("roads_pmr", IndexSpec::PmrQuadtree { world })
        .unwrap();

    let window = Rect::new(30.0, 30.0, 45.0, 45.0);
    let cursor = db
        .query("roads", Predicate::segment_in_rect(window))
        .unwrap();
    assert_eq!(
        cursor.source(),
        &ScanSource::Index {
            name: "roads_pmr".into()
        }
    );
    let mut rows = cursor.rows().unwrap();
    rows.sort_unstable();
    let expected: Vec<RowId> = segs
        .iter()
        .enumerate()
        .filter(|(_, s)| s.intersects_rect(&window))
        .map(|(i, _)| i as RowId)
        .collect();
    assert_eq!(
        rows, expected,
        "deduplicated index scan equals a model scan"
    );
}

#[test]
fn streamed_rows_equal_materialized_rows_through_the_executor() {
    let (mut db, data) = word_database(3_000);
    db.table_mut("words")
        .unwrap()
        .create_index("words_trie", IndexSpec::Trie)
        .unwrap();
    let prefix = &data[11][..data[11].len().min(2)];
    let predicate = Predicate::str_prefix(prefix);

    // Pull the first three matches lazily, then compare to the full drain.
    let mut cursor = db.query("words", &predicate).unwrap();
    let first3: Vec<RowId> = cursor
        .by_ref()
        .take(3)
        .map(|item| item.unwrap().0)
        .collect();
    let full: Vec<RowId> = db.query("words", &predicate).unwrap().rows().unwrap();
    assert_eq!(&full[..first3.len()], &first3[..]);
}
