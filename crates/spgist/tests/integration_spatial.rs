//! Cross-crate integration: the kd-tree, point quadtree, PMR quadtree and the
//! R-tree baseline agree on every spatial query of the paper's evaluation.

use spgist::datagen::{points, segments, world, QueryWorkload};
use spgist::prelude::*;

#[test]
fn point_indexes_agree_with_rtree_and_linear_scan() {
    let data = points(10_000, 21);
    let kd = KdTreeIndex::create(BufferPool::in_memory()).unwrap();
    let quad = PointQuadtreeIndex::create(BufferPool::in_memory()).unwrap();
    let mut rt = RTree::create(BufferPool::in_memory()).unwrap();
    for (row, p) in data.iter().enumerate() {
        kd.insert(*p, row as RowId).unwrap();
        quad.insert(*p, row as RowId).unwrap();
        rt.insert_point(*p, row as RowId).unwrap();
    }

    // Point match.
    for q in QueryWorkload::existing(&data, 100, 22) {
        let mut expected: Vec<RowId> = data
            .iter()
            .enumerate()
            .filter(|(_, p)| **p == q)
            .map(|(i, _)| i as RowId)
            .collect();
        expected.sort_unstable();
        let sorted = |mut v: Vec<RowId>| {
            v.sort_unstable();
            v
        };
        assert_eq!(sorted(kd.equals(q).unwrap()), expected);
        assert_eq!(sorted(quad.equals(q).unwrap()), expected);
        assert_eq!(sorted(rt.point_match(q).unwrap()), expected);
    }

    // Range queries of several selectivities.
    for side in [1.0, 5.0, 20.0] {
        for w in QueryWorkload::windows(30, side, 23) {
            let expected = data.iter().filter(|p| w.contains_point(p)).count();
            assert_eq!(kd.range(w).unwrap().len(), expected, "kd range {w:?}");
            assert_eq!(quad.range(w).unwrap().len(), expected, "quad range {w:?}");
            assert_eq!(rt.window(w).unwrap().len(), expected, "rtree window {w:?}");
        }
    }
}

#[test]
fn nn_results_match_brute_force_for_kdtree_and_quadtree() {
    let data = points(3_000, 31);
    let kd = KdTreeIndex::create(BufferPool::in_memory()).unwrap();
    let quad = PointQuadtreeIndex::create(BufferPool::in_memory()).unwrap();
    for (row, p) in data.iter().enumerate() {
        kd.insert(*p, row as RowId).unwrap();
        quad.insert(*p, row as RowId).unwrap();
    }
    for q in QueryWorkload::nn_points(20, 32) {
        let mut brute: Vec<f64> = data.iter().map(|p| p.distance(&q)).collect();
        brute.sort_by(f64::total_cmp);
        for k in [1, 8, 32] {
            let kd_nn = kd.nearest(q, k).unwrap();
            let quad_nn = quad.nearest(q, k).unwrap();
            assert_eq!(kd_nn.len(), k);
            assert_eq!(quad_nn.len(), k);
            for i in 0..k {
                assert!(
                    (kd_nn[i].2 - brute[i]).abs() < 1e-9,
                    "kd-tree {i}-th NN distance mismatch"
                );
                assert!(
                    (quad_nn[i].2 - brute[i]).abs() < 1e-9,
                    "quadtree {i}-th NN distance mismatch"
                );
            }
        }
    }
}

#[test]
fn pmr_quadtree_agrees_with_rtree_after_exact_geometry_recheck() {
    let data = segments(4_000, 10.0, 41);
    let pmr = PmrQuadtreeIndex::create(BufferPool::in_memory(), world()).unwrap();
    let mut rt = RTree::create(BufferPool::in_memory()).unwrap();
    for (row, s) in data.iter().enumerate() {
        pmr.insert(*s, row as RowId).unwrap();
        rt.insert_segment(*s, row as RowId).unwrap();
    }

    // Exact match agrees (the R-tree matches by MBR; for random segments the
    // MBR identifies the segment).
    for q in QueryWorkload::existing(&data, 60, 42) {
        let pmr_rows = pmr.equals(q).unwrap();
        let mut rt_rows = rt.segment_match(q).unwrap();
        rt_rows.sort_unstable();
        assert_eq!(pmr_rows, rt_rows, "exact match mismatch for {q:?}");
        assert!(!pmr_rows.is_empty());
    }

    // Window queries: the PMR quadtree checks exact segment/rectangle
    // intersection, the R-tree only MBR intersection, so the PMR result must
    // equal the scan and be a subset of the R-tree result.
    for w in QueryWorkload::windows(40, 8.0, 43) {
        let expected: Vec<RowId> = data
            .iter()
            .enumerate()
            .filter(|(_, s)| s.intersects_rect(&w))
            .map(|(i, _)| i as RowId)
            .collect();
        let mut pmr_rows: Vec<RowId> = pmr.window(w).unwrap().into_iter().map(|(_, r)| r).collect();
        pmr_rows.sort_unstable();
        assert_eq!(pmr_rows, expected, "pmr window mismatch for {w:?}");
        let rt_rows: Vec<RowId> = rt.window(w).unwrap().into_iter().map(|(_, r)| r).collect();
        for row in &pmr_rows {
            assert!(rt_rows.contains(row), "MBR filtering lost row {row}");
        }
    }
}

#[test]
fn repacking_spatial_indexes_preserves_results_and_improves_page_height() {
    let data = points(8_000, 51);
    let kd = KdTreeIndex::create(BufferPool::in_memory()).unwrap();
    for (row, p) in data.iter().enumerate() {
        kd.insert(*p, row as RowId).unwrap();
    }
    let window = Rect::new(10.0, 10.0, 30.0, 40.0);
    let before_rows = kd.range(window).unwrap().len();
    let before = kd.stats().unwrap();
    kd.repack().unwrap();
    let after = kd.stats().unwrap();
    assert_eq!(kd.range(window).unwrap().len(), before_rows);
    assert_eq!(after.items, before.items);
    assert!(after.max_page_height <= before.max_page_height);
    assert!(
        after.max_page_height <= 8,
        "packed kd-tree page height should be small, got {}",
        after.max_page_height
    );
}
