//! Cross-crate integration: the SP-GiST trie, the B⁺-tree baseline, and the
//! suffix tree must return exactly the same answers for every string query
//! type of the paper's Table 3.

use spgist::datagen::{words, QueryWorkload};
use spgist::prelude::*;

fn build(n: usize, seed: u64) -> (Vec<String>, TrieIndex, BPlusTree, SuffixTreeIndex) {
    let data = words(n, seed);
    let trie = TrieIndex::create(BufferPool::in_memory()).unwrap();
    let mut btree = BPlusTree::create(BufferPool::in_memory()).unwrap();
    let suffix = SuffixTreeIndex::create(BufferPool::in_memory()).unwrap();
    for (row, w) in data.iter().enumerate() {
        trie.insert(w, row as RowId).unwrap();
        btree.insert_str(w, row as RowId).unwrap();
        suffix.insert(w, row as RowId).unwrap();
    }
    (data, trie, btree, suffix)
}

#[test]
fn equality_queries_agree_between_trie_and_btree() {
    let (data, trie, btree, _) = build(8_000, 1);
    for q in QueryWorkload::existing(&data, 100, 2) {
        let mut a = trie.equals(&q).unwrap();
        let mut b = btree.search_str(&q).unwrap();
        a.sort_unstable();
        b.sort_unstable();
        assert_eq!(a, b, "equality mismatch for {q:?}");
        assert!(!a.is_empty(), "an existing key must be found");
    }
    // Missing keys are found by neither.
    assert!(trie.equals("notaword123").unwrap().is_empty());
    assert!(btree.search_str("notaword123").unwrap().is_empty());
}

#[test]
fn prefix_queries_agree_between_trie_and_btree() {
    let (data, trie, btree, _) = build(8_000, 3);
    for q in QueryWorkload::prefixes(&data, 100, 1, 4) {
        let mut a: Vec<RowId> = trie
            .prefix(&q)
            .unwrap()
            .into_iter()
            .map(|(_, r)| r)
            .collect();
        let mut b: Vec<RowId> = btree
            .prefix_search(q.as_bytes())
            .unwrap()
            .into_iter()
            .map(|(_, r)| r)
            .collect();
        a.sort_unstable();
        b.sort_unstable();
        assert_eq!(a, b, "prefix mismatch for {q:?}");
    }
}

#[test]
fn regex_queries_agree_between_trie_and_btree_and_scan() {
    let (data, trie, btree, _) = build(8_000, 5);
    for q in QueryWorkload::regexes(&data, 100, 2, 6) {
        let mut a: Vec<RowId> = trie
            .regex(&q)
            .unwrap()
            .into_iter()
            .map(|(_, r)| r)
            .collect();
        let mut b: Vec<RowId> = btree
            .regex_search(&q)
            .unwrap()
            .into_iter()
            .map(|(_, r)| r)
            .collect();
        let mut scan: Vec<RowId> = data
            .iter()
            .enumerate()
            .filter(|(_, w)| {
                w.len() == q.len()
                    && q.bytes()
                        .zip(w.bytes())
                        .all(|(pc, wc)| pc == b'?' || pc == wc)
            })
            .map(|(i, _)| i as RowId)
            .collect();
        a.sort_unstable();
        b.sort_unstable();
        scan.sort_unstable();
        assert_eq!(a, scan, "trie regex mismatch for {q:?}");
        assert_eq!(b, scan, "btree regex mismatch for {q:?}");
    }
}

#[test]
fn substring_queries_agree_between_suffix_tree_and_scan() {
    let (data, _, _, suffix) = build(4_000, 7);
    for q in QueryWorkload::substrings(&data, 60, 3, 8) {
        let expected: Vec<RowId> = data
            .iter()
            .enumerate()
            .filter(|(_, w)| w.contains(q.as_str()))
            .map(|(i, _)| i as RowId)
            .collect();
        assert_eq!(
            suffix.substring(&q).unwrap(),
            expected,
            "substring mismatch for {q:?}"
        );
    }
}

#[test]
fn trie_nn_results_are_sorted_and_complete() {
    let (data, trie, _, _) = build(2_000, 9);
    let target = &data[17];
    let nn = trie.nearest(target, 20).unwrap();
    assert_eq!(nn.len(), 20);
    assert_eq!(nn[0].2, 0.0, "the word itself is its own nearest neighbour");
    assert!(nn.windows(2).all(|w| w[0].2 <= w[1].2));
}
