//! Model-based differential testing of the durable `Database`.
//!
//! A long random sequence of DDL + DML + queries (DetRng-seeded, fully
//! deterministic) runs against two systems at once: the real file-backed
//! [`Database`] and a naive in-memory model (a `Vec<Option<Datum>>` per
//! table plus straight-line predicate evaluation).  After every operation
//! the two must agree — row ids, result sets, ordered-scan distance
//! profiles, DDL outcomes.  Periodic close/reopen cycles are interleaved
//! mid-sequence, so the durable catalog is exercised *while* state keeps
//! mutating, not just at a final clean shutdown — and half of those
//! cycles are *kill-points*: the database is dropped without `close()`
//! (losing every dirty page) and sometimes garbage lands on the WAL tail,
//! so reopening exercises crash recovery against the model's
//! acknowledged state.
//!
//! Acceptance floor (ISSUE 4): ≥ 1,000 mixed operations with ≥ 5 reopen
//! cycles per seed; the harness asserts both counters.
//!
//! **Transactional mode** (ISSUE 9) layers multi-statement transactions on
//! the same stream: random episodes of `Database::begin()` → INSERT/DELETE
//! statements across tables → commit or abort, with the model rolled back
//! over aborted work exactly the way the engine's logical undo is — loser
//! inserts leave dead row slots (the row id stays burned), loser deletes
//! restore the old datum in place.  Every kill-point additionally crashes
//! with a transaction still *open* (and, half the time, a second one
//! committed moments before), so recovery must drop the loser's logged
//! statements in full while keeping the winner's in full.  Transactions
//! never span an epoch boundary, so DDL / checkpoint / close never run
//! while one is open — which is also what the engine enforces.
//!
//! **Incremental checkpoints** (ISSUE 10): each epoch restricts DML to a
//! random non-empty *active subset* of the tables, and half the epochs end
//! with an explicit `checkpoint()` right before the close or kill-point.
//! Untouched tables cost that checkpoint zero page writes, so recovery
//! alternates between "incremental image + empty log" and "older image +
//! log replay" — and the differential audit after every reopen proves the
//! clean tables' chunks were neither rewritten nor lost.  Queries and DDL
//! still target *all* tables, so clean-table reads run against chunk
//! segments the checkpointer skipped.

use std::collections::BTreeMap;
use std::path::PathBuf;

use spgist::datagen::rng::DetRng;
use spgist::prelude::*;

const OPS_PER_SEED: usize = 1_200;
const OPS_PER_EPOCH: usize = 180; // close/reopen every epoch: ≥ 6 cycles
const MAX_TABLES: usize = 3;
const MAX_INDEXES_PER_TABLE: usize = 2;

fn temp_path(seed: u64) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("spgist-model-{}-{seed}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    dir.join("db.pages")
}

// ---------------------------------------------------------------------------
// The model: the simplest possible single-column database
// ---------------------------------------------------------------------------

struct ModelTable {
    key_type: KeyType,
    rows: Vec<Option<Datum>>,
    indexes: Vec<(String, &'static str)>, // (name, kind label)
}

impl ModelTable {
    fn live(&self) -> impl Iterator<Item = (RowId, &Datum)> {
        self.rows
            .iter()
            .enumerate()
            .filter_map(|(i, d)| d.as_ref().map(|d| (i as RowId, d)))
    }

    fn live_count(&self) -> u64 {
        self.rows.iter().flatten().count() as u64
    }

    fn matches(&self, predicate: &Predicate) -> Vec<RowId> {
        self.live()
            .filter(|(_, d)| predicate.matches(d))
            .map(|(row, _)| row)
            .collect()
    }
}

#[derive(Default)]
struct Model {
    tables: BTreeMap<String, ModelTable>,
}

// ---------------------------------------------------------------------------
// Random data and predicates
// ---------------------------------------------------------------------------

fn random_word(rng: &mut DetRng) -> String {
    let len = rng.gen_range(1usize..=7);
    (0..len)
        .map(|_| char::from(b'a' + rng.gen_range(0u32..5) as u8))
        .collect()
}

fn random_point(rng: &mut DetRng) -> Point {
    // Grid coordinates: exact f64s, plenty of collisions.
    Point::new(
        rng.gen_range(0u32..50) as f64 * 2.0,
        rng.gen_range(0u32..50) as f64 * 2.0,
    )
}

fn random_segment(rng: &mut DetRng) -> Segment {
    Segment::new(random_point(rng), random_point(rng))
}

fn random_datum(rng: &mut DetRng, key_type: KeyType) -> Datum {
    match key_type {
        KeyType::Varchar => Datum::Text(random_word(rng)),
        KeyType::Point => Datum::Point(random_point(rng)),
        KeyType::Segment => Datum::Segment(random_segment(rng)),
    }
}

fn random_rect(rng: &mut DetRng) -> Rect {
    let x0 = rng.gen_range(0u32..80) as f64;
    let y0 = rng.gen_range(0u32..80) as f64;
    let w = rng.gen_range(5u32..40) as f64;
    let h = rng.gen_range(5u32..40) as f64;
    Rect::new(x0, y0, (x0 + w).min(100.0), (y0 + h).min(100.0))
}

/// A random *unordered* predicate leaf of the given key type.
fn random_leaf(rng: &mut DetRng, key_type: KeyType) -> Predicate {
    match key_type {
        KeyType::Varchar => match rng.gen_range(0u32..4) {
            0 => Predicate::str_equals(&random_word(rng)),
            1 => {
                let w = random_word(rng);
                Predicate::str_prefix(&w[..rng.gen_range(0usize..w.len())])
            }
            2 => {
                let mut pattern = random_word(rng);
                if rng.gen_range(0u32..2) == 0 {
                    let bytes = unsafe { pattern.as_bytes_mut() };
                    let pos = rng.gen_range(0usize..bytes.len());
                    bytes[pos] = b'?';
                }
                Predicate::str_regex(&pattern)
            }
            _ => {
                let w = random_word(rng);
                let start = rng.gen_range(0usize..w.len());
                let end = rng.gen_range(start + 1..=w.len());
                Predicate::str_substring(&w[start..end])
            }
        },
        KeyType::Point => match rng.gen_range(0u32..2) {
            0 => Predicate::point_equals(random_point(rng)),
            _ => Predicate::point_in_rect(random_rect(rng)),
        },
        KeyType::Segment => match rng.gen_range(0u32..2) {
            0 => Predicate::segment_equals(random_segment(rng)),
            _ => Predicate::segment_in_rect(random_rect(rng)),
        },
    }
}

/// A random unordered predicate tree (leaves plus And/Or/Not composites).
fn random_predicate(rng: &mut DetRng, key_type: KeyType, depth: u32) -> Predicate {
    if depth == 0 || rng.gen_range(0u32..3) == 0 {
        return random_leaf(rng, key_type);
    }
    match rng.gen_range(0u32..3) {
        0 => random_predicate(rng, key_type, depth - 1).and(random_predicate(
            rng,
            key_type,
            depth - 1,
        )),
        1 => random_predicate(rng, key_type, depth - 1).or(random_predicate(
            rng,
            key_type,
            depth - 1,
        )),
        _ => random_predicate(rng, key_type, depth - 1).negate(),
    }
}

fn nearest_predicate(rng: &mut DetRng, key_type: KeyType) -> Predicate {
    match key_type {
        KeyType::Varchar => Predicate::str_nearest(&random_word(rng)),
        KeyType::Point => Predicate::point_nearest(random_point(rng)),
        KeyType::Segment => Predicate::segment_nearest(random_point(rng)),
    }
}

fn index_spec(rng: &mut DetRng, key_type: KeyType) -> (IndexSpec, &'static str) {
    match key_type {
        KeyType::Varchar => {
            if rng.gen_range(0u32..2) == 0 {
                (IndexSpec::Trie, "trie")
            } else {
                (IndexSpec::SuffixTree, "suffix")
            }
        }
        KeyType::Point => {
            if rng.gen_range(0u32..2) == 0 {
                (IndexSpec::KdTree, "kdtree")
            } else {
                (IndexSpec::PointQuadtree, "pquadtree")
            }
        }
        KeyType::Segment => (
            IndexSpec::PmrQuadtree {
                world: Rect::new(0.0, 0.0, 100.0, 100.0),
            },
            "pmr",
        ),
    }
}

// ---------------------------------------------------------------------------
// Differential checks
// ---------------------------------------------------------------------------

fn check_query(db: &Database, model: &Model, table: &str, predicate: &Predicate, ctx: &str) {
    let mt = &model.tables[table];
    let expected = mt.matches(predicate);
    let mut got = db
        .query(table, predicate)
        .unwrap_or_else(|e| panic!("{ctx}: query failed: {e}"))
        .rows()
        .unwrap_or_else(|e| panic!("{ctx}: cursor failed: {e}"));
    got.sort_unstable();
    let mut want = expected.clone();
    want.sort_unstable();
    assert_eq!(got, want, "{ctx}: result disagreement on {predicate:?}");
}

fn check_limited_query(
    db: &Database,
    model: &Model,
    table: &str,
    predicate: &Predicate,
    k: usize,
    ctx: &str,
) {
    let mt = &model.tables[table];
    let expected = mt.matches(predicate);
    let got = db
        .query(table, predicate.clone().limit(k))
        .unwrap_or_else(|e| panic!("{ctx}: limited query failed: {e}"))
        .rows()
        .unwrap_or_else(|e| panic!("{ctx}: limited cursor failed: {e}"));
    assert_eq!(
        got.len(),
        k.min(expected.len()),
        "{ctx}: LIMIT {k} row count on {predicate:?}"
    );
    for row in &got {
        assert!(
            expected.contains(row),
            "{ctx}: LIMIT returned non-matching row {row} for {predicate:?}"
        );
    }
}

fn check_nearest(db: &Database, model: &Model, table: &str, predicate: &Predicate, ctx: &str) {
    let mt = &model.tables[table];
    // `@@` orders, it does not select: the full scan returns every live row
    // in non-decreasing anchor distance.
    let items: Vec<(RowId, Datum)> = db
        .query(table, predicate)
        .unwrap_or_else(|e| panic!("{ctx}: nearest query failed: {e}"))
        .collect::<Result<_, _>>()
        .unwrap_or_else(|e| panic!("{ctx}: nearest cursor failed: {e}"));
    assert_eq!(
        items.len() as u64,
        mt.live_count(),
        "{ctx}: nearest must report every live row"
    );
    let dists: Vec<f64> = items.iter().map(|(_, d)| predicate.distance(d)).collect();
    for pair in dists.windows(2) {
        assert!(
            pair[0] <= pair[1],
            "{ctx}: nearest out of order ({} then {})",
            pair[0],
            pair[1]
        );
    }
    // The distance multiset matches the model exactly.
    let mut got = dists;
    got.sort_by(f64::total_cmp);
    let mut want: Vec<f64> = mt.live().map(|(_, d)| predicate.distance(d)).collect();
    want.sort_by(f64::total_cmp);
    assert_eq!(got, want, "{ctx}: nearest distance profile disagreement");
}

/// Full-state agreement: every table, every live row, datum by datum.
fn check_full_state(db: &Database, model: &Model, ctx: &str) {
    let db_tables: Vec<&str> = model.tables.keys().map(String::as_str).collect();
    for name in &db_tables {
        let table = db
            .table(name)
            .unwrap_or_else(|| panic!("{ctx}: table {name} missing"));
        let mt = &model.tables[*name];
        assert_eq!(table.len(), mt.live_count(), "{ctx}: {name} live count");
        let mut index_names: Vec<&str> = table.index_names();
        index_names.sort_unstable();
        let mut want_indexes: Vec<&str> = mt.indexes.iter().map(|(n, _)| n.as_str()).collect();
        want_indexes.sort_unstable();
        assert_eq!(index_names, want_indexes, "{ctx}: {name} index set");
        for (row, datum) in mt.live() {
            let got = table
                .datum(row)
                .unwrap_or_else(|e| panic!("{ctx}: {name} row {row} unreadable: {e}"));
            assert_eq!(&got, datum, "{ctx}: {name} row {row} datum");
        }
        // Deleted rows stay deleted (no resurrection through reopen).
        for (row, slot) in mt.rows.iter().enumerate() {
            if slot.is_none() {
                assert!(
                    table.try_datum(row as RowId).unwrap().is_none(),
                    "{ctx}: {name} deleted row {row} resurrected"
                );
            }
        }
    }
}

// ---------------------------------------------------------------------------
// The harness
// ---------------------------------------------------------------------------

/// The newest WAL segment file backing the database at `db_path`
/// (segments are named `<file>.wal.<seq>` next to the database file).
fn newest_wal_segment(db_path: &std::path::Path) -> Option<PathBuf> {
    let dir = db_path.parent()?;
    let prefix = format!("{}.wal.", db_path.file_name()?.to_str()?);
    let mut segments: Vec<PathBuf> = std::fs::read_dir(dir)
        .ok()?
        .filter_map(|e| e.ok())
        .map(|e| e.path())
        .filter(|p| {
            p.file_name()
                .and_then(|n| n.to_str())
                .is_some_and(|n| n.starts_with(&prefix))
        })
        .collect();
    segments.sort();
    segments.pop()
}

fn run_seed(seed: u64) {
    run_seed_with(seed, OPS_PER_SEED, BufferPoolConfig::default(), false);
}

fn run_seed_txn(seed: u64) {
    run_seed_with(seed, OPS_PER_SEED, BufferPoolConfig::default(), true);
}

/// One statement executed inside an open transaction, recorded so the
/// model can be rolled back if the transaction aborts or dies at a
/// kill-point.  Mirrors the engine's logical undo exactly.
enum TxnStmt {
    Insert {
        table: String,
        row: RowId,
    },
    Delete {
        table: String,
        row: RowId,
        datum: Datum,
    },
}

/// Runs a random burst of INSERT/DELETE statements inside `txn`, applying
/// each acknowledged statement to the model immediately (transactions
/// provide atomicity and durability, not isolation — statements are
/// visible the moment they return).  Returns the undo list.
fn txn_statements(
    txn: &mut Transaction<'_>,
    model: &mut Model,
    active: &[String],
    rng: &mut DetRng,
    ctx: &str,
) -> Vec<TxnStmt> {
    let mut pending = Vec::new();
    let tables: Vec<String> = active.to_vec();
    if tables.is_empty() {
        return pending;
    }
    for _ in 0..rng.gen_range(1usize..=6) {
        let table = tables[rng.gen_range(0usize..tables.len())].clone();
        let key_type = model.tables[&table].key_type;
        if rng.gen_range(0u32..10) < 7 {
            let datum = random_datum(rng, key_type);
            let row = txn
                .insert(&table, datum.clone())
                .unwrap_or_else(|e| panic!("{ctx}: txn insert failed: {e}"));
            let mt = model.tables.get_mut(&table).unwrap();
            assert_eq!(
                row,
                mt.rows.len() as RowId,
                "{ctx}: txn row ids stay dense and in insertion order"
            );
            mt.rows.push(Some(datum));
            pending.push(TxnStmt::Insert { table, row });
        } else {
            let mt_len = model.tables[&table].rows.len();
            let row = rng.gen_range(0u64..(mt_len as u64 + 3));
            let got = txn
                .delete(&table, row)
                .unwrap_or_else(|e| panic!("{ctx}: txn delete failed: {e}"));
            let old = model
                .tables
                .get_mut(&table)
                .unwrap()
                .rows
                .get_mut(row as usize)
                .and_then(|slot| slot.take());
            assert_eq!(
                got,
                old.is_some(),
                "{ctx}: txn delete outcome for row {row}"
            );
            if let Some(datum) = old {
                pending.push(TxnStmt::Delete { table, row, datum });
            }
        }
    }
    pending
}

/// Rolls the model back over an aborted (or crash-killed) transaction,
/// newest statement first: inserts become dead slots — the row id stays
/// burned, matching both live undo and recovery's loser tombstones — and
/// deletes restore the old datum at its original row id.
fn rollback_model(model: &mut Model, pending: Vec<TxnStmt>) {
    for stmt in pending.into_iter().rev() {
        match stmt {
            TxnStmt::Insert { table, row } => {
                model.tables.get_mut(&table).unwrap().rows[row as usize] = None;
            }
            TxnStmt::Delete { table, row, datum } => {
                model.tables.get_mut(&table).unwrap().rows[row as usize] = Some(datum);
            }
        }
    }
}

/// Picks an epoch's active subset: each table joins with probability 1/2,
/// and at least one always does (when any table exists).  DML is
/// restricted to the subset for the whole epoch, so the epoch's closing
/// checkpoint is a genuinely incremental one — the clean tables' chunks
/// must survive it untouched.
fn pick_active(model: &Model, rng: &mut DetRng) -> Vec<String> {
    let names: Vec<String> = model.tables.keys().cloned().collect();
    if names.is_empty() {
        return names;
    }
    let mut active: Vec<String> = names
        .iter()
        .filter(|_| rng.gen_range(0u32..2) == 0)
        .cloned()
        .collect();
    if active.is_empty() {
        active.push(names[rng.gen_range(0usize..names.len())].clone());
    }
    active
}

/// The harness body, parameterized so the same operation stream can run on
/// a deliberately starved pool under every replacement policy, with or
/// without the transactional episodes.  The acceptance floors (≥ 1,000
/// ops, ≥ 5 reopens) are asserted only for the full-length runs.
fn run_seed_with(seed: u64, total_ops: usize, config: BufferPoolConfig, transactional: bool) {
    let path = temp_path(seed ^ (config.capacity as u64) ^ config.policy as u64);
    let mut rng = DetRng::seed_from_u64(seed);
    let mut db = Database::create_with_config(&path, config).unwrap();
    let mut model = Model::default();
    let mut table_counter = 0usize;
    let mut index_counter = 0usize;
    let mut ops = 0usize;
    let mut reopens = 0usize;
    // This epoch's DML targets; new tables join immediately, dropped ones
    // leave, and every reopen re-rolls the subset.
    let mut active: Vec<String> = Vec::new();

    while ops < total_ops {
        ops += 1;
        let ctx = format!("seed {seed} op {ops}");

        // Periodic close/reopen cycle, mid-sequence.  Half the epochs end
        // in a clean `close()`; the other half are kill-points: the
        // database is dropped mid-flight (losing every dirty page — the
        // no-steal pool holds them all in memory) and sometimes the crash
        // also leaves junk on the log tail.  Every operation in this
        // harness is acknowledged before the model records it, so after
        // *either* shutdown the reopened database must equal the model
        // exactly: nothing acknowledged lost, nothing phantom.
        if ops.is_multiple_of(OPS_PER_EPOCH) {
            // Half the epochs fold their mutations — which touched only the
            // active subset — into an explicit incremental checkpoint before
            // the shutdown, so the reopen below recovers from "fresh image +
            // (nearly) empty log"; the other half recover from "older image
            // + log replay over the subset's mutations".
            if rng.gen_range(0u32..2) == 0 {
                db.checkpoint().unwrap();
            }
            let crash = rng.gen_range(0u32..2) == 0;
            if crash {
                if transactional {
                    // A committed and an open transaction both in flight at
                    // the kill-point: the winner must survive replay in
                    // full, the loser must vanish in full.
                    if rng.gen_range(0u32..2) == 0 {
                        let mut txn = db.begin().unwrap();
                        let _committed =
                            txn_statements(&mut txn, &mut model, &active, &mut rng, &ctx);
                        txn.commit()
                            .unwrap_or_else(|e| panic!("{ctx}: commit failed: {e}"));
                    }
                    let mut txn = db.begin().unwrap();
                    let pending = txn_statements(&mut txn, &mut model, &active, &mut rng, &ctx);
                    // The crash takes the transaction with it: no commit,
                    // no rollback.  Every statement reaches the log (the
                    // drop below drains the flusher) but no CommitTxn does,
                    // so recovery must drop them all.
                    txn.crash_for_test();
                    rollback_model(&mut model, pending);
                }
                drop(db); // kill-point: no close, no checkpoint
                if rng.gen_range(0u32..2) == 0 {
                    // A crash can leave preallocated garbage past the last
                    // durable record; recovery must discard it.
                    let segment = newest_wal_segment(&path)
                        .unwrap_or_else(|| panic!("{ctx}: no WAL segment on disk"));
                    let mut bytes = std::fs::read(&segment).unwrap();
                    let junk = 1 + rng.gen_range(0u32..64) as usize;
                    bytes.extend(std::iter::repeat_n(0xDEu8, junk));
                    std::fs::write(&segment, &bytes).unwrap();
                }
            } else {
                db.close().unwrap();
            }
            let kind = if crash { "crash" } else { "close" };
            db = Database::open_with_config(&path, config)
                .unwrap_or_else(|e| panic!("{ctx}: reopen after {kind} failed: {e}"));
            reopens += 1;
            check_full_state(&db, &model, &format!("{ctx} (after {kind}+reopen)"));
            active = pick_active(&model, &mut rng);
            continue;
        }

        let table_names: Vec<String> = model.tables.keys().cloned().collect();
        let roll = rng.gen_range(0u32..100);

        if table_names.is_empty() || (roll >= 90 && model.tables.len() < MAX_TABLES) {
            // CREATE TABLE.
            let name = format!("t{table_counter}");
            table_counter += 1;
            let key_type = match rng.gen_range(0u32..3) {
                0 => KeyType::Varchar,
                1 => KeyType::Point,
                _ => KeyType::Segment,
            };
            db.create_table(&name, key_type).unwrap();
            model.tables.insert(
                name.clone(),
                ModelTable {
                    key_type,
                    rows: Vec::new(),
                    indexes: Vec::new(),
                },
            );
            // A new table must receive DML to be interesting: it joins the
            // active subset for the rest of the epoch.
            active.push(name);
            continue;
        }

        // Queries and DDL range over *all* tables; DML (the INSERT, DELETE
        // and transaction arms below) stays inside the active subset so
        // the epoch's checkpoint skips the clean tables' chunks.
        let table = table_names[rng.gen_range(0usize..table_names.len())].clone();
        let key_type = model.tables[&table].key_type;
        let dml_table = active[rng.gen_range(0usize..active.len())].clone();
        let dml_key_type = model.tables[&dml_table].key_type;

        match roll {
            // Multi-statement transaction episode: a burst of statements
            // across random tables, then commit or abort.  (Transactional
            // mode only; carved out of the INSERT range.)
            35..=49 if transactional => {
                let mut txn = db.begin().unwrap();
                let pending = txn_statements(&mut txn, &mut model, &active, &mut rng, &ctx);
                if rng.gen_range(0u32..5) < 3 {
                    txn.commit()
                        .unwrap_or_else(|e| panic!("{ctx}: commit failed: {e}"));
                } else {
                    txn.abort()
                        .unwrap_or_else(|e| panic!("{ctx}: abort failed: {e}"));
                    rollback_model(&mut model, pending);
                }
            }
            // INSERT (the bulk of the workload).
            0..=49 => {
                let datum = random_datum(&mut rng, dml_key_type);
                let row = db
                    .table_handle(&dml_table)
                    .unwrap()
                    .insert(datum.clone())
                    .unwrap_or_else(|e| panic!("{ctx}: insert failed: {e}"));
                let mt = model.tables.get_mut(&dml_table).unwrap();
                assert_eq!(
                    row,
                    mt.rows.len() as RowId,
                    "{ctx}: row ids must stay dense and in insertion order"
                );
                mt.rows.push(Some(datum));
            }
            // DELETE a random row id (live, dead, or never allocated).
            50..=64 => {
                let mt_len = model.tables[&dml_table].rows.len();
                let row = rng.gen_range(0u64..(mt_len as u64 + 3));
                let got = db
                    .table_handle(&dml_table)
                    .unwrap()
                    .delete(row)
                    .unwrap_or_else(|e| panic!("{ctx}: delete failed: {e}"));
                let mt = model.tables.get_mut(&dml_table).unwrap();
                let want = mt
                    .rows
                    .get_mut(row as usize)
                    .map(|slot| slot.take().is_some())
                    .unwrap_or(false);
                assert_eq!(got, want, "{ctx}: delete outcome for row {row}");
            }
            // Unordered query: random boolean tree, sometimes LIMITed.
            65..=81 => {
                let predicate = random_predicate(&mut rng, key_type, 2);
                if rng.gen_range(0u32..4) == 0 {
                    let k = rng.gen_range(1usize..10);
                    check_limited_query(&db, &model, &table, &predicate, k, &ctx);
                } else {
                    check_query(&db, &model, &table, &predicate, &ctx);
                }
            }
            // Ordered (`@@`) query: distance-profile agreement.
            82..=86 => {
                let predicate = nearest_predicate(&mut rng, key_type);
                check_nearest(&db, &model, &table, &predicate, &ctx);
            }
            // CREATE INDEX / DROP INDEX / DROP TABLE / checkpoint.
            _ => match rng.gen_range(0u32..4) {
                0 if model.tables[&table].indexes.len() < MAX_INDEXES_PER_TABLE => {
                    let (spec, kind) = index_spec(&mut rng, key_type);
                    let name = format!("ix{index_counter}");
                    index_counter += 1;
                    db.create_index(&table, &name, spec)
                        .unwrap_or_else(|e| panic!("{ctx}: create_index failed: {e}"));
                    model
                        .tables
                        .get_mut(&table)
                        .unwrap()
                        .indexes
                        .push((name, kind));
                }
                1 => {
                    let mt = model.tables.get_mut(&table).unwrap();
                    if let Some(pos) =
                        (!mt.indexes.is_empty()).then(|| rng.gen_range(0usize..mt.indexes.len()))
                    {
                        let (name, _) = mt.indexes.remove(pos);
                        assert!(
                            db.drop_index(&table, &name)
                                .unwrap_or_else(|e| panic!("{ctx}: drop_index failed: {e}")),
                            "{ctx}: index {name} should exist"
                        );
                    }
                }
                2 if model.tables.len() > 1 => {
                    assert!(
                        db.drop_table(&table)
                            .unwrap_or_else(|e| panic!("{ctx}: drop_table failed: {e}")),
                        "{ctx}: table {table} should exist"
                    );
                    model.tables.remove(&table);
                    active.retain(|t| t != &table);
                    if active.is_empty() {
                        active = pick_active(&model, &mut rng);
                    }
                }
                _ => db.checkpoint().unwrap(),
            },
        }
    }

    if total_ops >= OPS_PER_SEED {
        assert!(ops >= 1_000, "acceptance floor: ≥ 1,000 mixed operations");
        assert!(
            reopens >= 5,
            "acceptance floor: ≥ 5 reopen cycles, got {reopens}"
        );
    } else {
        assert!(reopens >= 1, "short run still cycles the database once");
    }

    // Final clean shutdown and one last full differential audit.
    db.close().unwrap();
    let db = Database::open_with_config(&path, config).unwrap();
    check_full_state(&db, &model, &format!("seed {seed} final"));
    for (name, mt) in &model.tables {
        if mt.live_count() > 0 {
            let predicate = random_leaf(&mut rng, mt.key_type);
            check_query(
                &db,
                &model,
                name,
                &predicate,
                &format!("seed {seed} final query"),
            );
        }
    }
    drop(db);
    let _ = std::fs::remove_dir_all(path.parent().unwrap());
}

#[test]
fn model_differential_seed_a() {
    run_seed(0xA11CE);
}

#[test]
fn model_differential_seed_b() {
    run_seed(0xB0B5EED);
}

/// The same differential stream on a deliberately starved 8-frame pool,
/// once per replacement policy: every fetch is an eviction decision, so a
/// policy that ever evicts a pinned frame, loses a dirty page, or corrupts
/// its bookkeeping under churn diverges from the model immediately.
#[test]
fn model_differential_tiny_pool_every_policy() {
    for policy in [
        ReplacementPolicyKind::Lru,
        ReplacementPolicyKind::Clock,
        ReplacementPolicyKind::Sieve,
    ] {
        run_seed_with(
            0x8F4A3E5,
            2 * OPS_PER_EPOCH + OPS_PER_EPOCH / 2,
            BufferPoolConfig {
                capacity: 8,
                policy,
                ..Default::default()
            },
            false,
        );
    }
}

#[test]
fn model_transactional_seed_a() {
    run_seed_txn(0x7AC7_10F5);
}

#[test]
fn model_transactional_seed_b() {
    run_seed_txn(0xDEED_5EED);
}

/// Extra transactional soak seed, run by the nightly CI job only
/// (`cargo test --test model -- --ignored`).
#[test]
#[ignore = "nightly: extra transactional soak seed"]
fn model_transactional_seed_nightly() {
    run_seed_txn(0x9_1DEA_F00D);
}
