//! Crash-point recovery suite: every acknowledged write survives, no
//! unacknowledged write resurrects.
//!
//! These tests kill a durable [`Database`] at chosen points — dropped
//! without `close()`, data pages lost before their fsync, a checkpoint
//! aborted halfway, the log tail torn at *every byte offset* — then reopen
//! and check the recovered state is exactly the acknowledged-commit prefix:
//!
//! * **never lost**: a statement whose call returned `Ok` is present after
//!   reopen, and
//! * **never phantom**: a statement whose record did not fully reach the
//!   log is absent — a torn batch record restores none of the batch.
//!
//! The crash model: data pages live behind a [`FaultPager`] (a volatile
//! write cache that `crash()` clears, emulating the kernel page cache),
//! while the WAL writes its own files with its own fsyncs and is therefore
//! real. Dropping a `Database` without `close()` is itself a faithful
//! crash for data pages even without a `FaultPager` — the no-steal buffer
//! pool keeps every dirty page in memory between checkpoints, so the drop
//! loses them exactly as a power cut would.

use std::path::PathBuf;
use std::sync::Arc;

use spgist::catalog::WalConfig;
use spgist::prelude::*;
use spgist::storage::{FaultPager, PageId, SyncFault, WriteFault};

/// A scratch directory holding one database file plus its WAL segments.
struct TempDb {
    dir: PathBuf,
}

impl TempDb {
    fn new(tag: &str) -> Self {
        let dir = std::env::temp_dir().join(format!("spgist-crash-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        TempDb { dir }
    }

    fn path(&self) -> PathBuf {
        self.dir.join("db.pages")
    }

    fn wal_prefix(&self) -> PathBuf {
        self.dir.join("db.pages.wal")
    }

    /// WAL segment files, oldest first.  The numeric-suffix filter keeps
    /// non-segment siblings (the `.ckpt` checkpoint journal) out.
    fn wal_segments(&self) -> Vec<PathBuf> {
        let mut segments: Vec<PathBuf> = std::fs::read_dir(&self.dir)
            .unwrap()
            .map(|e| e.unwrap().path())
            .filter(|p| {
                p.file_name()
                    .and_then(|n| n.to_str())
                    .and_then(|n| n.strip_prefix("db.pages.wal."))
                    .is_some_and(|suffix| {
                        !suffix.is_empty() && suffix.bytes().all(|b| b.is_ascii_digit())
                    })
            })
            .collect();
        segments.sort();
        segments
    }

    fn last_segment(&self) -> PathBuf {
        self.wal_segments().pop().expect("a WAL segment exists")
    }

    /// Copies every file (db + segments) aside so a destructive reopen can
    /// be retried from the same crash image.
    fn snapshot(&self) -> Vec<(PathBuf, Vec<u8>)> {
        let mut files: Vec<PathBuf> = std::fs::read_dir(&self.dir)
            .unwrap()
            .map(|e| e.unwrap().path())
            .collect();
        files.sort();
        files
            .into_iter()
            .map(|p| {
                let bytes = std::fs::read(&p).unwrap();
                (p, bytes)
            })
            .collect()
    }

    /// Restores a snapshot, deleting any file the reopen created since.
    fn restore(&self, snapshot: &[(PathBuf, Vec<u8>)]) {
        for entry in std::fs::read_dir(&self.dir).unwrap() {
            std::fs::remove_file(entry.unwrap().path()).unwrap();
        }
        for (path, bytes) in snapshot {
            std::fs::write(path, bytes).unwrap();
        }
    }
}

impl Drop for TempDb {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.dir);
    }
}

fn word(i: usize) -> String {
    format!("word-{i:04}")
}

/// Asserts the `words` table holds exactly `word(0)..word(n)` live.
fn assert_words(db: &Database, n: usize) {
    let table = db.table("words").expect("words table exists");
    assert_eq!(table.len(), n as u64, "live row count");
    for row in 0..n {
        assert_eq!(
            table.datum(row as u64).unwrap(),
            Datum::Text(word(row)),
            "row {row} content"
        );
    }
    // The sequential scan agrees with the row-at-a-time reads.
    let rows = db
        .query("words", Predicate::str_prefix("word-"))
        .unwrap()
        .rows()
        .unwrap();
    assert_eq!(rows.len(), n, "scan row count");
}

#[test]
fn drop_without_close_loses_nothing_acknowledged() {
    let tmp = TempDb::new("drop-no-close");
    let mut db = Database::create(tmp.path()).unwrap();
    db.create_table("words", KeyType::Varchar).unwrap();
    db.create_index("words", "words_trie", IndexSpec::Trie)
        .unwrap();
    {
        let table = db.table_handle("words").unwrap();
        for i in 0..100 {
            table.insert(word(i)).unwrap(); // acknowledged
        }
        for row in [3u64, 7, 50] {
            assert!(table.delete(row).unwrap());
        }
        // Pad the table with one bulk statement so the prefix probe below
        // is selective enough for the planner to pick the recovered index.
        let bulk: Vec<Datum> = (0..2900)
            .map(|i| Datum::Text(format!("zz-bulk-{i:05}")))
            .collect();
        table.insert_many(bulk).unwrap();
    }
    drop(db); // crash: no close(), no checkpoint — dirty pages are gone

    let db = Database::open(tmp.path()).unwrap();
    let table = db.table("words").unwrap();
    assert_eq!(table.len(), 2997);
    for row in 0..100u64 {
        let expected = if [3, 7, 50].contains(&row) {
            None
        } else {
            Some(Datum::Text(word(row as usize)))
        };
        assert_eq!(table.try_datum(row).unwrap(), expected, "row {row}");
    }
    assert_eq!(
        table.datum(2999).unwrap(),
        Datum::Text("zz-bulk-02899".to_string()),
        "batch tail recovered"
    );
    // The recovered index answers queries (and is actually chosen).
    let cursor = db.query("words", Predicate::str_prefix("word-00")).unwrap();
    assert!(cursor.source().scans_index("words_trie"));
    let mut rows = cursor.rows().unwrap();
    rows.sort_unstable();
    let expected: Vec<u64> = (0..100).filter(|r| ![3, 7, 50].contains(r)).collect();
    assert_eq!(rows, expected);
    db.close().unwrap();
}

/// The core prefix property, proven at *every byte*: truncate the log tail
/// at each offset in turn and check the reopened state is exactly the
/// records that fully fit below the cut — never one fewer (lost
/// acknowledged work), never one more (phantom resurrection).
#[test]
fn torn_log_tail_recovers_exactly_the_acknowledged_prefix() {
    const N: usize = 12;
    let tmp = TempDb::new("torn-tail");
    let mut db = Database::create(tmp.path()).unwrap();
    db.create_table("words", KeyType::Varchar).unwrap();

    // `boundaries[i]` = segment length once insert `i` is durable: the
    // record for insert `i` occupies bytes `boundaries[i-1]..boundaries[i]`.
    let segment = tmp.last_segment();
    let base = std::fs::metadata(&segment).unwrap().len();
    let mut boundaries = Vec::with_capacity(N);
    {
        let table = db.table_handle("words").unwrap();
        for i in 0..N {
            table.insert(word(i)).unwrap();
            boundaries.push(std::fs::metadata(&segment).unwrap().len());
        }
    }
    drop(db); // crash

    let crash_image = tmp.snapshot();
    let full = *boundaries.last().unwrap();
    assert!(base < full, "the log grew as inserts were acknowledged");

    for cut in base..=full {
        tmp.restore(&crash_image);
        let file = std::fs::OpenOptions::new()
            .write(true)
            .open(&segment)
            .unwrap();
        file.set_len(cut).unwrap();
        drop(file);

        let expected = boundaries.iter().filter(|&&b| b <= cut).count();
        let db = Database::open(tmp.path())
            .unwrap_or_else(|e| panic!("reopen failed at cut {cut}: {e}"));
        let table = db.table("words").unwrap();
        assert_eq!(
            table.len(),
            expected as u64,
            "cut {cut}: exactly the fully-logged prefix survives"
        );
        for row in 0..expected {
            assert_eq!(table.datum(row as u64).unwrap(), Datum::Text(word(row)));
        }
        assert_eq!(
            table.try_datum(expected as u64).unwrap(),
            None,
            "cut {cut}: no phantom row past the prefix"
        );
    }
}

/// A group commit covering several records must recover all-or-nothing.
/// The log seals every batch with a count + CRC record; this test builds a
/// two-record sealed batch on the log tail byte-for-byte, then tears it at
/// every offset — either both records come back or neither does, never the
/// first without the second (which is exactly what per-record framing
/// alone would resurrect).
#[test]
fn torn_group_commit_batch_drops_as_a_unit() {
    use spgist::storage::crc::crc32;

    // Batch-seal frame layout (see `spgist-wal`): zero length field, magic
    // "SPGS", record count, CRC over the batch's frame bytes, CRC over the
    // seal's own first 16 bytes.
    const SEAL_MAGIC: u32 = 0x5350_4753;
    const SEAL_BYTES: usize = 20;

    const SINGLES: usize = 3;
    let tmp = TempDb::new("torn-batch");
    let mut db = Database::create(tmp.path()).unwrap();
    db.create_table("words", KeyType::Varchar).unwrap();
    let segment = tmp.last_segment();
    let (before_batch, after_first);
    {
        let table = db.table_handle("words").unwrap();
        for i in 0..SINGLES {
            table.insert(word(i)).unwrap();
        }
        before_batch = std::fs::metadata(&segment).unwrap().len() as usize;
        table.insert(word(SINGLES)).unwrap();
        after_first = std::fs::metadata(&segment).unwrap().len() as usize;
        table.insert(word(SINGLES + 1)).unwrap();
    }
    drop(db); // crash

    // Each insert above flushed as its own sealed one-record batch.  Splice
    // the last two into a single two-record batch — the on-disk image of
    // one group commit covering both acknowledged rows.
    let bytes = std::fs::read(&segment).unwrap();
    let frame_a = &bytes[before_batch..after_first - SEAL_BYTES];
    let frame_b = &bytes[after_first..bytes.len() - SEAL_BYTES];
    let mut batch = Vec::new();
    batch.extend_from_slice(frame_a);
    batch.extend_from_slice(frame_b);
    let mut seal = [0u8; SEAL_BYTES];
    seal[0..4].copy_from_slice(&0u32.to_le_bytes());
    seal[4..8].copy_from_slice(&SEAL_MAGIC.to_le_bytes());
    seal[8..12].copy_from_slice(&2u32.to_le_bytes());
    seal[12..16].copy_from_slice(&crc32(&batch).to_le_bytes());
    let seal_crc = crc32(&seal[0..16]);
    seal[16..20].copy_from_slice(&seal_crc.to_le_bytes());
    let mut spliced = bytes[..before_batch].to_vec();
    spliced.extend_from_slice(&batch);
    spliced.extend_from_slice(&seal);
    std::fs::write(&segment, &spliced).unwrap();
    let crash_image = tmp.snapshot();

    // Intact: the synthesized batch seal verifies and both rows are back.
    let db = Database::open(tmp.path()).unwrap();
    assert_words(&db, SINGLES + 2);
    drop(db);

    // Torn at every byte inside the batch: recovery must yield all or
    // nothing — in particular, a cut that keeps record A's frame whole but
    // loses the seal must NOT resurrect A alone, because A's group commit
    // was never acknowledged.
    for cut in before_batch..spliced.len() {
        tmp.restore(&crash_image);
        let file = std::fs::OpenOptions::new()
            .write(true)
            .open(&segment)
            .unwrap();
        file.set_len(cut as u64).unwrap();
        drop(file);
        let db = Database::open(tmp.path())
            .unwrap_or_else(|e| panic!("reopen failed at cut {cut}: {e}"));
        let table = db.table("words").unwrap();
        assert_eq!(
            table.len(),
            SINGLES as u64,
            "cut {cut}: a torn group commit must drop as a unit, not a prefix"
        );
        drop(db);
    }

    // Bit rot inside the *first* record of the batch, seal and second
    // record intact: the batch CRC no longer vouches for its bytes, so the
    // whole batch is gone — not just the damaged record.
    tmp.restore(&crash_image);
    let mut rotted = spliced.clone();
    rotted[before_batch + 9] ^= 0xFF; // inside frame A's payload
    std::fs::write(&segment, &rotted).unwrap();
    let db = Database::open(tmp.path()).unwrap();
    assert_eq!(db.table("words").unwrap().len(), SINGLES as u64);
    db.close().unwrap();
}

#[test]
fn garbage_on_the_log_tail_is_discarded_not_fatal() {
    const N: usize = 8;
    let tmp = TempDb::new("garbage-tail");
    let mut db = Database::create(tmp.path()).unwrap();
    db.create_table("words", KeyType::Varchar).unwrap();
    {
        let table = db.table_handle("words").unwrap();
        for i in 0..N {
            table.insert(word(i)).unwrap();
        }
    }
    drop(db); // crash

    // A crash can leave preallocated junk past the last record — the log
    // must treat it as a torn tail, not corruption.
    let segment = tmp.last_segment();
    let mut bytes = std::fs::read(&segment).unwrap();
    bytes.extend_from_slice(&[0xDB; 100]);
    std::fs::write(&segment, &bytes).unwrap();

    let db = Database::open(tmp.path()).unwrap();
    assert_words(&db, N);
    db.close().unwrap();
}

#[test]
fn flipped_byte_in_the_last_record_drops_only_that_record() {
    const N: usize = 8;
    let tmp = TempDb::new("bitrot-tail");
    let mut db = Database::create(tmp.path()).unwrap();
    db.create_table("words", KeyType::Varchar).unwrap();
    let segment = tmp.last_segment();
    let before_last;
    {
        let table = db.table_handle("words").unwrap();
        for i in 0..N - 1 {
            table.insert(word(i)).unwrap();
        }
        before_last = std::fs::metadata(&segment).unwrap().len();
        table.insert(word(N - 1)).unwrap();
    }
    drop(db); // crash

    // Corrupt one byte inside the final record's payload: its CRC no
    // longer matches, so recovery must stop *before* it — the record was
    // never fully durable as far as the checksum can prove.
    let mut bytes = std::fs::read(&segment).unwrap();
    let target = before_last as usize + 9; // inside the len/crc/payload frame
    bytes[target] ^= 0xFF;
    std::fs::write(&segment, &bytes).unwrap();

    let db = Database::open(tmp.path()).unwrap();
    assert_words(&db, N - 1);
    db.close().unwrap();
}

#[test]
fn crash_before_data_page_sync_recovers_from_the_log() {
    let tmp = TempDb::new("pre-fsync");
    let fault = Arc::new(FaultPager::new(Arc::new(
        spgist::storage::FilePager::create(tmp.path()).unwrap(),
    )));
    let mut db = Database::create_with_pager(
        Arc::clone(&fault) as Arc<dyn Pager>,
        tmp.wal_prefix(),
        BufferPoolConfig::default(),
        WalConfig::default(),
    )
    .unwrap();
    db.create_table("words", KeyType::Varchar).unwrap(); // checkpointed + synced
    {
        let table = db.table_handle("words").unwrap();
        for i in 0..50 {
            table.insert(word(i)).unwrap(); // acknowledged via the WAL only
        }
    }
    // Power cut: every data-page write since the last successful sync is
    // lost. (With the no-steal pool there should be none in flight anyway
    // — the pages are dirty in the pool, not in the OS cache.)
    fault.crash();
    drop(db);

    // Reopen the *real* file: the data pages hold the post-DDL checkpoint,
    // everything else comes back through replay.
    let db = Database::open(tmp.path()).unwrap();
    assert_words(&db, 50);
    db.close().unwrap();
}

#[test]
fn crash_mid_checkpoint_recovers_the_previous_checkpoint_plus_log() {
    let tmp = TempDb::new("mid-checkpoint");
    let fault = Arc::new(FaultPager::new(Arc::new(
        spgist::storage::FilePager::create(tmp.path()).unwrap(),
    )));
    let mut db = Database::create_with_pager(
        Arc::clone(&fault) as Arc<dyn Pager>,
        tmp.wal_prefix(),
        BufferPoolConfig::default(),
        WalConfig::default(),
    )
    .unwrap();
    db.create_table("words", KeyType::Varchar).unwrap();
    {
        let table = db.table_handle("words").unwrap();
        for i in 0..20 {
            table.insert(word(i)).unwrap();
        }
    }
    db.checkpoint().unwrap(); // durable point: 20 rows in the image
    {
        let table = db.table_handle("words").unwrap();
        for i in 20..35 {
            table.insert(word(i)).unwrap(); // acknowledged, in the log only
        }
    }

    // The next checkpoint dies after one data-page write: the flush fails,
    // the error propagates, and nothing claims durability.
    fault.set_write_fault(WriteFault::FailAfter(1));
    assert!(
        db.checkpoint().is_err(),
        "a checkpoint that could not flush must report failure"
    );
    fault.crash(); // and then the machine dies too
    drop(db);

    // The half-written checkpoint never reached the platter; recovery
    // starts from the previous one and replays the 15 logged inserts.
    let db = Database::open(tmp.path()).unwrap();
    assert_words(&db, 35);
    db.close().unwrap();
}

#[test]
fn insert_many_batch_recovers_atomically() {
    const SINGLES: usize = 3;
    const BATCH: usize = 10;
    let tmp = TempDb::new("batch-atomic");
    let mut db = Database::create(tmp.path()).unwrap();
    db.create_table("words", KeyType::Varchar).unwrap();
    let segment = tmp.last_segment();
    let before_batch;
    {
        let table = db.table_handle("words").unwrap();
        for i in 0..SINGLES {
            table.insert(word(i)).unwrap();
        }
        before_batch = std::fs::metadata(&segment).unwrap().len();
        let batch: Vec<Datum> = (SINGLES..SINGLES + BATCH)
            .map(|i| Datum::Text(word(i)))
            .collect();
        table.insert_many(batch).unwrap(); // one record, acknowledged once
    }
    drop(db); // crash
    let after_batch = std::fs::metadata(&segment).unwrap().len();
    let crash_image = tmp.snapshot();

    // Intact log: the whole batch is back.
    let db = Database::open(tmp.path()).unwrap();
    assert_words(&db, SINGLES + BATCH);
    drop(db);

    // Log torn in the middle of the batch record: *none* of the batch
    // comes back — a multi-row statement is atomic under recovery, never
    // a partial resurrection.
    tmp.restore(&crash_image);
    let cut = (before_batch + after_batch) / 2;
    assert!(before_batch < cut && cut < after_batch);
    let file = std::fs::OpenOptions::new()
        .write(true)
        .open(&segment)
        .unwrap();
    file.set_len(cut).unwrap();
    drop(file);

    let db = Database::open(tmp.path()).unwrap();
    assert_words(&db, SINGLES);
    db.close().unwrap();
}

#[test]
fn ddl_survives_crash_without_close() {
    let tmp = TempDb::new("ddl");
    let mut db = Database::create(tmp.path()).unwrap();
    db.create_table("words", KeyType::Varchar).unwrap();
    {
        let table = db.table_handle("words").unwrap();
        for i in 0..5 {
            table.insert(word(i)).unwrap();
        }
    }
    db.create_index("words", "words_trie", IndexSpec::Trie)
        .unwrap();
    db.create_table("scratch", KeyType::Varchar).unwrap();
    {
        let words = db.table_handle("words").unwrap();
        let scratch = db.table_handle("scratch").unwrap();
        for i in 5..8 {
            words.insert(word(i)).unwrap();
        }
        scratch.insert("ephemeral").unwrap();
    }
    assert!(db.drop_table("scratch").unwrap());
    drop(db); // crash

    let mut db = Database::open(tmp.path()).unwrap();
    assert!(db.table("scratch").is_none(), "dropped table stays dropped");
    assert_words(&db, 8);
    let table = db.table("words").unwrap();
    assert_eq!(table.index_names(), vec!["words_trie"]);
    // (The planner may still prefer a seq scan at 8 rows — index *usage*
    // after recovery is proven in drop_without_close_loses_nothing above.)
    let cursor = db.query("words", Predicate::str_prefix("word-")).unwrap();
    assert_eq!(cursor.rows().unwrap().len(), 8);

    // Index DDL in the other direction survives a crash too.
    assert!(db.drop_index("words", "words_trie").unwrap());
    drop(db); // crash

    let db = Database::open(tmp.path()).unwrap();
    let table = db.table("words").unwrap();
    assert!(
        table.index_names().is_empty(),
        "dropped index stays dropped"
    );
    assert_words(&db, 8);
    db.close().unwrap();
}

/// The realistic power-cut model: the kernel had persisted an *arbitrary
/// subset* of the checkpoint's in-place page writes when the power died —
/// not the all-or-nothing cache flush `crash()` emulates.  Mixed-epoch
/// data pages under the old catalog are unrecoverable by logical replay
/// alone; the pre-image journal must roll every touched page back to the
/// previous checkpoint before replay starts.
#[test]
fn power_cut_persisting_a_subset_of_a_checkpoint_rolls_back() {
    let tmp = TempDb::new("subset-data");
    let fault = Arc::new(FaultPager::new(Arc::new(
        spgist::storage::FilePager::create(tmp.path()).unwrap(),
    )));
    let mut db = Database::create_with_pager(
        Arc::clone(&fault) as Arc<dyn Pager>,
        tmp.wal_prefix(),
        BufferPoolConfig::default(),
        WalConfig::default(),
    )
    .unwrap();
    db.create_table("words", KeyType::Varchar).unwrap();
    db.create_index("words", "words_trie", IndexSpec::Trie)
        .unwrap();
    {
        let table = db.table_handle("words").unwrap();
        for i in 0..30 {
            table.insert(word(i)).unwrap();
        }
    }
    db.checkpoint().unwrap(); // durable point: 30 rows in the image
    {
        let table = db.table_handle("words").unwrap();
        for i in 30..60 {
            table.insert(word(i)).unwrap(); // acknowledged, in the log only
        }
        for row in [2u64, 11, 29] {
            assert!(table.delete(row).unwrap()); // in-place page mutations
        }
    }

    // The next checkpoint's data sync never completes — but the power cut
    // lets half its page writes reach the platter anyway.  (Without the
    // pre-image journal this state is unrecoverable: replaying the logged
    // statements over mixed-epoch pages corrupts, it does not heal.)
    fault.set_sync_fault(SyncFault::Fail);
    assert!(db.checkpoint().is_err());
    fault.crash_keeping(|id| id % 2 == 0).unwrap();
    drop(db);

    let db = Database::open(tmp.path()).unwrap();
    let table = db.table("words").unwrap();
    assert_eq!(table.len(), 57);
    for row in 0..60u64 {
        let expected = if [2, 11, 29].contains(&row) {
            None
        } else {
            Some(Datum::Text(word(row as usize)))
        };
        assert_eq!(table.try_datum(row).unwrap(), expected, "row {row}");
    }
    db.close().unwrap();
}

/// The ordering hazard from the other side: the data sync *succeeds*, the
/// catalog sync does not, and the crash persists only the catalog chain's
/// *root* page — a catalog whose head claims `checkpoint_lsn = cut` spliced
/// onto stale continuation pages, the nightmare the reviewer's single-sync
/// analysis predicted.  Rollback must restore both the old catalog and the
/// old data pages (the data sync overwrote them in place), after which the
/// un-pruned log replays everything acknowledged.
#[test]
fn torn_catalog_write_rolls_back_to_the_previous_checkpoint() {
    let tmp = TempDb::new("torn-catalog");
    let fault = Arc::new(FaultPager::new(Arc::new(
        spgist::storage::FilePager::create(tmp.path()).unwrap(),
    )));
    let mut db = Database::create_with_pager(
        Arc::clone(&fault) as Arc<dyn Pager>,
        tmp.wal_prefix(),
        BufferPoolConfig::default(),
        WalConfig::default(),
    )
    .unwrap();
    db.create_table("words", KeyType::Varchar).unwrap();
    {
        let table = db.table_handle("words").unwrap();
        // Enough rows that the catalog's row directory spans multiple
        // chain pages — a torn chain write becomes possible at all.
        for i in 0..3000 {
            table.insert(word(i)).unwrap();
        }
    }
    db.checkpoint().unwrap();
    {
        let table = db.table_handle("words").unwrap();
        for i in 3000..3040 {
            table.insert(word(i)).unwrap();
        }
    }

    // Checkpoint sync #1 (data pages) succeeds, sync #2 (catalog) fails:
    // the cache now holds exactly the new catalog's chain writes, and the
    // crash persists only the chain root (logical page 0).
    fault.set_sync_fault(SyncFault::FailAfter(1));
    assert!(db.checkpoint().is_err());
    fault.crash_keeping(|id| id == 0).unwrap();
    drop(db);

    let db = Database::open(tmp.path()).unwrap();
    assert_words(&db, 3040);
    db.close().unwrap();
}

/// After a WAL flusher failure the in-memory state may be ahead of stable
/// storage with no way to close the gap, so the database fails fast — DML
/// *and* queries are rejected — instead of serving rows whose durability
/// is unknown.  Reopening recovers the acknowledged state.
#[test]
fn wal_poison_fails_dml_and_queries_until_reopen() {
    let tmp = TempDb::new("poison");
    let mut db = Database::create(tmp.path()).unwrap();
    db.create_table("words", KeyType::Varchar).unwrap();
    {
        let table = db.table_handle("words").unwrap();
        for i in 0..10 {
            table.insert(word(i)).unwrap(); // acknowledged
        }
        db.fail_wal_for_test("injected flusher failure");
        assert!(table.insert(word(10)).is_err(), "DML is rejected");
        assert!(
            db.query("words", Predicate::str_prefix("word-")).is_err(),
            "queries are rejected too: visible rows may not be durable"
        );
    }
    drop(db); // close() would fail as well — a poisoned log cannot rotate

    let db = Database::open(tmp.path()).unwrap();
    assert_words(&db, 10);
    db.close().unwrap();
}

/// Checkpoints racing DML through shared table handles: the checkpoint
/// quiesces writers (takes every table's DML lock), so no flushed image
/// can contain half a statement.  Every acknowledged row must survive the
/// crash, whichever side of whichever checkpoint cut it landed on.
#[test]
fn checkpoint_quiesces_concurrent_writers() {
    const THREADS: usize = 4;
    const PER: usize = 50;
    let tmp = TempDb::new("concurrent-ckpt");
    let mut db = Database::create(tmp.path()).unwrap();
    db.create_table("words", KeyType::Varchar).unwrap();
    db.create_index("words", "words_trie", IndexSpec::Trie)
        .unwrap();
    let handles: Vec<_> = (0..THREADS)
        .map(|_| db.table_handle("words").unwrap())
        .collect();
    std::thread::scope(|scope| {
        for (t, table) in handles.into_iter().enumerate() {
            scope.spawn(move || {
                for i in 0..PER {
                    table.insert(format!("w{t}-{i:04}")).unwrap();
                }
            });
        }
        for _ in 0..20 {
            db.checkpoint().unwrap();
        }
    });
    drop(db); // crash: the rows live in checkpoint images + the log only

    let db = Database::open(tmp.path()).unwrap();
    let table = db.table("words").unwrap();
    assert_eq!(table.len(), (THREADS * PER) as u64);
    for t in 0..THREADS {
        let rows = db
            .query("words", Predicate::str_prefix(&format!("w{t}-")))
            .unwrap()
            .rows()
            .unwrap();
        assert_eq!(rows.len(), PER, "every acknowledged row of thread {t}");
    }
    db.close().unwrap();
}

/// A multi-statement transaction's commit point is the durable `CommitTxn`
/// record: tear the log at **every byte** from just before the
/// transaction's first record to its end, and the reopened state must be
/// all-or-nothing — the full pre-transaction state at every cut short of
/// the final sealed batch (the one carrying `CommitTxn`), the full
/// post-transaction state only with the log intact.  Never a prefix of the
/// transaction's statements.
#[test]
fn torn_tail_across_a_commit_boundary_is_all_or_nothing() {
    const BASE: usize = 6;
    let tmp = TempDb::new("torn-txn");
    let mut db = Database::create(tmp.path()).unwrap();
    db.create_table("words", KeyType::Varchar).unwrap();
    {
        let table = db.table_handle("words").unwrap();
        for i in 0..BASE {
            table.insert(word(i)).unwrap();
        }
    }
    let segment = tmp.last_segment();
    let before_txn = std::fs::metadata(&segment).unwrap().len();
    {
        let mut txn = db.begin().unwrap();
        txn.insert("words", word(BASE)).unwrap();
        txn.insert("words", word(BASE + 1)).unwrap();
        assert!(txn.delete("words", 2).unwrap());
        txn.insert("words", word(BASE + 2)).unwrap();
        txn.commit().unwrap(); // the one durability point of all four statements
    }
    drop(db); // crash
    let full = std::fs::metadata(&segment).unwrap().len();
    assert!(before_txn < full, "the transaction reached the log");
    let crash_image = tmp.snapshot();

    let check = |db: &Database, committed: bool, ctx: &str| {
        let table = db.table("words").unwrap();
        if committed {
            assert_eq!(table.len(), (BASE + 2) as u64, "{ctx}: committed state");
            assert_eq!(table.try_datum(2).unwrap(), None, "{ctx}: delete applied");
            for row in BASE..BASE + 3 {
                assert_eq!(
                    table.datum(row as u64).unwrap(),
                    Datum::Text(word(row)),
                    "{ctx}: txn insert present"
                );
            }
        } else {
            // The exact pre-transaction state: every base row live
            // (including row 2 — its delete must not leak through), no txn
            // row visible anywhere.
            assert_eq!(table.len(), BASE as u64, "{ctx}: pre-txn state");
            for row in 0..BASE {
                assert_eq!(
                    table.datum(row as u64).unwrap(),
                    Datum::Text(word(row)),
                    "{ctx}: base row intact"
                );
            }
            let rows = db
                .query("words", Predicate::str_prefix("word-"))
                .unwrap()
                .rows()
                .unwrap();
            assert_eq!(rows.len(), BASE, "{ctx}: no phantom rows in scans");
        }
    };

    // Intact image: the whole transaction is in.
    let db = Database::open(tmp.path()).unwrap();
    check(&db, true, "intact");
    drop(db);

    // Every shorter cut loses the sealed batch holding `CommitTxn`, so the
    // whole transaction must drop out — whichever of its statement records
    // happen to sit whole below the cut.
    for cut in before_txn..full {
        tmp.restore(&crash_image);
        let file = std::fs::OpenOptions::new()
            .write(true)
            .open(&segment)
            .unwrap();
        file.set_len(cut).unwrap();
        drop(file);
        let db = Database::open(tmp.path())
            .unwrap_or_else(|e| panic!("reopen failed at cut {cut}: {e}"));
        check(&db, false, &format!("cut {cut}"));
        drop(db);
    }
}

/// The mixed kill-point: one transaction committed, a second still open
/// when the process dies.  Recovery must keep every statement of the winner
/// and none of the loser — including the loser's index entries — while
/// row ids stay aligned across both.
#[test]
fn open_txn_at_kill_point_drops_while_committed_txn_survives() {
    let tmp = TempDb::new("mixed-txn");
    let mut db = Database::create(tmp.path()).unwrap();
    db.create_table("words", KeyType::Varchar).unwrap();
    db.create_index("words", "words_trie", IndexSpec::Trie)
        .unwrap();
    {
        let table = db.table_handle("words").unwrap();
        for i in 0..4 {
            table.insert(word(i)).unwrap(); // rows 0..4
        }
    }
    {
        let mut winner = db.begin().unwrap();
        assert_eq!(winner.insert("words", "winner-a").unwrap(), 4);
        assert!(winner.delete("words", 1).unwrap());
        assert_eq!(winner.insert("words", "winner-b").unwrap(), 5);
        winner.commit().unwrap();
    }
    {
        let mut loser = db.begin().unwrap();
        assert_eq!(loser.insert("words", "loser-a").unwrap(), 6);
        assert!(loser.delete("words", 0).unwrap());
        assert_eq!(loser.insert("words", "loser-b").unwrap(), 7);
        loser.crash_for_test(); // still open when the lights go out
    }
    drop(db); // crash

    let db = Database::open(tmp.path()).unwrap();
    let table = db.table("words").unwrap();
    assert_eq!(
        table.len(),
        5,
        "4 base - 1 winner delete + 2 winner inserts"
    );
    assert_eq!(table.try_datum(1).unwrap(), None, "winner delete applied");
    assert_eq!(
        table.datum(0).unwrap(),
        Datum::Text(word(0)),
        "loser delete dropped: the row is still live"
    );
    assert_eq!(table.datum(4).unwrap(), Datum::Text("winner-a".into()));
    assert_eq!(table.datum(5).unwrap(), Datum::Text("winner-b".into()));
    assert_eq!(table.try_datum(6).unwrap(), None, "loser insert dropped");
    assert_eq!(table.try_datum(7).unwrap(), None, "loser insert dropped");
    // No phantom index entries: the trie sees winner rows, never loser rows.
    let rows = db
        .query("words", Predicate::str_prefix("winner-"))
        .unwrap()
        .rows()
        .unwrap();
    assert_eq!(rows.len(), 2, "winner rows indexed");
    assert!(
        db.query("words", Predicate::str_prefix("loser-"))
            .unwrap()
            .rows()
            .unwrap()
            .is_empty(),
        "no phantom index entries for the loser"
    );
    // Row ids burned by the loser stay burned after recovery.
    assert_eq!(table.insert("after").unwrap(), 8);
    db.close().unwrap();
}

/// The transactional subset-sweep (ISSUE 9 satellite): a committed
/// transaction, a failed checkpoint whose page writes sit un-synced in the
/// kernel cache, an *open* transaction, and then a power cut that persists
/// an arbitrary subset of those cached writes.  For **every** subset the
/// reopened database must show all of the committed transaction and none
/// of the open one — the pre-image journal rolls the kept pages back, and
/// the log replays the winner.
///
/// The scenario is fully deterministic, so it is re-run from scratch per
/// subset; the first run enumerates the cached page ids.
#[test]
fn every_persisted_subset_of_a_torn_checkpoint_preserves_txn_atomicity() {
    fn scenario(keep: &dyn Fn(PageId) -> bool) -> Vec<PageId> {
        let tmp = TempDb::new("txn-subset");
        let fault = Arc::new(FaultPager::new(Arc::new(
            spgist::storage::FilePager::create(tmp.path()).unwrap(),
        )));
        let mut db = Database::create_with_pager(
            Arc::clone(&fault) as Arc<dyn Pager>,
            tmp.wal_prefix(),
            BufferPoolConfig::default(),
            WalConfig::default(),
        )
        .unwrap();
        db.create_table("words", KeyType::Varchar).unwrap();
        {
            let table = db.table_handle("words").unwrap();
            for i in 0..10 {
                table.insert(word(i)).unwrap();
            }
        }
        db.checkpoint().unwrap(); // durable base: 10 rows in the image
        {
            let mut txn = db.begin().unwrap();
            for i in 10..15 {
                txn.insert("words", word(i)).unwrap();
            }
            assert!(txn.delete("words", 2).unwrap());
            txn.commit().unwrap();
        }
        // The next checkpoint flushes the committed transaction's pages but
        // its data sync never completes — those writes are now cached,
        // un-synced, exactly what the power cut below scatters.
        fault.set_sync_fault(SyncFault::Fail);
        assert!(db.checkpoint().is_err());
        fault.set_sync_fault(SyncFault::None);
        let cached = fault.cached_page_ids();
        {
            // An open transaction dies with the machine.  Its pages stay in
            // the no-steal pool (never written to the pager), so no subset
            // can leak them — but its log records land, and recovery must
            // drop them.
            let mut txn = db.begin().unwrap();
            txn.insert("words", "open-a").unwrap();
            txn.insert("words", "open-b").unwrap();
            txn.crash_for_test();
        }
        fault.crash_keeping(keep).unwrap();
        drop(db);

        let db = Database::open(tmp.path()).unwrap();
        let table = db.table("words").unwrap();
        assert_eq!(table.len(), 14, "10 base - 1 delete + 5 committed");
        for row in 0..15u64 {
            let expected = if row == 2 {
                None
            } else {
                Some(Datum::Text(word(row as usize)))
            };
            assert_eq!(table.try_datum(row).unwrap(), expected, "row {row}");
        }
        assert_eq!(table.try_datum(15).unwrap(), None, "open txn row dropped");
        assert_eq!(table.try_datum(16).unwrap(), None, "open txn row dropped");
        db.close().unwrap();
        cached
    }

    // Probe run: learn the cached page ids (and prove the losing-all case).
    let ids = scenario(&|_| false);
    assert!(!ids.is_empty(), "the torn checkpoint left cached writes");

    // Every subset if the set is small, otherwise a structured sweep:
    // empty, full, every singleton, every leave-one-out, odds and evens.
    let subsets: Vec<Vec<PageId>> = if ids.len() <= 6 {
        (0..1u32 << ids.len())
            .map(|mask| {
                ids.iter()
                    .enumerate()
                    .filter(|(i, _)| mask & (1 << i) != 0)
                    .map(|(_, &id)| id)
                    .collect()
            })
            .collect()
    } else {
        let mut subsets = vec![Vec::new(), ids.clone()];
        for &id in &ids {
            subsets.push(vec![id]);
            subsets.push(ids.iter().copied().filter(|&o| o != id).collect());
        }
        subsets.push(ids.iter().copied().filter(|id| id % 2 == 0).collect());
        subsets.push(ids.iter().copied().filter(|id| id % 2 == 1).collect());
        subsets
    };
    for subset in subsets {
        let set: std::collections::HashSet<PageId> = subset.iter().copied().collect();
        let ids_now = scenario(&|id| set.contains(&id));
        assert_eq!(ids_now, ids, "the scenario is deterministic");
    }
}

/// The incremental-checkpoint subset sweep: two tables are made durable by
/// a full checkpoint, then only one is mutated, so the next checkpoint
/// writes just that table's dirty chunks plus the root — far fewer pages
/// than a full catalog rewrite.  That incremental checkpoint is torn (its
/// data sync fails, leaving its page writes cached, un-synced) and a power
/// cut persists an arbitrary subset of the cached writes.  For **every**
/// subset the reopened database must show the full acknowledged state: the
/// pre-image journal rolls partly-overwritten chunks back to the previous
/// checkpoint and the log replays the mutations — including on subsets
/// where the new root landed but some of its chunk segments did not.
#[test]
fn every_persisted_subset_of_a_torn_incremental_checkpoint_recovers() {
    fn scenario(keep: &dyn Fn(PageId) -> bool) -> Vec<PageId> {
        let tmp = TempDb::new("incr-subset");
        let fault = Arc::new(FaultPager::new(Arc::new(
            spgist::storage::FilePager::create(tmp.path()).unwrap(),
        )));
        let mut db = Database::create_with_pager(
            Arc::clone(&fault) as Arc<dyn Pager>,
            tmp.wal_prefix(),
            BufferPoolConfig::default(),
            WalConfig::default(),
        )
        .unwrap();
        db.create_table("hot", KeyType::Varchar).unwrap();
        db.create_table("cold", KeyType::Varchar).unwrap();
        {
            let hot = db.table_handle("hot").unwrap();
            let cold = db.table_handle("cold").unwrap();
            for i in 0..40 {
                hot.insert(word(i)).unwrap();
                cold.insert(word(i)).unwrap();
            }
        }
        db.checkpoint().unwrap(); // durable base: both tables in the image
        {
            // Mutate only `hot`; `cold` stays clean, so the torn checkpoint
            // below is genuinely incremental.
            let hot = db.table_handle("hot").unwrap();
            assert!(hot.delete(3).unwrap());
            for i in 40..45 {
                hot.insert(word(i)).unwrap();
            }
        }
        fault.set_sync_fault(SyncFault::Fail);
        assert!(db.checkpoint().is_err());
        fault.set_sync_fault(SyncFault::None);
        let cached = fault.cached_page_ids();
        fault.crash_keeping(keep).unwrap();
        drop(db);

        let db = Database::open(tmp.path()).unwrap();
        let hot = db.table("hot").unwrap();
        assert_eq!(hot.len(), 44, "40 base - 1 delete + 5 inserts");
        for row in 0..45u64 {
            let expected = if row == 3 {
                None
            } else {
                Some(Datum::Text(word(row as usize)))
            };
            assert_eq!(hot.try_datum(row).unwrap(), expected, "hot row {row}");
        }
        let cold = db.table("cold").unwrap();
        assert_eq!(cold.len(), 40, "untouched table intact");
        for row in 0..40u64 {
            assert_eq!(
                cold.datum(row).unwrap(),
                Datum::Text(word(row as usize)),
                "cold row {row}"
            );
        }
        db.close().unwrap();
        cached
    }

    // Probe run: learn the cached page ids (and prove the losing-all case).
    let ids = scenario(&|_| false);
    assert!(
        !ids.is_empty(),
        "the torn incremental checkpoint left cached writes"
    );

    // Every subset if the set is small, otherwise a structured sweep:
    // empty, full, every singleton, every leave-one-out, odds and evens.
    let subsets: Vec<Vec<PageId>> = if ids.len() <= 6 {
        (0..1u32 << ids.len())
            .map(|mask| {
                ids.iter()
                    .enumerate()
                    .filter(|(i, _)| mask & (1 << i) != 0)
                    .map(|(_, &id)| id)
                    .collect()
            })
            .collect()
    } else {
        let mut subsets = vec![Vec::new(), ids.clone()];
        for &id in &ids {
            subsets.push(vec![id]);
            subsets.push(ids.iter().copied().filter(|&o| o != id).collect());
        }
        subsets.push(ids.iter().copied().filter(|id| id % 2 == 0).collect());
        subsets.push(ids.iter().copied().filter(|id| id % 2 == 1).collect());
        subsets
    };
    for subset in subsets {
        let set: std::collections::HashSet<PageId> = subset.iter().copied().collect();
        let ids_now = scenario(&|id| set.contains(&id));
        assert_eq!(ids_now, ids, "the scenario is deterministic");
    }
}

/// Recovery must converge: reopening a recovered database replays nothing
/// new, and repeated crash/reopen cycles do not accumulate log segments.
#[test]
fn recovery_is_stable_across_repeated_crashes() {
    let tmp = TempDb::new("stable");
    let mut db = Database::create(tmp.path()).unwrap();
    db.create_table("words", KeyType::Varchar).unwrap();
    let mut n = 0;
    for _round in 0..5 {
        {
            let table = db.table_handle("words").unwrap();
            for _ in 0..7 {
                table.insert(word(n)).unwrap();
                n += 1;
            }
        }
        drop(db); // crash every round, never a clean close
        db = Database::open(tmp.path()).unwrap();
        assert_words(&db, n);
    }
    assert!(
        tmp.wal_segments().len() <= 2,
        "recovery checkpoints fold the log instead of growing it: {:?}",
        tmp.wal_segments()
    );
    db.close().unwrap();
}
