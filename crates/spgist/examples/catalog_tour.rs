//! Tour of the PostgreSQL-style extensibility surface (paper Section 4,
//! Tables 2–6): the access-method catalog, operator classes, cost model and
//! the planner's index-vs-seqscan decision.
//!
//! ```text
//! cargo run --example catalog_tour
//! ```

use spgist::catalog::planner::AvailableIndex;
use spgist::catalog::{AccessPath, CostEstimate};
use spgist::prelude::*;

fn main() {
    // The pg_am row the paper inserts (Table 2).
    let catalog = Catalog::with_paper_defaults();
    let spgist = catalog.access_method("SP_GiST").expect("registered");
    println!("access method {:?}:", spgist.name);
    println!(
        "  strategies = {}, support functions = {}",
        spgist.strategies, spgist.support_functions
    );
    println!(
        "  order strategy = {} (SP-GiST entries have no order)",
        spgist.order_strategy
    );
    println!("  insert routine = {}", spgist.routines["aminsert"]);

    // Operator classes (Tables 4–5).
    for class_name in ["SP_GiST_trie", "SP_GiST_kdtree", "SP_GiST_suffix"] {
        let class = catalog.operator_class(class_name).expect("registered");
        let ops: Vec<&str> = class.operators.iter().map(|o| o.name.as_str()).collect();
        println!(
            "operator class {:<16} ({:<7}) operators: {:?}",
            class.name, class.key_type, ops
        );
    }

    // Planning (the spgistcostestimate analog): a regular-expression query
    // over a 2M-row table can only use the trie index.
    let stats = TableStats {
        rows: 2_000_000,
        heap_pages: 20_000,
        distinct_values: 1_500_000,
    };
    let indexes = vec![
        AvailableIndex {
            name: "sp_trie_index".into(),
            operator_class: "SP_GiST_trie".into(),
            pages: 9_000,
            page_height: 4,
        },
        AvailableIndex {
            name: "btree_index".into(),
            operator_class: "btree_varchar".into(),
            pages: 7_000,
            page_height: 3,
        },
    ];
    let planner = Planner::new(&catalog);
    for (operator, description) in [
        ("=", "equality"),
        ("?=", "regular expression"),
        ("@=", "substring"),
    ] {
        let path = planner.plan(&QueryPredicate::new(operator, "VARCHAR"), &stats, &indexes);
        let seq_cost = CostEstimate::seq_scan(&stats).total_cost;
        match path {
            AccessPath::IndexScan { index, cost, .. } => println!(
                "{description:<20} -> index scan via {index} (cost {:.0} vs seq {seq_cost:.0})",
                cost.total_cost
            ),
            AccessPath::SeqScan { cost } => println!(
                "{description:<20} -> sequential scan (cost {:.0}); no registered index supports it",
                cost.total_cost
            ),
            other => println!("{description:<20} -> {other:?}"),
        }
    }
}
