//! Incremental nearest-neighbour search (paper Section 5 / Figure 17):
//! the same generic `NN_Search` runs over the kd-tree, the point quadtree
//! (Euclidean distance) and the trie (Hamming-style distance).
//!
//! ```text
//! cargo run --release --example nearest_neighbor
//! ```

use spgist::datagen::{points, words};
use spgist::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let point_data = points(10_000, 5);
    let word_data = words(10_000, 6);

    let kd = KdTreeIndex::create(BufferPool::in_memory())?;
    let quad = PointQuadtreeIndex::create(BufferPool::in_memory())?;
    let trie = TrieIndex::create(BufferPool::in_memory())?;
    for (row, p) in point_data.iter().enumerate() {
        kd.insert(*p, row as RowId)?;
        quad.insert(*p, row as RowId)?;
    }
    for (row, w) in word_data.iter().enumerate() {
        trie.insert(w, row as RowId)?;
    }

    let anchor = Point::new(50.0, 50.0);
    println!("5 nearest points to (50, 50):");
    for (p, row, d) in kd.nearest(anchor, 5)? {
        println!(
            "  kd-tree   row {row:>5}  ({:>6.2}, {:>6.2})  dist {d:.3}",
            p.x, p.y
        );
    }
    for (p, row, d) in quad.nearest(anchor, 5)? {
        println!(
            "  quadtree  row {row:>5}  ({:>6.2}, {:>6.2})  dist {d:.3}",
            p.x, p.y
        );
    }
    // Both spatial indexes must agree on the distances (the points may tie).
    let kd_d: Vec<f64> = kd.nearest(anchor, 5)?.iter().map(|(_, _, d)| *d).collect();
    let quad_d: Vec<f64> = quad
        .nearest(anchor, 5)?
        .iter()
        .map(|(_, _, d)| *d)
        .collect();
    assert!(kd_d.iter().zip(&quad_d).all(|(a, b)| (a - b).abs() < 1e-9));

    let target = &word_data[42];
    println!("5 nearest words to {target:?} (Hamming-style distance):");
    for (w, row, d) in trie.nearest(target, 5)? {
        println!("  trie      row {row:>5}  {w:<16}  dist {d}");
    }

    // The iterator is incremental: asking for more neighbours only extends
    // the previous prefix (a query pipeline can pull one at a time).
    let first_10: Vec<u64> = kd.nearest(anchor, 10)?.iter().map(|(_, r, _)| *r).collect();
    let first_3: Vec<u64> = kd.nearest(anchor, 3)?.iter().map(|(_, r, _)| *r).collect();
    assert_eq!(&first_10[..3], &first_3[..]);
    println!("incremental get-next verified: first 3 of k=10 equal k=3 result");

    // `@@` is also a planned access path: through the executor, a nearest
    // predicate is costed, routed to an ordered scan over the chosen index,
    // and can be constrained by ordinary predicates (constrained k-NN).
    let mut db = Database::in_memory();
    db.create_table("pts", KeyType::Point)?;
    let table = db.table_mut("pts").unwrap();
    for p in &point_data {
        table.insert(*p)?;
    }
    table.create_index("pts_quad", IndexSpec::PointQuadtree)?;
    let query = Predicate::point_nearest(anchor)
        .and(Predicate::point_in_rect(Rect::new(40.0, 40.0, 60.0, 60.0)))
        .limit(5);
    let cursor = db.query("pts", query)?;
    println!("planned constrained k-NN: {:?}", cursor.path());
    for item in cursor {
        let (row, datum) = item?;
        println!("  row {row:>5}  {datum:?}");
    }
    Ok(())
}
