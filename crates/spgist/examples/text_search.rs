//! Text search workload: the trie against the B⁺-tree baseline, plus the
//! suffix tree for substring queries — a miniature of the paper's Figures
//! 6, 7 and 16.
//!
//! ```text
//! cargo run --release --example text_search
//! ```

use std::time::Instant;

use spgist::datagen::{words, QueryWorkload};
use spgist::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let data = words(20_000, 7);
    println!(
        "indexing {} words (uniform length 1..=15, letters a..z)",
        data.len()
    );

    let trie = TrieIndex::create(BufferPool::in_memory())?;
    let mut btree = BPlusTree::create(BufferPool::in_memory())?;
    let suffix = SuffixTreeIndex::create(BufferPool::in_memory())?;
    for (row, word) in data.iter().enumerate() {
        trie.insert(word, row as RowId)?;
        btree.insert_str(word, row as RowId)?;
        suffix.insert(word, row as RowId)?;
    }

    // Regular-expression search: the trie uses every literal character, the
    // B+-tree only the prefix before the first wildcard.
    let patterns = QueryWorkload::regexes(&data, 200, 2, 3);
    let start = Instant::now();
    let trie_hits: usize = patterns.iter().map(|p| trie.regex(p).unwrap().len()).sum();
    let trie_time = start.elapsed();
    let start = Instant::now();
    let btree_hits: usize = patterns
        .iter()
        .map(|p| btree.regex_search(p).unwrap().len())
        .sum();
    let btree_time = start.elapsed();
    assert_eq!(
        trie_hits, btree_hits,
        "both access paths agree on the result"
    );
    println!(
        "regex '?': trie {:.1} ms vs B+-tree {:.1} ms ({} hits, {:.0}x)",
        trie_time.as_secs_f64() * 1e3,
        btree_time.as_secs_f64() * 1e3,
        trie_hits,
        btree_time.as_secs_f64() / trie_time.as_secs_f64()
    );

    // Substring search: only the suffix tree can prune; everyone else scans.
    let needles = QueryWorkload::substrings(&data, 50, 4, 11);
    let start = Instant::now();
    let sub_hits: usize = needles
        .iter()
        .map(|n| suffix.substring(n).unwrap().len())
        .sum();
    let suffix_time = start.elapsed();
    let start = Instant::now();
    let scan_hits: usize = needles
        .iter()
        .map(|n| data.iter().filter(|w| w.contains(n.as_str())).count())
        .sum();
    let scan_time = start.elapsed();
    assert_eq!(sub_hits, scan_hits);
    println!(
        "substring: suffix tree {:.1} ms vs scan {:.1} ms ({} hits)",
        suffix_time.as_secs_f64() * 1e3,
        scan_time.as_secs_f64() * 1e3,
        sub_hits
    );
    Ok(())
}
