//! Quickstart: the executable query layer end to end — create a table,
//! build SP-GiST indexes on it, and let the catalog + planner route each
//! operator to the right physical index (or the heap), streaming results
//! through a cursor.
//!
//! ```text
//! cargo run --example quickstart
//! ```

use spgist::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A database bundles a buffer pool, the paper's catalog registrations
    // (access methods + operator classes) and named tables.
    let mut db = Database::in_memory();
    db.create_table("words", KeyType::Varchar)?;

    // The words of the paper's Figure 2, padded with a synthetic vocabulary
    // large enough that selective predicates favour the indexes over a
    // sequential scan (on a handful of rows the heap always wins — the
    // planner is honest about that).
    let table = db.table_mut("words").unwrap();
    for word in [
        "blue", "bit", "take", "top", "zero", "space", "spade", "star",
    ] {
        table.insert(word)?;
    }
    for word in spgist::datagen::words(6_000, 42) {
        table.insert(word)?;
    }

    // CREATE INDEX: the planner's statistics are derived automatically from
    // the built trees.
    table.create_index("words_trie", IndexSpec::Trie)?;
    table.create_index("words_suffix", IndexSpec::SuffixTree)?;

    // One entry point, four operators; the catalog decides the access path.
    for (label, predicate) in [
        ("=  'space'", Predicate::str_equals("space")),
        ("#= 'sp'   ", Predicate::str_prefix("sp")),
        ("?= 't??'  ", Predicate::str_regex("t??")),
        ("@= 'pa'   ", Predicate::str_substring("pa")),
    ] {
        let mut cursor = db.query("words", &predicate)?;
        let source = match cursor.source() {
            ScanSource::Heap => "seq scan".to_string(),
            ScanSource::Index { name } => format!("index {name}"),
            other => format!("{other:?}"),
        };
        // The cursor streams: pull the first few matches lazily, then count
        // the rest without materializing them.
        let mut preview = Vec::new();
        for item in cursor.by_ref().take(4) {
            let (row, datum) = item?;
            match datum {
                Datum::Text(w) => preview.push(format!("{w}({row})")),
                other => preview.push(format!("{other:?}")),
            }
        }
        let remaining = cursor.count();
        println!("{label} -> via {source:<18} -> {preview:?} … and {remaining} more");
    }

    // Predicates compose: `(prefix AND regex) OR equals`, LIMIT pushed into
    // the plan — index scans + residual filter, streaming at most 5 rows.
    let composed = Predicate::str_prefix("sp")
        .and(Predicate::str_regex("spa??"))
        .or(Predicate::str_equals("space"))
        .limit(5);
    let cursor = db.query("words", composed)?;
    println!("(#='sp' AND ?='spa??') OR ='space' LIMIT 5");
    println!("  plan: {:?}", cursor.path());
    for item in cursor {
        let (row, datum) = item?;
        println!("  row {row}: {datum:?}");
    }

    // The same indexes are usable directly through the uniform SpIndex
    // trait — `open / insert / delete / execute / cursor / len / stats /
    // repack` on every index kind.
    let trie = TrieIndex::open(BufferPool::in_memory())?;
    for (row, word) in ["space", "spade", "spate"].iter().enumerate() {
        trie.insert(word, row as RowId)?;
    }
    let streamed: Vec<(String, RowId)> = trie
        .cursor(&StringQuery::Prefix("spa".into()))?
        .collect::<Result<_, _>>()?;
    println!("SpIndex cursor over trie: {streamed:?}");

    let stats = trie.stats()?;
    println!(
        "trie stats: {} items, {} nodes over {} pages, node height {}, page height {}",
        stats.items,
        stats.total_nodes(),
        stats.pages,
        stats.max_node_height,
        stats.max_page_height
    );
    Ok(())
}
