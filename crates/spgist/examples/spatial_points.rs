//! Spatial workload: kd-tree and point quadtree against the R-tree on
//! two-dimensional points — a miniature of the paper's Figure 13.
//!
//! ```text
//! cargo run --release --example spatial_points
//! ```

use std::time::Instant;

use spgist::datagen::{points, QueryWorkload};
use spgist::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let data = points(30_000, 3);
    println!("indexing {} uniform points in [0,100]^2", data.len());

    let kd = KdTreeIndex::create(BufferPool::in_memory())?;
    let quad = PointQuadtreeIndex::create(BufferPool::in_memory())?;
    let mut rtree = RTree::create(BufferPool::in_memory())?;
    for (row, p) in data.iter().enumerate() {
        kd.insert(*p, row as RowId)?;
        quad.insert(*p, row as RowId)?;
        rtree.insert_point(*p, row as RowId)?;
    }

    // Point-match queries.
    let queries = QueryWorkload::existing(&data, 500, 1);
    let time = |f: &mut dyn FnMut() -> usize| {
        let start = Instant::now();
        let hits = f();
        (hits, start.elapsed().as_secs_f64() * 1e3)
    };
    let (kd_hits, kd_ms) = time(&mut || queries.iter().map(|q| kd.equals(*q).unwrap().len()).sum());
    let (quad_hits, quad_ms) =
        time(&mut || queries.iter().map(|q| quad.equals(*q).unwrap().len()).sum());
    let (rt_hits, rt_ms) = time(&mut || {
        queries
            .iter()
            .map(|q| rtree.point_match(*q).unwrap().len())
            .sum()
    });
    assert_eq!(kd_hits, rt_hits);
    assert_eq!(quad_hits, rt_hits);
    println!("point match : kd {kd_ms:.1} ms | quadtree {quad_ms:.1} ms | R-tree {rt_ms:.1} ms");

    // Range (window) queries of side 5 (≈ 0.25% of the space).
    let windows = QueryWorkload::windows(200, 5.0, 2);
    let (kd_hits, kd_ms) = time(&mut || windows.iter().map(|w| kd.range(*w).unwrap().len()).sum());
    let (quad_hits, quad_ms) =
        time(&mut || windows.iter().map(|w| quad.range(*w).unwrap().len()).sum());
    let (rt_hits, rt_ms) = time(&mut || {
        windows
            .iter()
            .map(|w| rtree.window(*w).unwrap().len())
            .sum()
    });
    assert_eq!(kd_hits, rt_hits);
    assert_eq!(quad_hits, rt_hits);
    println!("range search: kd {kd_ms:.1} ms | quadtree {quad_ms:.1} ms | R-tree {rt_ms:.1} ms");

    let kd_stats = kd.stats()?;
    println!(
        "kd-tree: {} pages, node height {}, page height {}; R-tree: {} pages, height {}",
        kd_stats.pages,
        kd_stats.max_node_height,
        kd_stats.max_page_height,
        rtree.stats().pages,
        rtree.stats().height
    );
    Ok(())
}
