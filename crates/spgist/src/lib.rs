//! SP-GiST for Rust — umbrella crate.
//!
//! Re-exports the whole public API of the reproduction of
//! *"Space-Partitioning Trees in PostgreSQL: Realization and Performance"*
//! (Eltabakh, Eltarras, Aref — ICDE 2006):
//!
//! * [`storage`] — pages, pager, buffer pool, heap files,
//! * [`core`] — the SP-GiST framework (external-method trait, generalized
//!   insert/search/delete/NN, node→page clustering),
//! * [`indexes`] — the five instantiations: patricia trie, suffix tree,
//!   kd-tree, point quadtree, PMR quadtree,
//! * [`baselines`] — the B⁺-tree, R-tree and sequential-scan comparators,
//! * [`catalog`] — the PostgreSQL-style access-method / operator-class
//!   catalog, cost model and planner,
//! * [`datagen`] — the paper's synthetic workload generators.
//!
//! ```
//! use spgist::prelude::*;
//!
//! let pool = BufferPool::in_memory();
//! let mut trie = TrieIndex::create(pool).unwrap();
//! trie.insert("space", 1).unwrap();
//! trie.insert("spade", 2).unwrap();
//! assert_eq!(trie.regex("spa?e").unwrap().len(), 2);
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub use spgist_baselines as baselines;
pub use spgist_catalog as catalog;
pub use spgist_core as core;
pub use spgist_datagen as datagen;
pub use spgist_indexes as indexes;
pub use spgist_storage as storage;

/// Commonly used types, re-exported for `use spgist::prelude::*`.
pub mod prelude {
    pub use spgist_baselines::{BPlusTree, RTree, SeqScanTable};
    pub use spgist_catalog::{AccessMethod, Catalog, Planner, QueryPredicate, TableStats};
    pub use spgist_core::{
        ClusteringPolicy, NodeShrink, PathShrink, RowId, SpGistConfig, SpGistOps, SpGistTree,
        TreeStats,
    };
    pub use spgist_indexes::{
        KdTreeIndex, PmrQuadtreeIndex, Point, PointQuadtreeIndex, PointQuery, Rect, Segment,
        SegmentQuery, StringQuery, SuffixTreeIndex, TrieIndex, TrieOps,
    };
    pub use spgist_storage::{BufferPool, BufferPoolConfig, FilePager, MemPager, Pager};
}
