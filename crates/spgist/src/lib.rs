//! SP-GiST for Rust — umbrella crate.
//!
//! Re-exports the whole public API of the reproduction of
//! *"Space-Partitioning Trees in PostgreSQL: Realization and Performance"*
//! (Eltabakh, Eltarras, Aref — ICDE 2006):
//!
//! * [`storage`] — pages, pager, buffer pool, heap files,
//! * [`core`] — the SP-GiST framework (external-method trait, generalized
//!   insert/search/delete/NN, streaming search cursors, node→page
//!   clustering),
//! * [`indexes`] — the five instantiations behind the unified
//!   [`SpIndex`](indexes::SpIndex) trait: patricia trie, suffix tree,
//!   kd-tree, point quadtree, PMR quadtree,
//! * [`baselines`] — the B⁺-tree, R-tree and sequential-scan comparators,
//! * [`catalog`] — the PostgreSQL-style access-method / operator-class
//!   catalog, cost model, planner, and the executable query layer
//!   ([`Database`](catalog::Database): plan → cursor → results),
//! * [`datagen`] — the paper's synthetic workload generators.
//!
//! The one-API surface in action — the same predicate is planned against the
//! catalog, routed to a physical index chosen by cost, and executed through
//! a streaming cursor:
//!
//! ```
//! use spgist::prelude::*;
//!
//! let mut db = Database::in_memory();
//! db.create_table("words", KeyType::Varchar).unwrap();
//! let table = db.table_mut("words").unwrap();
//! for (row, word) in ["space", "spade", "star", "blue"].iter().enumerate() {
//!     assert_eq!(table.insert(*word).unwrap(), row as RowId);
//! }
//! table.create_index("words_trie", IndexSpec::Trie).unwrap();
//!
//! // `?=` regular-expression predicate: planned, then executed.
//! let rows = db.query("words", &Predicate::str_regex("spa?e")).unwrap();
//! assert_eq!(rows.rows().unwrap(), vec![0, 1]);
//! ```
//!
//! Each index is also usable directly through [`SpIndex`](indexes::SpIndex):
//!
//! ```
//! use spgist::prelude::*;
//!
//! let trie = TrieIndex::open(BufferPool::in_memory()).unwrap();
//! trie.insert("space", 1).unwrap();
//! trie.insert("spade", 2).unwrap();
//! assert_eq!(trie.regex("spa?e").unwrap().len(), 2);
//! ```
//!
//! Indexes and tables are **shared-access**: every `SpIndex` method takes
//! `&self` behind internal reader-writer latches, `Arc<Table>` handles are
//! `Send + Sync`, and [`Database::run_parallel`](catalog::Database::run_parallel)
//! drives a batch of queries across a scoped thread pool (see the README's
//! *Concurrency model*).

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub use spgist_baselines as baselines;
pub use spgist_catalog as catalog;
pub use spgist_core as core;
pub use spgist_datagen as datagen;
pub use spgist_indexes as indexes;
pub use spgist_storage as storage;

/// Commonly used types, re-exported for `use spgist::prelude::*`.
pub mod prelude {
    pub use spgist_baselines::{BPlusTree, RTree, SeqScanTable};
    pub use spgist_catalog::{
        AccessMethod, AccessPath, AvailableIndex, Catalog, Database, Datum, ExecCursor, IndexSpec,
        KeyType, Planner, Predicate, Query, QueryPredicate, ScanSource, Table, TableStats,
        Transaction,
    };
    pub use spgist_core::{
        ClusteringPolicy, NodeShrink, PathShrink, RowId, SearchCursor, SpGistConfig, SpGistOps,
        SpGistTree, TreeStats,
    };
    pub use spgist_indexes::{
        Cursor, KdTreeIndex, PmrQuadtreeIndex, Point, PointQuadtreeIndex, PointQuery, Rect,
        Segment, SegmentQuery, SpIndex, StringQuery, SuffixTreeIndex, TrieIndex, TrieOps,
    };
    pub use spgist_storage::{
        AccessHint, BufferPool, BufferPoolConfig, FilePager, MemPager, Pager, ReplacementPolicyKind,
    };
}
