//! Operators and operator classes (paper Tables 4 and 5).

use crate::cost::Selectivity;

/// Strategy number of an operator within its operator class.
pub type Strategy = u32;

/// An operator definition (`CREATE OPERATOR`): name, operand types, the
/// procedure implementing it, and the restriction-selectivity estimator the
/// optimizer uses.
#[derive(Debug, Clone, PartialEq)]
pub struct Operator {
    /// Operator name, e.g. `"="`, `"#="`, `"?="`, `"@"`, `"^"`, `"@="`, `"@@"`.
    pub name: String,
    /// Left operand type, e.g. `"VARCHAR"` or `"POINT"`.
    pub left_type: String,
    /// Right operand type, e.g. `"VARCHAR"`, `"POINT"`, `"BOX"`.
    pub right_type: String,
    /// Implementing procedure, e.g. `"trieword_equal"`.
    pub procedure: String,
    /// Restriction-selectivity estimator (paper: `eqsel`, `contsel`,
    /// `likesel`).
    pub restrict: Selectivity,
    /// Strategy number within the operator class.
    pub strategy: Strategy,
}

impl Operator {
    /// Shorthand constructor.
    pub fn new(
        name: &str,
        left: &str,
        right: &str,
        procedure: &str,
        restrict: Selectivity,
        strategy: Strategy,
    ) -> Self {
        Operator {
            name: name.to_string(),
            left_type: left.to_string(),
            right_type: right.to_string(),
            procedure: procedure.to_string(),
            restrict,
            strategy,
        }
    }
}

/// A support function of an operator class (the SP-GiST external methods:
/// `consistent`, `picksplit`, `NN_consistent`, `getparameters`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SupportFunction {
    /// Support-function slot number.
    pub number: u32,
    /// Function name, e.g. `"trie_consistent"`.
    pub name: String,
}

/// An operator class (`CREATE OPERATOR CLASS`): the glue between a data type,
/// an access method, its operators, and its support functions.
#[derive(Debug, Clone, PartialEq)]
pub struct OperatorClass {
    /// Class name, e.g. `"SP_GiST_trie"`.
    pub name: String,
    /// Indexed data type, e.g. `"VARCHAR"`, `"POINT"`, `"SEGMENT"`.
    pub key_type: String,
    /// Access method the class belongs to, e.g. `"SP_GiST"`.
    pub access_method: String,
    /// Operators usable through this class.
    pub operators: Vec<Operator>,
    /// Support functions (external methods).
    pub support: Vec<SupportFunction>,
}

impl OperatorClass {
    /// Finds an operator of this class by name.
    pub fn operator(&self, name: &str) -> Option<&Operator> {
        self.operators.iter().find(|o| o.name == name)
    }

    /// The operator classes the paper creates (Tables 4 and 5), plus the
    /// baseline classes used by the comparison experiments.
    pub fn paper_classes() -> Vec<OperatorClass> {
        use Selectivity::{ContSel, EqSel, LikeSel};
        let nn = |n| SupportFunction {
            number: n,
            name: format!("support_{n}"),
        };
        vec![
            OperatorClass {
                name: "SP_GiST_trie".into(),
                key_type: "VARCHAR".into(),
                access_method: "SP_GiST".into(),
                operators: vec![
                    Operator::new("=", "VARCHAR", "VARCHAR", "trieword_equal", EqSel, 1),
                    Operator::new("#=", "VARCHAR", "VARCHAR", "trieword_prefix", LikeSel, 2),
                    Operator::new("?=", "VARCHAR", "VARCHAR", "trieword_regex", LikeSel, 3),
                    Operator::new("@@", "VARCHAR", "VARCHAR", "trieword_nn", LikeSel, 20),
                ],
                support: vec![
                    SupportFunction {
                        number: 1,
                        name: "trie_consistent".into(),
                    },
                    SupportFunction {
                        number: 2,
                        name: "trie_picksplit".into(),
                    },
                    SupportFunction {
                        number: 3,
                        name: "trie_NN_consistent".into(),
                    },
                    SupportFunction {
                        number: 4,
                        name: "trie_getparameters".into(),
                    },
                ],
            },
            OperatorClass {
                name: "SP_GiST_kdtree".into(),
                key_type: "POINT".into(),
                access_method: "SP_GiST".into(),
                operators: vec![
                    Operator::new("@", "POINT", "POINT", "kdpoint_equal", EqSel, 1),
                    Operator::new("^", "POINT", "BOX", "kdpoint_inside", ContSel, 2),
                    Operator::new("@@", "POINT", "POINT", "kdpoint_nn", ContSel, 20),
                ],
                support: vec![
                    SupportFunction {
                        number: 1,
                        name: "kdtree_consistent".into(),
                    },
                    SupportFunction {
                        number: 2,
                        name: "kdtree_picksplit".into(),
                    },
                    SupportFunction {
                        number: 3,
                        name: "kdtree_NN_consistent".into(),
                    },
                    SupportFunction {
                        number: 4,
                        name: "kdtree_getparameters".into(),
                    },
                ],
            },
            OperatorClass {
                name: "SP_GiST_pquadtree".into(),
                key_type: "POINT".into(),
                access_method: "SP_GiST".into(),
                operators: vec![
                    Operator::new("@", "POINT", "POINT", "qtpoint_equal", EqSel, 1),
                    Operator::new("^", "POINT", "BOX", "qtpoint_inside", ContSel, 2),
                    Operator::new("@@", "POINT", "POINT", "qtpoint_nn", ContSel, 20),
                ],
                support: (1..=4).map(nn).collect(),
            },
            OperatorClass {
                name: "SP_GiST_pmr".into(),
                key_type: "SEGMENT".into(),
                access_method: "SP_GiST".into(),
                operators: vec![
                    Operator::new("=", "SEGMENT", "SEGMENT", "segment_equal", EqSel, 1),
                    Operator::new("&&", "SEGMENT", "BOX", "segment_overlaps", ContSel, 2),
                    Operator::new("@@", "SEGMENT", "POINT", "segment_nn", ContSel, 20),
                ],
                support: (1..=4).map(nn).collect(),
            },
            OperatorClass {
                name: "SP_GiST_suffix".into(),
                key_type: "VARCHAR".into(),
                access_method: "SP_GiST".into(),
                // No `@@` here: distance over *suffixes* does not order the
                // indexed words, so the suffix tree registers no ordered
                // scan and the planner never routes one to it.
                operators: vec![Operator::new(
                    "@=",
                    "VARCHAR",
                    "VARCHAR",
                    "suffix_substring",
                    LikeSel,
                    1,
                )],
                support: vec![
                    SupportFunction {
                        number: 1,
                        name: "suffix_consistent".into(),
                    },
                    SupportFunction {
                        number: 2,
                        name: "suffix_picksplit".into(),
                    },
                    SupportFunction {
                        number: 3,
                        name: "suffix_NN_consistent".into(),
                    },
                    SupportFunction {
                        number: 4,
                        name: "suffix_getparameters".into(),
                    },
                ],
            },
            // Baseline operator classes used by the comparison experiments.
            OperatorClass {
                name: "btree_varchar".into(),
                key_type: "VARCHAR".into(),
                access_method: "btree".into(),
                operators: vec![
                    Operator::new("=", "VARCHAR", "VARCHAR", "texteq", EqSel, 3),
                    Operator::new("#=", "VARCHAR", "VARCHAR", "text_prefix", LikeSel, 4),
                ],
                support: vec![SupportFunction {
                    number: 1,
                    name: "bttextcmp".into(),
                }],
            },
            OperatorClass {
                name: "rtree_point".into(),
                key_type: "POINT".into(),
                access_method: "rtree".into(),
                operators: vec![
                    Operator::new("@", "POINT", "POINT", "rtree_point_equal", EqSel, 1),
                    Operator::new("^", "POINT", "BOX", "rtree_point_inside", ContSel, 2),
                ],
                support: vec![],
            },
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trie_class_exposes_paper_operators() {
        let classes = OperatorClass::paper_classes();
        let trie = classes.iter().find(|c| c.name == "SP_GiST_trie").unwrap();
        assert_eq!(trie.key_type, "VARCHAR");
        assert_eq!(trie.access_method, "SP_GiST");
        for op in ["=", "#=", "?=", "@@"] {
            assert!(trie.operator(op).is_some(), "missing operator {op}");
        }
        assert_eq!(trie.operator("?=").unwrap().restrict, Selectivity::LikeSel);
        assert_eq!(trie.support.len(), 4);
    }

    #[test]
    fn kdtree_class_uses_box_for_range_operator() {
        let classes = OperatorClass::paper_classes();
        let kd = classes.iter().find(|c| c.name == "SP_GiST_kdtree").unwrap();
        let range = kd.operator("^").unwrap();
        assert_eq!(range.right_type, "BOX");
        assert_eq!(range.restrict, Selectivity::ContSel);
        assert_eq!(kd.operator("@").unwrap().strategy, 1);
    }
}
