//! The access-method catalog (the `pg_am` system table of paper Table 2).

use std::collections::BTreeMap;

use crate::operator::OperatorClass;

/// One row of the access-method catalog — the fields of the paper's Table 2
/// that affect planning and execution.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AccessMethod {
    /// Access-method name (`amname`), e.g. `"SP_GiST"`, `"btree"`, `"rtree"`.
    pub name: String,
    /// Maximum number of operator strategies (`amstrategies`).
    pub strategies: u32,
    /// Maximum number of support functions (`amsupport`).
    pub support_functions: u32,
    /// Strategy number used for ordered scans (`amorderstrategy`); 0 means the
    /// index entries have no order — the value SP-GiST registers.
    pub order_strategy: u32,
    /// Whether the access method can enforce uniqueness (`amcanunique`).
    pub can_unique: bool,
    /// Whether multi-column indexes are supported (`amcanmulticol`).
    pub can_multicol: bool,
    /// Whether null entries are indexed (`amindexnulls`).
    pub index_nulls: bool,
    /// Whether concurrent updates are supported (`amconcurrent`).
    pub concurrent: bool,
    /// Names of the interface routines, keyed by catalog column
    /// (`amgettuple`, `aminsert`, `ambuild`, …).
    pub routines: BTreeMap<String, String>,
}

impl AccessMethod {
    /// The `pg_am` entry the paper inserts for SP-GiST (Table 2).
    pub fn spgist() -> Self {
        let routines = [
            ("amgettuple", "spgistgettuple"),
            ("aminsert", "spgistinsert"),
            ("ambeginscan", "spgistbeginscan"),
            ("amrescan", "spgistrescan"),
            ("amendscan", "spgistendscan"),
            ("ammarkpos", "spgistmarkpos"),
            ("amrestrpos", "spgistrestrpos"),
            ("ambuild", "spgistbuild"),
            ("ambulkdelete", "spgistbulkdelete"),
            ("amcostestimate", "spgistcostestimate"),
        ]
        .into_iter()
        .map(|(k, v)| (k.to_string(), v.to_string()))
        .collect();
        AccessMethod {
            name: "SP_GiST".to_string(),
            strategies: 20,
            support_functions: 20,
            order_strategy: 0,
            can_unique: false,
            can_multicol: false,
            index_nulls: false,
            concurrent: true,
            routines,
        }
    }

    /// The built-in B⁺-tree access method (the default PostgreSQL index).
    pub fn btree() -> Self {
        AccessMethod {
            name: "btree".to_string(),
            strategies: 5,
            support_functions: 1,
            order_strategy: 1,
            can_unique: true,
            can_multicol: true,
            index_nulls: true,
            concurrent: true,
            routines: BTreeMap::new(),
        }
    }

    /// The built-in R-tree access method (spatial baseline).
    pub fn rtree() -> Self {
        AccessMethod {
            name: "rtree".to_string(),
            strategies: 8,
            support_functions: 3,
            order_strategy: 0,
            can_unique: false,
            can_multicol: false,
            index_nulls: false,
            concurrent: false,
            routines: BTreeMap::new(),
        }
    }
}

/// The system catalog: registered access methods and operator classes.
#[derive(Debug, Default)]
pub struct Catalog {
    access_methods: BTreeMap<String, AccessMethod>,
    operator_classes: BTreeMap<String, OperatorClass>,
}

impl Catalog {
    /// An empty catalog.
    pub fn new() -> Self {
        Self::default()
    }

    /// A catalog pre-loaded with the access methods and operator classes the
    /// paper registers: SP-GiST plus its trie, kd-tree, point-quadtree, PMR
    /// quadtree and suffix-tree operator classes, and the B⁺-tree / R-tree
    /// baselines.
    pub fn with_paper_defaults() -> Self {
        let mut catalog = Catalog::new();
        catalog.register_access_method(AccessMethod::spgist());
        catalog.register_access_method(AccessMethod::btree());
        catalog.register_access_method(AccessMethod::rtree());
        for class in OperatorClass::paper_classes() {
            catalog.register_operator_class(class);
        }
        catalog
    }

    /// Registers (or replaces) an access method, like inserting into `pg_am`.
    pub fn register_access_method(&mut self, am: AccessMethod) {
        self.access_methods.insert(am.name.clone(), am);
    }

    /// Registers an operator class (`CREATE OPERATOR CLASS`).
    pub fn register_operator_class(&mut self, class: OperatorClass) {
        self.operator_classes.insert(class.name.clone(), class);
    }

    /// Removes an operator class (`DROP OPERATOR CLASS`); returns the
    /// removed class, if any.  Physical indexes built with the class become
    /// unplannable, so queries over them fall back to sequential scans —
    /// routing is decided purely by the catalog.
    pub fn unregister_operator_class(&mut self, name: &str) -> Option<OperatorClass> {
        self.operator_classes.remove(name)
    }

    /// Looks up an access method by name.
    pub fn access_method(&self, name: &str) -> Option<&AccessMethod> {
        self.access_methods.get(name)
    }

    /// Looks up an operator class by name.
    pub fn operator_class(&self, name: &str) -> Option<&OperatorClass> {
        self.operator_classes.get(name)
    }

    /// All operator classes defined over the given key type, e.g.
    /// `"VARCHAR"` or `"POINT"`.
    pub fn classes_for_type(&self, key_type: &str) -> Vec<&OperatorClass> {
        self.operator_classes
            .values()
            .filter(|c| c.key_type == key_type)
            .collect()
    }

    /// Operator classes that contain an operator with the given name, e.g.
    /// `"?="`.
    pub fn classes_with_operator(&self, op: &str) -> Vec<&OperatorClass> {
        self.operator_classes
            .values()
            .filter(|c| c.operators.iter().any(|o| o.name == op))
            .collect()
    }

    /// Number of registered access methods.
    pub fn access_method_count(&self) -> usize {
        self.access_methods.len()
    }

    /// Number of registered operator classes.
    pub fn operator_class_count(&self) -> usize {
        self.operator_classes.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spgist_row_matches_the_paper_table() {
        let am = AccessMethod::spgist();
        assert_eq!(am.name, "SP_GiST");
        assert_eq!(am.strategies, 20);
        assert_eq!(am.order_strategy, 0, "SP-GiST entries have no order");
        assert!(!am.can_unique);
        assert!(am.concurrent);
        assert_eq!(am.routines["aminsert"], "spgistinsert");
        assert_eq!(am.routines["amcostestimate"], "spgistcostestimate");
    }

    #[test]
    fn default_catalog_contains_paper_registrations() {
        let catalog = Catalog::with_paper_defaults();
        assert_eq!(catalog.access_method_count(), 3);
        assert!(catalog.access_method("SP_GiST").is_some());
        assert!(catalog.operator_class("SP_GiST_trie").is_some());
        assert!(catalog.operator_class("SP_GiST_kdtree").is_some());
        assert!(catalog.operator_class("SP_GiST_suffix").is_some());
        // VARCHAR classes: trie and suffix tree (and the btree baseline).
        let varchar = catalog.classes_for_type("VARCHAR");
        assert!(varchar.len() >= 2);
        // Only the suffix tree registers the substring operator.
        let substring = catalog.classes_with_operator("@=");
        assert_eq!(substring.len(), 1);
        assert_eq!(substring[0].name, "SP_GiST_suffix");
    }
}
