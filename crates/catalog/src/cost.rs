//! Selectivity and cost estimation (the `spgistcostestimate` analog of
//! paper Section 4.2).

/// Restriction-selectivity estimators associated with operators
/// (`restrict = eqsel | contsel | likesel` in the paper's Table 4).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Selectivity {
    /// Equality operators: selectivity ≈ 1 / distinct values.
    EqSel,
    /// Containment (range) operators.
    ContSel,
    /// Similarity operators (prefix, LIKE, regular expression).
    LikeSel,
}

impl Selectivity {
    /// Estimated fraction of table rows an operator of this kind retrieves.
    /// The constants follow PostgreSQL's built-in defaults
    /// (`DEFAULT_EQ_SEL`, `DEFAULT_RANGE_INEQ_SEL`, `DEFAULT_MATCH_SEL`).
    pub fn estimate(&self, distinct_values: u64) -> f64 {
        match self {
            Selectivity::EqSel => {
                if distinct_values > 0 {
                    1.0 / distinct_values as f64
                } else {
                    0.005
                }
            }
            Selectivity::ContSel => 0.005,
            Selectivity::LikeSel => 0.01,
        }
    }
}

/// Statistics of the underlying table used by the cost model (the analog of
/// `pg_class.reltuples` / `relpages`).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TableStats {
    /// Number of rows in the table.
    pub rows: u64,
    /// Number of heap pages.
    pub heap_pages: u64,
    /// Number of distinct key values (for `eqsel`).
    pub distinct_values: u64,
}

/// The four quantities the paper's `spgistcostestimate` produces.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CostEstimate {
    /// Estimated fraction of table rows retrieved.
    pub selectivity: f64,
    /// Correlation between index order and table order; 0 for SP-GiST because
    /// its entries have no order.
    pub correlation: f64,
    /// CPU cost paid once before the scan starts.
    pub startup_cost: f64,
    /// Startup cost plus estimated page I/O cost.
    pub total_cost: f64,
}

/// Cost of reading one page sequentially (PostgreSQL `seq_page_cost`).
pub const SEQ_PAGE_COST: f64 = 1.0;
/// Cost of reading one page at random (PostgreSQL `random_page_cost`).
pub const RANDOM_PAGE_COST: f64 = 4.0;
/// CPU cost per tuple visited.
pub const CPU_TUPLE_COST: f64 = 0.01;
/// CPU cost per operator/predicate evaluation on a tuple
/// (PostgreSQL `cpu_operator_cost`).  Charged for index-tuple re-checks,
/// residual-filter evaluations and priority-queue work in ordered scans.
pub const CPU_OPERATOR_COST: f64 = 0.0025;
/// Cost of starting one parallel worker thread, in the same units as page
/// costs (the analog of PostgreSQL `parallel_setup_cost`, charged per
/// worker).  This is what keeps the parallel query driver from fanning out
/// over tables too small to amortize thread startup.
pub const PARALLEL_THREAD_STARTUP_COST: f64 = 100.0;

impl CostEstimate {
    /// Cost of a full sequential scan of the table.
    pub fn seq_scan(stats: &TableStats) -> CostEstimate {
        CostEstimate {
            selectivity: 1.0,
            correlation: 0.0,
            startup_cost: 0.0,
            total_cost: stats.heap_pages as f64 * SEQ_PAGE_COST
                + stats.rows as f64 * (CPU_TUPLE_COST + CPU_OPERATOR_COST),
        }
    }

    /// Cost of an index scan: descend `index_height` pages, then fetch the
    /// selected fraction of index and heap pages at random.  `index_pages` is
    /// the size of the index.  This mirrors the structure of the generic cost
    /// estimator the paper's `spgistcostestimate` delegates to.
    pub fn index_scan(
        stats: &TableStats,
        index_pages: u64,
        index_height: u32,
        selectivity: f64,
    ) -> CostEstimate {
        let rows_fetched = stats.rows as f64 * selectivity;
        let index_leaf_pages = (index_pages as f64 * selectivity).ceil();
        let heap_pages_fetched = (stats.heap_pages as f64 * selectivity).ceil();
        let startup_cost = f64::from(index_height) * RANDOM_PAGE_COST;
        CostEstimate {
            selectivity,
            correlation: 0.0,
            startup_cost,
            total_cost: startup_cost
                + (index_leaf_pages + heap_pages_fetched) * RANDOM_PAGE_COST
                + rows_fetched * (CPU_TUPLE_COST + CPU_OPERATOR_COST),
        }
    }

    /// Cost of an ordered (nearest-neighbour) index scan driven by the
    /// incremental best-first search: descend `index_height` pages to seed
    /// the priority queue, then fetch roughly the reported fraction of index
    /// and heap pages at random, paying queue maintenance per reported row.
    /// `k` is the pushed-down `LIMIT`; without one the whole table is
    /// reported in distance order.
    pub fn ordered_scan(
        stats: &TableStats,
        index_pages: u64,
        index_height: u32,
        k: Option<u64>,
    ) -> CostEstimate {
        let rows = stats.rows.max(1);
        let reported = k.map_or(rows, |k| k.min(rows).max(1));
        let fraction = reported as f64 / rows as f64;
        let startup_cost = f64::from(index_height) * RANDOM_PAGE_COST;
        let index_pages_fetched = (index_pages as f64 * fraction).ceil();
        let heap_pages_fetched = (stats.heap_pages as f64 * fraction).ceil();
        // log₂-ish priority-queue factor per reported row.
        let queue_depth = (rows as f64).log2().max(1.0);
        CostEstimate {
            selectivity: fraction,
            correlation: 0.0,
            startup_cost,
            total_cost: startup_cost
                + (index_pages_fetched + heap_pages_fetched) * RANDOM_PAGE_COST
                + reported as f64 * (CPU_TUPLE_COST + queue_depth * CPU_OPERATOR_COST),
        }
    }

    /// Cost of a sequential scan partitioned across `workers` threads: each
    /// worker pays its startup, the page and tuple work divides across the
    /// team.  Derived from the same `TableStats` page counts the serial
    /// estimate uses (which in turn come from the measured tree/heap
    /// statistics), so the driver only parallelizes once the table is large
    /// enough that the divided scan beats the serial one despite the
    /// per-worker startup cost.
    pub fn parallel_seq_scan(stats: &TableStats, workers: usize) -> CostEstimate {
        let workers = workers.max(1);
        let serial = Self::seq_scan(stats);
        let startup = PARALLEL_THREAD_STARTUP_COST * workers as f64;
        CostEstimate {
            selectivity: 1.0,
            correlation: 0.0,
            startup_cost: startup,
            total_cost: startup + serial.total_cost / workers as f64,
        }
    }

    /// True when splitting work of serial cost `serial_total` across
    /// `workers` threads is expected to be faster than running it serially.
    pub fn parallel_pays(serial_total: f64, workers: usize) -> bool {
        let workers = workers.max(1) as f64;
        PARALLEL_THREAD_STARTUP_COST * workers + serial_total / workers < serial_total
    }

    /// Cost of answering an ordered query without an index: scan the whole
    /// heap, compute every distance, sort.  The full scan-and-sort happens
    /// before the first row comes out, so the startup cost is nearly the
    /// total — the planner's reason to prefer an incremental ordered scan
    /// whenever one exists.
    pub fn seq_scan_sorted(stats: &TableStats) -> CostEstimate {
        let seq = Self::seq_scan(stats);
        let rows = stats.rows.max(1) as f64;
        let sort_cost = rows * rows.log2().max(1.0) * CPU_OPERATOR_COST;
        CostEstimate {
            selectivity: 1.0,
            correlation: 0.0,
            startup_cost: seq.total_cost + sort_cost,
            total_cost: seq.total_cost + sort_cost + rows * CPU_TUPLE_COST,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const STATS: TableStats = TableStats {
        rows: 1_000_000,
        heap_pages: 10_000,
        distinct_values: 900_000,
    };

    #[test]
    fn selectivity_defaults() {
        assert!((Selectivity::EqSel.estimate(1000) - 0.001).abs() < 1e-12);
        assert_eq!(Selectivity::EqSel.estimate(0), 0.005);
        assert_eq!(Selectivity::ContSel.estimate(123), 0.005);
        assert_eq!(Selectivity::LikeSel.estimate(123), 0.01);
    }

    #[test]
    fn selective_index_scan_beats_seq_scan() {
        let seq = CostEstimate::seq_scan(&STATS);
        let idx = CostEstimate::index_scan(&STATS, 5_000, 3, 1e-6);
        assert!(idx.total_cost < seq.total_cost);
        assert!(idx.startup_cost > 0.0);
        assert_eq!(idx.correlation, 0.0);
    }

    #[test]
    fn unselective_index_scan_loses_to_seq_scan() {
        let seq = CostEstimate::seq_scan(&STATS);
        let idx = CostEstimate::index_scan(&STATS, 5_000, 3, 0.9);
        assert!(
            idx.total_cost > seq.total_cost,
            "random I/O makes a 90% scan slower"
        );
    }

    #[test]
    fn ordered_scan_with_a_small_limit_is_cheap_and_incremental() {
        let idx = CostEstimate::ordered_scan(&STATS, 5_000, 3, Some(10));
        let sorted = CostEstimate::seq_scan_sorted(&STATS);
        assert!(idx.total_cost < sorted.total_cost / 100.0);
        assert!(
            idx.startup_cost < sorted.startup_cost,
            "best-first search reports its first row without a full sort"
        );
        // Without a limit the ordered scan reports everything; it still
        // avoids the sort but pays for the full fetch.
        let full = CostEstimate::ordered_scan(&STATS, 5_000, 3, None);
        assert!(full.total_cost > idx.total_cost);
        assert_eq!(full.selectivity, 1.0);
    }

    #[test]
    fn parallel_seq_scan_pays_only_on_large_tables() {
        // Big table: dividing the scan wins despite per-worker startup.
        let parallel = CostEstimate::parallel_seq_scan(&STATS, 4);
        let serial = CostEstimate::seq_scan(&STATS);
        assert!(parallel.total_cost < serial.total_cost);
        assert!(CostEstimate::parallel_pays(serial.total_cost, 4));

        // Small table: thread startup dominates; stay serial.
        let small = TableStats {
            rows: 500,
            heap_pages: 5,
            distinct_values: 500,
        };
        let small_serial = CostEstimate::seq_scan(&small);
        let small_parallel = CostEstimate::parallel_seq_scan(&small, 4);
        assert!(small_parallel.total_cost > small_serial.total_cost);
        assert!(!CostEstimate::parallel_pays(small_serial.total_cost, 4));

        // More workers always mean more startup cost to amortize.
        let two = CostEstimate::parallel_seq_scan(&STATS, 2);
        let eight = CostEstimate::parallel_seq_scan(&STATS, 8);
        assert!(eight.startup_cost > two.startup_cost);
    }

    #[test]
    fn index_scan_crossover_tracks_selectivity() {
        // The regression the planner relies on: as a predicate's estimated
        // selectivity degrades, the index scan must cross over and lose to
        // the sequential scan instead of being preferred unconditionally.
        let seq = CostEstimate::seq_scan(&STATS);
        assert!(CostEstimate::index_scan(&STATS, 5_000, 3, 0.001).total_cost < seq.total_cost);
        assert!(CostEstimate::index_scan(&STATS, 5_000, 3, 1.0).total_cost > seq.total_cost);
        let crossover = (0..=100)
            .map(|i| i as f64 / 100.0)
            .find(|&s| CostEstimate::index_scan(&STATS, 5_000, 3, s).total_cost > seq.total_cost)
            .expect("a crossover point must exist");
        assert!(
            crossover > 0.0 && crossover < 0.5,
            "random-I/O penalty puts the crossover well below half the table, got {crossover}"
        );
    }
}
