//! The PostgreSQL-style extensibility surface of the paper's Section 4.
//!
//! Realizing SP-GiST inside PostgreSQL required three pieces of catalog
//! machinery, all mirrored here:
//!
//! * [`am::AccessMethod`] — the `pg_am` row describing an access method and
//!   its interface routines (paper Table 2),
//! * [`operator::Operator`] / [`operator::OperatorClass`] — the operators
//!   (`=`, `#=`, `?=`, `@`, `^`, `@=`, `@@`) and the operator classes that
//!   link them, together with their support functions, to an access method
//!   (paper Tables 4 and 5),
//! * [`cost::CostEstimate`] and [`planner::Planner`] — the
//!   `spgistcostestimate` analog: selectivity estimation per operator
//!   (`eqsel`, `contsel`, `likesel`) and an index-vs-sequential-scan choice
//!   based on estimated page reads,
//! * [`exec::Database`] / [`exec::Table`] — the executable query layer on
//!   top of the planner: heap storage plus physical indexes behind one
//!   `query(predicate)` entry point that plans, dispatches to the chosen
//!   index (or falls back to a sequential scan) and streams results through
//!   an [`exec::ExecCursor`].

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod am;
pub mod cost;
pub mod durable;
pub mod exec;
pub mod operator;
pub mod planner;

pub use am::{AccessMethod, Catalog};
pub use cost::{CostEstimate, Selectivity, TableStats};
pub use exec::{
    Database, Datum, ExecCursor, IndexSpec, KeyType, Predicate, Query, ScanSource, Table,
    Transaction,
};
pub use operator::{Operator, OperatorClass, Strategy, SupportFunction};
pub use planner::{AccessPath, AvailableIndex, Planner, QueryPredicate};
pub use spgist_wal::{TxnId, Wal, WalConfig};
