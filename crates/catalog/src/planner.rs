//! A miniature access-path planner.
//!
//! PostgreSQL decides between a sequential scan and the available index scans
//! by comparing estimated costs; this module reproduces that decision for the
//! operators of the paper so the examples and integration tests can show an
//! SP-GiST index actually being *chosen* (or skipped when it cannot help,
//! e.g. a substring query against a plain trie).

use crate::am::Catalog;
use crate::cost::{CostEstimate, TableStats};

/// A query predicate: an operator name applied to an indexed column type.
#[derive(Debug, Clone, PartialEq)]
pub struct QueryPredicate {
    /// Operator name, e.g. `"="`, `"#="`, `"?="`, `"@"`, `"^"`, `"@="`,
    /// `"@@"`.
    pub operator: String,
    /// Key type of the column, e.g. `"VARCHAR"` or `"POINT"`.
    pub key_type: String,
    /// Argument-aware selectivity override.  When present it replaces the
    /// operator's class-level default (`eqsel`/`contsel`/`likesel`), letting
    /// the executor tell the planner that e.g. an empty-prefix match
    /// retrieves the whole table.
    pub selectivity: Option<f64>,
}

impl QueryPredicate {
    /// Shorthand constructor.
    pub fn new(operator: &str, key_type: &str) -> Self {
        QueryPredicate {
            operator: operator.to_string(),
            key_type: key_type.to_string(),
            selectivity: None,
        }
    }

    /// Attaches an argument-aware selectivity estimate in `[0, 1]`.
    pub fn with_selectivity(mut self, selectivity: f64) -> Self {
        self.selectivity = Some(selectivity.clamp(0.0, 1.0));
        self
    }
}

/// A physical index available to the planner: its operator class and its
/// measured size/height.
#[derive(Debug, Clone, PartialEq)]
pub struct AvailableIndex {
    /// Name of the index (for plan output).
    pub name: String,
    /// Operator class the index was created with.
    pub operator_class: String,
    /// Number of pages in the index.
    pub pages: u64,
    /// Height of the index in pages.
    pub page_height: u32,
}

/// A physical plan: the operator tree the planner selects for a (possibly
/// compositional) predicate.
///
/// Single predicates plan to the classic leaves (`SeqScan` / `IndexScan` /
/// `OrderedScan`); boolean predicate trees compose them with residual
/// filters, row-id stream intersection/union, and `LIMIT` pushdown.
#[derive(Debug, Clone, PartialEq)]
pub enum AccessPath {
    /// Full sequential scan of the heap (with the query predicate re-checked
    /// on every tuple; for ordered queries the fallback also sorts).
    SeqScan {
        /// Estimated cost.
        cost: CostEstimate,
    },
    /// Index scan through the named index.
    IndexScan {
        /// Index chosen.
        index: String,
        /// Operator class providing the operator.
        operator_class: String,
        /// Estimated cost.
        cost: CostEstimate,
    },
    /// Ordered (nearest-neighbour) scan through the named index: rows stream
    /// in non-decreasing distance from the query anchor, driven by the
    /// incremental best-first search.
    OrderedScan {
        /// Index chosen.
        index: String,
        /// Operator class providing the `@@` operator.
        operator_class: String,
        /// Estimated cost.
        cost: CostEstimate,
    },
    /// Residual filter: re-check the predicates the input scan does not
    /// cover against each tuple it produces.
    Filter {
        /// The driving scan.
        input: Box<AccessPath>,
        /// Estimated cost including the re-checks.
        cost: CostEstimate,
    },
    /// Intersection of several row-id streams (`AND` of index scans),
    /// deduplicated by row id.
    Intersect {
        /// The participating scans.
        inputs: Vec<AccessPath>,
        /// Estimated cost.
        cost: CostEstimate,
    },
    /// Union of several row-id streams (`OR` of index scans), deduplicated
    /// by row id.
    Union {
        /// The participating scans.
        inputs: Vec<AccessPath>,
        /// Estimated cost.
        cost: CostEstimate,
    },
    /// `LIMIT k` pushed down over the input: the cursor stops pulling after
    /// `k` rows instead of materializing the full result.
    Limit {
        /// The limited plan.
        input: Box<AccessPath>,
        /// Maximum number of rows to report.
        k: usize,
    },
}

impl AccessPath {
    /// The total estimated cost of this path.
    pub fn total_cost(&self) -> f64 {
        match self {
            AccessPath::SeqScan { cost }
            | AccessPath::IndexScan { cost, .. }
            | AccessPath::OrderedScan { cost, .. }
            | AccessPath::Filter { cost, .. }
            | AccessPath::Intersect { cost, .. }
            | AccessPath::Union { cost, .. } => cost.total_cost,
            AccessPath::Limit { input, .. } => input.total_cost(),
        }
    }

    /// True if any node of this plan is an index or ordered scan (i.e. the
    /// plan touches a physical index at all).
    pub fn uses_index(&self) -> bool {
        match self {
            AccessPath::SeqScan { .. } => false,
            AccessPath::IndexScan { .. } | AccessPath::OrderedScan { .. } => true,
            AccessPath::Filter { input, .. } | AccessPath::Limit { input, .. } => {
                input.uses_index()
            }
            AccessPath::Intersect { inputs, .. } | AccessPath::Union { inputs, .. } => {
                inputs.iter().any(AccessPath::uses_index)
            }
        }
    }
}

/// Chooses between sequential and index scans using the catalog and the cost
/// model.
pub struct Planner<'a> {
    catalog: &'a Catalog,
}

impl<'a> Planner<'a> {
    /// Creates a planner over `catalog`.
    pub fn new(catalog: &'a Catalog) -> Self {
        Planner { catalog }
    }

    /// Picks the cheapest access path for `predicate` over a table with
    /// `stats`, given the physically `available` indexes.
    ///
    /// The comparison against the sequential scan is honest: a predicate
    /// whose (argument-aware) selectivity is poor loses to the heap scan
    /// even when an index supports its operator.
    pub fn plan(
        &self,
        predicate: &QueryPredicate,
        stats: &TableStats,
        available: &[AvailableIndex],
    ) -> AccessPath {
        let mut best = AccessPath::SeqScan {
            cost: CostEstimate::seq_scan(stats),
        };
        for index in available {
            let Some(operator) = self.supported_operator(index, predicate) else {
                continue;
            };
            let selectivity = predicate
                .selectivity
                .unwrap_or_else(|| operator.restrict.estimate(stats.distinct_values));
            let cost = CostEstimate::index_scan(stats, index.pages, index.page_height, selectivity);
            if cost.total_cost < best.total_cost() {
                best = AccessPath::IndexScan {
                    index: index.name.clone(),
                    operator_class: index.operator_class.clone(),
                    cost,
                };
            }
        }
        best
    }

    /// Picks the cheapest *ordered* access path for an `@@` predicate: an
    /// [`AccessPath::OrderedScan`] through an index whose class registers
    /// the ordered operator, or the scan-everything-and-sort fallback.
    /// `k` is the pushed-down `LIMIT`, which caps how much of the index the
    /// best-first search has to visit.
    pub fn plan_ordered(
        &self,
        predicate: &QueryPredicate,
        stats: &TableStats,
        available: &[AvailableIndex],
        k: Option<usize>,
    ) -> AccessPath {
        let mut best = AccessPath::SeqScan {
            cost: CostEstimate::seq_scan_sorted(stats),
        };
        for index in available {
            if self.supported_operator(index, predicate).is_none() {
                continue;
            }
            let cost = CostEstimate::ordered_scan(
                stats,
                index.pages,
                index.page_height,
                k.map(|k| k as u64),
            );
            if cost.total_cost < best.total_cost() {
                best = AccessPath::OrderedScan {
                    index: index.name.clone(),
                    operator_class: index.operator_class.clone(),
                    cost,
                };
            }
        }
        best
    }

    /// The operator of `index`'s class matching `predicate`, if the class
    /// supports it over the right key type.  One lookup doubles as the
    /// support check; an index whose class lacks the operator is simply not
    /// a candidate (no panic path).
    fn supported_operator<'c>(
        &'c self,
        index: &AvailableIndex,
        predicate: &QueryPredicate,
    ) -> Option<&'c crate::operator::Operator> {
        let class = self.catalog.operator_class(&index.operator_class)?;
        if class.key_type != predicate.key_type {
            return None;
        }
        class.operator(&predicate.operator)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn stats() -> TableStats {
        TableStats {
            rows: 2_000_000,
            heap_pages: 20_000,
            distinct_values: 1_500_000,
        }
    }

    fn indexes() -> Vec<AvailableIndex> {
        vec![
            AvailableIndex {
                name: "sp_trie_index".into(),
                operator_class: "SP_GiST_trie".into(),
                pages: 9_000,
                page_height: 4,
            },
            AvailableIndex {
                name: "btree_index".into(),
                operator_class: "btree_varchar".into(),
                pages: 7_000,
                page_height: 3,
            },
            AvailableIndex {
                name: "sp_suffix_index".into(),
                operator_class: "SP_GiST_suffix".into(),
                pages: 40_000,
                page_height: 5,
            },
        ]
    }

    #[test]
    fn regex_queries_can_only_use_the_trie() {
        let catalog = Catalog::with_paper_defaults();
        let planner = Planner::new(&catalog);
        let path = planner.plan(&QueryPredicate::new("?=", "VARCHAR"), &stats(), &indexes());
        match path {
            AccessPath::IndexScan { index, .. } => assert_eq!(index, "sp_trie_index"),
            other => panic!("expected an index scan, got {other:?}"),
        }
    }

    #[test]
    fn substring_queries_use_the_suffix_tree() {
        let catalog = Catalog::with_paper_defaults();
        let planner = Planner::new(&catalog);
        let path = planner.plan(&QueryPredicate::new("@=", "VARCHAR"), &stats(), &indexes());
        match path {
            AccessPath::IndexScan { index, .. } => assert_eq!(index, "sp_suffix_index"),
            other => panic!("expected an index scan, got {other:?}"),
        }
    }

    #[test]
    fn unsupported_operator_falls_back_to_seq_scan() {
        let catalog = Catalog::with_paper_defaults();
        let planner = Planner::new(&catalog);
        // No string index supports the spatial containment operator.
        let path = planner.plan(&QueryPredicate::new("^", "VARCHAR"), &stats(), &indexes());
        assert!(matches!(path, AccessPath::SeqScan { .. }));
        // Without any physical index the planner also falls back.
        let path = planner.plan(&QueryPredicate::new("=", "VARCHAR"), &stats(), &[]);
        assert!(matches!(path, AccessPath::SeqScan { .. }));
    }

    #[test]
    fn poor_selectivity_loses_to_the_seq_scan_even_with_an_index() {
        let catalog = Catalog::with_paper_defaults();
        let planner = Planner::new(&catalog);
        // An empty-prefix match retrieves every row; the executor reports
        // that through the selectivity override, and the planner must route
        // it to the heap despite the matching trie.
        let all = QueryPredicate::new("#=", "VARCHAR").with_selectivity(1.0);
        assert!(matches!(
            planner.plan(&all, &stats(), &indexes()),
            AccessPath::SeqScan { .. }
        ));
        // The same operator with a selective argument keeps the index, so
        // the crossover exists and sits between the two.
        let selective = QueryPredicate::new("#=", "VARCHAR").with_selectivity(1e-4);
        assert!(matches!(
            planner.plan(&selective, &stats(), &indexes()),
            AccessPath::IndexScan { .. }
        ));
    }

    #[test]
    fn ordered_scans_route_to_an_nn_capable_index() {
        let catalog = Catalog::with_paper_defaults();
        let planner = Planner::new(&catalog);
        let nn = QueryPredicate::new("@@", "VARCHAR");
        // With a small LIMIT the trie's incremental NN search wins.
        let path = planner.plan_ordered(&nn, &stats(), &indexes(), Some(10));
        match path {
            AccessPath::OrderedScan { index, .. } => assert_eq!(index, "sp_trie_index"),
            other => panic!("expected an ordered scan, got {other:?}"),
        }
        // The suffix tree and the B⁺-tree register no `@@`; without the trie
        // the fallback is scan-and-sort.
        let no_trie: Vec<AvailableIndex> = indexes()
            .into_iter()
            .filter(|i| i.operator_class != "SP_GiST_trie")
            .collect();
        assert!(matches!(
            planner.plan_ordered(&nn, &stats(), &no_trie, Some(10)),
            AccessPath::SeqScan { .. }
        ));
    }

    #[test]
    fn equality_picks_the_cheaper_of_trie_and_btree() {
        let catalog = Catalog::with_paper_defaults();
        let planner = Planner::new(&catalog);
        let path = planner.plan(&QueryPredicate::new("=", "VARCHAR"), &stats(), &indexes());
        match path {
            AccessPath::IndexScan { cost, .. } => {
                assert!(cost.total_cost < CostEstimate::seq_scan(&stats()).total_cost);
            }
            other => panic!("expected an index scan, got {other:?}"),
        }
    }
}
