//! A miniature access-path planner.
//!
//! PostgreSQL decides between a sequential scan and the available index scans
//! by comparing estimated costs; this module reproduces that decision for the
//! operators of the paper so the examples and integration tests can show an
//! SP-GiST index actually being *chosen* (or skipped when it cannot help,
//! e.g. a substring query against a plain trie).

use crate::am::Catalog;
use crate::cost::{CostEstimate, TableStats};

/// A query predicate: an operator name applied to an indexed column type.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct QueryPredicate {
    /// Operator name, e.g. `"="`, `"#="`, `"?="`, `"@"`, `"^"`, `"@="`.
    pub operator: String,
    /// Key type of the column, e.g. `"VARCHAR"` or `"POINT"`.
    pub key_type: String,
}

impl QueryPredicate {
    /// Shorthand constructor.
    pub fn new(operator: &str, key_type: &str) -> Self {
        QueryPredicate {
            operator: operator.to_string(),
            key_type: key_type.to_string(),
        }
    }
}

/// A physical index available to the planner: its operator class and its
/// measured size/height.
#[derive(Debug, Clone, PartialEq)]
pub struct AvailableIndex {
    /// Name of the index (for plan output).
    pub name: String,
    /// Operator class the index was created with.
    pub operator_class: String,
    /// Number of pages in the index.
    pub pages: u64,
    /// Height of the index in pages.
    pub page_height: u32,
}

/// The access path selected by the planner.
#[derive(Debug, Clone, PartialEq)]
pub enum AccessPath {
    /// Full sequential scan of the heap.
    SeqScan {
        /// Estimated cost.
        cost: CostEstimate,
    },
    /// Index scan through the named index.
    IndexScan {
        /// Index chosen.
        index: String,
        /// Operator class providing the operator.
        operator_class: String,
        /// Estimated cost.
        cost: CostEstimate,
    },
}

impl AccessPath {
    /// The total estimated cost of this path.
    pub fn total_cost(&self) -> f64 {
        match self {
            AccessPath::SeqScan { cost } | AccessPath::IndexScan { cost, .. } => cost.total_cost,
        }
    }
}

/// Chooses between sequential and index scans using the catalog and the cost
/// model.
pub struct Planner<'a> {
    catalog: &'a Catalog,
}

impl<'a> Planner<'a> {
    /// Creates a planner over `catalog`.
    pub fn new(catalog: &'a Catalog) -> Self {
        Planner { catalog }
    }

    /// Picks the cheapest access path for `predicate` over a table with
    /// `stats`, given the physically `available` indexes.
    pub fn plan(
        &self,
        predicate: &QueryPredicate,
        stats: &TableStats,
        available: &[AvailableIndex],
    ) -> AccessPath {
        let mut best = AccessPath::SeqScan {
            cost: CostEstimate::seq_scan(stats),
        };
        for index in available {
            let Some(class) = self.catalog.operator_class(&index.operator_class) else {
                continue;
            };
            // One lookup doubles as the support check; an index whose class
            // lacks the operator is simply not a candidate (no panic path).
            if class.key_type != predicate.key_type {
                continue;
            }
            let Some(operator) = class.operator(&predicate.operator) else {
                continue;
            };
            let selectivity = operator.restrict.estimate(stats.distinct_values);
            let cost = CostEstimate::index_scan(stats, index.pages, index.page_height, selectivity);
            if cost.total_cost < best.total_cost() {
                best = AccessPath::IndexScan {
                    index: index.name.clone(),
                    operator_class: index.operator_class.clone(),
                    cost,
                };
            }
        }
        best
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn stats() -> TableStats {
        TableStats {
            rows: 2_000_000,
            heap_pages: 20_000,
            distinct_values: 1_500_000,
        }
    }

    fn indexes() -> Vec<AvailableIndex> {
        vec![
            AvailableIndex {
                name: "sp_trie_index".into(),
                operator_class: "SP_GiST_trie".into(),
                pages: 9_000,
                page_height: 4,
            },
            AvailableIndex {
                name: "btree_index".into(),
                operator_class: "btree_varchar".into(),
                pages: 7_000,
                page_height: 3,
            },
            AvailableIndex {
                name: "sp_suffix_index".into(),
                operator_class: "SP_GiST_suffix".into(),
                pages: 40_000,
                page_height: 5,
            },
        ]
    }

    #[test]
    fn regex_queries_can_only_use_the_trie() {
        let catalog = Catalog::with_paper_defaults();
        let planner = Planner::new(&catalog);
        let path = planner.plan(&QueryPredicate::new("?=", "VARCHAR"), &stats(), &indexes());
        match path {
            AccessPath::IndexScan { index, .. } => assert_eq!(index, "sp_trie_index"),
            other => panic!("expected an index scan, got {other:?}"),
        }
    }

    #[test]
    fn substring_queries_use_the_suffix_tree() {
        let catalog = Catalog::with_paper_defaults();
        let planner = Planner::new(&catalog);
        let path = planner.plan(&QueryPredicate::new("@=", "VARCHAR"), &stats(), &indexes());
        match path {
            AccessPath::IndexScan { index, .. } => assert_eq!(index, "sp_suffix_index"),
            other => panic!("expected an index scan, got {other:?}"),
        }
    }

    #[test]
    fn unsupported_operator_falls_back_to_seq_scan() {
        let catalog = Catalog::with_paper_defaults();
        let planner = Planner::new(&catalog);
        // No string index supports the spatial containment operator.
        let path = planner.plan(&QueryPredicate::new("^", "VARCHAR"), &stats(), &indexes());
        assert!(matches!(path, AccessPath::SeqScan { .. }));
        // Without any physical index the planner also falls back.
        let path = planner.plan(&QueryPredicate::new("=", "VARCHAR"), &stats(), &[]);
        assert!(matches!(path, AccessPath::SeqScan { .. }));
    }

    #[test]
    fn equality_picks_the_cheaper_of_trie_and_btree() {
        let catalog = Catalog::with_paper_defaults();
        let planner = Planner::new(&catalog);
        let path = planner.plan(&QueryPredicate::new("=", "VARCHAR"), &stats(), &indexes());
        match path {
            AccessPath::IndexScan { cost, .. } => {
                assert!(cost.total_cost < CostEstimate::seq_scan(&stats()).total_cost);
            }
            other => panic!("expected an index scan, got {other:?}"),
        }
    }
}
