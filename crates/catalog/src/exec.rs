//! The executable query layer: plan → cursor → results.
//!
//! The planner ([`crate::planner::Planner`]) chooses an [`AccessPath`]; this
//! module makes that choice *executable*.  A [`Table`] registers heap data
//! plus physical indexes (any of the five `SpIndex` implementations), derives
//! the planner's [`AvailableIndex`] statistics automatically from each
//! index's [`TreeStats`], runs the plan, and then dispatches execution to the
//! chosen index — or falls back to a heap sequential scan when no registered
//! operator class supports the predicate.  Results stream through an
//! [`ExecCursor`] instead of a materialized `Vec`, so callers can stop
//! pulling early.
//!
//! [`Database`] is the top-level facade: a catalog, a shared buffer pool and
//! a set of named tables — the "many scenarios, one API" surface of the
//! paper carried to its logical end.

use std::cell::Cell;
use std::collections::{BTreeMap, HashSet};
use std::sync::Arc;

use spgist_core::{RowId, TreeStats};
use spgist_indexes::geom::{Point, Rect, Segment};
use spgist_indexes::query::{PointQuery, SegmentQuery, StringQuery};
use spgist_indexes::{
    KdTreeIndex, PmrQuadtreeIndex, PointQuadtreeIndex, SpIndex, SuffixTreeIndex, TrieIndex,
};
use spgist_storage::{BufferPool, Codec, HeapFile, RecordId, StorageError, StorageResult};

use crate::am::Catalog;
use crate::cost::TableStats;
use crate::planner::{AccessPath, AvailableIndex, Planner, QueryPredicate};

// ---------------------------------------------------------------------------
// Typed values and predicates
// ---------------------------------------------------------------------------

/// Key type of a table column (the `key_type` the catalog's operator
/// classes are defined over).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum KeyType {
    /// String keys (`VARCHAR`): trie, suffix tree, B⁺-tree classes.
    Varchar,
    /// 2-D point keys (`POINT`): kd-tree, point quadtree, R-tree classes.
    Point,
    /// Line-segment keys (`SEGMENT`): the PMR-quadtree class.
    Segment,
}

impl KeyType {
    /// Catalog spelling of the type name.
    pub fn name(&self) -> &'static str {
        match self {
            KeyType::Varchar => "VARCHAR",
            KeyType::Point => "POINT",
            KeyType::Segment => "SEGMENT",
        }
    }
}

/// A typed value stored in a table's key column.
#[derive(Debug, Clone, PartialEq)]
pub enum Datum {
    /// A string.
    Text(String),
    /// A 2-D point.
    Point(Point),
    /// A line segment.
    Segment(Segment),
}

impl Datum {
    /// The key type this value belongs to.
    pub fn key_type(&self) -> KeyType {
        match self {
            Datum::Text(_) => KeyType::Varchar,
            Datum::Point(_) => KeyType::Point,
            Datum::Segment(_) => KeyType::Segment,
        }
    }

    fn encode_record(&self) -> Vec<u8> {
        let mut out = Vec::new();
        match self {
            Datum::Text(s) => {
                0u8.encode(&mut out);
                s.encode(&mut out);
            }
            Datum::Point(p) => {
                1u8.encode(&mut out);
                p.encode(&mut out);
            }
            Datum::Segment(s) => {
                2u8.encode(&mut out);
                s.encode(&mut out);
            }
        }
        out
    }

    fn decode_record(bytes: &[u8]) -> StorageResult<Self> {
        let mut buf = bytes;
        match u8::decode(&mut buf)? {
            0 => Ok(Datum::Text(String::decode(&mut buf)?)),
            1 => Ok(Datum::Point(Point::decode(&mut buf)?)),
            2 => Ok(Datum::Segment(Segment::decode(&mut buf)?)),
            tag => Err(StorageError::Decode(format!("invalid datum tag {tag}"))),
        }
    }
}

impl From<&str> for Datum {
    fn from(s: &str) -> Self {
        Datum::Text(s.to_string())
    }
}

impl From<String> for Datum {
    fn from(s: String) -> Self {
        Datum::Text(s)
    }
}

impl From<Point> for Datum {
    fn from(p: Point) -> Self {
        Datum::Point(p)
    }
}

impl From<Segment> for Datum {
    fn from(s: Segment) -> Self {
        Datum::Segment(s)
    }
}

/// An executable query predicate: one of the paper's registered operators
/// applied to a typed argument.
///
/// Unlike [`QueryPredicate`] (operator *name* + key type, all the planner
/// needs), a `Predicate` carries the actual argument, so the executor can
/// both run it through an index and re-check it against heap tuples on a
/// sequential scan.
#[derive(Debug, Clone, PartialEq)]
pub enum Predicate {
    /// A predicate over string keys.
    Str(StringQuery),
    /// A predicate over point keys.
    Point(PointQuery),
    /// A predicate over segment keys.
    Segment(SegmentQuery),
}

impl Predicate {
    /// `=` over strings.
    pub fn str_equals(word: &str) -> Self {
        Predicate::Str(StringQuery::Equals(word.to_string()))
    }

    /// `#=` (prefix) over strings.
    pub fn str_prefix(prefix: &str) -> Self {
        Predicate::Str(StringQuery::Prefix(prefix.to_string()))
    }

    /// `?=` (single-character-wildcard regex) over strings.
    pub fn str_regex(pattern: &str) -> Self {
        Predicate::Str(StringQuery::Regex(pattern.to_string()))
    }

    /// `@=` (substring) over strings.
    pub fn str_substring(needle: &str) -> Self {
        Predicate::Str(StringQuery::Substring(needle.to_string()))
    }

    /// `@` (point equality).
    pub fn point_equals(point: Point) -> Self {
        Predicate::Point(PointQuery::Equals(point))
    }

    /// `^` (point inside box).
    pub fn point_in_rect(rect: Rect) -> Self {
        Predicate::Point(PointQuery::InRect(rect))
    }

    /// `=` over segments.
    pub fn segment_equals(segment: Segment) -> Self {
        Predicate::Segment(SegmentQuery::Equals(segment))
    }

    /// `&&` (segment intersects box — the PMR window query).
    pub fn segment_in_rect(rect: Rect) -> Self {
        Predicate::Segment(SegmentQuery::InRect(rect))
    }

    /// The catalog operator name this predicate maps to, or `None` for
    /// predicates the set-oriented executor cannot run (nearest-neighbour
    /// anchors, which need the ordered [`spgist_core::NnIter`] interface).
    pub fn operator(&self) -> Option<&'static str> {
        match self {
            Predicate::Str(StringQuery::Equals(_)) => Some("="),
            Predicate::Str(StringQuery::Prefix(_)) => Some("#="),
            Predicate::Str(StringQuery::Regex(_)) => Some("?="),
            Predicate::Str(StringQuery::Substring(_)) => Some("@="),
            Predicate::Str(StringQuery::Nearest(_)) => None,
            Predicate::Point(PointQuery::Equals(_)) => Some("@"),
            Predicate::Point(PointQuery::InRect(_)) => Some("^"),
            Predicate::Point(PointQuery::Nearest(_)) => None,
            Predicate::Segment(SegmentQuery::Equals(_)) => Some("="),
            Predicate::Segment(SegmentQuery::InRect(_)) => Some("&&"),
        }
    }

    /// The key type this predicate applies to.
    pub fn key_type(&self) -> KeyType {
        match self {
            Predicate::Str(_) => KeyType::Varchar,
            Predicate::Point(_) => KeyType::Point,
            Predicate::Segment(_) => KeyType::Segment,
        }
    }

    /// Straight-line re-check against a heap tuple (the sequential-scan
    /// filter).  Type-mismatched tuples never match.
    pub fn matches(&self, datum: &Datum) -> bool {
        match (self, datum) {
            (Predicate::Str(q), Datum::Text(s)) => q.matches(s),
            (Predicate::Point(q), Datum::Point(p)) => q.matches(p),
            (Predicate::Segment(q), Datum::Segment(s)) => q.matches(s),
            _ => false,
        }
    }

    /// The planner-facing form of this predicate.
    pub fn to_query_predicate(&self) -> Option<QueryPredicate> {
        self.operator()
            .map(|op| QueryPredicate::new(op, self.key_type().name()))
    }
}

// ---------------------------------------------------------------------------
// Physical indexes
// ---------------------------------------------------------------------------

/// What kind of physical index to build on a table.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum IndexSpec {
    /// Patricia trie (`SP_GiST_trie`, `VARCHAR`).
    Trie,
    /// Suffix tree (`SP_GiST_suffix`, `VARCHAR`).
    SuffixTree,
    /// kd-tree (`SP_GiST_kdtree`, `POINT`).
    KdTree,
    /// Point quadtree (`SP_GiST_pquadtree`, `POINT`).
    PointQuadtree,
    /// PMR quadtree over the given world rectangle (`SP_GiST_pmr`,
    /// `SEGMENT`).
    PmrQuadtree {
        /// The world rectangle the quadtree decomposes.
        world: Rect,
    },
}

impl IndexSpec {
    /// The operator class this physical index is created with.
    pub fn operator_class(&self) -> &'static str {
        match self {
            IndexSpec::Trie => "SP_GiST_trie",
            IndexSpec::SuffixTree => "SP_GiST_suffix",
            IndexSpec::KdTree => "SP_GiST_kdtree",
            IndexSpec::PointQuadtree => "SP_GiST_pquadtree",
            IndexSpec::PmrQuadtree { .. } => "SP_GiST_pmr",
        }
    }

    /// The key type this index can serve.
    pub fn key_type(&self) -> KeyType {
        match self {
            IndexSpec::Trie | IndexSpec::SuffixTree => KeyType::Varchar,
            IndexSpec::KdTree | IndexSpec::PointQuadtree => KeyType::Point,
            IndexSpec::PmrQuadtree { .. } => KeyType::Segment,
        }
    }
}

/// One of the five physical index kinds, behind a common dispatch point.
enum PhysicalIndex {
    Trie(TrieIndex),
    Suffix(SuffixTreeIndex),
    KdTree(KdTreeIndex),
    Quadtree(PointQuadtreeIndex),
    Pmr(PmrQuadtreeIndex),
}

impl PhysicalIndex {
    fn insert(&mut self, datum: &Datum, row: RowId) -> StorageResult<()> {
        match (self, datum) {
            (PhysicalIndex::Trie(ix), Datum::Text(s)) => SpIndex::insert(ix, s.clone(), row),
            (PhysicalIndex::Suffix(ix), Datum::Text(s)) => SpIndex::insert(ix, s.clone(), row),
            (PhysicalIndex::KdTree(ix), Datum::Point(p)) => ix.insert(*p, row),
            (PhysicalIndex::Quadtree(ix), Datum::Point(p)) => ix.insert(*p, row),
            (PhysicalIndex::Pmr(ix), Datum::Segment(s)) => ix.insert(*s, row),
            _ => Err(StorageError::Unsupported(
                "datum type does not match the index key type".into(),
            )),
        }
    }

    fn delete(&mut self, datum: &Datum, row: RowId) -> StorageResult<bool> {
        match (self, datum) {
            (PhysicalIndex::Trie(ix), Datum::Text(s)) => SpIndex::delete(ix, s, row),
            (PhysicalIndex::Suffix(ix), Datum::Text(s)) => SpIndex::delete(ix, s, row),
            (PhysicalIndex::KdTree(ix), Datum::Point(p)) => ix.delete(p, row),
            (PhysicalIndex::Quadtree(ix), Datum::Point(p)) => ix.delete(p, row),
            (PhysicalIndex::Pmr(ix), Datum::Segment(s)) => ix.delete(s, row),
            _ => Err(StorageError::Unsupported(
                "datum type does not match the index key type".into(),
            )),
        }
    }

    fn stats(&self) -> StorageResult<TreeStats> {
        match self {
            PhysicalIndex::Trie(ix) => ix.stats(),
            PhysicalIndex::Suffix(ix) => ix.stats(),
            PhysicalIndex::KdTree(ix) => ix.stats(),
            PhysicalIndex::Quadtree(ix) => ix.stats(),
            PhysicalIndex::Pmr(ix) => ix.stats(),
        }
    }

    /// Streaming scan through this index for `predicate`, yielding matching
    /// row ids.  The planner only routes a predicate here when the index's
    /// operator class supports it, so a type mismatch is a planning bug.
    fn scan<'t>(
        &'t self,
        predicate: &Predicate,
    ) -> StorageResult<Box<dyn Iterator<Item = StorageResult<RowId>> + 't>> {
        fn rows<'t, K: 't>(
            cursor: spgist_indexes::Cursor<'t, K>,
        ) -> Box<dyn Iterator<Item = StorageResult<RowId>> + 't> {
            Box::new(cursor.map(|item| item.map(|(_, row)| row)))
        }
        match (self, predicate) {
            (PhysicalIndex::Trie(ix), Predicate::Str(q)) => Ok(rows(ix.cursor(q)?)),
            (PhysicalIndex::Suffix(ix), Predicate::Str(q)) => Ok(rows(ix.cursor(q)?)),
            (PhysicalIndex::KdTree(ix), Predicate::Point(q)) => Ok(rows(ix.cursor(q)?)),
            (PhysicalIndex::Quadtree(ix), Predicate::Point(q)) => Ok(rows(ix.cursor(q)?)),
            (PhysicalIndex::Pmr(ix), Predicate::Segment(q)) => Ok(rows(ix.cursor(q)?)),
            _ => Err(StorageError::Unsupported(
                "planner routed a predicate to an index of a different key type".into(),
            )),
        }
    }
}

struct NamedIndex {
    name: String,
    spec: IndexSpec,
    index: PhysicalIndex,
    /// Memoized planner statistics `(pages, page_height)`.  Deriving them
    /// from [`TreeStats`] walks the whole tree, so the result is cached
    /// until the next write invalidates it — planning a query must not cost
    /// more than running it.
    cached_stats: Cell<Option<(u64, u32)>>,
}

impl NamedIndex {
    fn planner_stats(&self) -> StorageResult<(u64, u32)> {
        if let Some(cached) = self.cached_stats.get() {
            return Ok(cached);
        }
        let stats = self.index.stats()?;
        let derived = (stats.pages, stats.max_page_height);
        self.cached_stats.set(Some(derived));
        Ok(derived)
    }
}

// ---------------------------------------------------------------------------
// Execution cursors
// ---------------------------------------------------------------------------

/// Where an [`ExecCursor`]'s rows actually come from — recorded at dispatch
/// time, so tests can prove the planner's chosen index is the one scanned.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ScanSource {
    /// Heap sequential scan with a per-tuple predicate re-check.
    Heap,
    /// Scan through the named physical index.
    Index {
        /// Name of the index being scanned.
        name: String,
    },
}

/// A streaming query result: `(row id, key datum)` pairs pulled lazily from
/// the chosen access path.
pub struct ExecCursor<'t> {
    path: AccessPath,
    source: ScanSource,
    inner: Box<dyn Iterator<Item = StorageResult<(RowId, Datum)>> + 't>,
}

impl ExecCursor<'_> {
    /// The access path the planner chose for this query.
    pub fn path(&self) -> &AccessPath {
        &self.path
    }

    /// The access path actually being scanned.
    pub fn source(&self) -> &ScanSource {
        &self.source
    }

    /// Drains the cursor into the row ids of every match.
    pub fn rows(self) -> StorageResult<Vec<RowId>> {
        self.map(|item| item.map(|(row, _)| row)).collect()
    }
}

impl Iterator for ExecCursor<'_> {
    type Item = StorageResult<(RowId, Datum)>;

    fn next(&mut self) -> Option<Self::Item> {
        self.inner.next()
    }
}

impl std::fmt::Debug for ExecCursor<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ExecCursor")
            .field("path", &self.path)
            .field("source", &self.source)
            .finish()
    }
}

// ---------------------------------------------------------------------------
// Table
// ---------------------------------------------------------------------------

/// A heap-backed table with one typed key column and any number of physical
/// indexes over it.
pub struct Table {
    name: String,
    key_type: KeyType,
    pool: Arc<BufferPool>,
    heap: HeapFile,
    /// Row id → heap record (None once deleted).  Row ids are dense and
    /// assigned in insertion order, like the paper's heap tuple pointers.
    rows: Vec<Option<RecordId>>,
    live_rows: u64,
    /// Encoded key values seen on insert, for the planner's `distinct_values`
    /// statistic (deletions are not subtracted — statistics, not truth).
    distinct: HashSet<Vec<u8>>,
    indexes: Vec<NamedIndex>,
}

impl Table {
    /// Creates an empty table whose heap pages come from `pool`.
    pub fn create(name: &str, key_type: KeyType, pool: Arc<BufferPool>) -> StorageResult<Self> {
        Ok(Table {
            name: name.to_string(),
            key_type,
            heap: HeapFile::create(Arc::clone(&pool))?,
            pool,
            rows: Vec::new(),
            live_rows: 0,
            distinct: HashSet::new(),
            indexes: Vec::new(),
        })
    }

    /// The table name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The key type of the table's indexed column.
    pub fn key_type(&self) -> KeyType {
        self.key_type
    }

    /// Number of live rows.
    pub fn len(&self) -> u64 {
        self.live_rows
    }

    /// True if the table holds no live rows.
    pub fn is_empty(&self) -> bool {
        self.live_rows == 0
    }

    /// Inserts a key value, returning its row id.  The value is appended to
    /// the heap and inserted into every registered index.
    pub fn insert(&mut self, datum: impl Into<Datum>) -> StorageResult<RowId> {
        let datum = datum.into();
        if datum.key_type() != self.key_type {
            return Err(StorageError::Unsupported(format!(
                "cannot insert a {} value into table {:?} of type {}",
                datum.key_type().name(),
                self.name,
                self.key_type.name()
            )));
        }
        let record = datum.encode_record();
        let rid = self.heap.insert(&record)?;
        let row = self.rows.len() as RowId;
        self.rows.push(Some(rid));
        self.live_rows += 1;
        self.distinct.insert(record);
        for named in &mut self.indexes {
            named.index.insert(&datum, row)?;
            named.cached_stats.set(None);
        }
        Ok(row)
    }

    /// Deletes the row, removing it from the heap and every index; returns
    /// whether the row existed.
    pub fn delete(&mut self, row: RowId) -> StorageResult<bool> {
        let Some(slot) = self.rows.get_mut(row as usize) else {
            return Ok(false);
        };
        let Some(rid) = slot.take() else {
            return Ok(false);
        };
        let datum = Datum::decode_record(&self.heap.get(rid)?)?;
        self.heap.delete(rid)?;
        self.live_rows -= 1;
        for named in &mut self.indexes {
            named.index.delete(&datum, row)?;
            named.cached_stats.set(None);
        }
        Ok(true)
    }

    /// Reads the key value of a live row.
    pub fn datum(&self, row: RowId) -> StorageResult<Datum> {
        let rid = self
            .rows
            .get(row as usize)
            .copied()
            .flatten()
            .ok_or_else(|| StorageError::Unsupported(format!("row {row} does not exist")))?;
        Datum::decode_record(&self.heap.get(rid)?)
    }

    /// Builds a physical index described by `spec`, backfilling it from the
    /// existing heap rows (`CREATE INDEX`).
    pub fn create_index(&mut self, name: &str, spec: IndexSpec) -> StorageResult<()> {
        if spec.key_type() != self.key_type {
            return Err(StorageError::Unsupported(format!(
                "index {name:?} ({}) cannot serve table {:?} of type {}",
                spec.key_type().name(),
                self.name,
                self.key_type.name()
            )));
        }
        if self.indexes.iter().any(|i| i.name == name) {
            return Err(StorageError::Unsupported(format!(
                "index {name:?} already exists on table {:?}",
                self.name
            )));
        }
        let pool = Arc::clone(&self.pool);
        let mut index = match spec {
            IndexSpec::Trie => PhysicalIndex::Trie(TrieIndex::create(pool)?),
            IndexSpec::SuffixTree => PhysicalIndex::Suffix(SuffixTreeIndex::create(pool)?),
            IndexSpec::KdTree => PhysicalIndex::KdTree(KdTreeIndex::create(pool)?),
            IndexSpec::PointQuadtree => PhysicalIndex::Quadtree(PointQuadtreeIndex::create(pool)?),
            IndexSpec::PmrQuadtree { world } => {
                PhysicalIndex::Pmr(PmrQuadtreeIndex::create(pool, world)?)
            }
        };
        for row in 0..self.rows.len() as RowId {
            if self.rows[row as usize].is_some() {
                let datum = self.datum(row)?;
                index.insert(&datum, row)?;
            }
        }
        self.indexes.push(NamedIndex {
            name: name.to_string(),
            spec,
            index,
            cached_stats: Cell::new(None),
        });
        Ok(())
    }

    /// Drops a physical index; returns whether it existed.
    pub fn drop_index(&mut self, name: &str) -> bool {
        let before = self.indexes.len();
        self.indexes.retain(|i| i.name != name);
        self.indexes.len() < before
    }

    /// Names of the physical indexes on this table.
    pub fn index_names(&self) -> Vec<&str> {
        self.indexes.iter().map(|i| i.name.as_str()).collect()
    }

    /// Planner statistics of the heap (the `pg_class` analog).
    pub fn table_stats(&self) -> TableStats {
        TableStats {
            rows: self.live_rows,
            heap_pages: (self.heap.page_count() as u64).max(1),
            distinct_values: self.distinct.len() as u64,
        }
    }

    /// The planner's view of the physical indexes, derived automatically
    /// from each index's measured [`TreeStats`] (memoized between writes).
    pub fn available_indexes(&self) -> StorageResult<Vec<AvailableIndex>> {
        self.indexes
            .iter()
            .map(|named| {
                let (pages, page_height) = named.planner_stats()?;
                Ok(AvailableIndex {
                    name: named.name.clone(),
                    operator_class: named.spec.operator_class().to_string(),
                    pages,
                    page_height,
                })
            })
            .collect()
    }

    /// Plans `predicate` against this table (choosing index scan vs
    /// sequential scan) without executing it (`EXPLAIN`).
    pub fn plan(&self, catalog: &Catalog, predicate: &Predicate) -> StorageResult<AccessPath> {
        if predicate.key_type() != self.key_type {
            return Err(StorageError::Unsupported(format!(
                "predicate over {} cannot run on table {:?} of type {}",
                predicate.key_type().name(),
                self.name,
                self.key_type.name()
            )));
        }
        let Some(query) = predicate.to_query_predicate() else {
            return Err(StorageError::Unsupported(
                "nearest-neighbour predicates need the ordered NN interface, \
                 not the set-oriented executor"
                    .into(),
            ));
        };
        let planner = Planner::new(catalog);
        Ok(planner.plan(&query, &self.table_stats(), &self.available_indexes()?))
    }

    /// Plans and executes `predicate`, returning a streaming cursor over the
    /// matching `(row id, key)` pairs.
    ///
    /// The dispatch is driven entirely by the planner's choice: an
    /// [`AccessPath::IndexScan`] pulls from the named physical index (keys
    /// are still resolved through the heap, so results are identical across
    /// access paths); an [`AccessPath::SeqScan`] walks the heap and
    /// re-checks the predicate on every tuple.
    pub fn query<'t>(
        &'t self,
        catalog: &Catalog,
        predicate: &Predicate,
    ) -> StorageResult<ExecCursor<'t>> {
        let path = self.plan(catalog, predicate)?;
        match &path {
            AccessPath::IndexScan { index, .. } => {
                let named = self
                    .indexes
                    .iter()
                    .find(|i| i.name == *index)
                    .ok_or_else(|| {
                        StorageError::Unsupported(format!("planner chose unknown index {index:?}"))
                    })?;
                let rows = named.index.scan(predicate)?;
                let inner = rows.map(move |item| {
                    item.and_then(|row| self.datum(row).map(|datum| (row, datum)))
                });
                Ok(ExecCursor {
                    source: ScanSource::Index {
                        name: named.name.clone(),
                    },
                    path,
                    inner: Box::new(inner),
                })
            }
            AccessPath::SeqScan { .. } => {
                let predicate = predicate.clone();
                let inner = (0..self.rows.len() as RowId).filter_map(move |row| {
                    self.rows[row as usize]?;
                    match self.datum(row) {
                        Err(e) => Some(Err(e)),
                        Ok(datum) if predicate.matches(&datum) => Some(Ok((row, datum))),
                        Ok(_) => None,
                    }
                });
                Ok(ExecCursor {
                    source: ScanSource::Heap,
                    path,
                    inner: Box::new(inner),
                })
            }
        }
    }
}

impl std::fmt::Debug for Table {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Table")
            .field("name", &self.name)
            .field("key_type", &self.key_type)
            .field("rows", &self.live_rows)
            .field("indexes", &self.index_names())
            .finish()
    }
}

// ---------------------------------------------------------------------------
// Database
// ---------------------------------------------------------------------------

/// The top-level facade: a catalog, a shared buffer pool and named tables.
///
/// ```
/// use spgist_catalog::exec::{Database, IndexSpec, KeyType, Predicate};
///
/// let mut db = Database::in_memory();
/// db.create_table("words", KeyType::Varchar).unwrap();
/// let table = db.table_mut("words").unwrap();
/// table.insert("space").unwrap();
/// table.insert("spade").unwrap();
/// table.create_index("words_trie", IndexSpec::Trie).unwrap();
/// let rows = db
///     .query("words", &Predicate::str_prefix("sp"))
///     .unwrap()
///     .rows()
///     .unwrap();
/// assert_eq!(rows.len(), 2);
/// ```
pub struct Database {
    catalog: Catalog,
    pool: Arc<BufferPool>,
    tables: BTreeMap<String, Table>,
}

impl Database {
    /// A database on an in-memory buffer pool with the paper's catalog
    /// registrations.
    pub fn in_memory() -> Self {
        Self::with_pool(BufferPool::in_memory())
    }

    /// A database over an explicit buffer pool (e.g. file-backed).
    pub fn with_pool(pool: Arc<BufferPool>) -> Self {
        Database {
            catalog: Catalog::with_paper_defaults(),
            pool,
            tables: BTreeMap::new(),
        }
    }

    /// The system catalog (access methods and operator classes).
    pub fn catalog(&self) -> &Catalog {
        &self.catalog
    }

    /// Mutable catalog access — registering or dropping operator classes
    /// changes how subsequent queries are routed, without touching any
    /// physical index.
    pub fn catalog_mut(&mut self) -> &mut Catalog {
        &mut self.catalog
    }

    /// Creates an empty table with the given key type.
    pub fn create_table(&mut self, name: &str, key_type: KeyType) -> StorageResult<()> {
        if self.tables.contains_key(name) {
            return Err(StorageError::Unsupported(format!(
                "table {name:?} already exists"
            )));
        }
        let table = Table::create(name, key_type, Arc::clone(&self.pool))?;
        self.tables.insert(name.to_string(), table);
        Ok(())
    }

    /// Looks up a table.
    pub fn table(&self, name: &str) -> Option<&Table> {
        self.tables.get(name)
    }

    /// Looks up a table for modification.
    pub fn table_mut(&mut self, name: &str) -> Option<&mut Table> {
        self.tables.get_mut(name)
    }

    fn table_or_err(&self, name: &str) -> StorageResult<&Table> {
        self.tables
            .get(name)
            .ok_or_else(|| StorageError::Unsupported(format!("no table named {name:?}")))
    }

    /// Plans `predicate` against the named table (`EXPLAIN`).
    pub fn plan(&self, table: &str, predicate: &Predicate) -> StorageResult<AccessPath> {
        self.table_or_err(table)?.plan(&self.catalog, predicate)
    }

    /// Plans and executes `predicate` against the named table, returning a
    /// streaming cursor.
    pub fn query<'d>(
        &'d self,
        table: &str,
        predicate: &Predicate,
    ) -> StorageResult<ExecCursor<'d>> {
        self.table_or_err(table)?.query(&self.catalog, predicate)
    }
}

impl std::fmt::Debug for Database {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Database")
            .field("tables", &self.tables.keys().collect::<Vec<_>>())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn word_table(n: usize) -> Database {
        let mut db = Database::in_memory();
        db.create_table("words", KeyType::Varchar).unwrap();
        let table = db.table_mut("words").unwrap();
        for i in 0..n {
            // Deterministic five-letter words over a small alphabet.
            let mut word = String::new();
            let mut v = i;
            for _ in 0..5 {
                word.push(char::from(b'a' + (v % 7) as u8));
                v /= 7;
            }
            table.insert(word).unwrap();
        }
        db
    }

    #[test]
    fn seq_scan_answers_queries_without_any_index() {
        let db = word_table(500);
        let cursor = db.query("words", &Predicate::str_prefix("ab")).unwrap();
        assert_eq!(cursor.source(), &ScanSource::Heap);
        let rows = cursor.rows().unwrap();
        assert!(!rows.is_empty());
        for &row in &rows {
            let Datum::Text(word) = db.table("words").unwrap().datum(row).unwrap() else {
                panic!("non-text datum in a varchar table");
            };
            assert!(word.starts_with("ab"));
        }
    }

    #[test]
    fn index_scan_and_seq_scan_return_identical_rows() {
        let mut db = word_table(4000);
        // Plan before the index exists: sequential scan.
        let seq_rows = {
            let cursor = db.query("words", &Predicate::str_regex("a?a?a")).unwrap();
            assert_eq!(cursor.source(), &ScanSource::Heap);
            let mut rows = cursor.rows().unwrap();
            rows.sort_unstable();
            rows
        };
        db.table_mut("words")
            .unwrap()
            .create_index("words_trie", IndexSpec::Trie)
            .unwrap();
        let cursor = db.query("words", &Predicate::str_regex("a?a?a")).unwrap();
        assert_eq!(
            cursor.source(),
            &ScanSource::Index {
                name: "words_trie".into()
            },
            "a selective regex over 4000 rows must route to the trie"
        );
        let mut idx_rows = cursor.rows().unwrap();
        idx_rows.sort_unstable();
        assert_eq!(idx_rows, seq_rows);
        assert!(!idx_rows.is_empty());
    }

    #[test]
    fn create_index_backfills_existing_rows() {
        let mut db = word_table(3000);
        db.table_mut("words")
            .unwrap()
            .create_index("words_trie", IndexSpec::Trie)
            .unwrap();
        let available = db.table("words").unwrap().available_indexes().unwrap();
        assert_eq!(available.len(), 1);
        assert_eq!(available[0].operator_class, "SP_GiST_trie");
        assert!(
            available[0].pages > 0,
            "stats must come from the built tree"
        );
        assert!(available[0].page_height > 0);
    }

    #[test]
    fn table_delete_removes_the_row_from_heap_and_indexes() {
        let mut db = word_table(2000);
        db.table_mut("words")
            .unwrap()
            .create_index("words_trie", IndexSpec::Trie)
            .unwrap();
        let probe = {
            let Datum::Text(w) = db.table("words").unwrap().datum(123).unwrap() else {
                panic!("non-text datum");
            };
            w
        };
        let before = db
            .query("words", &Predicate::str_equals(&probe))
            .unwrap()
            .rows()
            .unwrap();
        assert!(before.contains(&123));
        assert!(db.table_mut("words").unwrap().delete(123).unwrap());
        assert!(!db.table_mut("words").unwrap().delete(123).unwrap());
        let after = db
            .query("words", &Predicate::str_equals(&probe))
            .unwrap()
            .rows()
            .unwrap();
        assert!(!after.contains(&123));
    }

    #[test]
    fn type_mismatches_are_rejected_not_panicked() {
        let mut db = word_table(10);
        let table = db.table_mut("words").unwrap();
        assert!(table.insert(Point::new(1.0, 2.0)).is_err());
        assert!(table.create_index("kd", IndexSpec::KdTree).is_err());
        assert!(db
            .plan("words", &Predicate::point_equals(Point::new(1.0, 2.0)))
            .is_err());
        assert!(db.query("missing", &Predicate::str_equals("x")).is_err());
        // NN predicates need the ordered interface.
        assert!(db
            .plan("words", &Predicate::Str(StringQuery::Nearest("abc".into())))
            .is_err());
    }

    #[test]
    fn cursor_streams_lazily() {
        let mut db = word_table(3000);
        db.table_mut("words")
            .unwrap()
            .create_index("words_trie", IndexSpec::Trie)
            .unwrap();
        let mut cursor = db.query("words", &Predicate::str_prefix("a")).unwrap();
        // Pulling a single item must work without draining the cursor.
        let first = cursor.next().unwrap().unwrap();
        let Datum::Text(word) = first.1 else {
            panic!("non-text datum");
        };
        assert!(word.starts_with('a'));
    }
}
